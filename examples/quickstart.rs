//! Quickstart: offload data-movement work to a simulated Intel DSA.
//!
//! Run with: `cargo run --release --example quickstart`

use dsa_ops::crc32::Crc32c;
use dsa_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An SPR-like platform with one DSA instance (one engine, one 32-entry
    // dedicated work queue) — the paper's baseline configuration.
    let mut rt = DsaRuntime::spr_default();

    // Allocate buffers in local DRAM; pages are mapped automatically
    // (shared virtual memory — no pinning required).
    let src = rt.alloc(64 << 10, Location::local_dram());
    let dst = rt.alloc(64 << 10, Location::local_dram());
    rt.fill_random(&src);

    // --- Synchronous offload: submit one descriptor, wait for completion.
    let report = Job::memcpy(&src, &dst).execute(&mut rt)?;
    println!(
        "sync 64 KiB copy: {:.2} GB/s (submit {:?}, wait {:?})",
        report.gbps(64 << 10),
        report.phases.submit,
        report.phases.wait,
    );
    assert_eq!(rt.read(&src)?, rt.read(&dst)?);

    // --- CRC32-C generation on the device, verified against software.
    let crc_report = Job::crc32(&src).execute(&mut rt)?;
    let sw_crc = Crc32c::checksum(rt.read(&src)?);
    assert_eq!(crc_report.record.result as u32, sw_crc);
    println!("device CRC32-C: {:#010x} (matches software)", sw_crc);

    // --- Asynchronous streaming at queue depth 32 (guideline G2).
    let started = rt.now();
    let mut q = AsyncQueue::new(32);
    for _ in 0..256 {
        q.submit(&mut rt, Job::memcpy(&src, &dst))?;
    }
    let end = q.drain(&mut rt);
    let bytes = q.completed_bytes();
    println!(
        "async streaming: {:.2} GB/s over {} copies",
        bytes as f64 / end.duration_since(started).as_ns_f64(),
        q.completed(),
    );

    // --- Policy dispatch: let the runtime pick CPU vs. DSA per call.
    // The dispatcher compares cost estimates (guideline G2) and keeps
    // decision counters.
    let mut dispatcher = Dispatcher::all_devices(&rt);
    let tiny_a = rt.alloc(256, Location::local_dram());
    let tiny_b = rt.alloc(256, Location::local_dram());
    dispatcher.memcpy(&mut rt, &tiny_a, &tiny_b)?; // too small: stays on the core
    dispatcher.memcpy(&mut rt, &src, &dst)?; // 64 KiB: offloads
    let ds = dispatcher.stats();
    println!(
        "dispatcher: {} calls -> {} on CPU, {} offloaded sync, {} offloaded async",
        ds.calls(),
        ds.cpu_calls,
        ds.sync_offloads,
        ds.async_offloads,
    );

    // --- Compare with the single-core software baseline.
    let cpu = rt.cpu_time(
        dsa_ops::OpKind::Memcpy,
        64 << 10,
        Location::local_dram(),
        Location::local_dram(),
    );
    println!(
        "software memcpy of 64 KiB: {:.2} GB/s (one core, cache-cold)",
        (64 << 10) as f64 / cpu.as_ns_f64()
    );

    // --- Device telemetry (PCM-style counters).
    let t = rt.device(0).telemetry();
    println!(
        "telemetry: {} descriptors, {:.1} MiB read, {:.1} MiB written",
        t.descriptors,
        t.bytes_read as f64 / (1 << 20) as f64,
        t.bytes_written as f64 / (1 << 20) as f64,
    );
    Ok(())
}
