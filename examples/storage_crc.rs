//! Storage-style integrity offload: CRC32-C Data Digests (the SPDK
//! NVMe/TCP appendix) and T10-DIF protection — both DSA operations that
//! show the largest speedups over software.
//!
//! Run with: `cargo run --release --example storage_crc`

use dsa_ops::dif::{DifBlockSize, DifConfig};
use dsa_repro::prelude::*;
use dsa_workloads::nvmetcp::NvmeTcpTarget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = DsaRuntime::spr_default();

    // --- T10-DIF: protect, verify, detect corruption, strip.
    let raw = rt.alloc(8 * 512, Location::local_dram());
    let protected = rt.alloc(8 * 520, Location::local_dram());
    rt.fill_random(&raw);
    let cfg = DifConfig::new(DifBlockSize::B512);

    let r = Job::dif_insert(&raw, &protected, cfg).execute(&mut rt)?;
    assert!(r.record.status.is_ok());
    println!("DIF insert: protected 8 x 512-B blocks ({:?})", r.elapsed());

    let r = Job::dif_check(&protected, cfg).execute(&mut rt)?;
    assert_eq!(r.record.status, Status::Success);
    println!("DIF check:  all guards/tags verified");

    // Flip one bit and watch the device catch it.
    let addr = protected.addr() + 700;
    let mut byte = rt.memory().read(addr, 1)?.to_vec();
    byte[0] ^= 0x01;
    rt.memory_mut().write(addr, &byte)?;
    let r = Job::dif_check(&protected, cfg).execute(&mut rt)?;
    assert_eq!(r.record.status, Status::DifError);
    println!("DIF check:  corruption detected in block {}", r.record.result);

    // --- NVMe/TCP target: IOPS at 4 cores under the three digest modes.
    println!("\nNVMe/TCP target, 16 KiB random reads, 4 target cores:");
    for (label, digest) in
        [("no digest", None), ("ISA-L", Some(Engine::Cpu)), ("DSA", Some(Engine::dsa()))]
    {
        let report = NvmeTcpTarget { io_size: 16 << 10, cores: 4, digest }.run(&mut rt, 4)?;
        println!(
            "  {label:>10}: {:>8.1} kIOPS, avg latency {:>6.2} us",
            report.kiops,
            report.avg_latency.as_us_f64()
        );
    }
    println!(
        "\nDSA digests track the no-digest line (Fig. 21): the checksum leaves\n\
         the core, so the target saturates the network with fewer cores."
    );
    Ok(())
}
