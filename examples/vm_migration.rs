//! VM live migration with DSA: iterative pre-copy with delta records —
//! one of the paper's §5 "datacenter tax" offloads ("VM/container boot-up
//! and migration").
//!
//! Run with: `cargo run --release --example vm_migration`

use dsa_repro::prelude::*;
use dsa_workloads::migration::{Migration, MigrationConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MigrationConfig {
        blocks: 64,
        block_size: 64 << 10,
        dirtied_per_round: 12,
        dirty_density: 0.03,
        ..MigrationConfig::default()
    };
    println!(
        "migrating a {} MiB guest ({} x {} KiB blocks), guest dirties {} blocks/round\n",
        (cfg.blocks as u64 * cfg.block_size) >> 20,
        cfg.blocks,
        cfg.block_size >> 10,
        cfg.dirtied_per_round
    );

    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "engine", "rounds", "copied MiB", "delta KiB", "downtime us", "total ms"
    );
    for engine in [Engine::Cpu, Engine::dsa()] {
        let mut rt = DsaRuntime::builder(dsa_mem::topology::Platform::spr())
            .device(DeviceConfig::full_device())
            .build();
        let report = Migration::new(&mut rt, cfg).run(&mut rt, engine)?;
        println!(
            "{:>8} {:>10} {:>12.1} {:>12.1} {:>12.2} {:>12.3}",
            format!("{engine:?}"),
            report.rounds,
            report.copied_bytes as f64 / (1 << 20) as f64,
            report.delta_bytes as f64 / 1024.0,
            report.downtime.as_us_f64(),
            report.total_time.as_secs_f64() * 1e3,
        );
    }
    println!(
        "\nSparse dirtying ships as Create/Apply Delta Record pairs instead of\n\
         full block copies; the destination is verified byte-identical after\n\
         the stop-and-copy round. DSA shortens both total migration time and\n\
         the downtime window."
    );
    Ok(())
}
