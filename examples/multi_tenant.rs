//! Multi-tenant service layer: three tenants with different QoS needs
//! share one DSA instance through `DsaService` — admission control meters
//! the bulk stream, by-class placement isolates the latency tenants on
//! dedicated WQs, and the final report scores the outcome with a Jain
//! fairness index over accelerator-served shares.
//!
//! Run with: `cargo run --release --example multi_tenant`

use dsa_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A bulk tenant pushing 64 KiB copies back-to-back, metered to
    // 50k jobs/s by the token-bucket admission controller, plus two
    // latency-class tenants offering a modest open-loop stream with a
    // 2 ms deadline. Under `ByClass`, the latency tenants land on
    // dedicated WQs; the bulk stream pools on the shared WQ.
    let specs = vec![
        TenantSpec::new("bulk", 64 << 10, 2_000).with_admission(50_000, 8),
        TenantSpec::new("kv-cache", 16 << 10, 400)
            .with_class(QosClass::Latency)
            .with_arrival(Arrival::open(SimDuration::from_us(4)))
            .with_deadline(SimDuration::from_ms(2)),
        TenantSpec::new("page-move", 32 << 10, 300)
            .with_class(QosClass::Latency)
            .with_arrival(Arrival::open(SimDuration::from_us(6)))
            .with_deadline(SimDuration::from_ms(2)),
    ];

    let cfg = ServiceConfig::builder().plan(PlanSpec::ByClass).tenants(specs).build()?;
    let mut svc = DsaService::from_config(cfg)?;

    // Drive a few jobs by hand through a session handle first — the same
    // path `run()` uses, one job per `submit()`.
    let mut sess = svc.session(1);
    for _ in 0..5 {
        match sess.submit()? {
            JobOutcome::Dsa { latency, .. } => {
                println!("kv-cache job on DSA, latency {latency}")
            }
            JobOutcome::Cpu { latency, .. } => {
                println!("kv-cache job fell back to CPU, latency {latency}")
            }
        }
    }

    // Then let the service drain every tenant deterministically.
    let report = svc.run();
    println!("\n{}", report.summary());

    assert!(report.fairness > 0.99, "by-class placement should stay fair");
    assert!(
        report.tenants.iter().all(|t| t.failed == 0),
        "no tenant should fail outright in this mix"
    );
    Ok(())
}
