//! The paper's §6.4 case study: DPDK-Vhost packet forwarding with batched,
//! asynchronous DSA packet-copy offload and in-order delivery.
//!
//! Run with: `cargo run --release --example packet_forwarding`

use dsa_repro::prelude::*;
use dsa_workloads::vhost::{Testpmd, Vhost, Virtqueue};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A full DSA instance: 4 engines behind one 128-entry dedicated WQ —
    // the guideline-recommended setup for many small transfers (G5/G6).
    let mut rt = DsaRuntime::builder(dsa_mem::topology::Platform::spr())
        .device(presets::engines_behind_one_dwq(4, 128))
        .build();

    // --- Functional demo: packets flow through the virtqueue intact and
    // in order, even though copies complete asynchronously.
    let vq = Virtqueue::new(&mut rt, 128, 2048);
    let mut vhost = Vhost::new(vq, Engine::dsa());
    let pkts: Vec<_> = (0..32u8)
        .map(|i| {
            let b = rt.alloc(2048, Location::Llc);
            rt.fill_pattern(&b, i + 1);
            (b, 1500u32)
        })
        .collect();
    let burst = vhost.enqueue_burst(&mut rt, &pkts)?;
    println!(
        "enqueued a burst of {} packets with {:?} of core time (one batch descriptor)",
        burst.enqueued, burst.core_busy
    );
    vhost.drain(&mut rt);
    let used = vhost.virtqueue().used_order();
    println!("used ring has {} descriptors, in order: {:?}...", used.len(), &used[..4]);
    for (i, &idx) in used.iter().enumerate() {
        let buf = *vhost.virtqueue().buffer(idx);
        assert!(rt.read(&buf)?[..1500].iter().all(|&b| b == i as u8 + 1));
    }
    println!("all payloads verified byte-exact\n");

    // --- Fig. 16b in miniature: forwarding rate vs packet size.
    println!("{:>9} {:>10} {:>10} {:>8}", "pkt size", "CPU Mpps", "DSA Mpps", "ratio");
    for &size in &[256u32, 512, 1024, 1518] {
        let run = |mode| {
            let mut rt = DsaRuntime::builder(dsa_mem::topology::Platform::spr())
                .device(presets::engines_behind_one_dwq(4, 128))
                .build();
            Testpmd { pkt_size: size, bursts: 150, ..Testpmd::default() }
                .run(&mut rt, mode)
                .map(|r| r.mpps)
        };
        let cpu = run(Engine::Cpu)?;
        let dsa = run(Engine::dsa())?;
        println!("{size:>9} {cpu:>10.2} {dsa:>10.2} {:>8.2}", dsa / cpu);
    }
    println!("\nDSA keeps the forwarding rate flat while CPU copies fall with packet size.");
    Ok(())
}
