//! Transparent offload (DTO): route `memcpy`/`memset`/`memcmp` calls above
//! a size threshold to DSA without restructuring the application —
//! the paper's Appendix B CacheLib enablement story.
//!
//! Run with: `cargo run --release --example transparent_offload`

use dsa_core::dto::Dto;
use dsa_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = DsaRuntime::spr_default();
    let mut dto = Dto::new(); // default threshold: 8 KiB

    // An application-like mix: many small copies, a few large ones.
    let small_a = rt.alloc(1 << 10, Location::local_dram());
    let small_b = rt.alloc(1 << 10, Location::local_dram());
    let big_a = rt.alloc(256 << 10, Location::local_dram());
    let big_b = rt.alloc(256 << 10, Location::local_dram());
    rt.fill_random(&small_a);
    rt.fill_random(&big_a);

    for _ in 0..95 {
        dto.memcpy(&mut rt, &small_a, &small_b)?;
    }
    for _ in 0..5 {
        dto.memcpy(&mut rt, &big_a, &big_b)?;
    }

    // memset + memcmp flow through the same router.
    dto.memset(&mut rt, &big_b, 0x00)?;
    let (diff, _) = dto.memcmp(&mut rt, &big_a, &big_b)?;
    assert!(diff.is_some(), "zeroed buffer must differ from random data");

    let s = dto.stats();
    println!("intercepted calls:        {}", s.calls);
    println!("offloaded calls:          {} ({:.1}%)", s.offloaded_calls, s.call_fraction() * 100.0);
    println!("offloaded bytes:          {:.1}%", s.byte_fraction() * 100.0);
    println!(
        "\nThe paper's CacheLib observation reproduced: a few percent of the\n\
         calls carry nearly all the bytes, so a size-thresholded transparent\n\
         router offloads almost all data movement while leaving small copies\n\
         on the core."
    );
    assert!(s.call_fraction() < 0.15);
    assert!(s.byte_fraction() > 0.85);
    Ok(())
}
