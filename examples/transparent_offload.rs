//! Transparent offload: route `memcpy`/`memset`/`memcmp` calls through the
//! policy [`Dispatcher`] without restructuring the application — the
//! paper's Appendix B CacheLib enablement story, generalized from DTO's
//! fixed byte threshold to pluggable routing policies.
//!
//! Run with: `cargo run --release --example transparent_offload`

use dsa_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = DsaRuntime::spr_default();

    // DTO-style routing: a fixed 8 KiB threshold (what `Dto::new()` uses
    // under the hood since the backend refactor).
    let mut dto = Dispatcher::new().with_policy(DispatchPolicy::Threshold(8 << 10));

    // An application-like mix: many small copies, a few large ones.
    let small_a = rt.alloc(1 << 10, Location::local_dram());
    let small_b = rt.alloc(1 << 10, Location::local_dram());
    let big_a = rt.alloc(256 << 10, Location::local_dram());
    let big_b = rt.alloc(256 << 10, Location::local_dram());
    rt.fill_random(&small_a);
    rt.fill_random(&big_a);

    for _ in 0..95 {
        dto.memcpy(&mut rt, &small_a, &small_b)?;
    }
    for _ in 0..5 {
        dto.memcpy(&mut rt, &big_a, &big_b)?;
    }

    // memset + memcmp flow through the same router.
    dto.memset(&mut rt, &big_b, 0x00)?;
    let (diff, _) = dto.memcmp(&mut rt, &big_a, &big_b)?;
    assert!(diff.is_some(), "zeroed buffer must differ from random data");

    let s = dto.stats();
    println!("--- Threshold(8 KiB) policy ---");
    println!("intercepted calls:        {}", s.calls());
    println!("  routed to CPU:          {}", s.cpu_calls);
    println!("  offloaded (sync):       {}", s.sync_offloads);
    println!("offloaded calls:          {:.1}%", s.call_fraction() * 100.0);
    println!("offloaded bytes:          {:.1}%", s.byte_fraction() * 100.0);
    assert!(s.call_fraction() < 0.15);
    assert!(s.byte_fraction() > 0.85);

    // Adaptive routing: instead of a byte threshold, compare the CPU and
    // DSA cost estimates per call (guideline G2 as a live policy), with
    // asynchronous offload allowed up to 32 outstanding operations.
    let mut adaptive = Dispatcher::all_devices(&rt).with_async_depth(32);
    for _ in 0..95 {
        adaptive.memcpy(&mut rt, &small_a, &small_b)?;
    }
    for _ in 0..5 {
        adaptive.memcpy(&mut rt, &big_a, &big_b)?;
    }
    adaptive.drain(&mut rt);

    let a = adaptive.stats();
    println!("\n--- Adaptive policy (estimate-driven, async depth 32) ---");
    println!("intercepted calls:        {}", a.calls());
    println!("  routed to CPU:          {}", a.cpu_calls);
    println!("  offloaded (sync):       {}", a.sync_offloads);
    println!("  offloaded (async):      {}", a.async_offloads);
    println!("offloaded bytes:          {:.1}%", a.byte_fraction() * 100.0);
    assert_eq!(a.calls(), 100);

    println!(
        "\nThe paper's CacheLib observation reproduced: a few percent of the\n\
         calls carry nearly all the bytes, so a size-routed transparent\n\
         dispatcher offloads almost all data movement while leaving small\n\
         copies on the core."
    );
    Ok(())
}
