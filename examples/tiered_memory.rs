//! Tiered-memory data movement (guideline G4): use DSA to shuttle data
//! between local DRAM, remote-socket DRAM, and CXL-attached memory, letting
//! the guideline advisor pick placements.
//!
//! Run with: `cargo run --release --example tiered_memory`

use dsa_repro::prelude::guidelines::{g4_tier_placement, TierPlacement};
use dsa_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = DsaRuntime::spr_default();
    let platform = rt.platform().clone();
    let size = 1u64 << 20;

    // Ask G4 where the destination should live for a DRAM <-> CXL move.
    let dram = platform.medium(Location::local_dram());
    let cxl = platform.medium(Location::Cxl);
    let advice = g4_tier_placement(&dram, &cxl);
    println!("G4 advice for DRAM(A) vs CXL(B): {advice:?}");
    assert_eq!(advice, TierPlacement::DestOnA, "DRAM has the faster writes");

    // Measure all placements and confirm the advisor picked the winner.
    println!("\n{:>12} {:>10} {:>12}", "src->dst", "GB/s", "avg lat us");
    let mut best = ("", 0.0f64);
    for (label, src, dst) in [
        ("DRAM->CXL", Location::local_dram(), Location::Cxl),
        ("CXL->DRAM", Location::Cxl, Location::local_dram()),
        ("DRAM->rem", Location::local_dram(), Location::remote_dram()),
        ("rem->DRAM", Location::remote_dram(), Location::local_dram()),
    ] {
        let s = rt.alloc(size, src);
        let d = rt.alloc(size, dst);
        rt.fill_random(&s);
        let started = rt.now();
        let mut q = AsyncQueue::new(32);
        for _ in 0..24 {
            q.submit(&mut rt, Job::memcpy(&s, &d))?;
        }
        let end = q.drain(&mut rt);
        let gbps = q.completed_bytes() as f64 / end.duration_since(started).as_ns_f64();
        let report = Job::memcpy(&s, &d).execute(&mut rt)?;
        println!("{label:>12} {gbps:>10.2} {:>12.2}", report.elapsed().as_us_f64());
        if label.ends_with("DRAM") && gbps > best.1 {
            best = (label, gbps);
        }
        assert!(rt.read(&s)? == rt.read(&d)?, "moved data must be intact");
    }
    println!(
        "\nCXL->DRAM beats DRAM->CXL (the faster-write medium wins as destination), \
         matching G4; best DRAM-destination path: {} at {:.2} GB/s",
        best.0, best.1
    );

    // Cold-tier demotion: move a batch of pages to CXL in one batched job.
    let hot: Vec<_> = (0..8).map(|_| rt.alloc(256 << 10, Location::local_dram())).collect();
    let cold: Vec<_> = (0..8).map(|_| rt.alloc(256 << 10, Location::Cxl)).collect();
    let mut batch = Batch::new();
    for (h, c) in hot.iter().zip(&cold) {
        batch.push(Job::memcpy(h, c));
    }
    let report = batch.execute(&mut rt)?;
    println!(
        "demoted 8 x 256 KiB pages to CXL in {:?} with one batch descriptor",
        report.elapsed()
    );
    Ok(())
}
