//! A measured walk through the paper's six guidelines (§6, "Make the Most
//! out of DSA"): each advisor's recommendation is checked against the
//! simulated system live.
//!
//! Run with: `cargo run --release --example guidelines_tour`

use dsa_repro::prelude::guidelines as g;
use dsa_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------- G1
    println!("G1: keep a balanced batch size and transfer size");
    let (ts, bs) = g::g1_split(1 << 20, true);
    println!("  advisor: contiguous 1 MiB -> one descriptor ({ts} B x {bs})");
    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(1 << 20, Location::local_dram());
    let dst = rt.alloc(1 << 20, Location::local_dram());
    let single = Job::memcpy(&src, &dst).execute(&mut rt)?.elapsed();
    let mut batch = Batch::new();
    for i in 0..64u64 {
        let s = src.slice(i * (16 << 10), 16 << 10);
        let d = dst.slice(i * (16 << 10), 16 << 10);
        batch.push(Job::memcpy(&s, &d));
    }
    let split = batch.execute(&mut rt)?.elapsed();
    println!("  measured: coalesced {single:?} vs 64-way split {split:?}\n");

    // ---------------------------------------------------------------- G2
    println!("G2: use DSA asynchronously when possible");
    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(16 << 10, Location::local_dram());
    let dst = rt.alloc(16 << 10, Location::local_dram());
    let t0 = rt.now();
    for _ in 0..32 {
        Job::memcpy(&src, &dst).execute(&mut rt)?;
    }
    let sync = rt.now().duration_since(t0);
    let t1 = rt.now();
    let mut q = AsyncQueue::new(32);
    for _ in 0..32 {
        q.submit(&mut rt, Job::memcpy(&src, &dst))?;
    }
    q.drain(&mut rt);
    let asynct = rt.now().duration_since(t1);
    println!("  measured: 32 x 16 KiB sync {sync:?} vs async {asynct:?}\n");

    // ---------------------------------------------------------------- G3
    println!("G3: control the data destination wisely");
    println!(
        "  advisor: consumed soon -> cache control {}, streaming -> {}",
        g::g3_cache_control(true),
        g::g3_cache_control(false)
    );
    println!("  (see fig10/fig12 benches for the leaky-DMA and pollution effects)\n");

    // ---------------------------------------------------------------- G4
    println!("G4: DSA for heterogeneous memory moves");
    let p = rt.platform().clone();
    let advice = g::g4_tier_placement(&p.medium(Location::local_dram()), &p.medium(Location::Cxl));
    println!("  advisor for DRAM(A)/CXL(B): {advice:?} (faster-write medium as destination)");
    let mut rt = DsaRuntime::spr_default();
    let c = rt.alloc(256 << 10, Location::Cxl);
    let d = rt.alloc(256 << 10, Location::local_dram());
    let to_dram = Job::memcpy(&c, &d).execute(&mut rt)?.elapsed();
    let to_cxl = Job::memcpy(&d, &c).execute(&mut rt)?.elapsed();
    println!("  measured 256 KiB: CXL->DRAM {to_dram:?} vs DRAM->CXL {to_cxl:?}\n");

    // ---------------------------------------------------------------- G5
    println!("G5: leverage PE-level parallelism");
    println!(
        "  advisor: {} engines for 1 KiB transfers, {} for 2 MiB",
        g::g5_engines(1024),
        g::g5_engines(2 << 20)
    );
    for engines in [1u32, 4] {
        let mut rt = DsaRuntime::builder(dsa_mem::topology::Platform::spr())
            .device(presets::engines_behind_one_dwq(engines, 128))
            .build();
        let src = rt.alloc(1024, Location::local_dram());
        let dst = rt.alloc(1024, Location::local_dram());
        let t0 = rt.now();
        let mut batches = Vec::new();
        for _ in 0..32 {
            if batches.len() >= 8 {
                let t: dsa_sim::SimTime = batches.remove(0);
                rt.advance_to(t);
            }
            let mut b = Batch::new();
            for _ in 0..16 {
                b.push(Job::memcpy(&src, &dst));
            }
            batches.push(b.submit(&mut rt)?.completion_time());
        }
        for t in batches {
            rt.advance_to(t);
        }
        let gbps = (32.0 * 16.0 * 1024.0) / rt.now().duration_since(t0).as_ns_f64();
        println!("  measured 1 KiB stream with {engines} engine(s): {gbps:.2} GB/s");
    }
    println!();

    // ---------------------------------------------------------------- G6
    println!("G6: optimize WQ configuration");
    println!("  advisor: 4 threads/8 WQs -> {:?}", g::g6_wq_strategy(4, 8));
    println!("  advisor: 16 threads/8 WQs -> {:?}", g::g6_wq_strategy(16, 8));
    println!("  advisor: WQ size for near-max throughput: {}", g::g6_wq_size());
    let cfg = g::recommended_config(4096, 4);
    println!(
        "  recommended config for 4 KiB x 4 threads: {} group(s), {} WQ(s)",
        cfg.groups.len(),
        cfg.wqs.len()
    );
    Ok(())
}
