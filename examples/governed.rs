//! The control plane in five minutes: a `Governor` re-plans a live
//! `DsaService` when a mid-run burst blows the latency SLO.
//!
//! Four latency-class tenants with a 60 µs deadline share the device
//! with two deadline-free bulk streams; a third of the way in, two
//! deep-queued 512 KiB aggressor streams land and saturate the
//! device-wide memory fabric. A static plan eats the burst; the
//! governor sees the windowed p99 blow through the `SloTarget`, scores
//! candidate plans on a forked digital twin, and adopts the G6
//! read-buffer clamp that throttles the aggressors at the source —
//! then reverts once the pressure clears. Every decision lands in the
//! replay digest, so the run below is bit-reproducible.
//!
//! Run with: `cargo run --release --example governed`

use dsa_repro::prelude::*;

fn tenants() -> Vec<TenantSpec> {
    let mut specs = Vec::new();
    for i in 0..4 {
        specs.push(
            TenantSpec::new(&format!("lat{i}"), 4 << 10, 480)
                .with_class(QosClass::Latency)
                .with_deadline(SimDuration::from_us(60))
                .with_arrival(Arrival::open(SimDuration::from_ns(3_500))),
        );
    }
    for i in 0..2 {
        specs.push(
            TenantSpec::new(&format!("bulk{i}"), 64 << 10, 240)
                .with_arrival(Arrival::open(SimDuration::from_us(12))),
        );
    }
    for i in 0..2 {
        specs.push(
            TenantSpec::new(&format!("agg{i}"), 512 << 10, 12)
                .with_start(SimDuration::from_us(450))
                .with_outstanding(8)
                .with_arrival(Arrival::closed(SimDuration::ZERO)),
        );
    }
    specs
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let slo = SloTarget::new().with_p99(SimDuration::from_us(60)).with_deadline_miss_frac(0.02);

    // The static baseline: the boot plan, never revisited.
    let static_cfg =
        ServiceConfig::builder().plan(PlanSpec::Shared).seed(7).tenants(tenants()).build()?;
    let mut static_svc = DsaService::from_config(static_cfg)?;
    let static_rep = static_svc.run();

    // The governed run: same boot plan, same seed, but a Governor
    // watches windowed telemetry against the SLO every 10 µs.
    let cfg = ServiceConfig::builder()
        .plan(PlanSpec::Shared)
        .seed(7)
        .tenants(tenants())
        .slo(slo)
        .build()?;
    let mut svc = DsaService::from_config(cfg)?;
    let ctl = ControllerConfig { epoch: SimDuration::from_us(10), ..ControllerConfig::default() };
    let run = Governor::new(ctl).govern(&mut svc);

    println!("static plan : miss rate {:.3}", static_rep.deadline_miss_rate());
    println!(
        "governed    : miss rate {:.3} ({} decisions, {} transitions)",
        run.report.deadline_miss_rate(),
        run.decisions.len(),
        run.transitions()
    );
    for d in run.decisions.iter().filter(|d| d.adopted) {
        println!(
            "  epoch {:>4} at {:>8} ps: {} -> {} (twin score {:.4} vs incumbent {:.4})",
            d.epoch,
            d.at.as_ps(),
            d.from,
            d.to,
            d.score,
            d.incumbent_score
        );
    }
    println!("control digest: {:#018x}", run.digest());

    assert!(run.transitions() >= 1, "the burst should force at least one re-plan");
    assert!(
        run.report.deadline_miss_rate() < static_rep.deadline_miss_rate(),
        "the governed run should beat the static plan under the burst"
    );
    Ok(())
}
