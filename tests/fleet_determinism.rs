//! The fleet's headline guarantee (ISSUE 9 acceptance): a K-thread
//! sharded run is bit-identical to the sequential replay — per-shard
//! FNV-1a digests merged in shard order agree exactly for K ∈ {1, 2, 8}
//! across every placement policy — and the shard plan underneath it is a
//! total partition of the tenant space (no gaps, no overlaps) for
//! randomized fleet shapes.

use dsa_repro::prelude::*;
use dsa_sim::rng::SplitMix64;

fn fleet(placement: PoolPolicy, seed: u64) -> Fleet {
    let mut profile = TenantProfile::small();
    profile.deadline = Some(SimDuration::from_us(200));
    profile.latency_every = 4;
    let cfg = FleetConfig::builder()
        .sockets(2)
        .devices_per_socket(2)
        .shards(8)
        .tenants(96)
        .placement(placement)
        .seed(seed)
        .profile(profile)
        .build()
        .expect("a 2×2, 8-shard, 96-tenant fleet is a valid shape");
    Fleet::new(cfg)
}

/// K ∈ {1, 2, 8} worker threads × three placement policies: every
/// parallel run's merged digest equals the sequential replay's, and the
/// aggregate counters agree too (the digest is not vacuous).
#[test]
fn parallel_runs_replay_bit_identically() {
    for placement in [PoolPolicy::RoundRobin, PoolPolicy::LeastLoaded, PoolPolicy::NumaLocal] {
        let f = fleet(placement, 0xD5A_F1EE7);
        let seq = f.run_sequential().expect("sequential run");
        assert!(seq.offered() > 0, "{placement:?}: the proof needs a non-trivial run");
        assert!(seq.latency.count() > 0, "{placement:?}: no job ever completed");
        for k in [1usize, 2, 8] {
            let par = f.run_parallel(k).expect("parallel run");
            assert_eq!(
                par.digest, seq.digest,
                "{placement:?} with {k} thread(s) diverged from the sequential replay"
            );
            assert_eq!(par.offered(), seq.offered(), "{placement:?}/{k}: offered drifted");
            assert_eq!(par.completed(), seq.completed(), "{placement:?}/{k}: completed drifted");
            assert_eq!(par.makespan, seq.makespan, "{placement:?}/{k}: makespan drifted");
        }
    }
}

/// Distinct placements are distinct timelines: on a shape where
/// round-robin forces UPI crossers and NUMA-local does not, the merged
/// digests must differ — the determinism proof would be worthless if the
/// digest ignored the placement-dependent platform model.
#[test]
fn digest_distinguishes_placements() {
    let numa = fleet(PoolPolicy::NumaLocal, 7).digest().expect("numa run");
    let rr = fleet(PoolPolicy::RoundRobin, 7).digest().expect("rr run");
    assert_ne!(numa, rr, "placement-dependent platforms must reach the digest");
}

/// Property test over randomized fleet shapes: every `ShardPlan` is a
/// total partition — contiguous in-order ranges covering exactly
/// `[0, tenants)` with no gaps and no overlaps — under every policy,
/// including degenerate shapes (more shards than tenants, one slot).
#[test]
fn shard_plan_partitions_without_gaps_or_overlaps() {
    let mut rng = SplitMix64::new(0x5EED_5EED);
    for case in 0..200 {
        let tenants = rng.next_below(5_000);
        let shards = 1 + rng.next_below(63) as u32;
        let sockets = 1 + rng.next_below(4) as u32;
        let devices = 1 + rng.next_below(4) as u32;
        let seed = rng.next_u64();
        for placement in [PoolPolicy::RoundRobin, PoolPolicy::LeastLoaded, PoolPolicy::NumaLocal] {
            let plan = ShardPlan::new(tenants, shards, sockets, devices, placement, seed);
            assert!(
                plan.covers(tenants),
                "case {case}: {placement:?} plan over {tenants} tenants / {shards} shards / \
                 {sockets}×{devices} slots is not a total partition: {:?}",
                plan.shards()
            );
            assert_eq!(plan.shards().len(), shards as usize);
            for s in plan.shards() {
                assert!(s.socket < sockets, "case {case}: socket out of range: {s:?}");
                assert!(s.device < devices, "case {case}: device out of range: {s:?}");
                assert!(s.home_socket < sockets, "case {case}: home out of range: {s:?}");
            }
            // Balance: sizes differ by at most one.
            let sizes: Vec<u64> = plan.shards().iter().map(|s| s.tenants()).collect();
            let (min, max) = (
                sizes.iter().min().copied().unwrap_or(0),
                sizes.iter().max().copied().unwrap_or(0),
            );
            assert!(max - min <= 1, "case {case}: unbalanced partition {sizes:?}");
            // NUMA-local placements never cross the UPI link.
            if placement == PoolPolicy::NumaLocal {
                assert_eq!(plan.upi_crossers(), 0, "case {case}: NUMA-local crossed sockets");
            }
        }
    }
}
