//! Scheduler-swap determinism gate (ISSUE 5 acceptance criterion).
//!
//! The calendar-queue scheduler replaced the reference binary heap as the
//! engine's default pending-event queue. These tests run the three event
//! shapes the figures lean on hardest — fig07-style PE scaling, fig10-style
//! multi-DSA fan-out, and the abl_multi_tenant aggressor/polite contention
//! pattern — under BOTH `Scheduler` impls and assert `events_processed`
//! counts and FNV-1a replay digests are bit-identical. A final test replays
//! the real multi-tenant service cell and checks its report digest, so the
//! production path is covered too, not just the models.

use std::cell::RefCell;
use std::rc::Rc;

use dsa_core::digest::{Digestible, Fnv1a};
use dsa_sim::engine::{Component, ComponentId, Ctx, Engine};
use dsa_sim::rng::SplitMix64;
use dsa_sim::sched::{CalendarScheduler, HeapScheduler, Scheduler};
use dsa_sim::time::{SimDuration, SimTime};
use dsa_svc::prelude::*;

/// Messages flowing through the modelled offload cluster.
#[derive(Clone)]
enum Msg {
    /// Source self-tick: emit the next job.
    Tick,
    /// A job of `bytes` heading for a processing engine; carries the
    /// originating source so rejections can bounce back.
    Job { bytes: u64, from: ComponentId },
    /// PE finished one job.
    Done { bytes: u64 },
    /// PE queue was full; source retries after its backoff.
    Reject,
    /// Source self-message: re-send one previously rejected job without
    /// re-arming the periodic tick chain.
    Retry,
}

impl Digestible for Msg {
    fn fold(&self, h: &mut Fnv1a) {
        match self {
            Msg::Tick => h.write_u64(1),
            Msg::Job { bytes, from } => {
                h.write_u64(2);
                h.write_u64(*bytes);
                h.write_u64(from.index() as u64);
            }
            Msg::Done { bytes } => {
                h.write_u64(3);
                h.write_u64(*bytes);
            }
            Msg::Reject => h.write_u64(4),
            Msg::Retry => h.write_u64(5),
        }
    }
}

#[derive(Default)]
struct Tally {
    completed: u64,
    rejected: u64,
    bytes: u64,
}

/// Open-loop job source: `jobs` transfers of `bytes` each, one every `gap`,
/// round-robined over `pes`; on rejection, retry after `backoff` with a
/// touch of seeded jitter (the multi-tenant shape). Completions come back
/// here and land in the shared tally.
struct Source {
    me: ComponentId,
    pes: Vec<ComponentId>,
    next: usize,
    jobs: u64,
    bytes: u64,
    gap: SimDuration,
    backoff: SimDuration,
    rng: SplitMix64,
}

impl Component<Msg, Tally> for Source {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>, tally: &mut Tally) {
        match msg {
            Msg::Tick if self.jobs > 0 => {
                self.jobs -= 1;
                let pe = self.pes[self.next % self.pes.len()];
                self.next += 1;
                ctx.send(SimDuration::ZERO, pe, Msg::Job { bytes: self.bytes, from: self.me });
                if self.jobs > 0 {
                    let jitter = self.rng.next_u64() % (1 + self.gap.as_ps() / 8);
                    ctx.send_self(SimDuration::from_ps(self.gap.as_ps() + jitter), Msg::Tick);
                }
            }
            Msg::Tick => {}
            Msg::Reject => {
                tally.rejected += 1;
                ctx.send_self(self.backoff, Msg::Retry);
            }
            Msg::Retry => {
                // One job back on the wire; deliberately NOT re-arming the
                // tick chain, so retries stay linear in reject count.
                let pe = self.pes[self.next % self.pes.len()];
                self.next += 1;
                ctx.send(SimDuration::ZERO, pe, Msg::Job { bytes: self.bytes, from: self.me });
            }
            Msg::Done { bytes } => {
                tally.completed += 1;
                tally.bytes += bytes;
            }
            Msg::Job { .. } => unreachable!("sources never receive jobs"),
        }
    }
}

/// Processing engine: fixed service rate, bounded queue. Completion lands
/// back at the source as `Done`; overflow bounces as `Reject`.
struct Pe {
    busy_until: SimTime,
    queued: u32,
    cap: u32,
    ps_per_kib: u64,
}

impl Component<Msg, Tally> for Pe {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>, _tally: &mut Tally) {
        match msg {
            Msg::Job { bytes, from } => {
                if self.queued >= self.cap {
                    ctx.send(SimDuration::ZERO, from, Msg::Reject);
                    return;
                }
                self.queued += 1;
                let service = SimDuration::from_ps(self.ps_per_kib * bytes.div_ceil(1024));
                let start = self.busy_until.max(ctx.now());
                self.busy_until = start + service;
                let delay = SimDuration::from_ps(self.busy_until.as_ps() - ctx.now().as_ps());
                ctx.send(delay, from, Msg::Done { bytes });
                ctx.send_self(delay, Msg::Done { bytes: 0 }); // queue-slot release
            }
            Msg::Done { bytes: 0 } => self.queued = self.queued.saturating_sub(1),
            _ => unreachable!("PEs only take jobs and slot releases"),
        }
    }
}

struct ClusterSpec {
    /// (jobs, bytes, gap, backoff) per source.
    sources: Vec<(u64, u64, SimDuration, SimDuration)>,
    pes: usize,
    pe_cap: u32,
    ps_per_kib: u64,
}

/// Runs `spec` on the given scheduler; returns (events, digest, end, tally).
fn run_cluster<Q: Scheduler<Msg>>(spec: &ClusterSpec, sched: Q) -> (u64, u64, SimTime, u64) {
    let mut eng: Engine<Msg, Tally, Q> = Engine::with_scheduler(Tally::default(), sched);
    let digest = Rc::new(RefCell::new(Fnv1a::new()));
    let sink_hash = digest.clone();
    eng.set_observer(move |t, id, msg: &Msg| {
        let mut h = sink_hash.borrow_mut();
        h.write_u64(t.as_ps());
        h.write_u64(id.index() as u64);
        msg.fold(&mut h);
    });

    // Ids are handed out in registration order: PEs first, then sources.
    let pes: Vec<ComponentId> = (0..spec.pes).map(ComponentId::from_index).collect();
    for _ in 0..spec.pes {
        eng.add(Pe {
            busy_until: SimTime::ZERO,
            queued: 0,
            cap: spec.pe_cap,
            ps_per_kib: spec.ps_per_kib,
        });
    }
    for (i, &(jobs, bytes, gap, backoff)) in spec.sources.iter().enumerate() {
        let id = eng.add(Source {
            me: ComponentId::from_index(spec.pes + i),
            pes: pes.clone(),
            next: i, // stagger the round-robin start per source
            jobs,
            bytes,
            gap,
            backoff,
            rng: SplitMix64::new(0xD5A0 + i as u64),
        });
        assert_eq!(id.index(), spec.pes + i);
        eng.post(SimTime::from_ns(i as u64), id, Msg::Tick);
    }
    let end = eng.run();
    let d = digest.borrow().finish();
    (eng.events_processed(), d, end, eng.shared().completed)
}

fn assert_equivalent(name: &str, spec: &ClusterSpec) {
    let cal = run_cluster(spec, CalendarScheduler::new());
    let heap = run_cluster(spec, HeapScheduler::new());
    assert!(cal.3 > 0, "{name}: workload must actually complete jobs");
    assert_eq!(cal.0, heap.0, "{name}: events_processed must match");
    assert_eq!(cal.1, heap.1, "{name}: FNV-1a replay digests must match");
    assert_eq!(cal.2, heap.2, "{name}: final clocks must match");
}

/// fig07 shape: one saturating source, PE count swept 1..=8.
#[test]
fn fig07_pe_scaling_digests_match_across_schedulers() {
    for pes in [1usize, 2, 4, 8] {
        let spec = ClusterSpec {
            sources: vec![(600, 64 << 10, SimDuration::from_ns(200), SimDuration::from_us(1))],
            pes,
            pe_cap: 32,
            ps_per_kib: 35_000,
        };
        assert_equivalent(&format!("fig07/pe{pes}"), &spec);
    }
}

/// fig10 shape: multi-DSA — jobs striped across 1, 2, 4 device groups.
#[test]
fn fig10_multi_device_digests_match_across_schedulers() {
    for devices in [1usize, 2, 4] {
        let spec = ClusterSpec {
            // Two independent streams striping over all device PEs.
            sources: vec![
                (400, 128 << 10, SimDuration::from_ns(150), SimDuration::from_us(2)),
                (400, 16 << 10, SimDuration::from_ns(150), SimDuration::from_us(2)),
            ],
            pes: devices * 4,
            pe_cap: 16,
            ps_per_kib: 35_000,
        };
        assert_equivalent(&format!("fig10/dev{devices}"), &spec);
    }
}

/// abl_multi_tenant shape: one flooding aggressor plus polite tenants on a
/// deliberately shallow queue, so rejects/backoff retries actually fire.
#[test]
fn multi_tenant_contention_digests_match_across_schedulers() {
    let mut sources = vec![(800, 64 << 10, SimDuration::from_ns(50), SimDuration::from_us(1))];
    for _ in 0..3 {
        sources.push((150, 16 << 10, SimDuration::from_us(2), SimDuration::from_us(1)));
    }
    let spec = ClusterSpec { sources, pes: 4, pe_cap: 4, ps_per_kib: 35_000 };
    assert_equivalent("abl_multi_tenant", &spec);
}

/// The production multi-tenant service path: replaying one cell of
/// abl_multi_tenant must still produce a bit-identical report digest with
/// the calendar queue as the engine default.
#[test]
fn service_replay_digest_is_stable() {
    let run = || {
        let specs = vec![
            TenantSpec::new("aggr", 64 << 10, 400)
                .with_arrival(Arrival::open(SimDuration::from_ns(300)))
                .with_outstanding(64)
                .with_retry_budget(8)
                .with_backoff(SimDuration::from_ns(100)),
            TenantSpec::new("polite", 16 << 10, 100)
                .with_class(QosClass::Latency)
                .with_arrival(Arrival::open(SimDuration::from_us(4)))
                .with_outstanding(8)
                .with_retry_budget(1),
        ];
        let cfg = ServiceConfig::builder()
            .plan(PlanSpec::Dedicated)
            .seed(0xFA1C_0DE5)
            .tenants(specs)
            .build()
            .expect("plan fits the DSA 1.0 envelope");
        DsaService::from_config(cfg).expect("validated config always builds").run().digest()
    };
    assert_eq!(run(), run(), "service replay must be bit-identical");
}
