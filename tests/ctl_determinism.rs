//! The control plane's headline guarantee (ISSUE 10 acceptance): the
//! whole closed loop — windowed observations, digital-twin scores,
//! decisions, plan transitions — is a pure function of the seed. A
//! governed fleet's merged control digest is bit-identical across
//! repeat runs and across worker-thread counts, and a governor with
//! nothing to do is provably a no-op: with no SLO it digests exactly
//! like the plain fleet.

use dsa_repro::prelude::*;

/// A fleet shape whose shards come under genuine SLO pressure: tight
/// deadlines on open-arrival latency tenants, with 8×-sized aggressor
/// streams landing mid-run (the churn that makes the boot plan stale).
fn churn_fleet(slo: bool, seed: u64) -> Fleet {
    let profile = TenantProfile {
        xfer: 32 << 10,
        jobs: 200,
        open_gap: Some(SimDuration::from_us(2)),
        deadline: Some(SimDuration::from_us(30)),
        latency_every: 2,
        outstanding: 4,
        aggressor_every: 3,
        aggressor_start: SimDuration::from_us(100),
    };
    let mut b = FleetConfig::builder()
        .sockets(1)
        .devices_per_socket(2)
        .shards(4)
        .tenants(12)
        .seed(seed)
        .profile(profile);
    if slo {
        b = b
            .slo(SloTarget::new().with_p99(SimDuration::from_us(30)).with_deadline_miss_frac(0.02));
    }
    Fleet::new(b.build().expect("a 1×2, 4-shard, 12-tenant fleet is a valid shape"))
}

fn governed(slo: bool, seed: u64) -> GovernedFleet {
    GovernedFleet::new(
        churn_fleet(slo, seed),
        ControllerConfig { epoch: SimDuration::from_us(10), ..ControllerConfig::default() },
    )
}

/// Sequential vs K ∈ {1, 2, 8} worker threads, twice each: every run of
/// the closed loop replays to the same merged control digest and the
/// same fleet-wide decision/transition counts — and decisions actually
/// happen, so the proof covers the loop acting, not idling.
#[test]
fn governed_fleet_replays_bit_identically_across_thread_counts() {
    let g = governed(true, 0x0C71_5EED);
    let seq = g.run_sequential().expect("sequential governed run");
    assert!(seq.fleet.offered() > 0, "the proof needs a non-trivial run");
    assert!(
        seq.decisions > 0,
        "no shard governor ever evaluated a re-plan — the churn scenario is not \
         pressuring the SLO and the determinism proof is vacuous"
    );
    for k in [1usize, 2, 8] {
        for round in 0..2 {
            let par = g.run_parallel(k).expect("parallel governed run");
            assert_eq!(
                par.fleet.digest, seq.fleet.digest,
                "{k} thread(s), round {round}: control digest diverged from sequential"
            );
            assert_eq!(par.decisions, seq.decisions, "{k}/{round}: decision count drifted");
            assert_eq!(par.transitions, seq.transitions, "{k}/{round}: transitions drifted");
            assert_eq!(par.fleet.offered(), seq.fleet.offered(), "{k}/{round}: offered drifted");
            assert_eq!(
                par.fleet.completed(),
                seq.fleet.completed(),
                "{k}/{round}: completed drifted"
            );
        }
    }
}

/// The governor folds its decisions into the digest: a governed run
/// under SLO pressure must NOT digest like the ungoverned fleet (the
/// control digest would be vacuous if it ignored the control).
#[test]
fn control_digest_reflects_decisions() {
    let plain = churn_fleet(true, 0x0C71_5EED).run_sequential().expect("plain run");
    let gov = governed(true, 0x0C71_5EED).run_sequential().expect("governed run");
    assert!(gov.decisions > 0, "scenario must pressure the SLO");
    assert_ne!(
        gov.fleet.digest, plain.digest,
        "decisions were made but the merged digest is indistinguishable from the \
         ungoverned fleet"
    );
}

/// With no SLO there is no pressure, no decisions, no transitions — and
/// the governed fleet's merged digest coincides exactly with the plain
/// fleet's. The control plane is provably inert until it acts.
#[test]
fn governor_without_slo_is_a_bit_identical_no_op() {
    let plain = churn_fleet(false, 77).run_sequential().expect("plain run");
    let gov = governed(false, 77).run_sequential().expect("governed run");
    assert_eq!(gov.decisions, 0, "a pressure-free governor must not decide");
    assert_eq!(gov.transitions, 0, "a pressure-free governor must not transition");
    assert_eq!(
        gov.fleet.digest, plain.digest,
        "an idle governor must digest exactly like the plain fleet"
    );
    assert_eq!(gov.fleet.offered(), plain.offered());
    assert_eq!(gov.fleet.completed(), plain.completed());
}
