//! The paper's guidelines G1–G6, checked against the simulated system:
//! following each advisor's advice must actually win in measurement.

use dsa_core::backend::{DsaBackend, PoolPolicy};
use dsa_core::config::presets;
use dsa_core::dispatch::{Decision, DispatchPolicy, Dispatcher};
use dsa_core::guidelines::{self, ExecutionAdvice, TierPlacement, WqStrategy};
use dsa_core::job::{AsyncQueue, Batch, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_device::config::DeviceConfig;
use dsa_mem::buffer::Location;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;
use dsa_sim::time::SimDuration;

fn copy_total_with_split(total: u64, bs: u32) -> SimDuration {
    let mut rt = DsaRuntime::spr_default();
    let ts = total / bs as u64;
    let start = rt.now();
    if bs == 1 {
        let src = rt.alloc(ts, Location::local_dram());
        let dst = rt.alloc(ts, Location::local_dram());
        Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
    } else {
        let mut batch = Batch::new();
        for _ in 0..bs {
            let src = rt.alloc(ts, Location::local_dram());
            let dst = rt.alloc(ts, Location::local_dram());
            batch.push(Job::memcpy(&src, &dst));
        }
        batch.execute(&mut rt).unwrap();
    }
    rt.now().duration_since(start)
}

#[test]
fn g1_coalescing_contiguous_data_wins() {
    // One 1 MiB descriptor beats 64 x 16 KiB descriptors for the same total.
    let single = copy_total_with_split(1 << 20, 1);
    let split = copy_total_with_split(1 << 20, 64);
    assert!(single < split, "coalesced {single:?} vs split {split:?}");
    let (ts, bs) = guidelines::g1_split(1 << 20, true);
    assert_eq!((ts, bs), (1 << 20, 1), "advisor agrees: coalesce");
}

#[test]
fn g1_modest_batches_beat_extremes_for_scattered_data() {
    // For scattered (non-coalescable) data, the advisor's modest batch
    // should beat very large batches of tiny descriptors.
    let modest = copy_total_with_split(512 << 10, guidelines::g1_split(512 << 10, false).1);
    let extreme = copy_total_with_split(512 << 10, 256);
    assert!(modest < extreme, "modest {modest:?} vs extreme {extreme:?}");
}

#[test]
fn g2_async_advice_matches_measurement() {
    assert_eq!(guidelines::g2_execution(1 << 20, true, true), ExecutionAdvice::DsaAsync);
    // Async measured faster than sync for the same stream of work:
    let sync_time = {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(16 << 10, Location::local_dram());
        let dst = rt.alloc(16 << 10, Location::local_dram());
        let start = rt.now();
        for _ in 0..32 {
            Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
        }
        rt.now().duration_since(start)
    };
    let async_time = {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(16 << 10, Location::local_dram());
        let dst = rt.alloc(16 << 10, Location::local_dram());
        let start = rt.now();
        let mut q = AsyncQueue::new(32);
        for _ in 0..32 {
            q.submit(&mut rt, Job::memcpy(&src, &dst)).unwrap();
        }
        let end = q.drain(&mut rt);
        end.duration_since(start)
    };
    assert!(async_time.as_ns_f64() < sync_time.as_ns_f64() / 2.0);

    // Below 4 KiB with no async potential the core is advised (and is
    // genuinely faster when data may stay cache-warm).
    assert_eq!(guidelines::g2_execution(1024, false, true), ExecutionAdvice::Cpu);
    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(1024, Location::local_dram());
    let dst = rt.alloc(1024, Location::local_dram());
    let dsa = Job::memcpy(&src, &dst).execute(&mut rt).unwrap().elapsed();
    let cpu =
        rt.cpu_time(dsa_ops::OpKind::Memcpy, 1024, Location::local_dram(), Location::local_dram());
    assert!(cpu < dsa, "1 KiB: CPU {cpu:?} should beat sync DSA {dsa:?}");
}

#[test]
fn g3_cache_control_is_a_locality_switch() {
    assert!(guidelines::g3_cache_control(true));
    assert!(!guidelines::g3_cache_control(false));
}

#[test]
fn g4_placement_advice_matches_measured_ordering() {
    let platform = Platform::spr();
    let dram = platform.medium(Location::local_dram());
    let cxl = platform.medium(Location::Cxl);
    assert_eq!(guidelines::g4_tier_placement(&dram, &cxl), TierPlacement::DestOnA);

    // Measured: CXL->DRAM beats DRAM->CXL.
    let gbps = |src, dst| -> f64 {
        let mut rt = DsaRuntime::spr_default();
        let s = rt.alloc(1 << 20, src);
        let d = rt.alloc(1 << 20, dst);
        let start = rt.now();
        let mut q = AsyncQueue::new(32);
        for _ in 0..16 {
            q.submit(&mut rt, Job::memcpy(&s, &d)).unwrap();
        }
        let end = q.drain(&mut rt);
        q.completed_bytes() as f64 / end.duration_since(start).as_ns_f64()
    };
    let to_dram = gbps(Location::Cxl, Location::local_dram());
    let to_cxl = gbps(Location::local_dram(), Location::Cxl);
    assert!(to_dram > 1.3 * to_cxl, "dest on DRAM {to_dram} vs dest on CXL {to_cxl}");
}

#[test]
fn g5_engine_advice_matches_measured_scaling() {
    assert_eq!(guidelines::g5_engines(1024), 4);
    assert_eq!(guidelines::g5_engines(2 << 20), 1);
    let gbps = |engines: u32, size: u64| -> f64 {
        let mut rt = DsaRuntime::builder(Platform::spr())
            .device(presets::engines_behind_one_dwq(engines, 128))
            .build();
        let src = rt.alloc(size, Location::local_dram());
        let dst = rt.alloc(size, Location::local_dram());
        let start = rt.now();
        let mut inflight = Vec::new();
        for _ in 0..48 {
            if inflight.len() >= 8 {
                let t: dsa_sim::SimTime = inflight.remove(0);
                rt.advance_to(t);
            }
            let mut b = Batch::new();
            for _ in 0..16 {
                b.push(Job::memcpy(&src, &dst));
            }
            inflight.push(b.submit(&mut rt).unwrap().completion_time());
        }
        for t in inflight {
            rt.advance_to(t);
        }
        (48u64 * 16 * size) as f64 / rt.now().duration_since(start).as_ns_f64()
    };
    // Small transfers: engines matter.
    assert!(gbps(4, 1024) > 1.5 * gbps(1, 1024));
    // Large transfers: one engine already saturates.
    let one = gbps(1, 1 << 20);
    let four = gbps(4, 1 << 20);
    assert!(four < 1.15 * one, "large TS should not scale: {one} -> {four}");
}

/// Mean steady-state per-copy time at `size` under a fixed routing policy.
fn measured_per_copy(policy: DispatchPolicy, size: u64) -> f64 {
    let mut rt = DsaRuntime::spr_default();
    let mut d = Dispatcher::new().with_policy(policy);
    let src = rt.alloc(size, Location::local_dram());
    let dst = rt.alloc(size, Location::local_dram());
    rt.fill_random(&src);
    // Warm the ATC: the first execution pays IOMMU walks that steady-state
    // dispatch (what the estimates predict) does not.
    d.memcpy(&mut rt, &src, &dst).unwrap();
    let start = rt.now();
    for _ in 0..16 {
        d.memcpy(&mut rt, &src, &dst).unwrap();
    }
    rt.now().duration_since(start).as_ns_f64() / 16.0
}

#[test]
fn dispatcher_sync_choice_matches_measured_faster_option() {
    // G2 as live policy: across the ≈4 KiB sync break-even, the adaptive
    // dispatcher must route each size to whichever side measures faster
    // (ties near the crossover may go either way within 10%).
    let d = Location::local_dram();
    for size in [512u64, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 64 << 10] {
        let cpu = measured_per_copy(DispatchPolicy::CpuOnly, size);
        let dsa = measured_per_copy(DispatchPolicy::DsaOnly, size);
        let rt = DsaRuntime::spr_default();
        let dispatcher = Dispatcher::new(); // Adaptive, sync-only
        let decision = dispatcher.decide(&rt, OpKind::Memcpy, size, d, d);
        let measured_faster = if cpu <= dsa { Decision::Cpu } else { Decision::DsaSync };
        if decision != measured_faster {
            // Disagreement is only tolerable when the two options are
            // within 10% of each other (estimate noise at the crossover).
            let ratio = cpu.max(dsa) / cpu.min(dsa);
            assert!(
                ratio < 1.10,
                "{size} B: dispatcher chose {decision:?} but measurement says \
                 cpu {cpu:.0} ns vs dsa {dsa:.0} ns"
            );
        }
    }
    // Anchor points are unambiguous: 1 KiB stays on the core, 16 KiB
    // offloads (Fig. 2a's sync break-even sits near 4 KiB between them).
    let rt = DsaRuntime::spr_default();
    let dispatcher = Dispatcher::new();
    assert_eq!(dispatcher.decide(&rt, OpKind::Memcpy, 1 << 10, d, d), Decision::Cpu);
    assert_eq!(dispatcher.decide(&rt, OpKind::Memcpy, 16 << 10, d, d), Decision::DsaSync);
}

#[test]
fn dispatcher_async_break_even_near_256b() {
    // With async offload available, the core only pays descriptor prepare
    // + portal write, so the break-even drops to ≈256 B (Fig. 2b).
    let rt = DsaRuntime::spr_default();
    let d = Location::local_dram();
    let dispatcher = Dispatcher::new().with_async_depth(32);
    assert_eq!(
        dispatcher.decide(&rt, OpKind::Memcpy, 64, d, d),
        Decision::Cpu,
        "64 B: software memcpy is cheaper than a descriptor submission"
    );
    assert_eq!(
        dispatcher.decide(&rt, OpKind::Memcpy, 256, d, d),
        Decision::DsaAsync,
        "256 B: submission is already cheaper than copying on the core"
    );
}

#[test]
fn dispatcher_pool_policies_follow_load_and_locality() {
    let mut rt = DsaRuntime::builder(Platform::spr())
        .device(DeviceConfig::full_device())
        .device(DeviceConfig::full_device())
        .build();

    // Least-loaded: queue work onto device 0, the policy must steer the
    // next pick to the idle device 1.
    let src = rt.alloc(1 << 20, Location::local_dram());
    let dst = rt.alloc(1 << 20, Location::local_dram());
    Job::memcpy(&src, &dst).on_device(0).submit(&mut rt).unwrap();
    let ll = DsaBackend::all_devices(&rt).with_policy(PoolPolicy::LeastLoaded);
    assert_eq!(ll.peek(&rt, Location::local_dram()), 1, "avoid the busy instance");

    // NUMA-local: device sockets alternate on the SPR platform, so the
    // destination socket selects its local instance.
    let nl = DsaBackend::all_devices(&rt).with_policy(PoolPolicy::NumaLocal);
    let s0 = nl.peek(&rt, Location::Dram { socket: 0 });
    let s1 = nl.peek(&rt, Location::Dram { socket: 1 });
    assert_eq!(rt.device(s0).socket(), 0);
    assert_eq!(rt.device(s1).socket(), 1);
}

#[test]
fn g6_wq_strategy_matches_measured_crossover() {
    assert_eq!(guidelines::g6_wq_strategy(4, 8), WqStrategy::DedicatedPerThread { wqs: 4 });
    assert_eq!(guidelines::g6_wq_strategy(16, 8), WqStrategy::SharedSingle);
    assert_eq!(guidelines::g6_wq_size(), 32);
    // The recommended config is always enableable.
    for (ts, threads) in [(1024u64, 2u32), (1 << 20, 12)] {
        let cfg = guidelines::recommended_config(ts, threads);
        cfg.validate(&dsa_device::config::DeviceCaps::dsa1()).unwrap();
    }
}
