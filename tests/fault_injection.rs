//! Failure injection across the stack: page faults, full queues, invalid
//! configurations, corrupted data, and record overflows must all surface
//! as the architecture specifies — never as silent success.

use dsa_core::config::AccelConfig;
use dsa_core::job::Job;
use dsa_core::runtime::DsaRuntime;
use dsa_core::DsaError;
use dsa_device::config::{ConfigError, DeviceCaps};
use dsa_device::descriptor::{Descriptor, Status};
use dsa_device::device::{SubmitError, WqId};
use dsa_mem::buffer::Location;
use dsa_ops::dif::{DifBlockSize, DifConfig};
use dsa_sim::SimTime;

#[test]
fn page_fault_partial_completion_reports_progress() {
    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(32 << 10, Location::local_dram());
    let dst = rt.alloc(32 << 10, Location::local_dram());
    rt.fill_pattern(&src, 0x44);
    // Third destination page is missing.
    rt.memsys_mut().page_table_mut().unmap_page(dst.addr() + 2 * 4096);
    let report = Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
    match report.record.status {
        Status::PageFault { addr } => assert_eq!(addr, dst.addr() + 2 * 4096),
        other => panic!("expected page fault, got {other:?}"),
    }
    assert_eq!(report.record.bytes_completed, 2 * 4096);
}

#[test]
fn block_on_fault_pays_latency_but_completes() {
    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(16 << 10, Location::local_dram());
    let dst = rt.alloc(16 << 10, Location::local_dram());
    rt.fill_pattern(&src, 0x55);
    rt.memsys_mut().page_table_mut().unmap_page(dst.addr());
    rt.memsys_mut().page_table_mut().unmap_page(dst.addr() + 4096);

    let faulting = Job::memcpy(&src, &dst).block_on_fault().execute(&mut rt).unwrap();
    assert_eq!(faulting.record.status, Status::Success);
    assert!(rt.read(&dst).unwrap().iter().all(|&b| b == 0x55));

    // Same copy with all pages present is much faster.
    let mut rt2 = DsaRuntime::spr_default();
    let src2 = rt2.alloc(16 << 10, Location::local_dram());
    let dst2 = rt2.alloc(16 << 10, Location::local_dram());
    let clean = Job::memcpy(&src2, &dst2).execute(&mut rt2).unwrap();
    assert!(
        faulting.elapsed().as_ns_f64() > 2.0 * clean.elapsed().as_ns_f64(),
        "two page faults must be visible in latency: {:?} vs {:?}",
        faulting.elapsed(),
        clean.elapsed()
    );
}

#[test]
fn page_fault_storm_counts_every_fault() {
    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(64 << 10, Location::local_dram());
    let dst = rt.alloc(64 << 10, Location::local_dram());
    for page in 0..16 {
        rt.memsys_mut().page_table_mut().unmap_page(src.addr() + page * 4096);
    }
    Job::memcpy(&src, &dst).block_on_fault().execute(&mut rt).unwrap();
    assert_eq!(rt.device(0).telemetry().page_faults, 16);
}

#[test]
fn wq_overflow_is_retryable_not_fatal() {
    let cfg = AccelConfig::builder().group(1).dedicated_wq(2).build().unwrap();
    let mut rt = DsaRuntime::builder(dsa_mem::topology::Platform::spr()).device(cfg).build();
    let src = rt.alloc(1 << 20, Location::local_dram());
    let dst = rt.alloc(1 << 20, Location::local_dram());
    // Raw device access: fill the 2-entry WQ, third submission must say
    // WqFull with a usable retry time.
    let desc = Descriptor::memmove(src.addr(), dst.addr(), 1 << 20);
    let (dev, memory, memsys) = {
        // The job layer retries internally; use it to prove overall progress.
        let mut ok = 0;
        for _ in 0..6 {
            let r = Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
            assert!(r.record.status.is_ok());
            ok += 1;
        }
        assert_eq!(ok, 6);
        (rt.device_mut(0), (), ())
    };
    let _ = (dev, memory, memsys, desc);
}

#[test]
fn raw_wq_full_error_paths() {
    let dc = AccelConfig::builder().group(1).dedicated_wq(1).build().unwrap();
    let platform = dsa_mem::topology::Platform::spr();
    let mut memory = dsa_mem::memory::Memory::new();
    let mut memsys = dsa_mem::memsys::MemSystem::new(platform.clone());
    let mut dev = dsa_device::device::DsaDevice::new(0, dc, &platform);
    let src = memory.alloc(1 << 20, Location::local_dram());
    let dst = memory.alloc(1 << 20, Location::local_dram());
    memsys.page_table_mut().map_range(src.addr(), 1 << 20, dsa_mem::buffer::PageSize::Base4K);
    memsys.page_table_mut().map_range(dst.addr(), 1 << 20, dsa_mem::buffer::PageSize::Base4K);
    let desc = Descriptor::memmove(src.addr(), dst.addr(), 1 << 20);
    dev.submit(&mut memory, &mut memsys, WqId(0), &desc, SimTime::ZERO).unwrap();
    match dev.submit(&mut memory, &mut memsys, WqId(0), &desc, SimTime::ZERO) {
        Err(SubmitError::WqFull { retry_at }) => {
            // Retrying at the reported time succeeds.
            dev.submit(&mut memory, &mut memsys, WqId(0), &desc, retry_at).unwrap();
        }
        other => panic!("expected WqFull, got {other:?}"),
    }
}

#[test]
fn invalid_configurations_rejected_before_use() {
    // Engine budget.
    let r = AccelConfig::builder().group(3).dedicated_wq(8).group(2).dedicated_wq(8).build();
    assert!(matches!(r, Err(DsaError::InvalidConfig(ConfigError::TooManyEngines { .. }))));

    // WQ storage budget.
    let r = AccelConfig::builder().group(1).dedicated_wq(96).shared_wq(64).build();
    assert!(matches!(r, Err(DsaError::InvalidConfig(ConfigError::WqStorageExceeded { .. }))));

    // Caps are visible.
    let caps = DeviceCaps::dsa1();
    assert_eq!((caps.engines, caps.wqs, caps.wq_total_entries), (4, 8, 128));
}

#[test]
fn unmapped_addresses_produce_invalid_descriptor_status() {
    let mut rt = DsaRuntime::spr_default();
    let good = rt.alloc(4096, Location::local_dram());
    // A wild address outside every allocation.
    let desc = Descriptor::memmove(0x7777_0000_0000, good.addr(), 4096);
    let report = Job::from_descriptor(desc).execute(&mut rt).unwrap();
    assert_eq!(report.record.status, Status::InvalidDescriptor);
    assert_eq!(rt.device(0).telemetry().errors, 1);
}

#[test]
fn dif_corruption_and_delta_overflow_reported() {
    let mut rt = DsaRuntime::spr_default();
    let cfg = DifConfig::new(DifBlockSize::B512);
    let raw = rt.alloc(2 * 512, Location::local_dram());
    let protected = rt.alloc(2 * 520, Location::local_dram());
    rt.fill_random(&raw);
    Job::dif_insert(&raw, &protected, cfg).execute(&mut rt).unwrap();
    // Corrupt the second block's payload.
    let addr = protected.addr() + 520 + 17;
    let b = rt.memory().read(addr, 1).unwrap()[0] ^ 0x80;
    rt.memory_mut().write(addr, &[b]).unwrap();
    let report = Job::dif_check(&protected, cfg).execute(&mut rt).unwrap();
    assert_eq!(report.record.status, Status::DifError);
    assert_eq!(report.record.result, 1, "block index of the corruption");

    // Delta record bigger than its buffer -> overflow with needed size.
    let orig = rt.alloc(4096, Location::local_dram());
    let modv = rt.alloc(4096, Location::local_dram());
    rt.fill_pattern(&modv, 0xFF);
    let tiny = rt.alloc(32, Location::local_dram());
    let report = Job::delta_create(&orig, &modv, &tiny).execute(&mut rt).unwrap();
    assert_eq!(report.record.status, Status::DeltaOverflow);
    assert_eq!(report.record.result, 4096 / 8 * 10);
}

#[test]
fn unknown_targets_surface_as_errors() {
    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(64, Location::local_dram());
    let dst = rt.alloc(64, Location::local_dram());
    assert!(matches!(
        Job::memcpy(&src, &dst).on_device(9).execute(&mut rt),
        Err(DsaError::UnknownDevice { device: 9 })
    ));
    assert!(matches!(
        Job::memcpy(&src, &dst).on_wq(5).execute(&mut rt),
        Err(DsaError::Submit(SubmitError::UnknownWq { wq: 5 }))
    ));
}

#[test]
fn cbdma_requires_pinning_dsa_does_not() {
    // The modernization the paper emphasizes (§2, F1): same copy, no
    // pinning ceremony on DSA.
    let platform = dsa_mem::topology::Platform::icx();
    let mut memory = dsa_mem::memory::Memory::new();
    let mut memsys = dsa_mem::memsys::MemSystem::new(platform);
    let mut cbdma =
        dsa_device::cbdma::CbdmaDevice::new(0, 16, dsa_device::timing::CbdmaTiming::icx());
    let a = memory.alloc(4096, Location::local_dram());
    let b = memory.alloc(4096, Location::local_dram());
    assert!(matches!(
        cbdma.submit_copy(&mut memory, &mut memsys, 0, a.addr(), b.addr(), 4096, SimTime::ZERO),
        Err(dsa_device::cbdma::CbdmaError::NotPinned { .. })
    ));
    cbdma.pin(a.addr(), 4096);
    cbdma.pin(b.addr(), 4096);
    cbdma
        .submit_copy(&mut memory, &mut memsys, 0, a.addr(), b.addr(), 4096, SimTime::ZERO)
        .unwrap();

    // DSA: no pinning; SVM handles it.
    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(4096, Location::local_dram());
    let dst = rt.alloc(4096, Location::local_dram());
    assert!(Job::memcpy(&src, &dst).execute(&mut rt).unwrap().record.status.is_ok());
}
