//! Reproducibility guarantee: the whole stack is deterministic — identical
//! configurations and inputs produce bit-identical timing and results, run
//! after run. This is what makes the calibrated figures in EXPERIMENTS.md
//! stable artifacts rather than samples.

use dsa_core::backend::Engine;
use dsa_core::job::{AsyncQueue, Batch, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_device::config::DeviceConfig;
use dsa_mem::buffer::Location;
use dsa_mem::topology::Platform;
use dsa_sim::time::SimTime;
use dsa_workloads::migration::{Migration, MigrationConfig};
use dsa_workloads::xmem::{Background, CoRunScenario};

fn mixed_run() -> (SimTime, u64, Vec<u32>) {
    let mut rt =
        DsaRuntime::builder(Platform::spr()).devices(2, DeviceConfig::full_device()).build();
    let src = rt.alloc(64 << 10, Location::local_dram());
    let dst = rt.alloc(64 << 10, Location::local_dram());
    rt.fill_random(&src);

    let mut q = AsyncQueue::new(16);
    for i in 0..40 {
        q.submit(&mut rt, Job::memcpy(&src, &dst).on_device(i % 2)).unwrap();
    }
    q.drain(&mut rt);

    let mut batch = Batch::new();
    for _ in 0..8 {
        batch.push(Job::crc32(&src));
    }
    let report = batch.execute(&mut rt).unwrap();
    let crcs: Vec<u32> = report.records.iter().map(|r| r.result as u32).collect();
    (rt.now(), rt.device(0).telemetry().bytes_read, crcs)
}

#[test]
fn identical_runs_produce_identical_clocks_and_results() {
    let a = mixed_run();
    let b = mixed_run();
    assert_eq!(a.0, b.0, "final clock must be bit-identical");
    assert_eq!(a.1, b.1, "telemetry must be bit-identical");
    assert_eq!(a.2, b.2, "checksums must be bit-identical");
}

#[test]
fn workload_scenarios_are_deterministic() {
    let run = || {
        CoRunScenario {
            working_set: 2 << 20,
            background: Background::SoftwareCopy { n: 2 },
            quanta: 12,
            accesses_per_quantum: 500,
            ..CoRunScenario::default()
        }
        .run(&Platform::spr())
    };
    let a = run();
    let b = run();
    assert_eq!(a.avg_latency, b.avg_latency);
    assert_eq!(a.hit_ratio, b.hit_ratio);

    let run_mig = || {
        let mut rt =
            DsaRuntime::builder(Platform::spr()).device(DeviceConfig::full_device()).build();
        let cfg = MigrationConfig { blocks: 8, block_size: 16 << 10, ..MigrationConfig::default() };
        let r = Migration::new(&mut rt, cfg).run(&mut rt, Engine::dsa()).unwrap();
        (r.total_time, r.copied_bytes, r.delta_bytes)
    };
    assert_eq!(run_mig(), run_mig());
}

#[test]
fn fill_random_is_seeded_per_runtime_not_global() {
    // Two fresh runtimes produce the same "random" data: reproducibility
    // across processes, not just within one.
    let data = |_: u32| {
        let mut rt = DsaRuntime::spr_default();
        let b = rt.alloc(256, Location::local_dram());
        rt.fill_random(&b);
        rt.read(&b).unwrap().to_vec()
    };
    assert_eq!(data(0), data(1));
}
