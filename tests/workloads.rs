//! Integration sanity of the application workloads: each reproduces its
//! figure's qualitative result when run end to end through the stack.

use dsa_core::backend::Engine;
use dsa_core::config::presets;
use dsa_core::dispatch::DispatchPolicy;
use dsa_core::runtime::DsaRuntime;
use dsa_device::config::DeviceConfig;
use dsa_mem::buffer::Location;
use dsa_mem::topology::Platform;
use dsa_workloads::cachesvc::{run_cache_service, CacheWorkload};
use dsa_workloads::fabric::SarFabric;
use dsa_workloads::nvmetcp::NvmeTcpTarget;
use dsa_workloads::vhost::Testpmd;
use dsa_workloads::xmem::{Background, CoRunScenario};

#[test]
fn vhost_case_study_headline() {
    // Fig. 16b: above 256 B packets, DSA wins 1.14–2.29x.
    let run = |size: u32, engine: Engine| {
        let mut rt = DsaRuntime::builder(Platform::spr())
            .device(presets::engines_behind_one_dwq(4, 128))
            .build();
        Testpmd { pkt_size: size, bursts: 100, ..Testpmd::default() }
            .run(&mut rt, engine)
            .unwrap()
            .mpps
    };
    let ratio_512 = run(512, Engine::dsa()) / run(512, Engine::Cpu);
    let ratio_1518 = run(1518, Engine::dsa()) / run(1518, Engine::Cpu);
    assert!((1.14..2.6).contains(&ratio_512), "512 B ratio {ratio_512}");
    assert!(ratio_1518 > ratio_512, "margin grows with packet size");
}

#[test]
fn cache_pollution_headline() {
    // Fig. 13's highlighted point: software copies inflate 4 MB-working-set
    // latency notably; DSA offload does not.
    let run = |bg| {
        CoRunScenario {
            working_set: 4 << 20,
            background: bg,
            quanta: 24,
            accesses_per_quantum: 1500,
            ..CoRunScenario::default()
        }
        .run(&Platform::spr())
        .avg_latency
        .as_ns_f64()
    };
    let none = run(Background::None);
    let sw = run(Background::SoftwareCopy { n: 4 });
    let dsa = run(Background::DsaOffload { n: 4 });
    assert!(sw / none > 1.25, "software pollution: {}x", sw / none);
    assert!(dsa / none < 1.08, "DSA non-pollution: {}x", dsa / none);
}

#[test]
fn cachelib_headline() {
    // Fig. 19: DTO improves both rate and p99.999 tail at 4 workers.
    let wl = CacheWorkload { workers: 4, ops_per_worker: 600, ..CacheWorkload::default() };
    let mut rt =
        DsaRuntime::builder(Platform::spr()).devices(4, DeviceConfig::full_device()).build();
    let cpu = run_cache_service(&mut rt, &wl, DispatchPolicy::CpuOnly).unwrap();
    let mut rt =
        DsaRuntime::builder(Platform::spr()).devices(4, DeviceConfig::full_device()).build();
    let dsa = run_cache_service(&mut rt, &wl, DispatchPolicy::Threshold(8 << 10)).unwrap();
    assert!(dsa.mops > 1.1 * cpu.mops);
    assert!(dsa.tail() < cpu.tail());
}

#[test]
fn nvmetcp_headline() {
    // Fig. 21: DSA saturates with ~no-digest core counts; ISA-L needs more.
    let mut rt = DsaRuntime::spr_default();
    let mut sat =
        |digest| NvmeTcpTarget { io_size: 16 << 10, cores: 1, digest }.saturation_cores(&mut rt);
    let none = sat(None);
    let dsa = sat(Some(Engine::dsa()));
    let isal = sat(Some(Engine::Cpu));
    assert!(dsa <= none + 1);
    assert!(isal >= dsa + 2, "ISA-L {isal} vs DSA {dsa}");
}

#[test]
fn fabric_headline() {
    // Fig. 17a: large-message pingpong ~5x with DSA.
    let mut rt =
        DsaRuntime::builder(Platform::spr()).devices(2, DeviceConfig::full_device()).build();
    let cpu = SarFabric::new(Engine::Cpu).pingpong_gbps(&mut rt, 2 << 20).unwrap();
    let dsa = SarFabric::new(Engine::dsa()).pingpong_gbps(&mut rt, 2 << 20).unwrap();
    let speedup = dsa / cpu;
    assert!((3.0..7.0).contains(&speedup), "pingpong speedup {speedup}");
}

#[test]
fn dsa_occupancy_confined_to_ddio_share() {
    // Fig. 12's mechanism: with DSA background copies, device-owned LLC
    // lines never exceed the DDIO share.
    let r = CoRunScenario {
        working_set: 4 << 20,
        background: Background::DsaOffload { n: 4 },
        quanta: 24,
        accesses_per_quantum: 500,
        ..CoRunScenario::default()
    }
    .run(&Platform::spr());
    let ddio = Platform::spr().ddio_bytes() as f64;
    let dsa_max: f64 =
        r.occupancy.iter().filter(|(a, _)| a.is_dsa()).map(|(_, s)| s.max_value()).sum();
    assert!(dsa_max <= ddio * 1.05, "DSA lines {dsa_max} vs DDIO share {ddio}");
}

#[test]
fn mixed_workload_on_one_runtime() {
    // Several subsystems share one platform: vhost forwarding while a
    // tiered-memory job streams CXL data — both make progress and verify.
    let mut rt =
        DsaRuntime::builder(Platform::spr()).devices(2, DeviceConfig::full_device()).build();

    // Tiered-memory stream on device 1.
    let cold = rt.alloc(256 << 10, Location::Cxl);
    let hot = rt.alloc(256 << 10, Location::local_dram());
    rt.fill_pattern(&cold, 0xCC);
    let promote = dsa_core::job::Job::memcpy(&cold, &hot).on_device(1).submit(&mut rt).unwrap();

    // Vhost burst on device 0.
    let vq = dsa_workloads::vhost::Virtqueue::new(&mut rt, 64, 2048);
    let mut vhost = dsa_workloads::vhost::Vhost::new(vq, Engine::dsa());
    let pkts: Vec<_> = (0..16)
        .map(|_| {
            let b = rt.alloc(2048, Location::Llc);
            rt.fill_pattern(&b, 0x77);
            (b, 1024u32)
        })
        .collect();
    vhost.enqueue_burst(&mut rt, &pkts).unwrap();
    vhost.drain(&mut rt);
    rt.advance_to(promote.completion_time());

    assert_eq!(vhost.stats().delivered, 16);
    assert!(rt.read(&hot).unwrap().iter().all(|&b| b == 0xCC));
}
