//! Drives the full offload stack from the discrete-event engine: a
//! producer emits work bursts on its own schedule, an offloader submits
//! them to DSA, and a consumer validates completions — demonstrating that
//! the event substrate (`dsa_sim::engine`) composes with the runtime for
//! scenarios with independently scheduled agents.

use dsa_core::job::Job;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_mem::memory::BufferHandle;
use dsa_sim::engine::{Component, ComponentId, Ctx, Engine};
use dsa_sim::time::{SimDuration, SimTime};

#[derive(Clone, Debug)]
enum Msg {
    /// Producer wakes up to emit a burst.
    Produce,
    /// Offloader should ship burst `n`.
    Ship(u32),
    /// Consumer learns burst `n` completed at device time `at`.
    Done(u32, SimTime),
}

struct Shared {
    rt: DsaRuntime,
    src: BufferHandle,
    dst: BufferHandle,
    bursts_shipped: u32,
    bursts_verified: u32,
    completion_order_ok: bool,
    last_done: SimTime,
}

struct Producer {
    offloader: ComponentId,
    remaining: u32,
    period: SimDuration,
}

impl Component<Msg, Shared> for Producer {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>, shared: &mut Shared) {
        let Msg::Produce = msg else { panic!("producer only produces") };
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let n = shared.bursts_shipped;
        // Stamp the burst's payload so the consumer can verify it.
        let stamp = (n as u8).wrapping_add(1);
        shared.rt.fill_pattern(&shared.src, stamp);
        ctx.send(SimDuration::ZERO, self.offloader, Msg::Ship(n));
        ctx.send_self(self.period, Msg::Produce);
    }
}

struct Offloader {
    consumer: ComponentId,
}

impl Component<Msg, Shared> for Offloader {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>, shared: &mut Shared) {
        let Msg::Ship(n) = msg else { panic!("offloader only ships") };
        // The engine's clock is authoritative: sync the runtime to it.
        shared.rt.advance_to(ctx.now());
        let handle =
            Job::memcpy(&shared.src, &shared.dst).submit(&mut shared.rt).expect("submission");
        shared.bursts_shipped += 1;
        let done = handle.completion_time();
        ctx.send_at(done.max(ctx.now()), self.consumer, Msg::Done(n, done));
    }
}

struct Consumer;

impl Component<Msg, Shared> for Consumer {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>, shared: &mut Shared) {
        let Msg::Done(n, at) = msg else { panic!("consumer only consumes") };
        // Completions arrive in order for a FIFO stream of equal jobs.
        if at < shared.last_done {
            shared.completion_order_ok = false;
        }
        shared.last_done = at;
        // The payload visible now is from burst >= n (later stamps may
        // have overwritten it — the producer reuses the buffer).
        let got = shared.rt.read(&shared.dst).unwrap()[0];
        assert!(got as u32 > n, "burst {n} saw stale stamp {got}");
        shared.bursts_verified += 1;
        let _ = ctx;
    }
}

#[test]
fn event_driven_pipeline_completes_all_bursts() {
    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(16 << 10, Location::local_dram());
    let dst = rt.alloc(16 << 10, Location::local_dram());
    let shared = Shared {
        rt,
        src,
        dst,
        bursts_shipped: 0,
        bursts_verified: 0,
        completion_order_ok: true,
        last_done: SimTime::ZERO,
    };

    let mut eng: Engine<Msg, Shared> = Engine::new(shared);
    // Wire: producer -> offloader -> consumer (registration order gives
    // each component its id before its sender needs it).
    let consumer = eng.add(Consumer);
    let offloader = eng.add(Offloader { consumer });
    let producer = eng.add(Producer { offloader, remaining: 24, period: SimDuration::from_us(2) });
    eng.post(SimTime::ZERO, producer, Msg::Produce);
    let end = eng.run();

    let shared = eng.shared();
    assert_eq!(shared.bursts_shipped, 24);
    assert_eq!(shared.bursts_verified, 24);
    assert!(shared.completion_order_ok, "FIFO stream must complete in order");
    assert!(end >= SimTime::from_us(2 * 23), "producer cadence drives the clock");
    assert!(eng.events_processed() >= 24 * 2);
}
