//! Critical-path attribution gates (ISSUE 6 acceptance criteria).
//!
//! Four invariants the causal-tracing layer must uphold:
//!
//! 1. **Exact partition** — a job's five attributed segments sum to its
//!    end-to-end latency, picosecond-exact, across submission modes
//!    (sync, async, batch) and placements (local, remote+LLC-steered).
//! 2. **Phase reconciliation** — the coarse segments agree with the
//!    fine-grained descriptor [`Phase`] spans recorded by the device.
//! 3. **Digest neutrality (engine)** — attaching a cause observer to a
//!    fig07-shaped event cluster leaves the FNV-1a replay digest
//!    bit-identical, while the recorded [`CausalGraph`] is well-formed.
//! 4. **Digest neutrality (service)** — tracing a multi-tenant
//!    [`DsaService`] replay leaves its report digest bit-identical and
//!    yields per-tenant critical-path profiles.

use dsa_bench::measure::{Measure, Mode};
use dsa_core::digest::{Digestible, Fnv1a};
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_ops::OpKind;
use dsa_sim::engine::{CausalEdge, Component, ComponentId, Ctx, Engine};
use dsa_sim::time::{SimDuration, SimTime};
use dsa_svc::prelude::*;
use dsa_telemetry::{CausalGraph, Phase, SegmentKind};
use std::cell::RefCell;
use std::rc::Rc;

// ---------------------------------------------------------------------
// 1. Exact partition across submission modes and placements.
// ---------------------------------------------------------------------

#[test]
fn attributed_segments_partition_end_to_end_latency() {
    let points: Vec<(&str, Measure)> = vec![
        ("sync memcpy 4K", Measure::new(OpKind::Memcpy, 4096).iters(32)),
        (
            "async memcpy 256K qd16",
            Measure::new(OpKind::Memcpy, 256 << 10).iters(48).mode(Mode::Async { qd: 16 }),
        ),
        ("sync crc32 64K", Measure::new(OpKind::Crc32, 64 << 10).iters(16)),
        (
            "sync batch memcpy bs4",
            Measure::new(OpKind::Memcpy, 16 << 10).iters(16).mode(Mode::SyncBatch { bs: 4 }),
        ),
        (
            "remote dst + cache control",
            Measure::new(OpKind::Memcpy, 64 << 10)
                .iters(16)
                .locations(Location::local_dram(), Location::remote_dram())
                .cache_control(true),
        ),
    ];
    for (name, m) in points {
        let mut rt = DsaRuntime::spr_default();
        let hub = rt.trace();
        m.try_run(&mut rt).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        let traces = hub.job_traces();
        assert!(!traces.is_empty(), "{name}: no job traces recorded");
        for t in &traces {
            assert!(t.end >= t.start, "{name}: trace #{} runs backwards", t.trace_id);
            assert_eq!(
                t.attributed_total(),
                t.total(),
                "{name}: trace #{} segments must partition [start, end] exactly",
                t.trace_id
            );
        }
        // The aggregate partition check must hold too (u128 ps sums).
        let overall = hub.critpath_profile().overall().expect("profile is non-empty");
        assert_eq!(overall.attributed_ps(), overall.total_ps, "{name}: aggregate partition");
    }
}

// ---------------------------------------------------------------------
// 2. Segments reconcile with the descriptor phase spans.
// ---------------------------------------------------------------------

#[test]
fn segments_reconcile_with_descriptor_phase_spans() {
    let mut rt = DsaRuntime::spr_default();
    let hub = rt.trace();
    Measure::new(OpKind::Memcpy, 64 << 10).iters(24).try_run(&mut rt).expect("sync run");

    let traces = hub.job_traces();
    let spans = hub.descriptor_spans();
    assert_eq!(traces.len(), spans.len(), "one trace per descriptor in sync mode");
    for (t, s) in traces.iter().zip(spans.iter()) {
        assert_eq!(t.segment(SegmentKind::WqWait), s.phase_duration(Phase::Wait));
        assert_eq!(t.segment(SegmentKind::PeService), s.phase_duration(Phase::Translate));
        assert_eq!(
            t.segment(SegmentKind::MemoryHop),
            s.phase_duration(Phase::Read) + s.phase_duration(Phase::Write)
        );
        assert_eq!(t.segment(SegmentKind::CompletionWrite), s.phase_duration(Phase::Complete));
        // Software prep covers descriptor alloc/prepare *plus* the portal
        // write the Submit phase times, so it can only be wider.
        assert!(t.segment(SegmentKind::SoftwarePrep) >= s.phase_duration(Phase::Submit));
        assert_eq!(t.end, s.marks[6], "trace and span agree on completion visibility");
    }
}

// ---------------------------------------------------------------------
// 3. Engine-level causal observer is digest-neutral.
// ---------------------------------------------------------------------

#[derive(Clone)]
enum Msg {
    Tick,
    Job { bytes: u64, from: ComponentId },
    Done { bytes: u64 },
}

impl Digestible for Msg {
    fn fold(&self, h: &mut Fnv1a) {
        match self {
            Msg::Tick => h.write_u64(1),
            Msg::Job { bytes, from } => {
                h.write_u64(2);
                h.write_u64(*bytes);
                h.write_u64(from.index() as u64);
            }
            Msg::Done { bytes } => {
                h.write_u64(3);
                h.write_u64(*bytes);
            }
        }
    }
}

#[derive(Default)]
struct Tally {
    completed: u64,
}

/// Open-loop source: `jobs` fixed-size transfers, one every `gap`,
/// round-robined over the PEs (the fig07 shape).
struct Source {
    me: ComponentId,
    pes: Vec<ComponentId>,
    next: usize,
    jobs: u64,
    gap: SimDuration,
}

impl Component<Msg, Tally> for Source {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>, tally: &mut Tally) {
        match msg {
            Msg::Tick if self.jobs > 0 => {
                self.jobs -= 1;
                let pe = self.pes[self.next % self.pes.len()];
                self.next += 1;
                ctx.send(SimDuration::ZERO, pe, Msg::Job { bytes: 64 << 10, from: self.me });
                if self.jobs > 0 {
                    ctx.send_self(self.gap, Msg::Tick);
                }
            }
            Msg::Tick => {}
            Msg::Done { .. } => tally.completed += 1,
            Msg::Job { .. } => unreachable!("sources never receive jobs"),
        }
    }
}

/// Fixed-rate processing engine; completions bounce back to the source.
struct Pe {
    busy_until: SimTime,
    ps_per_kib: u64,
}

impl Component<Msg, Tally> for Pe {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>, _tally: &mut Tally) {
        if let Msg::Job { bytes, from } = msg {
            let service = SimDuration::from_ps(self.ps_per_kib * bytes.div_ceil(1024));
            let start = self.busy_until.max(ctx.now());
            self.busy_until = start + service;
            let delay = SimDuration::from_ps(self.busy_until.as_ps() - ctx.now().as_ps());
            ctx.send(delay, from, Msg::Done { bytes });
        }
    }
}

/// Runs the fig07-shaped cluster on the engine's default scheduler;
/// optionally records causal edges.
fn run_fig07_cluster(graph: Option<Rc<RefCell<CausalGraph>>>) -> (u64, u64, u64) {
    let (events, digest, completed, _) =
        run_fig07_cluster_on(dsa_sim::sched::CalendarScheduler::new(), graph);
    (events, digest, completed)
}

/// Runs the fig07-shaped cluster on an explicit scheduler, returning
/// `(events, digest, completed, event-pool high water)`. The high-water
/// figure is how we *prove* the observers ran over recycled pooled slots:
/// it stays at the peak live population while events number in the
/// thousands, so nearly every delivery reused a previously released slot.
fn run_fig07_cluster_on<Q: dsa_sim::sched::Scheduler<Msg>>(
    sched: Q,
    graph: Option<Rc<RefCell<CausalGraph>>>,
) -> (u64, u64, u64, usize) {
    let mut eng: Engine<Msg, Tally, Q> = Engine::with_scheduler(Tally::default(), sched);
    let digest = Rc::new(RefCell::new(Fnv1a::new()));
    let sink = digest.clone();
    eng.set_observer(move |t, id, msg: &Msg| {
        let mut h = sink.borrow_mut();
        h.write_u64(t.as_ps());
        h.write_u64(id.index() as u64);
        msg.fold(&mut h);
    });
    if let Some(g) = graph {
        eng.set_cause_observer(move |edge| g.borrow_mut().record(edge));
    }
    let pes: Vec<ComponentId> =
        (0..4).map(|_| eng.add(Pe { busy_until: SimTime::ZERO, ps_per_kib: 35_000 })).collect();
    let src = eng.add(Source {
        me: ComponentId::from_index(4),
        pes,
        next: 0,
        jobs: 300,
        gap: SimDuration::from_ns(200),
    });
    eng.post(SimTime::ZERO, src, Msg::Tick);
    eng.run();
    let d = digest.borrow().finish();
    (eng.events_processed(), d, eng.shared().completed, eng.event_pool_high_water())
}

#[test]
fn cluster_digest_is_identical_with_causal_observer_attached() {
    let plain = run_fig07_cluster(None);
    let graph = Rc::new(RefCell::new(CausalGraph::new()));
    let traced = run_fig07_cluster(Some(graph.clone()));
    assert!(plain.2 > 0, "cluster must complete jobs");
    assert_eq!(plain, traced, "(events, digest, completed) must be bit-identical");

    let graph = graph.borrow();
    // Every processed event was scheduled exactly once, and scheduling is
    // the moment its edge is emitted — so edges == events processed.
    assert_eq!(graph.len() as u64, traced.0, "one causal edge per event");
    // Causality: parents fire before children are scheduled.
    for e in graph.edges() {
        assert!(e.parent < e.child, "parent seq precedes child seq");
        assert!(e.fire_at >= e.scheduled_at, "no time travel");
    }
    // The last event's provenance chain reaches back to the external
    // seed post, through more than one hop (Tick -> Job -> Done ...).
    let last = graph.edges().iter().map(|e| e.child).max().expect("non-empty graph");
    let path = graph.path_to(last);
    assert!(path.len() > 1, "critical path has depth, got {}", path.len());
    assert_eq!(path[0].parent, CausalEdge::EXTERNAL, "chain roots at the external seed");
    assert!(graph.chain_latency(last) > SimDuration::ZERO);
}

#[test]
fn causal_observer_is_passive_over_pooled_slot_recycling() {
    use dsa_sim::sched::{CalendarScheduler, HeapScheduler};

    // The pooled SoA event store recycles payload slots through a free
    // list, so by the time an observer sees event N its slot index has
    // typically hosted hundreds of earlier events. Attaching the causal
    // observer must stay invisible under BOTH schedulers — same events,
    // same digest, same completions, same pool high water — and both
    // schedulers must agree with each other bit-for-bit.
    let cal_plain = run_fig07_cluster_on(CalendarScheduler::new(), None);
    let cal_graph = Rc::new(RefCell::new(CausalGraph::new()));
    let cal_traced = run_fig07_cluster_on(CalendarScheduler::new(), Some(cal_graph.clone()));
    let heap_plain = run_fig07_cluster_on(HeapScheduler::new(), None);
    let heap_graph = Rc::new(RefCell::new(CausalGraph::new()));
    let heap_traced = run_fig07_cluster_on(HeapScheduler::new(), Some(heap_graph.clone()));

    assert_eq!(cal_plain, cal_traced, "calendar: tracing perturbed the run");
    assert_eq!(heap_plain, heap_traced, "heap: tracing perturbed the run");
    assert_eq!(cal_plain, heap_plain, "schedulers disagree over pooled events");

    // Slots really were recycled under the observers: the pool plateaus at
    // the peak live population while deliveries number in the thousands.
    let (events, _, completed, high_water) = cal_traced;
    assert!(completed > 0, "cluster must complete jobs");
    assert!(
        (high_water as u64) * 4 < events,
        "pool high water {high_water} should be far below {events} events — \
         otherwise slots were never reused and the test proves nothing"
    );

    // The recorded provenance is itself scheduler-independent: sequence
    // numbers are assigned in send order, not pop order, so the edge sets
    // match edge-for-edge.
    assert_eq!(
        cal_graph.borrow().edges(),
        heap_graph.borrow().edges(),
        "causal edge streams must be bit-identical across schedulers"
    );
}

// ---------------------------------------------------------------------
// 4. Service-level tracing is digest-neutral and per-tenant.
// ---------------------------------------------------------------------

fn tenant_specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("aggr", 64 << 10, 400)
            .with_arrival(Arrival::open(SimDuration::from_ns(300)))
            .with_outstanding(64)
            .with_retry_budget(8)
            .with_backoff(SimDuration::from_ns(100)),
        TenantSpec::new("polite", 16 << 10, 100)
            .with_class(QosClass::Latency)
            .with_arrival(Arrival::open(SimDuration::from_us(4)))
            .with_outstanding(8)
            .with_retry_budget(1),
    ]
}

#[test]
fn service_digest_is_identical_with_tracing_enabled() {
    let cfg = || {
        ServiceConfig::builder()
            .plan(PlanSpec::Dedicated)
            .seed(0xFA1C_0DE5)
            .tenants(tenant_specs())
            .build()
            .expect("plan fits the envelope")
    };

    let plain = DsaService::from_config(cfg()).expect("validated config builds").run().digest();

    let mut svc = DsaService::from_config(cfg()).expect("validated config builds");
    let hub = svc.trace();
    let traced = svc.run().digest();
    assert_eq!(plain, traced, "tracing must not perturb the replay digest");

    // Both tenants produced attributed critical paths, keyed by tenant id.
    let profile = hub.critpath_profile();
    assert!(profile.jobs() > 0, "traces were recorded");
    let tenants: Vec<Option<u16>> = profile.keys().iter().map(|k| k.0).collect();
    assert!(tenants.contains(&Some(0)), "aggressor tenant profiled: {tenants:?}");
    assert!(tenants.contains(&Some(1)), "polite tenant profiled: {tenants:?}");
    // And every service-path trace obeys the exact-partition invariant.
    for t in hub.job_traces() {
        assert_eq!(t.attributed_total(), t.total(), "trace #{} partitions exactly", t.trace_id);
    }
}
