//! Cross-crate integration: the full stack from the job API down through
//! the device model and memory system, with functional verification.

use dsa_core::config::{presets, AccelConfig};
use dsa_core::job::{AsyncQueue, Batch, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_core::submit::WaitMethod;
use dsa_mem::buffer::Location;
use dsa_mem::topology::Platform;
use dsa_ops::crc32::Crc32c;
use dsa_ops::OpKind;
use dsa_repro::prelude::Status;

#[test]
fn every_operation_round_trips_through_the_device() {
    let mut rt = DsaRuntime::spr_default();
    let d = Location::local_dram();

    // Copy.
    let src = rt.alloc(4096, d);
    let dst = rt.alloc(4096, d);
    rt.fill_random(&src);
    assert!(Job::memcpy(&src, &dst).execute(&mut rt).unwrap().record.status.is_ok());
    assert_eq!(rt.read(&src).unwrap(), rt.read(&dst).unwrap());

    // Fill + compare-pattern.
    let buf = rt.alloc(4096, d);
    Job::fill(&buf, 0x1111_2222_3333_4444).execute(&mut rt).unwrap();
    let r = Job::compare_pattern(&buf, 0x1111_2222_3333_4444).execute(&mut rt).unwrap();
    assert_eq!(r.record.status, Status::Success);

    // Compare: equal then different.
    let r = Job::compare(&src, &dst).execute(&mut rt).unwrap();
    assert_eq!(r.record.status, Status::Success);
    let other = rt.alloc(4096, d);
    let r = Job::compare(&src, &other).execute(&mut rt).unwrap();
    assert_eq!(r.record.status, Status::CompareMismatch);

    // CRC and copy+CRC agree with software.
    let sw = Crc32c::checksum(rt.read(&src).unwrap());
    assert_eq!(Job::crc32(&src).execute(&mut rt).unwrap().record.result as u32, sw);
    let ccdst = rt.alloc(4096, d);
    let r = Job::copy_crc(&src, &ccdst).execute(&mut rt).unwrap();
    assert_eq!(r.record.result as u32, sw);
    assert_eq!(rt.read(&ccdst).unwrap(), rt.read(&src).unwrap());

    // Dualcast.
    let d1 = rt.alloc(4096, d);
    let d2 = rt.alloc(4096, d);
    Job::dualcast(&src, &d1, &d2).execute(&mut rt).unwrap();
    assert_eq!(rt.read(&d1).unwrap(), rt.read(&d2).unwrap());

    // Delta create/apply round trip.
    let orig = rt.alloc(4096, d);
    let modv = rt.alloc(4096, d);
    rt.fill_random(&modv);
    let record = rt.alloc(4096 / 8 * 10, d);
    let r = Job::delta_create(&orig, &modv, &record).execute(&mut rt).unwrap();
    assert_eq!(r.record.status, Status::Success);
    let rec_len = r.record.result as u32;
    let target = rt.alloc(4096, d);
    Job::delta_apply(&record, rec_len, &target).execute(&mut rt).unwrap();
    assert_eq!(rt.read(&target).unwrap(), rt.read(&modv).unwrap());

    // Cache flush completes.
    assert!(Job::cache_flush(&src).execute(&mut rt).unwrap().record.status.is_ok());
}

#[test]
fn async_streaming_reaches_the_fabric_cap() {
    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(1 << 20, Location::local_dram());
    let dst = rt.alloc(1 << 20, Location::local_dram());
    let start = rt.now();
    let mut q = AsyncQueue::new(32);
    for _ in 0..64 {
        q.submit(&mut rt, Job::memcpy(&src, &dst)).unwrap();
    }
    let end = q.drain(&mut rt);
    let gbps = q.completed_bytes() as f64 / end.duration_since(start).as_ns_f64();
    assert!((26.0..31.0).contains(&gbps), "expected ~30 GB/s, got {gbps}");
}

#[test]
fn four_devices_scale_nearly_linearly_below_the_ddio_knee() {
    let run = |n: usize| -> f64 {
        let mut rt = DsaRuntime::builder(Platform::spr())
            .devices(n, dsa_device::config::DeviceConfig::full_device())
            .build();
        let srcs: Vec<_> = (0..n).map(|_| rt.alloc(16 << 10, Location::local_dram())).collect();
        let dsts: Vec<_> = (0..n).map(|_| rt.alloc(16 << 10, Location::local_dram())).collect();
        let start = rt.now();
        let mut batches: Vec<dsa_sim::SimTime> = Vec::new();
        let mut bytes = 0u64;
        for i in 0..96 * n {
            if batches.len() >= 4 * n {
                let t = batches.remove(0);
                rt.advance_to(t);
            }
            let mut b = Batch::new().on_device(i % n);
            for _ in 0..8 {
                b.push(Job::memcpy(&srcs[i % n], &dsts[i % n]));
                bytes += 16 << 10;
            }
            batches.push(b.submit(&mut rt).unwrap().completion_time());
        }
        for t in batches {
            rt.advance_to(t);
        }
        bytes as f64 / rt.now().duration_since(start).as_ns_f64()
    };
    let one = run(1);
    let four = run(4);
    assert!(four > 3.3 * one, "4 devices {four} GB/s vs 1 device {one} GB/s");
}

#[test]
fn swq_is_shared_across_processes_without_locks() {
    // Two "processes" (interleaved submitters) share one SWQ; both make
    // progress and all data lands correctly.
    let mut rt = DsaRuntime::builder(Platform::spr()).device(presets::one_swq_one_engine()).build();
    let a_src = rt.alloc(8192, Location::local_dram());
    let a_dst = rt.alloc(8192, Location::local_dram());
    let b_src = rt.alloc(8192, Location::local_dram());
    let b_dst = rt.alloc(8192, Location::local_dram());
    rt.fill_pattern(&a_src, 0xAA);
    rt.fill_pattern(&b_src, 0xBB);
    let mut qa = AsyncQueue::new(8);
    let mut qb = AsyncQueue::new(8);
    for _ in 0..20 {
        qa.submit(&mut rt, Job::memcpy(&a_src, &a_dst)).unwrap();
        qb.submit(&mut rt, Job::memcpy(&b_src, &b_dst)).unwrap();
    }
    qa.drain(&mut rt);
    qb.drain(&mut rt);
    assert!(rt.read(&a_dst).unwrap().iter().all(|&x| x == 0xAA));
    assert!(rt.read(&b_dst).unwrap().iter().all(|&x| x == 0xBB));
    assert_eq!(rt.device(0).telemetry().descriptors, 40);
}

#[test]
fn umwait_saves_cycles_interrupt_frees_core() {
    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(1 << 20, Location::local_dram());
    let dst = rt.alloc(1 << 20, Location::local_dram());
    let spin = Job::memcpy(&src, &dst).wait_method(WaitMethod::SpinPoll).execute(&mut rt).unwrap();
    let umwait = Job::memcpy(&src, &dst).wait_method(WaitMethod::Umwait).execute(&mut rt).unwrap();
    let intr = Job::memcpy(&src, &dst).wait_method(WaitMethod::Interrupt).execute(&mut rt).unwrap();
    assert_eq!(spin.idle_wait.as_ps(), 0);
    assert!(umwait.idle_wait.as_ns_f64() > 0.9 * umwait.phases.wait.as_ns_f64());
    // Interrupts are slowest to observe but fully idle.
    assert!(intr.phases.wait > umwait.phases.wait);
}

#[test]
fn accel_config_to_runtime_flow() {
    // Configure like the paper's Fig. 9 "DWQ: 4" and use every WQ.
    let mut cfg = AccelConfig::builder();
    for _ in 0..4 {
        cfg = cfg.group(1).dedicated_wq(32);
    }
    let mut rt = DsaRuntime::builder(Platform::spr()).device(cfg.build().unwrap()).build();
    assert_eq!(rt.device(0).wq_count(), 4);
    let src = rt.alloc(4096, Location::local_dram());
    let dst = rt.alloc(4096, Location::local_dram());
    for wq in 0..4 {
        let r = Job::memcpy(&src, &dst).on_wq(wq).execute(&mut rt).unwrap();
        assert!(r.record.status.is_ok());
    }
}

#[test]
fn icx_platform_runs_the_same_stack() {
    let mut rt = DsaRuntime::builder(Platform::icx()).build();
    let src = rt.alloc(65536, Location::local_dram());
    let dst = rt.alloc(65536, Location::local_dram());
    rt.fill_random(&src);
    let r = Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
    assert!(r.record.status.is_ok());
    assert_eq!(rt.read(&src).unwrap(), rt.read(&dst).unwrap());
    // And the software model knows DDR4 is slower than DDR5.
    let spr = DsaRuntime::spr_default();
    let d = Location::local_dram();
    assert!(
        rt.cpu_time(OpKind::Memcpy, 1 << 20, d, d) > spr.cpu_time(OpKind::Memcpy, 1 << 20, d, d)
    );
}

#[test]
fn completion_record_lands_in_memory_for_polling() {
    // The real synchronization mechanism: software allocates a completion
    // record, points the descriptor at it, and polls/UMONITORs the status
    // byte — all observable through simulated memory.
    use dsa_device::descriptor::{CompletionRecord, Descriptor};

    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(4096, Location::local_dram());
    let dst = rt.alloc(4096, Location::local_dram());
    let record_buf = rt.alloc(32, Location::Llc); // records are LLC-directed
    rt.fill_random(&src);

    // Status byte starts 0 (not complete).
    assert_eq!(rt.memory().read(record_buf.addr(), 1).unwrap()[0], 0);

    let desc =
        Descriptor::memmove(src.addr(), dst.addr(), 4096).with_completion_addr(record_buf.addr());
    let report = Job::from_descriptor(desc).execute(&mut rt).unwrap();
    assert!(report.record.status.is_ok());

    // The record is now visible in memory and parses back.
    let raw: [u8; 32] = rt.memory().read(record_buf.addr(), 32).unwrap().try_into().unwrap();
    assert_ne!(raw[0], 0, "status byte flipped — this is what UMONITOR arms on");
    let parsed = CompletionRecord::from_bytes(&raw).expect("valid record");
    assert_eq!(parsed.status, Status::Success);
    assert_eq!(parsed.bytes_completed, 4096);
}

#[test]
fn dif_strip_and_update_through_the_job_api() {
    use dsa_ops::dif::{dif_check, DifBlockSize, DifConfig};

    let mut rt = DsaRuntime::spr_default();
    let cfg = DifConfig { block: DifBlockSize::B512, app_tag: 0x11, starting_ref_tag: 5 };
    let raw = rt.alloc(4 * 512, Location::local_dram());
    let protected = rt.alloc(4 * 520, Location::local_dram());
    rt.fill_random(&raw);
    Job::dif_insert(&raw, &protected, cfg).execute(&mut rt).unwrap();

    // Strip back to raw data.
    let stripped = rt.alloc(4 * 512, Location::local_dram());
    let r = Job::dif_strip(&protected, &stripped, cfg).execute(&mut rt).unwrap();
    assert_eq!(r.record.status, Status::Success);
    assert_eq!(rt.read(&stripped).unwrap(), rt.read(&raw).unwrap());

    // Update in place (same tags in this model's device path).
    let updated = rt.alloc(4 * 520, Location::local_dram());
    let r = Job::dif_update(&protected, &updated, cfg).execute(&mut rt).unwrap();
    assert_eq!(r.record.status, Status::Success);
    let out = rt.read(&updated).unwrap().to_vec();
    dif_check(&cfg, &out).expect("updated blocks verify");
}
