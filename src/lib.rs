//! # dsa-repro — umbrella crate
//!
//! Re-exports the workspace crates that reproduce the ASPLOS'24 paper
//! *"A Quantitative Analysis and Guideline of Data Streaming Accelerator in
//! Intel 4th Gen Xeon Scalable Processors"*. See `README.md` for the tour and
//! `DESIGN.md` for the system inventory.
//!
//! ```
//! use dsa_repro::prelude::*;
//!
//! // Build an SPR-like platform with one DSA instance and copy 64 KiB.
//! let mut rt = DsaRuntime::spr_default();
//! let src = rt.alloc(65536, Location::local_dram());
//! let dst = rt.alloc(65536, Location::local_dram());
//! rt.fill_pattern(&src, 0xA5);
//! let report = Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
//! assert!(report.record.status.is_ok());
//! assert!(report.elapsed().as_ns_f64() > 0.0);
//! ```

pub use dsa_bench as bench;
pub use dsa_core as core;
pub use dsa_ctl as ctl;
pub use dsa_device as device;
pub use dsa_mem as mem;
pub use dsa_ops as ops;
pub use dsa_sim as sim;
pub use dsa_svc as svc;
pub use dsa_workloads as workloads;

/// Convenient glob-import surface used by the examples.
///
/// One `use dsa_repro::prelude::*;` brings in the runtime and job API
/// ([`DsaRuntime`](dsa_core::runtime::DsaRuntime), `Job`, `Batch`,
/// `AsyncQueue`), backend selection (`Engine`, `DispatchPolicy`,
/// `Dispatcher`), configuration (`AccelConfig`, the [`presets`] module,
/// `DeviceConfig`/`DeviceCaps`), the guideline advisors ([`guidelines`]),
/// operation kinds ([`OpKind`]), the service layer (`DsaService`,
/// `TenantSpec`, …), the plan/SLO objects and the `dsa-ctl` control
/// plane (`Plan`, `PlanSpec`, `SloTarget`, `Governor`), measurement
/// helpers (`Measure`/`Mode`), and the simulated clock
/// (`SimTime`/`SimDuration`).
pub mod prelude {
    pub use dsa_bench::{Measure, Mode, Sweep};
    pub use dsa_core::config::presets;
    pub use dsa_core::guidelines;
    pub use dsa_core::prelude::*;
    pub use dsa_ctl::prelude::{
        ControlReport, ControllerConfig, Decision, GovernedFleet, Governor,
    };
    pub use dsa_device::config::{DeviceCaps, DeviceConfig};
    pub use dsa_mem::buffer::Location;
    pub use dsa_ops::OpKind;
    pub use dsa_sim::{SimDuration, SimTime};
    pub use dsa_svc::prelude::{
        Arrival, DsaService, Fleet, FleetConfig, FleetReport, JobOutcome, Plan, PlanSpec,
        PoolPolicy, QosClass, ServiceBuilder, ServiceConfig, ServiceReport, ShardAssignment,
        ShardPlan, ShardReport, SloTarget, SloViolation, TenantProfile, TenantSpec,
        TransitionCosts,
    };
}
