//! A `dsa-perf-micros`-style command-line microbenchmark driver — the tool
//! the paper uses for its §4 characterization (`intel/dsa-perf-micros`),
//! rebuilt against the simulated platform.
//!
//! ```text
//! cargo run --release --bin dsa-perf-micros -- \
//!     --op memcpy --size 65536 --qd 32 --iters 200 --engines 4
//! ```
//!
//! Run with `--help` for all options.

use dsa_bench::measure::{Measure, Mode};
use dsa_core::config::AccelConfig;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::{Location, PageSize};
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;

#[derive(Debug)]
struct Options {
    op: OpKind,
    size: u64,
    batch: u32,
    qd: usize,
    iters: u64,
    src: Location,
    dst: Location,
    cache_control: bool,
    devices: usize,
    engines: u32,
    wq_size: u32,
    shared_wq: bool,
    huge_pages: bool,
    platform: &'static str,
    compare_cpu: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    critpath: bool,
    folded_out: Option<String>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            op: OpKind::Memcpy,
            size: 4096,
            batch: 1,
            qd: 0,
            iters: 100,
            src: Location::local_dram(),
            dst: Location::local_dram(),
            cache_control: false,
            devices: 1,
            engines: 1,
            wq_size: 32,
            shared_wq: false,
            huge_pages: false,
            platform: "spr",
            compare_cpu: true,
            trace_out: None,
            metrics_out: None,
            critpath: false,
            folded_out: None,
        }
    }
}

const HELP: &str = "\
dsa-perf-micros (simulated) — microbenchmark driver for the DSA model

OPTIONS:
    --op <name>        memcpy|dualcast|fill|nt-fill|compare|compare-pattern|
                       crc32|copy-crc|dif-insert|dif-check (default memcpy)
    --size <bytes>     transfer size per descriptor (default 4096)
    --batch <n>        descriptors per batch descriptor (default 1)
    --qd <n>           async queue depth; 0 = synchronous (default 0)
    --iters <n>        iterations (default 100)
    --src <loc>        d=local DRAM, r=remote DRAM, c=CXL, l=LLC (default d)
    --dst <loc>        as --src
    --cache-control    steer destination writes to the LLC (CC=1)
    --devices <n>      DSA instances, round-robin (default 1)
    --engines <n>      engines in the group (default 1)
    --wq-size <n>      WQ entries (default 32)
    --swq              use a shared WQ (ENQCMD) instead of dedicated
    --huge-pages       map buffers with 2 MiB pages
    --platform <p>     spr|icx (default spr)
    --no-cpu           skip the software-baseline comparison
    --trace <file>     write a Chrome trace-event JSON (Perfetto /
                       chrome://tracing) of descriptor lifecycle spans
    --metrics <file>   write the metrics registry as CSV (counters,
                       gauges, histogram percentiles, time series)
    --critpath         print the attributed critical-path latency table
                       (per-segment sums, shares, p50/p99/p999, dominant
                       bottleneck; segments sum exactly to end-to-end)
    --folded <file>    write flamegraph folded stacks of the attributed
                       critical paths (feed to flamegraph.pl)
    --help             this text
";

fn parse_loc(s: &str) -> Result<Location, String> {
    match s {
        "d" | "dram" => Ok(Location::local_dram()),
        "r" | "remote" => Ok(Location::remote_dram()),
        "c" | "cxl" => Ok(Location::Cxl),
        "l" | "llc" => Ok(Location::Llc),
        other => Err(format!("unknown location '{other}' (use d|r|c|l)")),
    }
}

fn parse_op(s: &str) -> Result<OpKind, String> {
    Ok(match s {
        "memcpy" | "copy" => OpKind::Memcpy,
        "dualcast" => OpKind::Dualcast,
        "fill" => OpKind::Fill,
        "nt-fill" => OpKind::NtFill,
        "compare" => OpKind::Compare,
        "compare-pattern" => OpKind::ComparePattern,
        "crc32" => OpKind::Crc32,
        "copy-crc" => OpKind::CopyCrc,
        "dif-insert" => OpKind::DifInsert,
        "dif-check" => OpKind::DifCheck,
        other => return Err(format!("unknown op '{other}'")),
    })
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--op" => o.op = parse_op(val("--op")?)?,
            "--size" => o.size = val("--size")?.parse().map_err(|e| format!("--size: {e}"))?,
            "--batch" => o.batch = val("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?,
            "--qd" => o.qd = val("--qd")?.parse().map_err(|e| format!("--qd: {e}"))?,
            "--iters" => o.iters = val("--iters")?.parse().map_err(|e| format!("--iters: {e}"))?,
            "--src" => o.src = parse_loc(val("--src")?)?,
            "--dst" => o.dst = parse_loc(val("--dst")?)?,
            "--cache-control" => o.cache_control = true,
            "--devices" => {
                o.devices = val("--devices")?.parse().map_err(|e| format!("--devices: {e}"))?
            }
            "--engines" => {
                o.engines = val("--engines")?.parse().map_err(|e| format!("--engines: {e}"))?
            }
            "--wq-size" => {
                o.wq_size = val("--wq-size")?.parse().map_err(|e| format!("--wq-size: {e}"))?
            }
            "--swq" => o.shared_wq = true,
            "--huge-pages" => o.huge_pages = true,
            "--platform" => {
                o.platform = match val("--platform")?.as_str() {
                    "spr" => "spr",
                    "icx" => "icx",
                    other => return Err(format!("unknown platform '{other}'")),
                }
            }
            "--no-cpu" => o.compare_cpu = false,
            "--trace" => o.trace_out = Some(val("--trace")?.clone()),
            "--metrics" => o.metrics_out = Some(val("--metrics")?.clone()),
            "--critpath" => o.critpath = true,
            "--folded" => o.folded_out = Some(val("--folded")?.clone()),
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    if o.engines == 0 || o.engines > 4 {
        return Err("--engines must be 1..=4".into());
    }
    if o.batch == 0 {
        return Err("--batch must be >= 1".into());
    }
    Ok(o)
}

fn build_runtime(o: &Options) -> Result<DsaRuntime, String> {
    let platform = if o.platform == "icx" { Platform::icx() } else { Platform::spr() };
    let mut builder = DsaRuntime::builder(platform);
    for _ in 0..o.devices.max(1) {
        let cfg = AccelConfig::builder().group(o.engines);
        let cfg = if o.shared_wq { cfg.shared_wq(o.wq_size) } else { cfg.dedicated_wq(o.wq_size) };
        builder = builder.device(cfg.build().map_err(|e| e.to_string())?);
    }
    if o.huge_pages {
        builder = builder.page_size(PageSize::Huge2M);
    }
    Ok(builder.build())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };

    let mode = match (o.qd, o.batch) {
        (0, 1) => Mode::Sync,
        (0, bs) => Mode::SyncBatch { bs },
        (qd, 1) => Mode::Async { qd },
        (qd, bs) => Mode::AsyncBatch { bs, window: (qd / bs as usize).max(1) },
    };
    let mut rt = match build_runtime(&o) {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let hub =
        if o.trace_out.is_some() || o.metrics_out.is_some() || o.critpath || o.folded_out.is_some()
        {
            Some(rt.trace())
        } else {
            None
        };
    let m = Measure::new(o.op, o.size)
        .iters(o.iters)
        .mode(mode)
        .locations(o.src, o.dst)
        .cache_control(o.cache_control)
        .devices(o.devices);
    let result = match m.try_run(&mut rt) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("measurement failed: {e}");
            std::process::exit(1);
        }
    };

    println!("platform:        {}", rt.platform().name);
    println!(
        "configuration:   {} device(s) x {} engine(s), {} {}-entry WQ, {:?}",
        o.devices,
        o.engines,
        if o.shared_wq { "shared" } else { "dedicated" },
        o.wq_size,
        mode,
    );
    println!(
        "workload:        {:?} x {} bytes [{} -> {}]{}",
        o.op,
        o.size,
        o.src,
        o.dst,
        if o.cache_control { " (CC=1)" } else { "" }
    );
    println!("throughput:      {:.2} GB/s", result.gbps);
    println!("avg latency:     {:.3} us", result.avg_latency.as_us_f64());
    if o.compare_cpu {
        let cpu = m.cpu_gbps(&rt);
        println!("software:        {:.2} GB/s on one core", cpu);
        println!("speedup:         {:.2}x", result.gbps / cpu);
    }
    let t = rt.device(0).telemetry();
    println!(
        "telemetry[0]:    {} descriptors, {} batches, {} faults, {:.1} MiB in, {:.1} MiB out",
        t.descriptors,
        t.batches,
        t.page_faults,
        t.bytes_read as f64 / (1 << 20) as f64,
        t.bytes_written as f64 / (1 << 20) as f64,
    );
    if let Some(hub) = &hub {
        if let Some(path) = &o.trace_out {
            if let Err(e) = std::fs::write(path, dsa_telemetry::chrome_trace_json(hub)) {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            }
            println!("trace:           {path} ({} events)", hub.event_count());
        }
        if let Some(path) = &o.metrics_out {
            if let Err(e) = std::fs::write(path, dsa_telemetry::metrics_csv(hub)) {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            }
            println!("metrics:         {path}");
        }
        if let Some(path) = &o.folded_out {
            if let Err(e) = std::fs::write(path, dsa_telemetry::folded_stacks(hub)) {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            }
            println!("folded stacks:   {path} ({} traces)", hub.trace_count());
        }
        if o.critpath {
            print!("{}", critpath_report(hub));
        }
        if o.trace_out.is_some() || o.metrics_out.is_some() {
            print!("{}", dsa_telemetry::pcm_dashboard(hub));
        }
    }
}

/// Renders the attributed critical-path table from the hub's job traces.
fn critpath_report(hub: &dsa_telemetry::Hub) -> String {
    use std::fmt::Write as _;

    let us = |ps: u128| ps as f64 / 1e6;
    let pct_us = |p: Option<dsa_sim::time::SimDuration>| match p {
        Some(d) => format!("{:.3}", d.as_us_f64()),
        None => "-".to_string(),
    };
    let profile = hub.critpath_profile();
    let mut out = String::new();
    let Some(b) = profile.overall() else {
        out.push_str("critical path:   no completed jobs traced\n");
        return out;
    };
    let _ = writeln!(out, "critical-path attribution ({} jobs):", b.count);
    let _ = writeln!(
        out,
        "{:>18} {:>14} {:>7} {:>10} {:>10} {:>10}",
        "segment", "sum(us)", "share", "p50(us)", "p99(us)", "p999(us)"
    );
    for s in &b.segments {
        let _ = writeln!(
            out,
            "{:>18} {:>14.3} {:>6.1}% {:>10} {:>10} {:>10}",
            s.kind.name(),
            us(s.sum_ps),
            s.share * 100.0,
            pct_us(s.p50),
            pct_us(s.p99),
            pct_us(s.p999),
        );
    }
    let _ = writeln!(out, "{:>18} {:>14.3}", "attributed sum", us(b.attributed_ps()));
    let _ = writeln!(
        out,
        "{:>18} {:>14.3}  (exact match: {})",
        "end-to-end",
        us(b.total_ps),
        b.attributed_ps() == b.total_ps,
    );
    let _ = writeln!(out, "dominant bottleneck: {}", b.dominant().name());
    // Per-cell dominants, when more than one (tenant, device, WQ) cell ran.
    let keys = profile.keys();
    if keys.len() > 1 {
        for key in keys {
            if let Some(cell) = profile.breakdown(key) {
                let (tenant, device, wq) = key;
                let tenant = tenant.map(|t| t.to_string()).unwrap_or_else(|| "-".to_string());
                let _ = writeln!(
                    out,
                    "  tenant {tenant} dsa{device}/wq{wq}: {} jobs, dominant {}, p99 {}us",
                    cell.count,
                    cell.dominant().name(),
                    pct_us(cell.total_p99),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_parse() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.op, OpKind::Memcpy);
        assert_eq!(o.size, 4096);
        assert_eq!(o.qd, 0);
        assert!(!o.shared_wq);
    }

    #[test]
    fn full_flag_set_parses() {
        let o = parse_args(&argv(
            "--op crc32 --size 65536 --batch 8 --qd 32 --iters 7 --src c --dst l \
             --cache-control --devices 2 --engines 4 --wq-size 64 --swq --huge-pages \
             --platform icx --no-cpu",
        ))
        .unwrap();
        assert_eq!(o.op, OpKind::Crc32);
        assert_eq!(o.size, 65536);
        assert_eq!(o.batch, 8);
        assert_eq!(o.qd, 32);
        assert_eq!(o.iters, 7);
        assert_eq!(o.src, Location::Cxl);
        assert_eq!(o.dst, Location::Llc);
        assert!(o.cache_control && o.shared_wq && o.huge_pages && !o.compare_cpu);
        assert_eq!((o.devices, o.engines, o.wq_size), (2, 4, 64));
        assert_eq!(o.platform, "icx");
    }

    #[test]
    fn trace_and_metrics_flags_parse() {
        let o = parse_args(&argv("--trace out.json --metrics out.csv")).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("out.json"));
        assert_eq!(o.metrics_out.as_deref(), Some("out.csv"));
        let o = parse_args(&[]).unwrap();
        assert!(o.trace_out.is_none() && o.metrics_out.is_none());
        assert!(parse_args(&argv("--trace")).is_err(), "missing value");
        assert!(parse_args(&argv("--metrics")).is_err(), "missing value");
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(parse_args(&argv("--op warp-drive")).is_err());
        assert!(parse_args(&argv("--src q")).is_err());
        assert!(parse_args(&argv("--engines 9")).is_err());
        assert!(parse_args(&argv("--batch 0")).is_err());
        assert!(parse_args(&argv("--size")).is_err(), "missing value");
        assert!(parse_args(&argv("--bogus")).is_err());
        assert!(parse_args(&argv("--platform mars")).is_err());
    }

    #[test]
    fn runtime_builds_from_options() {
        let o = parse_args(&argv("--devices 2 --engines 2 --wq-size 16 --swq")).unwrap();
        let rt = build_runtime(&o).unwrap();
        assert_eq!(rt.device_count(), 2);
    }

    #[test]
    fn critpath_and_folded_flags_parse() {
        let o = parse_args(&argv("--critpath --folded out.folded")).unwrap();
        assert!(o.critpath);
        assert_eq!(o.folded_out.as_deref(), Some("out.folded"));
        assert!(!parse_args(&[]).unwrap().critpath);
        assert!(parse_args(&argv("--folded")).is_err(), "missing value");
    }

    #[test]
    fn critpath_report_sums_segments_to_end_to_end() {
        // fig07-shaped: saturating async queue on a multi-engine group.
        let o = parse_args(&argv("--qd 16 --engines 4 --iters 50 --size 65536")).unwrap();
        let mut rt = build_runtime(&o).unwrap();
        let hub = rt.trace();
        Measure::new(o.op, o.size)
            .iters(o.iters)
            .mode(Mode::Async { qd: o.qd })
            .try_run(&mut rt)
            .unwrap();
        assert_eq!(hub.trace_count(), 50);
        let report = critpath_report(&hub);
        assert!(report.contains("critical-path attribution (50 jobs)"), "{report}");
        for name in ["software_prep", "wq_wait", "pe_service", "memory_hop", "completion_write"] {
            assert!(report.contains(name), "missing {name} in {report}");
        }
        assert!(report.contains("(exact match: true)"), "{report}");
        assert!(report.contains("dominant bottleneck:"), "{report}");
    }

    #[test]
    fn critpath_report_handles_empty_hub() {
        let hub = dsa_telemetry::Hub::new();
        assert!(critpath_report(&hub).contains("no completed jobs traced"));
    }
}
