//! Property-style tests for the functional operations: round-trip and
//! consistency laws over arbitrary data.
//!
//! Randomized inputs come from the in-repo deterministic [`SplitMix64`]
//! generator so the suite runs offline with no external test-harness
//! dependency; every case is reproducible from the fixed seeds below.

use dsa_ops::crc32::{Crc32Ieee, Crc32c};
use dsa_ops::delta::{delta_apply, delta_create};
use dsa_ops::dif::{dif_check, dif_insert, dif_strip, dif_update, DifBlockSize, DifConfig};
use dsa_ops::memops;
use dsa_sim::rng::SplitMix64;

const CASES: usize = 48;

fn random_bytes(rng: &mut SplitMix64, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn crc32c_incremental_equals_oneshot() {
    let mut rng = SplitMix64::new(0x0B5_0001);
    for _ in 0..CASES {
        let n_data = rng.next_below(4096) as usize;
        let data = random_bytes(&mut rng, n_data);
        let split = (rng.next_below(4096) as usize).min(data.len());
        let oneshot = Crc32c::checksum(&data);
        let mut inc = Crc32c::new();
        inc.update(&data[..split]);
        inc.update(&data[split..]);
        assert_eq!(inc.finish(), oneshot);
        // Same property for the IEEE polynomial.
        let oneshot = Crc32Ieee::checksum(&data);
        let mut inc = Crc32Ieee::new();
        inc.update(&data[..split]);
        inc.update(&data[split..]);
        assert_eq!(inc.finish(), oneshot);
    }
}

#[test]
fn crc32c_seed_chaining() {
    let mut rng = SplitMix64::new(0x0B5_0002);
    for _ in 0..CASES {
        let n_a = 1 + rng.next_below(2047) as usize;
        let a = random_bytes(&mut rng, n_a);
        let n_b = 1 + rng.next_below(2047) as usize;
        let b = random_bytes(&mut rng, n_b);
        let mut whole = Crc32c::new();
        whole.update(&a);
        whole.update(&b);
        let first = Crc32c::checksum(&a);
        let mut chained = Crc32c::with_seed(first);
        chained.update(&b);
        assert_eq!(chained.finish(), whole.finish());
    }
}

#[test]
fn crc_detects_any_single_bit_flip() {
    let mut rng = SplitMix64::new(0x0B5_0003);
    for _ in 0..CASES {
        let n_data = 1 + rng.next_below(1023) as usize;
        let data = random_bytes(&mut rng, n_data);
        let i = rng.next_below(data.len() as u64) as usize;
        let bit = rng.next_below(8) as u8;
        let mut corrupted = data.clone();
        corrupted[i] ^= 1 << bit;
        assert_ne!(Crc32c::checksum(&data), Crc32c::checksum(&corrupted));
    }
}

#[test]
fn delta_roundtrip_arbitrary_mutations() {
    let mut rng = SplitMix64::new(0x0B5_0004);
    for _ in 0..CASES {
        let n_base = 1 + rng.next_below(63) as usize;
        let base = random_bytes(&mut rng, n_base);
        let original: Vec<u8> = base.iter().copied().cycle().take(base.len() * 8).collect();
        let mut modified = original.clone();
        for _ in 0..rng.next_below(32) {
            let i = rng.next_below(modified.len() as u64) as usize;
            modified[i] = rng.next_u64() as u8;
        }
        let record = delta_create(&original, &modified, original.len() / 8 * 10).unwrap();
        let mut patched = original.clone();
        delta_apply(&record, &mut patched).unwrap();
        // Record is minimal: one entry per differing 8-byte unit.
        let diff_units = original.chunks(8).zip(modified.chunks(8)).filter(|(a, b)| a != b).count();
        assert_eq!(record.entries(), diff_units);
        assert_eq!(patched, modified);
    }
}

#[test]
fn delta_record_size_field_is_exact() {
    let mut rng = SplitMix64::new(0x0B5_0005);
    for _ in 0..CASES {
        let len_units = 1 + rng.next_below(63) as usize;
        let original = vec![0u8; len_units * 8];
        let mut modified = original.clone();
        for _ in 0..rng.next_below(16) {
            let i = rng.next_below(len_units as u64) as usize;
            modified[i * 8] = 0xFF;
        }
        let record = delta_create(&original, &modified, len_units * 10).unwrap();
        assert_eq!(record.size_bytes(), record.entries() * 10);
    }
}

#[test]
fn dif_roundtrip_all_block_sizes() {
    let mut rng = SplitMix64::new(0x0B5_0006);
    for _ in 0..12 {
        let blocks = 1 + rng.next_below(3) as usize;
        let app_tag = rng.next_u64() as u16;
        let ref_tag = rng.next_u64() as u32;
        for bs in [DifBlockSize::B512, DifBlockSize::B520, DifBlockSize::B4096] {
            let cfg = DifConfig { block: bs, app_tag, starting_ref_tag: ref_tag };
            let data = random_bytes(&mut rng, bs.bytes() * blocks);
            let protected = dif_insert(&cfg, &data).unwrap();
            assert_eq!(protected.len(), data.len() + blocks * 8);
            dif_check(&cfg, &protected).unwrap();
            let stripped = dif_strip(&cfg, &protected).unwrap();
            assert_eq!(&stripped, &data);
            // Update to new tags verifies under the new config only.
            let dst = DifConfig {
                block: bs,
                app_tag: app_tag.wrapping_add(1),
                starting_ref_tag: ref_tag.wrapping_add(7),
            };
            let updated = dif_update(&cfg, &dst, &protected).unwrap();
            dif_check(&dst, &updated).unwrap();
        }
    }
}

#[test]
fn dif_detects_any_payload_corruption() {
    let mut rng = SplitMix64::new(0x0B5_0007);
    for _ in 0..CASES {
        let block_data = random_bytes(&mut rng, 512);
        let cfg = DifConfig::new(DifBlockSize::B512);
        let mut protected = dif_insert(&cfg, &block_data).unwrap();
        let i = rng.next_below(512) as usize; // corrupt payload, not the PI
        protected[i] ^= 1 << rng.next_below(8);
        assert!(dif_check(&cfg, &protected).is_err());
    }
}

#[test]
fn fill_then_compare_pattern_always_matches() {
    let mut rng = SplitMix64::new(0x0B5_0008);
    for _ in 0..CASES {
        let len = rng.next_below(512) as usize;
        let pattern = rng.next_u64();
        let mut buf = vec![0u8; len];
        memops::fill(&mut buf, pattern);
        assert_eq!(memops::compare_pattern(&buf, pattern), None);
    }
}

#[test]
fn compare_agrees_with_std() {
    let mut rng = SplitMix64::new(0x0B5_0009);
    for _ in 0..CASES {
        let n_a = rng.next_below(512) as usize;
        let a = random_bytes(&mut rng, n_a);
        // Derive b from a with a possible mutation.
        let b_seed = rng.next_u64();
        let mut b = a.clone();
        if !b.is_empty() && b_seed.is_multiple_of(3) {
            let i = (b_seed as usize / 3) % b.len();
            b[i] = b[i].wrapping_add(1);
        }
        let expected = a.iter().zip(&b).position(|(x, y)| x != y);
        assert_eq!(memops::compare(&a, &b), expected);
    }
}

#[test]
fn dualcast_produces_identical_copies() {
    let mut rng = SplitMix64::new(0x0B5_000A);
    for _ in 0..CASES {
        let n_src = rng.next_below(512) as usize;
        let src = random_bytes(&mut rng, n_src);
        let mut d1 = vec![0u8; src.len()];
        let mut d2 = vec![0xFFu8; src.len()];
        memops::dualcast(&src, &mut d1, &mut d2);
        assert_eq!(&d1, &src);
        assert_eq!(&d2, &src);
    }
}
