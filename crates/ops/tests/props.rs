//! Property tests for the functional operations: round-trip and
//! consistency laws over arbitrary data.

use dsa_ops::crc32::{Crc32Ieee, Crc32c};
use dsa_ops::delta::{delta_apply, delta_create};
use dsa_ops::dif::{dif_check, dif_insert, dif_strip, dif_update, DifBlockSize, DifConfig};
use dsa_ops::memops;
use proptest::prelude::*;

proptest! {
    #[test]
    fn crc32c_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        split in 0usize..4096
    ) {
        let split = split.min(data.len());
        let oneshot = Crc32c::checksum(&data);
        let mut inc = Crc32c::new();
        inc.update(&data[..split]);
        inc.update(&data[split..]);
        prop_assert_eq!(inc.finish(), oneshot);
        // Same property for the IEEE polynomial.
        let oneshot = Crc32Ieee::checksum(&data);
        let mut inc = Crc32Ieee::new();
        inc.update(&data[..split]);
        inc.update(&data[split..]);
        prop_assert_eq!(inc.finish(), oneshot);
    }

    #[test]
    fn crc32c_seed_chaining(
        a in prop::collection::vec(any::<u8>(), 1..2048),
        b in prop::collection::vec(any::<u8>(), 1..2048)
    ) {
        let mut whole = Crc32c::new();
        whole.update(&a);
        whole.update(&b);
        let first = Crc32c::checksum(&a);
        let mut chained = Crc32c::with_seed(first);
        chained.update(&b);
        prop_assert_eq!(chained.finish(), whole.finish());
    }

    #[test]
    fn crc_detects_any_single_bit_flip(
        data in prop::collection::vec(any::<u8>(), 1..1024),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8
    ) {
        let mut corrupted = data.clone();
        let i = pos.index(data.len());
        corrupted[i] ^= 1 << bit;
        prop_assert_ne!(Crc32c::checksum(&data), Crc32c::checksum(&corrupted));
    }

    #[test]
    fn delta_roundtrip_arbitrary_mutations(
        base in prop::collection::vec(any::<u8>(), 1..64usize),
        mutations in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 0..32)
    ) {
        let original: Vec<u8> = base.iter().copied().cycle().take(base.len() * 8).collect();
        let mut modified = original.clone();
        for (idx, val) in &mutations {
            let i = idx.index(modified.len());
            modified[i] = *val;
        }
        let record = delta_create(&original, &modified, original.len() / 8 * 10).unwrap();
        let mut patched = original.clone();
        delta_apply(&record, &mut patched).unwrap();
        // Record is minimal: one entry per differing 8-byte unit.
        let diff_units = original
            .chunks(8)
            .zip(modified.chunks(8))
            .filter(|(a, b)| a != b)
            .count();
        prop_assert_eq!(record.entries(), diff_units);
        prop_assert_eq!(patched, modified);
    }

    #[test]
    fn delta_record_size_field_is_exact(
        len_units in 1usize..64,
        flips in prop::collection::vec(any::<prop::sample::Index>(), 0..16)
    ) {
        let original = vec![0u8; len_units * 8];
        let mut modified = original.clone();
        for f in &flips {
            let i = f.index(len_units);
            modified[i * 8] = 0xFF;
        }
        let record = delta_create(&original, &modified, len_units * 10).unwrap();
        prop_assert_eq!(record.size_bytes(), record.entries() * 10);
    }

    #[test]
    fn dif_roundtrip_all_block_sizes(
        blocks in 1usize..4,
        seed in any::<u64>(),
        app_tag in any::<u16>(),
        ref_tag in any::<u32>()
    ) {
        for bs in [DifBlockSize::B512, DifBlockSize::B520, DifBlockSize::B4096] {
            let cfg = DifConfig { block: bs, app_tag, starting_ref_tag: ref_tag };
            let mut data = vec![0u8; bs.bytes() * blocks];
            let mut x = seed | 1;
            for b in data.iter_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (x >> 33) as u8;
            }
            let protected = dif_insert(&cfg, &data).unwrap();
            prop_assert_eq!(protected.len(), data.len() + blocks * 8);
            dif_check(&cfg, &protected).unwrap();
            let stripped = dif_strip(&cfg, &protected).unwrap();
            prop_assert_eq!(&stripped, &data);
            // Update to new tags verifies under the new config only.
            let dst = DifConfig { block: bs, app_tag: app_tag.wrapping_add(1), starting_ref_tag: ref_tag.wrapping_add(7) };
            let updated = dif_update(&cfg, &dst, &protected).unwrap();
            dif_check(&dst, &updated).unwrap();
        }
    }

    #[test]
    fn dif_detects_any_payload_corruption(
        block_data in prop::collection::vec(any::<u8>(), 512..513),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8
    ) {
        let cfg = DifConfig::new(DifBlockSize::B512);
        let mut protected = dif_insert(&cfg, &block_data).unwrap();
        let i = pos.index(512); // corrupt payload, not the PI
        protected[i] ^= 1 << bit;
        prop_assert!(dif_check(&cfg, &protected).is_err());
    }

    #[test]
    fn fill_then_compare_pattern_always_matches(
        len in 0usize..512,
        pattern in any::<u64>()
    ) {
        let mut buf = vec![0u8; len];
        memops::fill(&mut buf, pattern);
        prop_assert_eq!(memops::compare_pattern(&buf, pattern), None);
    }

    #[test]
    fn compare_agrees_with_std(
        a in prop::collection::vec(any::<u8>(), 0..512),
        b_seed in any::<u64>()
    ) {
        // Derive b from a with a possible mutation.
        let mut b = a.clone();
        if !b.is_empty() && b_seed % 3 == 0 {
            let i = (b_seed as usize / 3) % b.len();
            b[i] = b[i].wrapping_add(1);
        }
        let expected = a.iter().zip(&b).position(|(x, y)| x != y);
        prop_assert_eq!(memops::compare(&a, &b), expected);
    }

    #[test]
    fn dualcast_produces_identical_copies(src in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut d1 = vec![0u8; src.len()];
        let mut d2 = vec![0xFFu8; src.len()];
        memops::dualcast(&src, &mut d1, &mut d2);
        prop_assert_eq!(&d1, &src);
        prop_assert_eq!(&d2, &src);
    }
}
