//! CRC32 checksums.
//!
//! DSA's CRC Generation operation computes CRC32-C (Castagnoli polynomial,
//! the iSCSI/storage CRC that `ISA-L` accelerates with `PCLMULQDQ` and SSE
//! `crc32` instructions). [`Crc32c`] is a table-driven slice-by-8
//! implementation with incremental update support, so the device model can
//! checksum streams chunk by chunk exactly like the hardware does.
//!
//! The classic IEEE 802.3 polynomial is provided as [`Crc32Ieee`] for
//! workloads (e.g. packet processing) that need it.

/// Reflected Castagnoli polynomial.
const POLY_C: u32 = 0x82F6_3B78;
/// Reflected IEEE 802.3 polynomial.
const POLY_IEEE: u32 = 0xEDB8_8320;

/// Builds the 8 slice-by-8 lookup tables for a reflected polynomial.
const fn build_tables(poly: u32) -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ poly } else { crc >> 1 };
            b += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES_C: [[u32; 256]; 8] = build_tables(POLY_C);
static TABLES_IEEE: [[u32; 256]; 8] = build_tables(POLY_IEEE);

fn update(tables: &[[u32; 256]; 8], mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = tables[7][(lo & 0xFF) as usize]
            ^ tables[6][((lo >> 8) & 0xFF) as usize]
            ^ tables[5][((lo >> 16) & 0xFF) as usize]
            ^ tables[4][(lo >> 24) as usize]
            ^ tables[3][(hi & 0xFF) as usize]
            ^ tables[2][((hi >> 8) & 0xFF) as usize]
            ^ tables[1][((hi >> 16) & 0xFF) as usize]
            ^ tables[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ tables[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Streaming CRC32-C (Castagnoli) state.
///
/// ```
/// use dsa_ops::crc32::Crc32c;
/// let mut crc = Crc32c::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xE306_9283); // standard check value
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Starts a checksum with the standard seed (all ones).
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Resumes from a previously [`finish`](Crc32c::finish)ed value —
    /// matches DSA's "CRC seed" descriptor field for chained descriptors.
    pub fn with_seed(seed: u32) -> Self {
        Self { state: !seed }
    }

    /// Absorbs more data.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update(&TABLES_C, self.state, data);
    }

    /// Produces the final checksum (the state stays reusable).
    pub fn finish(&self) -> u32 {
        !self.state
    }

    /// One-shot convenience.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut c = Self::new();
        c.update(data);
        c.finish()
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

/// Streaming CRC32 (IEEE 802.3) state; same interface as [`Crc32c`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crc32Ieee {
    state: u32,
}

impl Crc32Ieee {
    /// Starts a checksum with the standard seed (all ones).
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorbs more data.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update(&TABLES_IEEE, self.state, data);
    }

    /// Produces the final checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }

    /// One-shot convenience.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut c = Self::new();
        c.update(data);
        c.finish()
    }
}

impl Default for Crc32Ieee {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn castagnoli_check_value() {
        // From the CRC catalogue: CRC-32C("123456789") == 0xE3069283.
        assert_eq!(Crc32c::checksum(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn ieee_check_value() {
        // CRC-32("123456789") == 0xCBF43926.
        assert_eq!(Crc32Ieee::checksum(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(Crc32c::checksum(b""), 0);
        assert_eq!(Crc32Ieee::checksum(b""), 0);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + 3) as u8).collect();
        let oneshot = Crc32c::checksum(&data);
        for split in [1, 7, 8, 63, 500, 999] {
            let mut c = Crc32c::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn seed_chaining_matches_contiguous() {
        let data: Vec<u8> = (0..512u32).map(|i| (i ^ 0x5A) as u8).collect();
        let oneshot = Crc32c::checksum(&data);
        // Descriptor 1 checksums the first half; its result seeds
        // descriptor 2 — the DSA chained-CRC pattern.
        let first = {
            let mut c = Crc32c::new();
            c.update(&data[..256]);
            c.finish()
        };
        let mut second = Crc32c::with_seed(first);
        second.update(&data[256..]);
        assert_eq!(second.finish(), oneshot);
    }

    #[test]
    fn different_data_different_crc() {
        assert_ne!(Crc32c::checksum(b"hello"), Crc32c::checksum(b"hellp"));
        assert_ne!(Crc32c::checksum(b"hello"), Crc32Ieee::checksum(b"hello"));
    }

    #[test]
    fn single_bit_sensitivity() {
        let a = vec![0u8; 4096];
        let mut b = a.clone();
        b[4095] ^= 1;
        assert_ne!(Crc32c::checksum(&a), Crc32c::checksum(&b));
    }

    #[test]
    fn known_zero_block_crc32c() {
        // 32 zero bytes: CRC-32C == 0x8A9136AA (well-known vector used in
        // iSCSI conformance tests).
        assert_eq!(Crc32c::checksum(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn known_ff_block_crc32c() {
        // 32 x 0xFF: CRC-32C == 0x62a8ab43.
        assert_eq!(Crc32c::checksum(&[0xFFu8; 32]), 0x62A8_AB43);
    }
}
