//! Move/fill/compare operations (paper Table 1).
//!
//! These mirror the semantics of the DSA Memory Copy, Dualcast, Memory
//! Fill, Memory Compare and Compare Pattern operations, operating on plain
//! byte slices. The device model calls them when processing descriptors;
//! the CPU baselines call them directly.

/// Copies `src` into `dst` (Memory Copy).
///
/// # Panics
///
/// Panics if lengths differ — descriptors carry one transfer size.
pub fn copy(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "copy length mismatch");
    dst.copy_from_slice(src);
}

/// Copies `src` into both destinations (Dualcast).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dualcast(src: &[u8], dst1: &mut [u8], dst2: &mut [u8]) {
    assert_eq!(src.len(), dst1.len(), "dualcast dst1 length mismatch");
    assert_eq!(src.len(), dst2.len(), "dualcast dst2 length mismatch");
    dst1.copy_from_slice(src);
    dst2.copy_from_slice(src);
}

/// Fills `dst` with a repeating 8-byte little-endian `pattern`
/// (Memory Fill). The pattern repeats from the start of the buffer; a
/// trailing partial pattern is written for non-multiple lengths.
pub fn fill(dst: &mut [u8], pattern: u64) {
    let bytes = pattern.to_le_bytes();
    let mut chunks = dst.chunks_exact_mut(8);
    for c in &mut chunks {
        c.copy_from_slice(&bytes);
    }
    let rem = chunks.into_remainder();
    let n = rem.len();
    rem.copy_from_slice(&bytes[..n]);
}

/// Compares two buffers (Memory Compare); returns the byte offset of the
/// first difference, or `None` if equal.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn compare(a: &[u8], b: &[u8]) -> Option<usize> {
    assert_eq!(a.len(), b.len(), "compare length mismatch");
    a.iter().zip(b).position(|(x, y)| x != y)
}

/// Compares `buf` against a repeating 8-byte pattern (Compare Pattern);
/// returns the byte offset of the first mismatch, or `None` if it matches
/// throughout.
pub fn compare_pattern(buf: &[u8], pattern: u64) -> Option<usize> {
    let bytes = pattern.to_le_bytes();
    buf.iter().enumerate().position(|(i, &b)| b != bytes[i % 8])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_copies() {
        let src = [1u8, 2, 3, 4];
        let mut dst = [0u8; 4];
        copy(&src, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_length_checked() {
        copy(&[1, 2], &mut [0u8; 3]);
    }

    #[test]
    fn dualcast_writes_both() {
        let src = [9u8; 16];
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        dualcast(&src, &mut a, &mut b);
        assert_eq!(a, src);
        assert_eq!(b, src);
    }

    #[test]
    fn fill_repeats_pattern() {
        let mut buf = [0u8; 20];
        fill(&mut buf, 0x0807_0605_0403_0201);
        assert_eq!(&buf[..8], &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(&buf[8..16], &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(&buf[16..], &[1, 2, 3, 4]); // partial tail
    }

    #[test]
    fn compare_finds_first_difference() {
        let a = [0u8, 1, 2, 3];
        let b = [0u8, 1, 9, 3];
        assert_eq!(compare(&a, &b), Some(2));
        assert_eq!(compare(&a, &a), None);
    }

    #[test]
    fn compare_pattern_positions() {
        let mut buf = [0u8; 24];
        fill(&mut buf, 0xABCD);
        assert_eq!(compare_pattern(&buf, 0xABCD), None);
        buf[17] ^= 1;
        assert_eq!(compare_pattern(&buf, 0xABCD), Some(17));
    }

    #[test]
    fn empty_buffers_are_trivially_equal() {
        assert_eq!(compare(&[], &[]), None);
        assert_eq!(compare_pattern(&[], 0), None);
        let mut empty: [u8; 0] = [];
        fill(&mut empty, 0xFF);
    }
}
