//! # dsa-ops — functional data-streaming operations
//!
//! Bit-exact implementations of every operation in Table 1 of the paper
//! (the DSA operation set), used by *both* sides of every experiment:
//!
//! * the device model executes them when it processes a descriptor, so
//!   offloaded work is real work (copies copy, CRCs check out, DIFs verify);
//! * the CPU baselines execute the same code, with calibrated software
//!   timing from [`swcost`] standing in for glibc/AVX-512/ISA-L kernels.
//!
//! | Paper op                      | Module                               |
//! |-------------------------------|--------------------------------------|
//! | Memory Copy / Dualcast        | [`memops`]                           |
//! | Memory Fill (8/16-B pattern)  | [`memops`]                           |
//! | Memory Compare / Compare Pattern | [`memops`]                        |
//! | CRC Generation (CRC32-C)      | [`crc32`]                            |
//! | DIF check/insert/strip/update | [`dif`]                              |
//! | Create/Apply Delta Record     | [`delta`]                            |
//! | Cache Flush                   | executed against the LLC model (see `dsa-device`) |
//!
//! ```
//! use dsa_ops::crc32::Crc32c;
//! use dsa_ops::delta::{delta_create, delta_apply};
//!
//! assert_eq!(Crc32c::checksum(b"123456789"), 0xE306_9283);
//!
//! let original = vec![0u8; 64];
//! let mut modified = original.clone();
//! modified[8] = 0xFF;
//! let record = delta_create(&original, &modified, 1024).unwrap();
//! let mut patched = original.clone();
//! delta_apply(&record, &mut patched).unwrap();
//! assert_eq!(patched, modified);
//! ```

pub mod crc32;
pub mod delta;
pub mod dif;
pub mod memops;
pub mod swcost;

/// The operation kinds DSA supports (paper Table 1), as scheduled through
/// descriptors and costed by the software baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// No-op descriptor (used for drain/fence semantics).
    Nop,
    /// Copy `len` bytes from source to destination.
    Memcpy,
    /// Copy source to two destinations.
    Dualcast,
    /// Fill destination with an 8-byte pattern.
    Fill,
    /// Fill destination with non-temporal (non-allocating) writes.
    NtFill,
    /// Byte-compare two buffers.
    Compare,
    /// Compare a buffer against an 8-byte pattern.
    ComparePattern,
    /// CRC32-C over the source.
    Crc32,
    /// Copy + CRC32-C of the transferred data.
    CopyCrc,
    /// Insert T10-DIF tuples per block.
    DifInsert,
    /// Verify T10-DIF tuples.
    DifCheck,
    /// Remove T10-DIF tuples.
    DifStrip,
    /// Verify then rewrite T10-DIF tuples.
    DifUpdate,
    /// Produce a delta record between two buffers.
    DeltaCreate,
    /// Apply a delta record to a buffer.
    DeltaApply,
    /// Evict an address range from the cache hierarchy.
    CacheFlush,
}

impl OpKind {
    /// Bytes *read* by the device per byte of nominal transfer size.
    pub fn read_amplification(self) -> f64 {
        match self {
            OpKind::Nop | OpKind::Fill | OpKind::NtFill => 0.0,
            OpKind::Compare | OpKind::DeltaCreate => 2.0,
            _ => 1.0,
        }
    }

    /// Bytes *written* by the device per byte of nominal transfer size.
    pub fn write_amplification(self) -> f64 {
        match self {
            OpKind::Nop
            | OpKind::Compare
            | OpKind::ComparePattern
            | OpKind::Crc32
            | OpKind::DifCheck
            | OpKind::CacheFlush => 0.0,
            OpKind::Dualcast => 2.0,
            OpKind::DeltaCreate => 0.2, // record is a fraction of the input
            _ => 1.0,
        }
    }

    /// All kinds evaluated in the paper's Fig. 2 sweep.
    pub fn figure2_set() -> [OpKind; 8] {
        [
            OpKind::Memcpy,
            OpKind::Dualcast,
            OpKind::Fill,
            OpKind::NtFill,
            OpKind::Compare,
            OpKind::ComparePattern,
            OpKind::Crc32,
            OpKind::DifInsert,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_factors() {
        assert_eq!(OpKind::Memcpy.read_amplification(), 1.0);
        assert_eq!(OpKind::Memcpy.write_amplification(), 1.0);
        assert_eq!(OpKind::Fill.read_amplification(), 0.0);
        assert_eq!(OpKind::Dualcast.write_amplification(), 2.0);
        assert_eq!(OpKind::Compare.read_amplification(), 2.0);
        assert_eq!(OpKind::Crc32.write_amplification(), 0.0);
    }

    #[test]
    fn figure2_set_is_distinct() {
        let set = OpKind::figure2_set();
        for (i, a) in set.iter().enumerate() {
            for b in &set[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
