//! T10 Data Integrity Field (DIF) operations.
//!
//! Storage stacks protect each logical block with an 8-byte protection
//! information (PI) tuple: a CRC16 *guard tag* over the block data, a
//! 2-byte *application tag*, and a 4-byte *reference tag* (typically the
//! lower bits of the LBA, incremented per block). DSA processes DIF at
//! stream rate for 512/520/4096/4104-byte blocks (paper Table 1); software
//! implementations run at a few GB/s, which is why DIF shows some of the
//! largest offload speedups.
//!
//! The guard uses CRC-16/T10-DIF: polynomial `0x8BB7`, no reflection, zero
//! init/xorout (check value `0xD0DB` over `"123456789"`).

/// Source-block sizes DSA supports for DIF operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DifBlockSize {
    /// 512-byte blocks (classic sector).
    B512,
    /// 520-byte blocks (sector + legacy 8-byte trailer kept as data).
    B520,
    /// 4096-byte blocks (4K-native sector).
    B4096,
    /// 4104-byte blocks.
    B4104,
}

impl DifBlockSize {
    /// Block size in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            DifBlockSize::B512 => 512,
            DifBlockSize::B520 => 520,
            DifBlockSize::B4096 => 4096,
            DifBlockSize::B4104 => 4104,
        }
    }

    /// Stable 2-bit code for fixed-width encodings (descriptor wire
    /// format, compiled op-program instruction words).
    pub const fn code(self) -> u8 {
        match self {
            DifBlockSize::B512 => 0,
            DifBlockSize::B520 => 1,
            DifBlockSize::B4096 => 2,
            DifBlockSize::B4104 => 3,
        }
    }

    /// Inverse of [`code`](Self::code). Total: only the low 2 bits are
    /// significant, so every input decodes to a valid block size.
    pub const fn from_code(code: u8) -> DifBlockSize {
        match code & 3 {
            0 => DifBlockSize::B512,
            1 => DifBlockSize::B520,
            2 => DifBlockSize::B4096,
            _ => DifBlockSize::B4104,
        }
    }
}

/// The 8-byte protection-information tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DifTuple {
    /// CRC-16/T10-DIF over the block data.
    pub guard: u16,
    /// Application tag (opaque to the device).
    pub app_tag: u16,
    /// Reference tag (usually low LBA bits; incremented per block).
    pub ref_tag: u32,
}

impl DifTuple {
    /// Serializes to the on-wire big-endian layout.
    pub fn to_bytes(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..2].copy_from_slice(&self.guard.to_be_bytes());
        out[2..4].copy_from_slice(&self.app_tag.to_be_bytes());
        out[4..].copy_from_slice(&self.ref_tag.to_be_bytes());
        out
    }

    /// Parses from the on-wire layout.
    pub fn from_bytes(b: &[u8; 8]) -> DifTuple {
        DifTuple {
            guard: u16::from_be_bytes([b[0], b[1]]),
            app_tag: u16::from_be_bytes([b[2], b[3]]),
            ref_tag: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
        }
    }
}

/// A DIF verification failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DifError {
    /// Index of the offending block.
    pub block: usize,
    /// Which tag mismatched.
    pub kind: DifErrorKind,
}

/// The tag that failed verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DifErrorKind {
    /// Guard (CRC) mismatch — data corruption.
    Guard,
    /// Reference-tag mismatch — misplaced block.
    RefTag,
    /// Application-tag mismatch.
    AppTag,
}

impl std::fmt::Display for DifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DIF {:?} mismatch in block {}", self.kind, self.block)
    }
}

impl std::error::Error for DifError {}

/// CRC-16/T10-DIF (non-reflected, poly 0x8BB7, init 0).
pub fn crc16_t10(data: &[u8]) -> u16 {
    static TABLE: [u16; 256] = build_t10_table();
    let mut crc: u16 = 0;
    for &b in data {
        let idx = ((crc >> 8) ^ b as u16) & 0xFF;
        crc = (crc << 8) ^ TABLE[idx as usize];
    }
    crc
}

const fn build_t10_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u16) << 8;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 0x8000 != 0 { (crc << 1) ^ 0x8BB7 } else { crc << 1 };
            b += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Seed tags for a DIF pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DifConfig {
    /// Block size.
    pub block: DifBlockSize,
    /// Application tag written/expected on every block.
    pub app_tag: u16,
    /// Reference tag of the first block; increments per block.
    pub starting_ref_tag: u32,
}

impl DifConfig {
    /// A common default: 512-byte blocks, zero tags.
    pub fn new(block: DifBlockSize) -> DifConfig {
        DifConfig { block, app_tag: 0, starting_ref_tag: 0 }
    }

    /// Packs the config into one `u64` operand word for fixed-width
    /// instruction encodings: bits 0-7 block code, 16-31 app tag,
    /// 32-63 starting ref tag.
    pub const fn pack(self) -> u64 {
        (self.block.code() as u64)
            | ((self.app_tag as u64) << 16)
            | ((self.starting_ref_tag as u64) << 32)
    }

    /// Inverse of [`pack`](Self::pack). Total — every word decodes to a
    /// valid config — so compiled programs never need a fallible decode.
    pub const fn unpack(word: u64) -> DifConfig {
        DifConfig {
            block: DifBlockSize::from_code(word as u8),
            app_tag: (word >> 16) as u16,
            starting_ref_tag: (word >> 32) as u32,
        }
    }
}

/// Inserts DIF tuples: `src` must be whole blocks; returns blocks with an
/// 8-byte PI appended to each (the DIF Insert operation).
///
/// # Errors
///
/// Returns `Err` if `src` is not a multiple of the block size.
pub fn dif_insert(cfg: &DifConfig, src: &[u8]) -> Result<Vec<u8>, DifLayoutError> {
    let bs = cfg.block.bytes();
    if src.is_empty() || !src.len().is_multiple_of(bs) {
        return Err(DifLayoutError { len: src.len(), block: bs });
    }
    let blocks = src.len() / bs;
    let mut out = Vec::with_capacity(src.len() + blocks * 8);
    for (i, chunk) in src.chunks_exact(bs).enumerate() {
        out.extend_from_slice(chunk);
        let tuple = DifTuple {
            guard: crc16_t10(chunk),
            app_tag: cfg.app_tag,
            ref_tag: cfg.starting_ref_tag.wrapping_add(i as u32),
        };
        out.extend_from_slice(&tuple.to_bytes());
    }
    Ok(out)
}

/// Verifies DIF tuples in `protected` (the DIF Check operation).
///
/// # Errors
///
/// Returns the first [`DifError`] encountered, or a layout error if the
/// input is not a whole number of protected blocks.
pub fn dif_check(cfg: &DifConfig, protected: &[u8]) -> Result<(), DifCheckError> {
    let bs = cfg.block.bytes() + 8;
    if protected.is_empty() || !protected.len().is_multiple_of(bs) {
        return Err(DifCheckError::Layout(DifLayoutError { len: protected.len(), block: bs }));
    }
    for (i, chunk) in protected.chunks_exact(bs).enumerate() {
        let (data, pi) = chunk.split_at(cfg.block.bytes());
        // dsa-lint: allow(unwrap, split_at of a (block + 8)-byte chunk leaves exactly 8 PI bytes)
        let tuple = DifTuple::from_bytes(pi.try_into().expect("8-byte PI"));
        if tuple.guard != crc16_t10(data) {
            return Err(DifCheckError::Dif(DifError { block: i, kind: DifErrorKind::Guard }));
        }
        if tuple.ref_tag != cfg.starting_ref_tag.wrapping_add(i as u32) {
            return Err(DifCheckError::Dif(DifError { block: i, kind: DifErrorKind::RefTag }));
        }
        if tuple.app_tag != cfg.app_tag {
            return Err(DifCheckError::Dif(DifError { block: i, kind: DifErrorKind::AppTag }));
        }
    }
    Ok(())
}

/// Strips DIF tuples, returning the raw data (the DIF Strip operation).
/// Verification is performed first, as the hardware does.
///
/// # Errors
///
/// Propagates verification/layout failures.
pub fn dif_strip(cfg: &DifConfig, protected: &[u8]) -> Result<Vec<u8>, DifCheckError> {
    dif_check(cfg, protected)?;
    let bs = cfg.block.bytes() + 8;
    let mut out = Vec::with_capacity(protected.len() / bs * cfg.block.bytes());
    for chunk in protected.chunks_exact(bs) {
        out.extend_from_slice(&chunk[..cfg.block.bytes()]);
    }
    Ok(out)
}

/// Re-tags protected data: verifies against `src_cfg`, then rewrites the
/// tuples for `dst_cfg` (the DIF Update operation, used when blocks move to
/// a new LBA range).
///
/// # Errors
///
/// Propagates verification/layout failures against `src_cfg`.
pub fn dif_update(
    src_cfg: &DifConfig,
    dst_cfg: &DifConfig,
    protected: &[u8],
) -> Result<Vec<u8>, DifCheckError> {
    dif_check(src_cfg, protected)?;
    let bs = src_cfg.block.bytes() + 8;
    let mut out = Vec::with_capacity(protected.len());
    for (i, chunk) in protected.chunks_exact(bs).enumerate() {
        let data = &chunk[..src_cfg.block.bytes()];
        out.extend_from_slice(data);
        let tuple = DifTuple {
            guard: crc16_t10(data),
            app_tag: dst_cfg.app_tag,
            ref_tag: dst_cfg.starting_ref_tag.wrapping_add(i as u32),
        };
        out.extend_from_slice(&tuple.to_bytes());
    }
    Ok(out)
}

/// Input length is not a whole number of blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DifLayoutError {
    /// Offending input length.
    pub len: usize,
    /// Required block granularity.
    pub block: usize,
}

impl std::fmt::Display for DifLayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "input length {} is not a positive multiple of {}", self.len, self.block)
    }
}

impl std::error::Error for DifLayoutError {}

/// Failure modes of DIF verification passes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DifCheckError {
    /// The input shape was wrong.
    Layout(DifLayoutError),
    /// A tag failed to verify.
    Dif(DifError),
}

impl std::fmt::Display for DifCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DifCheckError::Layout(e) => write!(f, "{e}"),
            DifCheckError::Dif(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DifCheckError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_t10_check_value() {
        assert_eq!(crc16_t10(b"123456789"), 0xD0DB);
    }

    #[test]
    fn dif_config_pack_roundtrips() {
        for block in
            [DifBlockSize::B512, DifBlockSize::B520, DifBlockSize::B4096, DifBlockSize::B4104]
        {
            for (app, rtag) in [(0u16, 0u32), (0xBEEF, 1), (7, u32::MAX), (u16::MAX, 0xDEAD_00FF)] {
                let cfg = DifConfig { block, app_tag: app, starting_ref_tag: rtag };
                assert_eq!(DifConfig::unpack(cfg.pack()), cfg);
                assert_eq!(DifBlockSize::from_code(block.code()), block);
            }
        }
    }

    #[test]
    fn dif_config_unpack_is_total() {
        // Arbitrary garbage decodes to *some* valid config: the block code
        // is masked to 2 bits and the tags take the word bits verbatim.
        let cfg = DifConfig::unpack(u64::MAX);
        assert_eq!(cfg.block, DifBlockSize::B4104);
        assert_eq!(cfg.app_tag, u16::MAX);
        assert_eq!(cfg.starting_ref_tag, u32::MAX);
    }

    #[test]
    fn crc16_zero_block() {
        // CRC of zeros with zero init is zero (non-reflected, no xorout).
        assert_eq!(crc16_t10(&[0u8; 512]), 0);
    }

    #[test]
    fn insert_check_strip_roundtrip() {
        let cfg = DifConfig { block: DifBlockSize::B512, app_tag: 0xBEEF, starting_ref_tag: 7 };
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31) as u8).collect();
        let protected = dif_insert(&cfg, &data).unwrap();
        assert_eq!(protected.len(), 1024 + 2 * 8);
        dif_check(&cfg, &protected).unwrap();
        let stripped = dif_strip(&cfg, &protected).unwrap();
        assert_eq!(stripped, data);
    }

    #[test]
    fn corruption_detected_as_guard_error() {
        let cfg = DifConfig::new(DifBlockSize::B512);
        let data = vec![0xA5u8; 512];
        let mut protected = dif_insert(&cfg, &data).unwrap();
        protected[100] ^= 0x01;
        match dif_check(&cfg, &protected) {
            Err(DifCheckError::Dif(e)) => {
                assert_eq!(e.kind, DifErrorKind::Guard);
                assert_eq!(e.block, 0);
            }
            other => panic!("expected guard error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_ref_tag_detected() {
        let cfg = DifConfig { block: DifBlockSize::B512, app_tag: 0, starting_ref_tag: 0 };
        let data = vec![1u8; 512];
        let protected = dif_insert(&cfg, &data).unwrap();
        let wrong = DifConfig { starting_ref_tag: 5, ..cfg };
        match dif_check(&wrong, &protected) {
            Err(DifCheckError::Dif(e)) => assert_eq!(e.kind, DifErrorKind::RefTag),
            other => panic!("expected ref tag error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_app_tag_detected() {
        let cfg = DifConfig { block: DifBlockSize::B512, app_tag: 1, starting_ref_tag: 0 };
        let protected = dif_insert(&cfg, &vec![1u8; 512]).unwrap();
        let wrong = DifConfig { app_tag: 2, ..cfg };
        match dif_check(&wrong, &protected) {
            Err(DifCheckError::Dif(e)) => assert_eq!(e.kind, DifErrorKind::AppTag),
            other => panic!("expected app tag error, got {other:?}"),
        }
    }

    #[test]
    fn update_retags_blocks() {
        let src = DifConfig { block: DifBlockSize::B4096, app_tag: 1, starting_ref_tag: 100 };
        let dst = DifConfig { block: DifBlockSize::B4096, app_tag: 2, starting_ref_tag: 900 };
        let data = vec![0x5Au8; 8192];
        let protected = dif_insert(&src, &data).unwrap();
        let updated = dif_update(&src, &dst, &protected).unwrap();
        dif_check(&dst, &updated).unwrap();
        assert!(dif_check(&src, &updated).is_err());
    }

    #[test]
    fn bad_layout_rejected() {
        let cfg = DifConfig::new(DifBlockSize::B512);
        assert!(dif_insert(&cfg, &[0u8; 100]).is_err());
        assert!(dif_insert(&cfg, &[]).is_err());
        assert!(matches!(dif_check(&cfg, &[0u8; 100]), Err(DifCheckError::Layout(_))));
    }

    #[test]
    fn all_block_sizes_roundtrip() {
        for bs in [DifBlockSize::B512, DifBlockSize::B520, DifBlockSize::B4096, DifBlockSize::B4104]
        {
            let cfg = DifConfig::new(bs);
            let data: Vec<u8> = (0..bs.bytes() * 3).map(|i| (i % 251) as u8).collect();
            let protected = dif_insert(&cfg, &data).unwrap();
            assert_eq!(dif_strip(&cfg, &protected).unwrap(), data);
        }
    }

    #[test]
    fn tuple_serialization_roundtrip() {
        let t = DifTuple { guard: 0x1234, app_tag: 0xABCD, ref_tag: 0xDEAD_BEEF };
        assert_eq!(DifTuple::from_bytes(&t.to_bytes()), t);
    }
}
