//! Calibrated timing for the *software* counterparts of every operation.
//!
//! The paper compares DSA against "highly optimized software libraries
//! (e.g., glibc's memcpy, and ISA-L for CRC32)" running on one core, with
//! source/destination data flushed from the cache hierarchy between
//! iterations (§4.1). This module models those baselines:
//!
//! * every operation has a calibrated peak single-core streaming rate for
//!   cache-cold data in local DRAM;
//! * small transfers run far below peak (cold misses, no warmed-up
//!   prefetch streams) — the *ramp* term, anchored so that a cold 4 KiB
//!   `memcpy()` costs ≈ 1.4 µs, matching the paper's sync break-even at
//!   ≈ 4 KB (Fig. 2a) and latency break-even between 4–10 KB (Fig. 6a);
//! * buffer placement scales the rate (LLC-resident data is faster;
//!   CXL-resident data much slower, especially as a destination —
//!   Figs. 6b/15).
//!
//! Compute-bound operations (software DIF, delta creation) are only mildly
//! location-sensitive; the model damps the placement factor for them.

use crate::OpKind;
use dsa_mem::buffer::Location;
use dsa_mem::topology::Platform;
use dsa_sim::time::SimDuration;

/// Cost model for single-core software implementations.
#[derive(Clone, Debug)]
pub struct SwCost {
    platform: Platform,
}

/// Fixed call/setup overhead of a software op (function call, branch to the
/// size-specialized kernel).
const CALL_OVERHEAD_NS: f64 = 15.0;

impl SwCost {
    /// Builds the model for a platform.
    pub fn new(platform: Platform) -> SwCost {
        SwCost { platform }
    }

    /// The platform this model was built for.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Peak cold-DRAM streaming rate in GB/s of one core running `kind`,
    /// with throughput accounted against the *nominal* transfer size
    /// (as the paper's figures do).
    fn peak_gbps(&self, kind: OpKind) -> f64 {
        // Scaled mildly by platform memory generation (DDR5 vs DDR4).
        let mem_scale = self.platform.dram.read_mgbps as f64 / 220_000.0;
        let base = match kind {
            OpKind::Nop => return f64::INFINITY,
            OpKind::Memcpy => 12.0,
            OpKind::Dualcast => 7.0,
            OpKind::Fill => 16.0,
            OpKind::NtFill => 28.0,
            OpKind::Compare => 10.0,
            OpKind::ComparePattern => 18.0,
            OpKind::Crc32 => 13.0,
            OpKind::CopyCrc => 9.0,
            OpKind::DifInsert | OpKind::DifCheck | OpKind::DifStrip | OpKind::DifUpdate => 2.6,
            OpKind::DeltaCreate => 5.0,
            OpKind::DeltaApply => 12.0,
            OpKind::CacheFlush => 30.0,
        };
        base * mem_scale.clamp(0.6, 1.25)
    }

    /// True for operations whose cost is dominated by core compute rather
    /// than memory streaming.
    fn compute_bound(kind: OpKind) -> bool {
        matches!(
            kind,
            OpKind::DifInsert
                | OpKind::DifCheck
                | OpKind::DifStrip
                | OpKind::DifUpdate
                | OpKind::DeltaCreate
        )
    }

    /// Placement factor for reading from `loc`.
    fn read_factor(loc: Location) -> f64 {
        match loc {
            Location::Llc => 2.0,
            Location::Dram { socket: 0 } => 1.0,
            Location::Dram { .. } => 0.8,
            Location::Cxl => 0.5,
        }
    }

    /// Placement factor for writing to `loc`.
    fn write_factor(loc: Location) -> f64 {
        match loc {
            Location::Llc => 1.8,
            Location::Dram { socket: 0 } => 1.0,
            Location::Dram { .. } => 0.75,
            Location::Cxl => 0.35,
        }
    }

    /// Cache-cold ramp: the fraction of peak a transfer of `bytes` achieves.
    ///
    /// Flat at 0.25 up to 4 KiB, rising log-linearly to 1.0 at 256 KiB.
    /// Warm (LLC-resident) sources dodge most of the cold penalty; the
    /// caller passes `warm = true` to floor the ramp at 0.7.
    fn ramp(bytes: u64, warm: bool) -> f64 {
        const LOW: f64 = 4096.0;
        const HIGH: f64 = 262_144.0;
        let floor = if warm { 0.7 } else { 0.25 };
        if (bytes as f64) <= LOW {
            return floor;
        }
        if (bytes as f64) >= HIGH {
            return 1.0;
        }
        let t = ((bytes as f64).ln() - LOW.ln()) / (HIGH.ln() - LOW.ln());
        floor + t * (1.0 - floor)
    }

    /// Achieved software rate in GB/s for `kind` over `bytes` with the given
    /// placements.
    pub fn op_gbps(&self, kind: OpKind, bytes: u64, src: Location, dst: Location) -> f64 {
        let peak = self.peak_gbps(kind);
        if !peak.is_finite() {
            return f64::INFINITY;
        }
        let reads = kind.read_amplification();
        let writes = kind.write_amplification();
        // The most constrained active stream sets the placement factor.
        let mut factor = f64::INFINITY;
        if reads > 0.0 {
            factor = factor.min(Self::read_factor(src));
        }
        if writes > 0.0 {
            factor = factor.min(Self::write_factor(dst));
        }
        if !factor.is_finite() {
            factor = 1.0;
        }
        if Self::compute_bound(kind) {
            // Compute-bound kernels hide part of the placement penalty.
            factor = 0.5 + 0.5 * factor;
        }
        let warm = src == Location::Llc && (writes == 0.0 || dst == Location::Llc);
        peak * factor * Self::ramp(bytes, warm)
    }

    /// Time for one software execution of `kind` over `bytes`.
    pub fn op_time(&self, kind: OpKind, bytes: u64, src: Location, dst: Location) -> SimDuration {
        let gbps = self.op_gbps(kind, bytes, src, dst);
        let stream_ns = if gbps.is_finite() { bytes as f64 / gbps } else { 0.0 };
        SimDuration::from_ns_f64(CALL_OVERHEAD_NS + stream_ns)
    }

    /// Convenience for the ubiquitous local-DRAM `memcpy` baseline.
    pub fn memcpy_time(&self, bytes: u64) -> SimDuration {
        self.op_time(OpKind::Memcpy, bytes, Location::local_dram(), Location::local_dram())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SwCost {
        SwCost::new(Platform::spr())
    }

    #[test]
    fn cold_4k_memcpy_near_break_even_anchor() {
        let t = model().memcpy_time(4096).as_us_f64();
        assert!((1.0..2.0).contains(&t), "cold 4 KiB memcpy should be ~1.4 us, got {t}");
    }

    #[test]
    fn large_memcpy_reaches_peak() {
        let m = model();
        let g = m.op_gbps(OpKind::Memcpy, 2 << 20, Location::local_dram(), Location::local_dram());
        assert!((g - 12.0).abs() < 1.0, "got {g}");
    }

    #[test]
    fn ramp_monotone_in_size() {
        let m = model();
        let sizes = [256u64, 4096, 16384, 65536, 262_144, 1 << 21];
        let mut last = 0.0;
        for s in sizes {
            let g = m.op_gbps(OpKind::Memcpy, s, Location::local_dram(), Location::local_dram());
            assert!(g >= last, "rate should not drop with size");
            last = g;
        }
    }

    #[test]
    fn llc_resident_faster_than_dram() {
        let m = model();
        let warm = m.op_gbps(OpKind::Memcpy, 65536, Location::Llc, Location::Llc);
        let cold = m.op_gbps(OpKind::Memcpy, 65536, Location::local_dram(), Location::local_dram());
        assert!(warm > 1.5 * cold);
    }

    #[test]
    fn cxl_destination_is_slowest() {
        let m = model();
        let to_cxl = m.op_gbps(OpKind::Memcpy, 1 << 20, Location::local_dram(), Location::Cxl);
        let from_cxl = m.op_gbps(OpKind::Memcpy, 1 << 20, Location::Cxl, Location::local_dram());
        let local =
            m.op_gbps(OpKind::Memcpy, 1 << 20, Location::local_dram(), Location::local_dram());
        assert!(to_cxl < from_cxl, "CXL writes are the slow direction");
        assert!(from_cxl < local);
    }

    #[test]
    fn dif_is_compute_bound_and_slow() {
        let m = model();
        let dif =
            m.op_gbps(OpKind::DifInsert, 1 << 20, Location::local_dram(), Location::local_dram());
        let copy =
            m.op_gbps(OpKind::Memcpy, 1 << 20, Location::local_dram(), Location::local_dram());
        assert!(dif < copy / 3.0, "software DIF should be several times slower");
        // ...and only mildly location-sensitive.
        let dif_cxl = m.op_gbps(OpKind::DifInsert, 1 << 20, Location::Cxl, Location::Cxl);
        assert!(dif_cxl > dif * 0.5);
    }

    #[test]
    fn nt_fill_beats_fill() {
        let m = model();
        let d = Location::local_dram();
        assert!(m.op_gbps(OpKind::NtFill, 1 << 20, d, d) > m.op_gbps(OpKind::Fill, 1 << 20, d, d));
    }

    #[test]
    fn icx_slower_than_spr() {
        let spr = SwCost::new(Platform::spr());
        let icx = SwCost::new(Platform::icx());
        let d = Location::local_dram();
        assert!(
            icx.op_gbps(OpKind::Memcpy, 1 << 20, d, d) < spr.op_gbps(OpKind::Memcpy, 1 << 20, d, d)
        );
    }

    #[test]
    fn overhead_dominates_tiny_ops() {
        let t64 = model().memcpy_time(64);
        assert!(t64.as_ns_f64() >= CALL_OVERHEAD_NS);
        let t0 = model().op_time(OpKind::Nop, 0, Location::local_dram(), Location::local_dram());
        assert!((t0.as_ns_f64() - CALL_OVERHEAD_NS).abs() < 1e-6);
    }
}
