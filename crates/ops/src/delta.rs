//! Delta records: compact encodings of the difference between two buffers.
//!
//! DSA's Create Delta Record operation compares two equal-length buffers in
//! 8-byte units and emits a 10-byte record entry — a 2-byte offset (in
//! 8-byte units) plus the 8 differing bytes from the second buffer — for
//! every mismatching unit. Apply Delta Record patches the original buffer
//! back to the modified one. The 2-byte offset limits a single descriptor
//! to 512 KiB of compared data, exactly as the DSA specification does.

/// One entry of a delta record: `offset` is in 8-byte units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaEntry {
    /// Offset of the differing 8-byte unit, in units (byte offset / 8).
    pub offset: u16,
    /// The replacement bytes (from the modified buffer).
    pub data: [u8; 8],
}

impl DeltaEntry {
    /// Size of a serialized entry in bytes.
    pub const SIZE: usize = 10;

    /// Serializes to the 10-byte wire layout.
    pub fn to_bytes(self) -> [u8; 10] {
        let mut out = [0u8; 10];
        out[..2].copy_from_slice(&self.offset.to_le_bytes());
        out[2..].copy_from_slice(&self.data);
        out
    }

    /// Parses from the wire layout.
    pub fn from_bytes(b: &[u8; 10]) -> DeltaEntry {
        DeltaEntry {
            offset: u16::from_le_bytes([b[0], b[1]]),
            // dsa-lint: allow(unwrap, slice of a [u8; 10] from index 2 is exactly 8 bytes)
            data: b[2..].try_into().expect("8 bytes"),
        }
    }
}

/// A delta record: the serialized entry list.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaRecord {
    bytes: Vec<u8>,
}

impl DeltaRecord {
    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.bytes.len() / DeltaEntry::SIZE
    }

    /// Serialized size in bytes (what the device writes to memory).
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Raw serialized form.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reconstructs a record from its serialized form.
    ///
    /// # Errors
    ///
    /// Fails if `bytes` is not a multiple of the entry size.
    pub fn from_bytes(bytes: &[u8]) -> Result<DeltaRecord, DeltaError> {
        if !bytes.len().is_multiple_of(DeltaEntry::SIZE) {
            return Err(DeltaError::MalformedRecord { len: bytes.len() });
        }
        Ok(DeltaRecord { bytes: bytes.to_vec() })
    }

    /// Iterates over decoded entries.
    pub fn iter(&self) -> impl Iterator<Item = DeltaEntry> + '_ {
        self.bytes
            .chunks_exact(DeltaEntry::SIZE)
            // dsa-lint: allow(unwrap, chunks_exact yields exactly SIZE-byte slices)
            .map(|c| DeltaEntry::from_bytes(c.try_into().expect("10 bytes")))
    }
}

/// Failures of delta operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// Buffers differ in length or are not 8-byte multiples.
    BadShape {
        /// First buffer length.
        original: usize,
        /// Second buffer length.
        modified: usize,
    },
    /// Input exceeds the 512 KiB addressable by 16-bit unit offsets.
    TooLarge {
        /// Offending length in bytes.
        len: usize,
    },
    /// The differences did not fit in `max_record_bytes`.
    ///
    /// Mirrors the device's partial-completion status; `needed` reports the
    /// full record size so the caller can retry or fall back to a copy.
    RecordOverflow {
        /// Bytes the complete record would need.
        needed: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A serialized record had a length that is not a multiple of 10.
    MalformedRecord {
        /// Offending length.
        len: usize,
    },
    /// An entry's offset points outside the target buffer.
    OffsetOutOfRange {
        /// Offending unit offset.
        offset: u16,
        /// Target buffer length in bytes.
        target_len: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::BadShape { original, modified } => {
                write!(f, "buffers must be equal 8-byte multiples (got {original} and {modified})")
            }
            DeltaError::TooLarge { len } => {
                write!(f, "input of {len} bytes exceeds the 512 KiB delta limit")
            }
            DeltaError::RecordOverflow { needed, limit } => {
                write!(f, "delta record needs {needed} bytes but only {limit} were provided")
            }
            DeltaError::MalformedRecord { len } => {
                write!(f, "record length {len} is not a multiple of 10")
            }
            DeltaError::OffsetOutOfRange { offset, target_len } => {
                write!(f, "entry offset {offset} outside target of {target_len} bytes")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Maximum input size a single delta descriptor can cover.
pub const MAX_DELTA_INPUT: usize = (u16::MAX as usize + 1) * 8;

/// Creates a delta record turning `original` into `modified`
/// (the Create Delta Record operation).
///
/// `max_record_bytes` bounds the record, mirroring the descriptor's
/// maximum-delta-record-size field.
///
/// # Errors
///
/// See [`DeltaError`].
pub fn delta_create(
    original: &[u8],
    modified: &[u8],
    max_record_bytes: usize,
) -> Result<DeltaRecord, DeltaError> {
    if original.len() != modified.len() || !original.len().is_multiple_of(8) {
        return Err(DeltaError::BadShape { original: original.len(), modified: modified.len() });
    }
    if original.len() > MAX_DELTA_INPUT {
        return Err(DeltaError::TooLarge { len: original.len() });
    }
    let mut bytes = Vec::new();
    let mut needed = 0usize;
    for (i, (a, b)) in original.chunks_exact(8).zip(modified.chunks_exact(8)).enumerate() {
        if a != b {
            needed += DeltaEntry::SIZE;
            if needed <= max_record_bytes {
                // dsa-lint: allow(unwrap, chunks_exact(8) yields exactly 8-byte slices)
                let entry = DeltaEntry { offset: i as u16, data: b.try_into().expect("8 bytes") };
                bytes.extend_from_slice(&entry.to_bytes());
            }
        }
    }
    if needed > max_record_bytes {
        return Err(DeltaError::RecordOverflow { needed, limit: max_record_bytes });
    }
    Ok(DeltaRecord { bytes })
}

/// Applies a delta record to `target` in place
/// (the Apply Delta Record operation).
///
/// # Errors
///
/// Fails without touching `target` if any entry is out of range.
pub fn delta_apply(record: &DeltaRecord, target: &mut [u8]) -> Result<(), DeltaError> {
    // Validate first: hardware reports the error without partial effects
    // visible to the completion record consumer.
    for e in record.iter() {
        let start = e.offset as usize * 8;
        if start + 8 > target.len() {
            return Err(DeltaError::OffsetOutOfRange {
                offset: e.offset,
                target_len: target.len(),
            });
        }
    }
    for e in record.iter() {
        let start = e.offset as usize * 8;
        target[start..start + 8].copy_from_slice(&e.data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_buffers_give_empty_record() {
        let a = vec![7u8; 64];
        let rec = delta_create(&a, &a, 1024).unwrap();
        assert_eq!(rec.entries(), 0);
        assert_eq!(rec.size_bytes(), 0);
    }

    #[test]
    fn create_apply_roundtrip() {
        let original: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let mut modified = original.clone();
        modified[8] = 0xFF;
        modified[9] = 0xFE;
        modified[200] ^= 0x80;
        let rec = delta_create(&original, &modified, 4096).unwrap();
        assert_eq!(rec.entries(), 2); // two distinct 8-byte units changed
        let mut patched = original.clone();
        delta_apply(&rec, &mut patched).unwrap();
        assert_eq!(patched, modified);
    }

    #[test]
    fn record_overflow_reports_needed() {
        let original = vec![0u8; 80];
        let modified = vec![1u8; 80]; // all 10 units differ -> 100 bytes
        match delta_create(&original, &modified, 50) {
            Err(DeltaError::RecordOverflow { needed, limit }) => {
                assert_eq!(needed, 100);
                assert_eq!(limit, 50);
            }
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn shape_validation() {
        assert!(matches!(delta_create(&[0; 8], &[0; 16], 100), Err(DeltaError::BadShape { .. })));
        assert!(matches!(delta_create(&[0; 7], &[0; 7], 100), Err(DeltaError::BadShape { .. })));
        let big = vec![0u8; MAX_DELTA_INPUT + 8];
        assert!(matches!(delta_create(&big, &big, 100), Err(DeltaError::TooLarge { .. })));
    }

    #[test]
    fn max_size_input_works() {
        let a = vec![0u8; MAX_DELTA_INPUT];
        let mut b = a.clone();
        let last = MAX_DELTA_INPUT - 8;
        b[last] = 1;
        let rec = delta_create(&a, &b, 1024).unwrap();
        assert_eq!(rec.entries(), 1);
        assert_eq!(rec.iter().next().unwrap().offset, u16::MAX);
        let mut patched = a.clone();
        delta_apply(&rec, &mut patched).unwrap();
        assert_eq!(patched, b);
    }

    #[test]
    fn apply_out_of_range_leaves_target_untouched() {
        let entry = DeltaEntry { offset: 100, data: [9; 8] };
        let rec = DeltaRecord::from_bytes(&entry.to_bytes()).unwrap();
        let mut target = vec![0u8; 64];
        let before = target.clone();
        assert!(matches!(delta_apply(&rec, &mut target), Err(DeltaError::OffsetOutOfRange { .. })));
        assert_eq!(target, before);
    }

    #[test]
    fn record_serialization_roundtrip() {
        let original = vec![0u8; 64];
        let mut modified = original.clone();
        modified[0] = 1;
        modified[63] = 2;
        let rec = delta_create(&original, &modified, 4096).unwrap();
        let rec2 = DeltaRecord::from_bytes(rec.as_bytes()).unwrap();
        assert_eq!(rec, rec2);
        assert!(DeltaRecord::from_bytes(&[0u8; 7]).is_err());
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(DeltaError::BadShape { original: 1, modified: 2 }),
            Box::new(DeltaError::TooLarge { len: 1 << 30 }),
            Box::new(DeltaError::RecordOverflow { needed: 10, limit: 5 }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
