//! An X-Mem-style memory characterization microbenchmark and the
//! co-running cache-pollution scenarios of paper §4.5.
//!
//! X-Mem instances perform dependent random reads over a configurable
//! working set; co-running *background* processes either copy memory on
//! cores (allocating their streams into the shared LLC) or offload the
//! copies to DSA (reads never allocate; writes confined to the DDIO ways).
//! The scenario driver measures average access latency per instance
//! (Fig. 13) and per-agent LLC occupancy over time (Fig. 12).
//!
//! The LLC (and every working set) can be scaled down by a common factor so
//! line-granular simulation stays fast while preserving capacity ratios.

use dsa_mem::agent::AgentId;
use dsa_mem::cache::{AllocPolicy, Llc, WayMask};
use dsa_mem::topology::Platform;
use dsa_sim::rng::SplitMix64;
use dsa_sim::stats::TimeSeries;
use dsa_sim::time::{SimDuration, SimTime};

/// One X-Mem latency-probe instance.
#[derive(Debug)]
pub struct XMemInstance {
    agent: AgentId,
    base: u64,
    working_set: u64,
    rng: SplitMix64,
    accesses: u64,
    hits: u64,
}

impl XMemInstance {
    /// Creates an instance probing `working_set` bytes at `base`.
    pub fn new(agent: AgentId, base: u64, working_set: u64, seed: u64) -> XMemInstance {
        XMemInstance {
            agent,
            base,
            working_set: working_set.max(64),
            rng: SplitMix64::new(seed),
            accesses: 0,
            hits: 0,
        }
    }

    /// Performs one random read; returns its modelled latency.
    pub fn access(&mut self, llc: &mut Llc, platform: &Platform) -> SimDuration {
        let line = self.rng.next_below(self.working_set / 64);
        let addr = self.base + line * 64;
        let r = llc.access(self.agent, addr, AllocPolicy::AllocOnMiss, WayMask::ALL);
        self.accesses += 1;
        if r.hit {
            self.hits += 1;
            platform.llc_latency
        } else {
            platform.dram.read_latency
        }
    }

    /// Accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Hit ratio so far.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// The memory-system identity of this instance.
    pub fn agent(&self) -> AgentId {
        self.agent
    }
}

/// Background co-runner flavours (Fig. 13's three scenarios).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Background {
    /// No co-located processes.
    None,
    /// `n` software `memcpy()` processes on separate cores: source reads
    /// and destination writes allocate into the LLC.
    SoftwareCopy {
        /// Number of copy processes.
        n: u32,
    },
    /// `n` DSA groups performing Memory Copy (batch-submitted): reads do
    /// not allocate; writes land in the DDIO ways only.
    DsaOffload {
        /// Number of offload streams.
        n: u32,
    },
}

/// Results of one co-running scenario.
#[derive(Debug)]
pub struct CoRunResult {
    /// Average X-Mem read latency across instances.
    pub avg_latency: SimDuration,
    /// Mean X-Mem hit ratio.
    pub hit_ratio: f64,
    /// Per-agent LLC occupancy time series, `(agent, series)`.
    pub occupancy: Vec<(AgentId, TimeSeries)>,
}

/// Scenario driver: `xmem_instances` probes of `working_set` bytes each,
/// co-running with `background`, on a platform whose LLC has been scaled
/// down by `scale` (working sets scale with it).
#[derive(Debug)]
pub struct CoRunScenario {
    /// Number of X-Mem instances (paper: 8).
    pub xmem_instances: u32,
    /// Per-instance working set in (unscaled) bytes.
    pub working_set: u64,
    /// Background copy traffic.
    pub background: Background,
    /// LLC/working-set scale-down factor (1 = full size).
    pub scale: u64,
    /// Probe accesses per instance per quantum.
    pub accesses_per_quantum: u64,
    /// Number of quanta to run.
    pub quanta: u32,
    /// Copy transfer size per background operation (paper: 4 KiB).
    pub copy_size: u64,
}

impl Default for CoRunScenario {
    fn default() -> Self {
        CoRunScenario {
            xmem_instances: 8,
            working_set: 4 << 20,
            background: Background::None,
            scale: 8,
            accesses_per_quantum: 2000,
            quanta: 30,
            copy_size: 4096,
        }
    }
}

impl CoRunScenario {
    /// Runs the scenario and reports latency and occupancy.
    pub fn run(&self, platform: &Platform) -> CoRunResult {
        // Scaling only divides the LLC capacity — compute it locally
        // instead of cloning the whole Platform per run.
        let llc_bytes = platform.llc_bytes / self.scale.max(1);
        let mut llc = Llc::new(llc_bytes, platform.llc_ways, 64);
        let ddio_ways = platform.ddio_ways;
        let total_ways = platform.llc_ways;
        let ws = (self.working_set / self.scale).max(4096);

        let mut probes: Vec<XMemInstance> = (0..self.xmem_instances)
            .map(|i| {
                XMemInstance::new(
                    AgentId::core(i as u16),
                    0x1_0000_0000 + i as u64 * (ws + (1 << 20)),
                    ws,
                    0xBEE5 + i as u64,
                )
            })
            .collect();

        // Background copy processes cycle through large streams.
        let bg_count = match self.background {
            Background::None => 0,
            Background::SoftwareCopy { n } | Background::DsaOffload { n } => n,
        };
        let stream_span = (64u64 << 20) / self.scale; // large, low-locality streams
        let mut bg_offsets = vec![0u64; bg_count as usize];
        let copy_size = (self.copy_size / 64).max(1) * 64;

        let mut latency_sum = SimDuration::ZERO;
        let mut latency_count = 0u64;
        let mut occupancy: Vec<(AgentId, TimeSeries)> = Vec::new();
        for i in 0..self.xmem_instances {
            occupancy.push((AgentId::core(i as u16), TimeSeries::new()));
        }
        for b in 0..bg_count {
            let agent = match self.background {
                Background::SoftwareCopy { .. } => AgentId::core((32 + b) as u16),
                _ => AgentId::dsa(b as u16),
            };
            occupancy.push((agent, TimeSeries::new()));
        }

        let quantum = SimDuration::from_us(100);
        let mut now = SimTime::ZERO;
        for q in 0..self.quanta {
            // Background copies run every quantum; probes only in the
            // middle window (Fig. 12: X-Mem runs 5 s..45 s of 60 s).
            let probes_active = q >= self.quanta / 12 && q < self.quanta * 3 / 4;

            // Background copy processes stream at memory speed: per
            // quantum they churn about a fourteenth of the (scaled) LLC.
            let copies_per_quantum = if bg_count == 0 {
                0
            } else {
                (llc_bytes / 14 / copy_size / bg_count as u64).max(8)
            };
            for (b, bg_offset) in bg_offsets.iter_mut().enumerate() {
                for _ in 0..copies_per_quantum {
                    let src = 0x8_0000_0000 + b as u64 * (stream_span + (1 << 20)) + *bg_offset;
                    let dst = 0xC_0000_0000 + b as u64 * (stream_span + (1 << 20)) + *bg_offset;
                    *bg_offset = (*bg_offset + copy_size) % stream_span;
                    match self.background {
                        Background::None => unreachable!("bg_count is 0"),
                        Background::SoftwareCopy { .. } => {
                            let agent = AgentId::core((32 + b) as u16);
                            for line in 0..copy_size / 64 {
                                llc.access(
                                    agent,
                                    src + line * 64,
                                    AllocPolicy::AllocOnMiss,
                                    WayMask::ALL,
                                );
                                llc.access(
                                    agent,
                                    dst + line * 64,
                                    AllocPolicy::AllocOnMiss,
                                    WayMask::ALL,
                                );
                            }
                        }
                        Background::DsaOffload { .. } => {
                            let agent = AgentId::dsa(b as u16);
                            for line in 0..copy_size / 64 {
                                // Reads never allocate.
                                llc.access(
                                    agent,
                                    src + line * 64,
                                    AllocPolicy::NoAlloc,
                                    WayMask::ALL,
                                );
                                // Cache-control writes are confined to the
                                // DDIO ways.
                                llc.access(
                                    agent,
                                    dst + line * 64,
                                    AllocPolicy::AllocOnMiss,
                                    WayMask::range(total_ways - ddio_ways, total_ways),
                                );
                            }
                        }
                    }
                }
            }

            if probes_active {
                for p in probes.iter_mut() {
                    for _ in 0..self.accesses_per_quantum {
                        let lat = p.access(&mut llc, platform);
                        latency_sum += lat;
                        latency_count += 1;
                    }
                }
            }

            now += quantum;
            for (agent, series) in occupancy.iter_mut() {
                // Report unscaled occupancy so figures read in real MB.
                series.push(now, (llc.occupancy_bytes(*agent) * self.scale) as f64);
            }
        }

        let hit_ratio = if probes.is_empty() {
            0.0
        } else {
            probes.iter().map(|p| p.hit_ratio()).sum::<f64>() / probes.len() as f64
        };
        CoRunResult {
            avg_latency: if latency_count == 0 {
                SimDuration::ZERO
            } else {
                latency_sum / latency_count
            },
            hit_ratio,
            occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(bg: Background, ws: u64) -> CoRunResult {
        CoRunScenario {
            working_set: ws,
            background: bg,
            quanta: 24,
            accesses_per_quantum: 1500,
            ..CoRunScenario::default()
        }
        .run(&Platform::spr())
    }

    #[test]
    fn small_working_sets_hit_in_cache() {
        let r = scenario(Background::None, 1 << 20);
        assert!(r.hit_ratio > 0.9, "1 MiB x 8 fits the LLC: {}", r.hit_ratio);
    }

    #[test]
    fn huge_working_sets_miss() {
        let r = scenario(Background::None, 64 << 20);
        assert!(r.hit_ratio < 0.35, "8 x 64 MiB cannot fit: {}", r.hit_ratio);
    }

    #[test]
    fn software_copy_pollutes_dsa_does_not() {
        let ws = 4 << 20; // the paper's highlighted 4 MB point
        let none = scenario(Background::None, ws);
        let sw = scenario(Background::SoftwareCopy { n: 4 }, ws);
        let dsa = scenario(Background::DsaOffload { n: 4 }, ws);
        assert!(
            sw.avg_latency.as_ns_f64() > 1.2 * none.avg_latency.as_ns_f64(),
            "software copies should inflate latency: {:?} vs {:?}",
            sw.avg_latency,
            none.avg_latency
        );
        assert!(
            dsa.avg_latency.as_ns_f64() < 1.1 * none.avg_latency.as_ns_f64(),
            "DSA offload should barely perturb latency: {:?} vs {:?}",
            dsa.avg_latency,
            none.avg_latency
        );
    }

    #[test]
    fn occupancy_attribution_matches_scenario() {
        let sw = scenario(Background::SoftwareCopy { n: 4 }, 4 << 20);
        let copy_occ: f64 =
            sw.occupancy.iter().filter(|(a, _)| a.slot() >= 32).map(|(_, s)| s.max_value()).sum();
        assert!(copy_occ > 10e6, "software copies should occupy many MB: {copy_occ}");

        let dsa = scenario(Background::DsaOffload { n: 4 }, 4 << 20);
        let platform = Platform::spr();
        let dsa_occ: f64 =
            dsa.occupancy.iter().filter(|(a, _)| a.is_dsa()).map(|(_, s)| s.max_value()).sum();
        assert!(
            dsa_occ <= platform.ddio_bytes() as f64 * 1.05,
            "DSA occupancy {dsa_occ} must stay within the DDIO share"
        );
    }

    #[test]
    fn occupancy_series_rise_and_fall_with_probe_window() {
        let r = scenario(Background::None, 4 << 20);
        let (_, series) = &r.occupancy[0];
        assert!(!series.is_empty());
        // Occupancy during the active window exceeds the initial sample.
        let first = series.points()[0].1;
        assert!(series.max_value() > first);
    }
}
