//! VM live migration with DSA offload — one of the paper's §5 "datacenter
//! tax" reductions ("offloading routines in memory compaction, VM/container
//! boot-up and migration").
//!
//! Iterative pre-copy: round 0 ships every guest block; while the guest
//! keeps dirtying memory, later rounds ship only what changed — either a
//! full block copy or, when few words changed, a **delta record**
//! (Create Delta Record at the source, Apply Delta Record at the
//! destination — the two Table-1 operations built for exactly this).
//! When the dirty set is small enough the VM pauses and the final round's
//! duration is the migration *downtime*.

use dsa_core::backend::Engine;
use dsa_core::job::{Batch, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_core::DsaError;
use dsa_mem::buffer::Location;
use dsa_mem::memory::BufferHandle;
use dsa_ops::OpKind;
use dsa_sim::rng::SplitMix64;
use dsa_sim::time::{SimDuration, SimTime};
use dsa_telemetry::Track;

/// Migration parameters.
#[derive(Clone, Copy, Debug)]
pub struct MigrationConfig {
    /// Guest memory blocks (granularity of dirty tracking).
    pub blocks: usize,
    /// Bytes per block (<= 512 KiB so delta records stay in range).
    pub block_size: u64,
    /// Blocks the guest dirties between rounds.
    pub dirtied_per_round: usize,
    /// Within a dirty block, fraction of 8-byte words rewritten (small
    /// fractions favour delta records over full copies).
    pub dirty_density: f64,
    /// Stop-and-copy once the dirty set is at most this many blocks.
    pub downtime_threshold: usize,
    /// Safety bound on pre-copy rounds.
    pub max_rounds: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MigrationConfig {
    fn default() -> MigrationConfig {
        MigrationConfig {
            blocks: 64,
            block_size: 64 << 10,
            dirtied_per_round: 12,
            dirty_density: 0.05,
            downtime_threshold: 4,
            max_rounds: 10,
            seed: 0x516_AA7E,
        }
    }
}

/// Outcome of one migration.
#[derive(Clone, Copy, Debug)]
pub struct MigrationReport {
    /// Pre-copy rounds executed (excluding the stop-and-copy round).
    pub rounds: u32,
    /// Total bytes moved as full block copies.
    pub copied_bytes: u64,
    /// Total bytes moved as delta records.
    pub delta_bytes: u64,
    /// Blocks shipped as deltas instead of copies.
    pub delta_blocks: u64,
    /// Wall time of the stop-and-copy round (guest paused).
    pub downtime: SimDuration,
    /// End-to-end migration time.
    pub total_time: SimDuration,
}

/// A migrating guest: source memory, destination memory, dirty tracking.
pub struct Migration {
    cfg: MigrationConfig,
    src_blocks: Vec<BufferHandle>,
    dst_blocks: Vec<BufferHandle>,
    scratch_records: Vec<BufferHandle>,
    dirty: Vec<bool>,
    rng: SplitMix64,
}

impl Migration {
    /// Allocates guest and destination memory and seeds the guest with
    /// reproducible content.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a positive multiple of 8 or exceeds
    /// the delta-record range (512 KiB).
    pub fn new(rt: &mut DsaRuntime, cfg: MigrationConfig) -> Migration {
        assert!(
            cfg.block_size > 0 && cfg.block_size.is_multiple_of(8),
            "blocks must be 8-byte multiples"
        );
        assert!(cfg.block_size <= 512 << 10, "delta records address at most 512 KiB");
        let mut rng = SplitMix64::new(cfg.seed);
        let src_blocks: Vec<BufferHandle> = (0..cfg.blocks)
            .map(|_| {
                let b = rt.alloc(cfg.block_size, Location::local_dram());
                rt.fill_random(&b);
                b
            })
            .collect();
        let dst_blocks =
            (0..cfg.blocks).map(|_| rt.alloc(cfg.block_size, Location::remote_dram())).collect();
        // Room for a worst-case record per block: 10 bytes per 8-byte unit.
        let scratch_records = (0..cfg.blocks)
            .map(|_| rt.alloc(cfg.block_size / 8 * 10 + 16, Location::local_dram()))
            .collect();
        let dirty = vec![true; cfg.blocks]; // everything "dirty" initially
        let _ = rng.next_u64();
        Migration { cfg, src_blocks, dst_blocks, scratch_records, dirty, rng }
    }

    /// The guest mutates memory between rounds.
    fn guest_dirties(&mut self, rt: &mut DsaRuntime) {
        for _ in 0..self.cfg.dirtied_per_round {
            let b = self.rng.next_below(self.cfg.blocks as u64) as usize;
            self.dirty[b] = true;
            let words = (self.cfg.block_size / 8) as f64 * self.cfg.dirty_density;
            for _ in 0..words.max(1.0) as u64 {
                let off = self.rng.next_below(self.cfg.block_size / 8) * 8;
                let v = self.rng.next_u64().to_le_bytes();
                rt.memory_mut()
                    .write(self.src_blocks[b].addr() + off, &v)
                    // dsa-lint: allow(unwrap, guest blocks were allocated by this workload's setup)
                    .expect("guest memory is mapped");
            }
        }
    }

    /// Ships every dirty block; returns (copied, delta) byte counts.
    fn ship_dirty(
        &mut self,
        rt: &mut DsaRuntime,
        engine: Engine,
    ) -> Result<(u64, u64, u64), DsaError> {
        let dirty: Vec<usize> = (0..self.cfg.blocks).filter(|&b| self.dirty[b]).collect();
        let mut copied = 0u64;
        let mut delta = 0u64;
        let mut delta_blocks = 0u64;
        match engine {
            Engine::Cpu => {
                for &b in &dirty {
                    // A core diffs and copies: charge a compare + a copy of
                    // the block (conservative software pre-copy).
                    rt.cpu_op(OpKind::Compare, &self.src_blocks[b], &self.dst_blocks[b]);
                    rt.cpu_op(OpKind::Memcpy, &self.src_blocks[b], &self.dst_blocks[b]);
                    copied += self.cfg.block_size;
                }
            }
            Engine::Dsa { device, wq } => {
                for &b in &dirty {
                    // Create a delta against the destination's last copy.
                    let rec = self.scratch_records[b];
                    let report = Job::delta_create(&self.dst_blocks[b], &self.src_blocks[b], &rec)
                        .on_device(device)
                        .on_wq(wq)
                        .execute(rt)?;
                    match report.record.status {
                        dsa_device::descriptor::Status::Success => {
                            let rec_len = report.record.result as u32;
                            if (rec_len as u64) < self.cfg.block_size / 2 {
                                // Ship the record, apply remotely.
                                Job::delta_apply(&rec, rec_len, &self.dst_blocks[b])
                                    .on_device(device)
                                    .on_wq(wq)
                                    .execute(rt)?;
                                delta += rec_len as u64;
                                delta_blocks += 1;
                            } else {
                                Job::memcpy(&self.src_blocks[b], &self.dst_blocks[b])
                                    .on_device(device)
                                    .on_wq(wq)
                                    .execute(rt)?;
                                copied += self.cfg.block_size;
                            }
                        }
                        _ => {
                            Job::memcpy(&self.src_blocks[b], &self.dst_blocks[b])
                                .on_device(device)
                                .on_wq(wq)
                                .execute(rt)?;
                            copied += self.cfg.block_size;
                        }
                    }
                }
            }
        }
        for b in dirty {
            self.dirty[b] = false;
        }
        Ok((copied, delta, delta_blocks))
    }

    /// Runs the full iterative pre-copy + stop-and-copy migration.
    ///
    /// # Errors
    ///
    /// Propagates DSA submission failures.
    pub fn run(mut self, rt: &mut DsaRuntime, engine: Engine) -> Result<MigrationReport, DsaError> {
        let start = rt.now();
        let mut copied = 0u64;
        let mut delta = 0u64;
        let mut delta_blocks = 0u64;
        let mut rounds = 0u32;

        // Round 0: bulk copy of everything — batched when offloaded.
        let round0_start = rt.now();
        if let Engine::Dsa { device, wq } = engine {
            let mut batch = Batch::new().on_device(device).on_wq(wq);
            for (s, d) in self.src_blocks.iter().zip(&self.dst_blocks) {
                batch.push(Job::memcpy(s, d));
            }
            batch.execute(rt)?;
            copied += self.cfg.blocks as u64 * self.cfg.block_size;
            self.dirty.iter_mut().for_each(|d| *d = false);
        } else {
            let (c, d, db) = self.ship_dirty(rt, engine)?;
            copied += c;
            delta += d;
            delta_blocks += db;
        }
        if let Some(hub) = rt.hub().cloned() {
            hub.span(Track::Workload("migration"), "round 0 (bulk)", round0_start, rt.now());
        }

        // Iterative pre-copy while the guest runs: the guest keeps
        // dirtying; we ship until the residual dirty set is small (or we
        // give up and eat a bigger stop-and-copy).
        loop {
            self.guest_dirties(rt);
            let dirty_now = self.dirty.iter().filter(|&&d| d).count();
            if dirty_now <= self.cfg.downtime_threshold || rounds >= self.cfg.max_rounds {
                break;
            }
            let round_start = rt.now();
            let (c, d, db) = self.ship_dirty(rt, engine)?;
            copied += c;
            delta += d;
            delta_blocks += db;
            rounds += 1;
            if let Some(hub) = rt.hub().cloned() {
                hub.span(Track::Workload("migration"), "pre-copy round", round_start, rt.now());
            }
        }

        // Stop-and-copy: the guest is paused; this round is the downtime.
        let pause: SimTime = rt.now();
        let (c, d, db) = self.ship_dirty(rt, engine)?;
        copied += c;
        delta += d;
        delta_blocks += db;
        let downtime = rt.now().duration_since(pause);
        if let Some(hub) = rt.hub().cloned() {
            hub.span(Track::Workload("migration"), "stop-and-copy", pause, rt.now());
        }

        // Verify: destination is byte-identical to the (now quiescent) guest.
        for (s, dst) in self.src_blocks.iter().zip(&self.dst_blocks) {
            // dsa-lint: allow(unwrap, self-check over workload-allocated blocks)
            let src_bytes = rt.memory().read(s.addr(), self.cfg.block_size).unwrap();
            // dsa-lint: allow(unwrap, self-check over workload-allocated blocks)
            let dst_bytes = rt.memory().read(dst.addr(), self.cfg.block_size).unwrap();
            assert_eq!(src_bytes, dst_bytes, "migrated memory must be identical");
        }

        Ok(MigrationReport {
            rounds,
            copied_bytes: copied,
            delta_bytes: delta,
            delta_blocks,
            downtime,
            total_time: rt.now().duration_since(start),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_device::config::DeviceConfig;
    use dsa_mem::topology::Platform;

    fn rt() -> DsaRuntime {
        DsaRuntime::builder(Platform::spr()).device(DeviceConfig::full_device()).build()
    }

    fn small_cfg() -> MigrationConfig {
        MigrationConfig {
            blocks: 16,
            block_size: 16 << 10,
            dirtied_per_round: 4,
            ..MigrationConfig::default()
        }
    }

    #[test]
    fn migration_verifies_byte_exact_dsa() {
        let mut r = rt();
        let m = Migration::new(&mut r, small_cfg());
        let report = m.run(&mut r, Engine::dsa()).unwrap();
        assert!(report.copied_bytes > 0);
        assert!(report.total_time > SimDuration::ZERO);
    }

    #[test]
    fn migration_verifies_byte_exact_cpu() {
        let mut r = rt();
        let m = Migration::new(&mut r, small_cfg());
        let report = m.run(&mut r, Engine::Cpu).unwrap();
        assert!(report.copied_bytes > 0);
        assert_eq!(report.delta_bytes, 0, "CPU path ships full blocks");
    }

    #[test]
    fn sparse_dirtying_uses_delta_records() {
        let mut r = rt();
        let cfg = MigrationConfig {
            dirty_density: 0.01, // 1% of words -> records are tiny
            ..small_cfg()
        };
        let m = Migration::new(&mut r, cfg);
        let report = m.run(&mut r, Engine::dsa()).unwrap();
        assert!(report.delta_blocks > 0, "sparse dirt must ship as deltas");
        assert!(
            report.delta_bytes < report.copied_bytes,
            "deltas {} should be small next to copies {}",
            report.delta_bytes,
            report.copied_bytes
        );
    }

    #[test]
    fn dense_dirtying_falls_back_to_copies() {
        let mut r = rt();
        let cfg = MigrationConfig { dirty_density: 0.9, ..small_cfg() };
        let m = Migration::new(&mut r, cfg);
        let report = m.run(&mut r, Engine::dsa()).unwrap();
        assert_eq!(report.delta_blocks, 0, "dense dirt makes records larger than copies");
    }

    #[test]
    fn dsa_migrates_faster_than_cpu() {
        let cfg =
            MigrationConfig { blocks: 32, block_size: 64 << 10, ..MigrationConfig::default() };
        let mut r1 = rt();
        let cpu = Migration::new(&mut r1, cfg).run(&mut r1, Engine::Cpu).unwrap();
        let mut r2 = rt();
        let dsa = Migration::new(&mut r2, cfg).run(&mut r2, Engine::dsa()).unwrap();
        assert!(
            dsa.total_time < cpu.total_time,
            "DSA {:?} vs CPU {:?}",
            dsa.total_time,
            cpu.total_time
        );
        assert!(dsa.downtime < cpu.downtime, "downtime should shrink with offload");
    }

    #[test]
    #[should_panic(expected = "8-byte multiples")]
    fn odd_block_size_rejected() {
        let mut r = rt();
        let cfg = MigrationConfig { block_size: 1001, ..MigrationConfig::default() };
        let _ = Migration::new(&mut r, cfg);
    }
}
