//! An SPDK-style NVMe/TCP target with CRC32 Data Digest offload
//! (paper Appendix C, Fig. 21).
//!
//! For every read I/O the target produces a PDU whose Data Digest is a
//! CRC32-C over the payload. The digest strategy is `Option<Engine>`:
//! skipped entirely (`None`), computed with an ISA-L-style vectorized
//! software kernel on the target core (`Some(Engine::Cpu)`), or offloaded
//! to DSA through the acceleration framework (`Some(Engine::Dsa { .. })`,
//! batched when possible, polled in user space; the framework falls back
//! to software when the device is unavailable).
//!
//! The harness measures IOPS versus the number of target cores, with the
//! aggregate capped by the network/SSD path, and the average request
//! latency — reproducing Fig. 21's "DSA ≈ no-digest, both saturate with
//! fewer cores than ISA-L" result.

use dsa_core::backend::Engine;
use dsa_core::job::Job;
use dsa_core::runtime::DsaRuntime;
use dsa_core::DsaError;
use dsa_mem::buffer::Location;
use dsa_ops::crc32::Crc32c;
use dsa_sim::time::SimDuration;

/// Target configuration.
#[derive(Clone, Copy, Debug)]
pub struct NvmeTcpTarget {
    /// I/O size in bytes (Fig. 21: 16 KiB random / 128 KiB sequential).
    pub io_size: u64,
    /// Target cores polling for work.
    pub cores: u32,
    /// Digest strategy: `None` disables the Data Digest, `Some(Engine::Cpu)`
    /// runs the ISA-L-style software kernel, `Some(Engine::Dsa { .. })`
    /// offloads to the named device/WQ.
    pub digest: Option<Engine>,
}

/// Results of a target run.
#[derive(Clone, Copy, Debug)]
pub struct NvmeTcpReport {
    /// Achieved thousands of I/O operations per second.
    pub kiops: f64,
    /// Average request latency.
    pub avg_latency: SimDuration,
    /// Whether the network/SSD path (not the cores) was the bottleneck.
    pub saturated: bool,
}

/// Base per-I/O CPU cost: TCP/PDU processing, NVMe command handling,
/// buffer management (SPDK polled mode, calibrated so saturation core
/// counts track Fig. 21).
fn base_io_time(io_size: u64) -> SimDuration {
    SimDuration::from_ns(5_000) + SimDuration::from_ns(io_size / 10) // +0.1 ns/B
}

/// Effective ISA-L digest rate on the target core: the vectorized CRC is
/// fast in isolation, but the digest path re-touches cold payload data
/// while assembling PDUs, so the calibrated system rate is lower (matches
/// Fig. 21's ISA-L saturation at >8 cores for 16 KiB reads).
const ISAL_CRC_MGBPS: u64 = 3_000;

/// Line/SSD path cap in mGB/s (100 GbE with protocol overheads).
const PATH_MGBPS: u64 = 11_000;

impl NvmeTcpTarget {
    /// Runs `ios` read requests through the target model. A sample of
    /// real descriptors flows through the device (or software CRC) to keep
    /// the datapath honest; steady-state rates extrapolate from measured
    /// per-I/O costs.
    ///
    /// # Errors
    ///
    /// Propagates DSA submission failures.
    pub fn run(&self, rt: &mut DsaRuntime, ios: u64) -> Result<NvmeTcpReport, DsaError> {
        // --- measured per-I/O digest cost (sampled functionally) ---
        let payload = rt.alloc(self.io_size, Location::local_dram());
        rt.fill_random(&payload);
        // dsa-lint: allow(unwrap, payload was allocated by the runtime two lines up)
        let expected = Crc32c::checksum(rt.read(&payload).unwrap());

        let digest_core_cost = match self.digest {
            None => SimDuration::ZERO,
            Some(Engine::Cpu) => {
                // Verify once functionally, then charge the ISA-L rate.
                // dsa-lint: allow(unwrap, payload was allocated by the runtime above)
                assert_eq!(Crc32c::checksum(rt.read(&payload).unwrap()), expected);
                dsa_sim::time::transfer_time_mgbps(self.io_size, ISAL_CRC_MGBPS)
            }
            Some(Engine::Dsa { device, wq }) => {
                // Offloaded: the core pays submit + poll; the checksum is
                // produced by the device. Measure it on a real descriptor.
                let before = rt.now();
                let report = Job::crc32(&payload).on_device(device).on_wq(wq).execute(rt)?;
                assert_eq!(report.record.result as u32, expected, "device CRC must match");
                let sync_cost = rt.now().duration_since(before);
                // Batched + polled asynchronously in steady state: the
                // core-visible share is submission + completion check.
                SimDuration::from_ns(250).min(sync_cost)
            }
        };

        // --- steady-state rates ---
        let per_io = base_io_time(self.io_size) + digest_core_cost;
        let per_core_iops = 1e9 / per_io.as_ns_f64(); // I/O per second
        let path_iops = (PATH_MGBPS as f64 * 1e6) / self.io_size as f64;
        let offered = per_core_iops * self.cores as f64;
        let achieved = offered.min(path_iops);
        let saturated = offered >= path_iops;

        // Latency: service time plus queueing inflation near saturation.
        let rho = (offered / path_iops).min(0.95);
        let queue_factor = 1.0 / (1.0 - rho * 0.5);
        let avg_latency = SimDuration::from_ns_f64(per_io.as_ns_f64() * queue_factor);

        // Run a token number of real I/Os through the device path so the
        // functional pipeline is exercised end to end.
        if let Some(Engine::Dsa { device, wq }) = self.digest {
            for _ in 0..ios.min(8) {
                let report = Job::crc32(&payload).on_device(device).on_wq(wq).execute(rt)?;
                assert_eq!(report.record.result as u32, expected);
            }
        }

        Ok(NvmeTcpReport { kiops: achieved / 1e3, avg_latency, saturated })
    }

    /// The minimum core count at which this configuration saturates the
    /// network/SSD path.
    pub fn saturation_cores(&self, rt: &mut DsaRuntime) -> u32 {
        for cores in 1..=32 {
            let t = NvmeTcpTarget { cores, ..*self };
            if let Ok(r) = t.run(rt, 1) {
                if r.saturated {
                    return cores;
                }
            }
        }
        33
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> DsaRuntime {
        DsaRuntime::spr_default()
    }

    #[test]
    fn digest_ordering_none_dsa_isal() {
        let mut r = rt();
        let mk = |digest| NvmeTcpTarget { io_size: 16 << 10, cores: 4, digest };
        let none = mk(None).run(&mut r, 4).unwrap();
        let dsa = mk(Some(Engine::dsa())).run(&mut r, 4).unwrap();
        let isal = mk(Some(Engine::Cpu)).run(&mut r, 4).unwrap();
        assert!(none.kiops >= dsa.kiops, "no digest is the upper bound");
        assert!(dsa.kiops > isal.kiops, "DSA should beat ISA-L: {} vs {}", dsa.kiops, isal.kiops);
        // DSA latency close to no-digest (Fig. 21b: "nearly equivalent").
        let ratio = dsa.avg_latency.as_ns_f64() / none.avg_latency.as_ns_f64();
        assert!(ratio < 1.10, "DSA latency should track no-digest: {ratio}");
        assert!(isal.avg_latency > dsa.avg_latency);
    }

    #[test]
    fn saturation_cores_ordering_16k() {
        let mut r = rt();
        let mk = |digest| NvmeTcpTarget { io_size: 16 << 10, cores: 1, digest };
        let none = mk(None).saturation_cores(&mut r);
        let dsa = mk(Some(Engine::dsa())).saturation_cores(&mut r);
        let isal = mk(Some(Engine::Cpu)).saturation_cores(&mut r);
        assert!(dsa <= none + 1, "DSA saturates about as early as no-digest");
        assert!(isal > dsa, "ISA-L needs more cores: {isal} vs {dsa}");
        // Fig. 21: saturation around 6 cores for 16 KiB random reads.
        assert!((4..=8).contains(&dsa), "DSA saturation at {dsa} cores");
        assert!(isal > 8, "ISA-L saturates above 8 cores, got {isal}");
    }

    #[test]
    fn large_sequential_needs_fewer_cores() {
        let mut r = rt();
        let small = NvmeTcpTarget { io_size: 16 << 10, cores: 1, digest: Some(Engine::dsa()) }
            .saturation_cores(&mut r);
        let large = NvmeTcpTarget { io_size: 128 << 10, cores: 1, digest: Some(Engine::dsa()) }
            .saturation_cores(&mut r);
        assert!(large < small, "128 KiB saturates with fewer cores: {large} vs {small}");
        assert!(large <= 3, "Fig. 21: ~2 cores for 128 KiB sequential, got {large}");
    }

    #[test]
    fn iops_scale_until_saturation() {
        let mut r = rt();
        let mk = |cores| NvmeTcpTarget { io_size: 16 << 10, cores, digest: Some(Engine::dsa()) };
        let one = mk(1).run(&mut r, 1).unwrap();
        let two = mk(2).run(&mut r, 1).unwrap();
        assert!((two.kiops / one.kiops - 2.0).abs() < 0.05, "linear below saturation");
        let many = mk(16).run(&mut r, 1).unwrap();
        assert!(many.saturated);
        let cap = (PATH_MGBPS as f64 * 1e6) / (16 << 10) as f64 / 1e3;
        assert!((many.kiops - cap).abs() < 1.0, "capped at the path limit");
    }
}
