//! libfabric-style shared-memory messaging with SAR copy offload
//! (paper Appendix A, Fig. 17).
//!
//! Without Cross Memory Attach, large messages go through the Segmentation
//! and Reassembly (SAR) protocol: the sender's progress engine copies the
//! message into bounce buffers and the receiver copies it out. Those two
//! bulk copies are exactly what DSA absorbs. The models here reproduce:
//!
//! * the **pingpong** and **RMA** bandwidth sweeps (Fig. 17a) — DSA pulls
//!   ahead from ~32 KiB, up to ≈ 5× at multi-MB messages;
//! * **OSU-style** one-directional bandwidth and ring **AllReduce** with
//!   2–8 ranks (Fig. 17b);
//! * the **BERT pre-training** AllReduce study: 2.8–3.3× faster AllReduce
//!   and a single-digit-percent end-to-end win.
//!
//! DSA mode drives one device per copy direction (sender-side and
//! receiver-side), as the shm provider does on a multi-instance SoC.

use dsa_core::backend::Engine;
use dsa_core::job::{AsyncQueue, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_core::DsaError;
use dsa_mem::buffer::Location;
use dsa_ops::OpKind;
use dsa_sim::time::{SimDuration, SimTime};

/// SAR segment size (libfabric shm default-scale bounce buffers).
const SAR_CHUNK: u64 = 64 << 10;
/// Per-message protocol overhead (progress engine, doorbells).
const PROTO_OVERHEAD: SimDuration = SimDuration::from_ns(900);
/// Reduction compute rate for AllReduce (one core, milli-GB/s).
const REDUCE_MGBPS: u64 = 8_000;

/// The SAR transport between two local endpoints.
#[derive(Debug)]
pub struct SarFabric {
    engine: Engine,
}

impl SarFabric {
    /// Creates a transport using `engine` for bulk copies. `Engine::Dsa`
    /// names the sender-side device; the receiver side uses the next one
    /// (as the shm provider does on a multi-instance SoC).
    pub fn new(engine: Engine) -> SarFabric {
        SarFabric { engine }
    }

    /// Moves one `msg_bytes` message through SAR; returns the one-way time.
    ///
    /// # Errors
    ///
    /// Propagates DSA submission failures.
    pub fn one_way(&self, rt: &mut DsaRuntime, msg_bytes: u64) -> Result<SimDuration, DsaError> {
        let start = rt.now();
        rt.advance(PROTO_OVERHEAD);
        match self.engine {
            Engine::Cpu => {
                // The single progress thread serializes copy-in then
                // copy-out (no CMA). Small messages reuse hot bounce
                // buffers (LLC-resident); multi-chunk messages churn
                // through cold memory.
                let loc =
                    if msg_bytes <= SAR_CHUNK { Location::Llc } else { Location::local_dram() };
                let t_in = rt.cpu_time(OpKind::Memcpy, msg_bytes, loc, loc);
                let t_out = rt.cpu_time(OpKind::Memcpy, msg_bytes, loc, loc);
                rt.advance(t_in + t_out);
            }
            Engine::Dsa { device, wq } => {
                // Chunked, asynchronous, two devices: receiver-side copy of
                // chunk i starts once chunk i landed in the bounce buffer.
                let chunks = msg_bytes.div_ceil(SAR_CHUNK).max(1);
                let src = rt.alloc(SAR_CHUNK, Location::local_dram());
                let bounce = rt.alloc(SAR_CHUNK, Location::local_dram());
                let dst = rt.alloc(SAR_CHUNK, Location::local_dram());
                let send_dev = device.min(rt.device_count() - 1);
                let recv_dev = (device + 1).min(rt.device_count() - 1);
                let mut in_q = AsyncQueue::new(32);
                let mut out_q = AsyncQueue::new(32);
                let mut first_chunk_in: Option<SimTime> = None;
                for i in 0..chunks {
                    let len = SAR_CHUNK.min(msg_bytes - i * SAR_CHUNK).max(1);
                    let s = src.slice(0, len);
                    let b = bounce.slice(0, len);
                    let d = dst.slice(0, len);
                    in_q.submit(rt, Job::memcpy(&s, &b).on_device(send_dev).on_wq(wq))?;
                    if first_chunk_in.is_none() {
                        first_chunk_in = Some(rt.now());
                    }
                    out_q.submit(rt, Job::memcpy(&b, &d).on_device(recv_dev).on_wq(wq))?;
                }
                let in_done = in_q.drain(rt);
                rt.advance_to(in_done);
                let out_done = out_q.drain(rt);
                rt.advance_to(out_done);
            }
        }
        Ok(rt.now().duration_since(start))
    }

    /// Pingpong bandwidth: two endpoints exchange `msg_bytes` messages.
    ///
    /// # Errors
    ///
    /// Propagates DSA submission failures.
    pub fn pingpong_gbps(&self, rt: &mut DsaRuntime, msg_bytes: u64) -> Result<f64, DsaError> {
        // Warm one round, then measure a few.
        self.one_way(rt, msg_bytes)?;
        let start = rt.now();
        let rounds = 4u64;
        for _ in 0..rounds {
            self.one_way(rt, msg_bytes)?; // ping
            self.one_way(rt, msg_bytes)?; // pong
        }
        let elapsed = rt.now().duration_since(start);
        Ok((2 * rounds * msg_bytes) as f64 / elapsed.as_ns_f64())
    }

    /// RMA write bandwidth: back-to-back one-way transfers.
    ///
    /// # Errors
    ///
    /// Propagates DSA submission failures.
    pub fn rma_gbps(&self, rt: &mut DsaRuntime, msg_bytes: u64) -> Result<f64, DsaError> {
        let start = rt.now();
        let rounds = 6u64;
        for _ in 0..rounds {
            self.one_way(rt, msg_bytes)?;
        }
        let elapsed = rt.now().duration_since(start);
        Ok((rounds * msg_bytes) as f64 / elapsed.as_ns_f64())
    }

    /// Ring AllReduce across `ranks` of a `msg_bytes` buffer; returns the
    /// collective's completion time.
    ///
    /// # Errors
    ///
    /// Propagates DSA submission failures.
    ///
    /// # Panics
    ///
    /// Panics if `ranks < 2`.
    pub fn allreduce(
        &self,
        rt: &mut DsaRuntime,
        ranks: u32,
        msg_bytes: u64,
    ) -> Result<SimDuration, DsaError> {
        assert!(ranks >= 2, "AllReduce needs at least two ranks");
        let start = rt.now();
        let segment = (msg_bytes / ranks as u64).max(1);
        // Reduce-scatter: R-1 steps of (move segment + reduce segment).
        for _ in 0..ranks - 1 {
            self.one_way(rt, segment)?;
            rt.advance(dsa_sim::time::transfer_time_mgbps(segment, REDUCE_MGBPS));
        }
        // Allgather: R-1 steps of moving the reduced segment.
        for _ in 0..ranks - 1 {
            self.one_way(rt, segment)?;
        }
        Ok(rt.now().duration_since(start))
    }
}

/// One BERT-style training step dominated by compute with a gradient
/// AllReduce (paper Appendix A's MLPerf BERT study).
#[derive(Clone, Copy, Debug)]
pub struct BertStep {
    /// Data-parallel ranks.
    pub ranks: u32,
    /// Gradient bytes all-reduced per step.
    pub grad_bytes: u64,
    /// Per-step compute time (forward+backward on one rank).
    pub compute: SimDuration,
    /// Framework overhead around each collective.
    pub framework_overhead: SimDuration,
}

impl Default for BertStep {
    fn default() -> Self {
        BertStep {
            ranks: 2,
            grad_bytes: 64 << 20,
            compute: SimDuration::from_ms(240),
            framework_overhead: SimDuration::from_us(1500),
        }
    }
}

/// Comparison of a BERT step with CPU vs DSA AllReduce.
#[derive(Clone, Copy, Debug)]
pub struct BertReport {
    /// AllReduce time with CPU copies.
    pub ar_cpu: SimDuration,
    /// AllReduce time with DSA copies.
    pub ar_dsa: SimDuration,
    /// AllReduce speedup.
    pub ar_speedup: f64,
    /// End-to-end step speedup.
    pub e2e_speedup: f64,
}

impl BertStep {
    /// Runs the comparison (fresh runtimes per side).
    ///
    /// # Errors
    ///
    /// Propagates DSA submission failures.
    pub fn run(&self) -> Result<BertReport, DsaError> {
        let mk_rt = || {
            DsaRuntime::builder(dsa_mem::topology::Platform::spr())
                .devices(2, dsa_device::config::DeviceConfig::full_device())
                .build()
        };
        let mut rt_cpu = mk_rt();
        let cpu_fabric = SarFabric::new(Engine::Cpu);
        let ar_cpu = cpu_fabric.allreduce(&mut rt_cpu, self.ranks, self.grad_bytes)?
            + self.framework_overhead;

        let mut rt_dsa = mk_rt();
        let dsa_fabric = SarFabric::new(Engine::dsa());
        let ar_dsa = dsa_fabric.allreduce(&mut rt_dsa, self.ranks, self.grad_bytes)?
            + self.framework_overhead;

        let e2e_cpu = self.compute + ar_cpu;
        let e2e_dsa = self.compute + ar_dsa;
        Ok(BertReport {
            ar_cpu,
            ar_dsa,
            ar_speedup: ar_cpu.as_ns_f64() / ar_dsa.as_ns_f64(),
            e2e_speedup: e2e_cpu.as_ns_f64() / e2e_dsa.as_ns_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_device::config::DeviceConfig;
    use dsa_mem::topology::Platform;

    fn rt2() -> DsaRuntime {
        DsaRuntime::builder(Platform::spr()).devices(2, DeviceConfig::full_device()).build()
    }

    #[test]
    fn dsa_wins_big_messages_loses_small() {
        let mut rt = rt2();
        let cpu = SarFabric::new(Engine::Cpu);
        let dsa = SarFabric::new(Engine::dsa());
        let small_cpu = cpu.pingpong_gbps(&mut rt, 4 << 10).unwrap();
        let small_dsa = dsa.pingpong_gbps(&mut rt, 4 << 10).unwrap();
        assert!(small_cpu > small_dsa * 0.6, "small messages are close or CPU-favoured");
        let big_cpu = cpu.pingpong_gbps(&mut rt, 2 << 20).unwrap();
        let big_dsa = dsa.pingpong_gbps(&mut rt, 2 << 20).unwrap();
        let speedup = big_dsa / big_cpu;
        assert!(
            (3.0..7.0).contains(&speedup),
            "multi-MB pingpong speedup should be ~5x: {speedup}"
        );
    }

    #[test]
    fn crossover_near_32k() {
        let mut rt = rt2();
        let cpu = SarFabric::new(Engine::Cpu);
        let dsa = SarFabric::new(Engine::dsa());
        let at_16k =
            dsa.rma_gbps(&mut rt, 16 << 10).unwrap() / cpu.rma_gbps(&mut rt, 16 << 10).unwrap();
        let at_128k =
            dsa.rma_gbps(&mut rt, 128 << 10).unwrap() / cpu.rma_gbps(&mut rt, 128 << 10).unwrap();
        assert!(at_128k > 1.0, "DSA should win by 128 KiB: {at_128k}");
        assert!(at_128k > at_16k, "advantage grows with size");
    }

    #[test]
    fn allreduce_speedup_grows_with_message() {
        let mut rt_c = rt2();
        let mut rt_d = rt2();
        let cpu = SarFabric::new(Engine::Cpu);
        let dsa = SarFabric::new(Engine::dsa());
        let big_c = cpu.allreduce(&mut rt_c, 4, 8 << 20).unwrap();
        let big_d = dsa.allreduce(&mut rt_d, 4, 8 << 20).unwrap();
        let speedup = big_c.as_ns_f64() / big_d.as_ns_f64();
        assert!(speedup > 2.0, "4-rank 8 MiB AllReduce speedup {speedup}");
    }

    #[test]
    fn bert_step_single_digit_e2e_gain() {
        let two = BertStep::default().run().unwrap();
        assert!((1.5..5.0).contains(&two.ar_speedup), "AR speedup {0}", two.ar_speedup);
        assert!(
            (1.01..1.15).contains(&two.e2e_speedup),
            "end-to-end gain should be single-digit %: {}",
            two.e2e_speedup
        );
        let eight = BertStep { ranks: 8, ..BertStep::default() }.run().unwrap();
        assert!(
            eight.e2e_speedup > two.e2e_speedup,
            "more ranks, bigger communication share: {} vs {}",
            eight.e2e_speedup,
            two.e2e_speedup
        );
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn allreduce_rank_validation() {
        let mut rt = rt2();
        let f = SarFabric::new(Engine::Cpu);
        let _ = f.allreduce(&mut rt, 1, 1024);
    }
}
