//! # dsa-workloads — applications around the DSA library
//!
//! Rebuilds the application-level studies of the paper:
//!
//! * [`xmem`] — X-Mem latency probes under co-running copy traffic
//!   (Figs. 12/13, §4.5).
//! * [`vhost`] — the DPDK-Vhost VirtIO backend with batched asynchronous
//!   DSA packet-copy offload and in-order delivery (Fig. 16, §6.4).
//! * [`cachesvc`] — a CacheLib-style caching service whose `memcpy`s route
//!   through the transparent-offload layer (Fig. 19, Appendix B).
//! * [`nvmetcp`] — an SPDK-style NVMe/TCP target with CRC32 Data Digest
//!   offload (Fig. 21, Appendix C).
//! * [`fabric`] — libfabric-style SAR messaging: pingpong, RMA, and
//!   AllReduce with copy offload (Fig. 17, Appendix A).
//! * [`migration`] — VM live migration with delta-record shipping (§5's
//!   "datacenter tax": VM/container migration offload).

//!
//! All workloads pick their data mover through the shared
//! [`dsa_core::backend::Engine`] (or a [`dsa_core::dispatch::DispatchPolicy`]
//! where routing is per-call) instead of per-workload engine enums.
//!
//! ```
//! use dsa_core::backend::Engine;
//! use dsa_core::runtime::DsaRuntime;
//! use dsa_workloads::vhost::{Virtqueue, Vhost};
//! use dsa_mem::buffer::Location;
//!
//! let mut rt = DsaRuntime::spr_default();
//! let vq = Virtqueue::new(&mut rt, 16, 2048);
//! let mut vhost = Vhost::new(vq, Engine::Dsa { device: 0, wq: 0 });
//! let pkt = rt.alloc(2048, Location::Llc);
//! rt.fill_pattern(&pkt, 0x42);
//! vhost.enqueue_burst(&mut rt, &[(pkt, 1024)]).unwrap();
//! vhost.drain(&mut rt);
//! assert_eq!(vhost.stats().delivered, 1);
//! ```

pub mod cachesvc;
pub mod fabric;
pub mod migration;
pub mod nvmetcp;
pub mod vhost;
pub mod xmem;
