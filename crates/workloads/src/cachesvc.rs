//! A CacheLib-style in-memory caching service driven CacheBench-style
//! (paper Appendix B, Fig. 19).
//!
//! `get` copies a cached value out to the caller; `set` copies a new value
//! in. Both go through a per-worker [`Dispatcher`]: with the DTO-style
//! [`DispatchPolicy::Threshold`] policy, copies at or above 8 KiB are
//! offloaded *synchronously* to one of the device's shared WQs, exactly as
//! the appendix describes ("these operations are offloaded synchronously,
//! a thread must stall when all DSA groups are actively managing a
//! descriptor"). The workload's value-size distribution mirrors the
//! appendix's observation that ~5% of copies carry ~96% of the bytes.

use dsa_core::backend::DsaBackend;
use dsa_core::dispatch::{DispatchPolicy, DispatchStats, Dispatcher};
use dsa_core::runtime::DsaRuntime;
use dsa_core::DsaError;
use dsa_mem::buffer::Location;
use dsa_mem::memory::BufferHandle;
use dsa_sim::rng::SplitMix64;
use dsa_sim::stats::DurationHistogram;
use dsa_sim::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct CacheWorkload {
    /// Worker threads (the paper's #s; one hardware core each here).
    pub workers: u32,
    /// Operations per worker.
    pub ops_per_worker: u32,
    /// Fraction of `get` operations (the rest are `set`).
    pub get_fraction: f64,
    /// Per-operation bookkeeping (hashing, locking, metadata).
    pub bookkeeping: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CacheWorkload {
    fn default() -> Self {
        CacheWorkload {
            workers: 4,
            ops_per_worker: 2_000,
            get_fraction: 0.8,
            bookkeeping: SimDuration::from_ns(350),
            seed: 0xCAC4E,
        }
    }
}

/// Results of a run.
#[derive(Debug)]
pub struct CacheReport {
    /// Aggregate operations per second (millions).
    pub mops: f64,
    /// Operation latency distribution.
    pub latency: DurationHistogram,
    /// Fraction of copies offloaded (calls).
    pub offload_call_fraction: f64,
    /// Fraction of bytes offloaded.
    pub offload_byte_fraction: f64,
}

impl CacheReport {
    /// The paper's headline tail: p99.999 operation latency (zero when no
    /// operations ran).
    pub fn tail(&self) -> SimDuration {
        self.latency.percentile(99.999).unwrap_or(SimDuration::ZERO)
    }
}

/// Draws a CacheBench-like value size: mostly small values, a heavy tail
/// of large ones carrying most bytes.
fn draw_value_size(rng: &mut SplitMix64) -> u64 {
    if rng.next_f64() < 0.95 {
        64 + rng.next_below(2048 - 64)
    } else {
        (16 << 10) + rng.next_below((256 << 10) - (16 << 10))
    }
}

/// Runs the service and reports throughput + latency.
///
/// # Errors
///
/// Propagates DSA submission failures.
pub fn run_cache_service(
    rt: &mut DsaRuntime,
    workload: &CacheWorkload,
    policy: DispatchPolicy,
) -> Result<CacheReport, DsaError> {
    // Pre-allocate a pool of cached values and transfer staging buffers
    // large enough for any draw.
    let max_value = 256 << 10;
    let cached: Vec<BufferHandle> =
        (0..32).map(|_| rt.alloc(max_value, Location::local_dram())).collect();
    let staging: Vec<BufferHandle> =
        (0..workload.workers).map(|_| rt.alloc(max_value, Location::local_dram())).collect();

    // One dispatcher per worker, each pinned to one device instance (the
    // SPR SoC exposes four DSA devices); workers round-robin across them.
    let mut workers: Vec<Dispatcher> = (0..workload.workers)
        .map(|i| {
            let dev = (i as usize) % rt.device_count().max(1);
            Dispatcher::new().with_policy(policy).with_backend(DsaBackend::with_pool(vec![dev]))
        })
        .collect();

    let mut latency = DurationHistogram::new();
    let mut rng = SplitMix64::new(workload.seed);
    // Earliest-cursor-first scheduling across workers.
    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u32)>> =
        (0..workload.workers).map(|w| Reverse((SimTime::ZERO, w, 0u32))).collect();
    let mut finish = SimTime::ZERO;
    while let Some(Reverse((cursor, w, done))) = heap.pop() {
        if done >= workload.ops_per_worker {
            finish = finish.max(cursor);
            continue;
        }
        rt.set_now(cursor);
        let op_start = rt.now();
        rt.advance(workload.bookkeeping);
        let size = draw_value_size(&mut rng);
        let value = cached[rng.next_below(cached.len() as u64) as usize].slice(0, size);
        let stage = staging[w as usize].slice(0, size);
        let is_get = rng.next_f64() < workload.get_fraction;
        let d = &mut workers[w as usize];
        if is_get {
            d.memcpy(rt, &value, &stage)?;
        } else {
            d.memcpy(rt, &stage, &value)?;
        }
        latency.record(rt.now().duration_since(op_start));
        heap.push(Reverse((rt.now(), w, done + 1)));
    }

    let total_ops = workload.workers as u64 * workload.ops_per_worker as u64;
    let stats = workers.iter().fold(DispatchStats::default(), |mut acc, d| {
        let s = d.stats();
        acc.cpu_calls += s.cpu_calls;
        acc.sync_offloads += s.sync_offloads;
        acc.async_offloads += s.async_offloads;
        acc.cpu_bytes += s.cpu_bytes;
        acc.offloaded_bytes += s.offloaded_bytes;
        acc
    });
    Ok(CacheReport {
        mops: total_ops as f64 / finish.as_us_f64(),
        latency,
        offload_call_fraction: stats.call_fraction(),
        offload_byte_fraction: stats.byte_fraction(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::config::AccelConfig;
    use dsa_mem::topology::Platform;

    fn rt_with_swqs(wqs: u32) -> DsaRuntime {
        // One device per shared WQ, as on a four-instance SPR socket.
        let mut b = DsaRuntime::builder(Platform::spr());
        for _ in 0..wqs {
            let cfg = AccelConfig::builder().group(4).shared_wq(32).build().unwrap();
            b = b.device(cfg);
        }
        b.build()
    }

    fn small_workload() -> CacheWorkload {
        CacheWorkload { workers: 4, ops_per_worker: 500, ..CacheWorkload::default() }
    }

    #[test]
    fn byte_skew_matches_appendix() {
        let mut rt = rt_with_swqs(4);
        let r = run_cache_service(&mut rt, &small_workload(), DispatchPolicy::Threshold(8 << 10))
            .unwrap();
        assert!(r.offload_call_fraction < 0.12, "few calls offload: {}", r.offload_call_fraction);
        assert!(r.offload_byte_fraction > 0.80, "most bytes offload: {}", r.offload_byte_fraction);
    }

    #[test]
    fn dsa_improves_throughput_and_tail() {
        let wl = small_workload();
        let mut rt_cpu = rt_with_swqs(4);
        let cpu = run_cache_service(&mut rt_cpu, &wl, DispatchPolicy::CpuOnly).unwrap();
        let mut rt_dsa = rt_with_swqs(4);
        let dsa = run_cache_service(&mut rt_dsa, &wl, DispatchPolicy::Threshold(8 << 10)).unwrap();
        assert!(dsa.mops > cpu.mops, "DSA {} vs CPU {} Mops", dsa.mops, cpu.mops);
        assert!(
            dsa.tail() < cpu.tail(),
            "tail should improve: {:?} vs {:?}",
            dsa.tail(),
            cpu.tail()
        );
    }

    #[test]
    fn improvement_shrinks_when_workers_exceed_wqs() {
        let gain = |workers: u32| -> f64 {
            let wl = CacheWorkload { workers, ops_per_worker: 400, ..CacheWorkload::default() };
            let mut rt_cpu = rt_with_swqs(4);
            let cpu = run_cache_service(&mut rt_cpu, &wl, DispatchPolicy::CpuOnly).unwrap();
            let mut rt_dsa = rt_with_swqs(4);
            let dsa =
                run_cache_service(&mut rt_dsa, &wl, DispatchPolicy::Threshold(8 << 10)).unwrap();
            dsa.mops / cpu.mops
        };
        let at4 = gain(4);
        let at16 = gain(16);
        assert!(
            at16 < at4,
            "gains should shrink past the 4-WQ budget: x{at4:.2} at 4 workers, x{at16:.2} at 16"
        );
    }

    #[test]
    fn latency_histogram_collects_all_ops() {
        let mut rt = rt_with_swqs(4);
        let wl = small_workload();
        let r = run_cache_service(&mut rt, &wl, DispatchPolicy::CpuOnly).unwrap();
        assert_eq!(r.latency.count(), (wl.workers * wl.ops_per_worker) as u64);
        assert!(r.tail() >= r.latency.percentile(50.0).unwrap());
    }
}
