//! DPDK-Vhost-style VirtIO backend with DSA packet-copy offload
//! (the paper's §6.4 case study).
//!
//! The model reproduces the software structure the paper describes:
//!
//! * a **virtqueue** of guest buffers with available/used rings;
//! * a **three-stage asynchronous pipeline** per enqueue burst (G2):
//!   (1) check completions of the previous iteration and write back used
//!   descriptors *in order*, (2) fetch available descriptors, assemble one
//!   DSA **batch descriptor** per burst (G1), submit, (3) return to other
//!   work while DSA moves packets;
//! * **cache-control = 1** so packets land in the LLC, since the VM
//!   consumes them promptly (G3);
//! * a **reordering array**: used descriptors are written back only up to
//!   the first still-in-flight copy, preserving packet order.
//!
//! [`Testpmd`] drives the backend like the paper's DPDK-TestPMD macfwd
//! setup with 100 GbE traffic (Fig. 16b).

use dsa_core::backend::Engine;
use dsa_core::job::{Batch, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_core::DsaError;
use dsa_mem::buffer::Location;
use dsa_mem::memory::BufferHandle;
use dsa_ops::OpKind;
use dsa_sim::time::{SimDuration, SimTime};
use dsa_telemetry::Track;
use std::collections::VecDeque;

/// The descriptor ring exposed by the guest.
#[derive(Debug)]
pub struct Virtqueue {
    buffers: Vec<BufferHandle>,
    avail: VecDeque<u16>,
    used: Vec<u16>,
}

impl Virtqueue {
    /// Allocates a queue of `size` guest buffers of `buf_len` bytes.
    /// Guest buffers live in LLC-warm memory (actively consumed).
    pub fn new(rt: &mut DsaRuntime, size: u16, buf_len: u64) -> Virtqueue {
        let buffers: Vec<BufferHandle> =
            (0..size).map(|_| rt.alloc(buf_len, Location::Llc)).collect();
        Virtqueue { buffers, avail: (0..size).collect(), used: Vec::new() }
    }

    /// Number of descriptors the guest has made available.
    pub fn avail_count(&self) -> usize {
        self.avail.len()
    }

    /// The used ring (write-back order — must equal submission order).
    pub fn used_order(&self) -> &[u16] {
        &self.used
    }

    /// Recycles used descriptors back to the available ring (the guest
    /// consuming packets).
    pub fn recycle(&mut self) {
        for idx in self.used.drain(..) {
            self.avail.push_back(idx);
        }
    }

    /// The guest offers descriptor `idx` to the host (dequeue direction:
    /// the guest filled the buffer and wants it transmitted).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn offer(&mut self, idx: u16) {
        assert!((idx as usize) < self.buffers.len(), "descriptor {idx} out of range");
        self.avail.push_back(idx);
    }

    /// The guest buffer behind descriptor `idx`.
    pub fn buffer(&self, idx: u16) -> &BufferHandle {
        &self.buffers[idx as usize]
    }
}

#[derive(Debug)]
struct InFlight {
    desc_idx: u16,
    completion: SimTime,
}

/// Per-burst accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct BurstReport {
    /// Packets accepted into the pipeline.
    pub enqueued: usize,
    /// Packets dropped for lack of available descriptors.
    pub dropped: usize,
    /// Core time consumed by this burst (stages 1+2).
    pub core_busy: SimDuration,
}

/// Vhost statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct VhostStats {
    /// Packets copied to guest buffers and written back as used.
    pub delivered: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
}

/// The vhost backend.
#[derive(Debug)]
pub struct Vhost {
    vq: Virtqueue,
    engine: Engine,
    inflight: VecDeque<InFlight>,
    stats: VhostStats,
}

/// Cost of writing back one used descriptor (~10 bytes, §6.4: "not worth
/// offloading to DSA due to its small size").
const USED_WRITEBACK: SimDuration = SimDuration::from_ns(8);
/// Cost of scanning one reorder-array slot.
const REORDER_SCAN: SimDuration = SimDuration::from_ns(4);
/// Cost of fetching one available descriptor and reading its address.
const AVAIL_FETCH: SimDuration = SimDuration::from_ns(6);

impl Vhost {
    /// Creates a backend over `vq` using `engine` for packet copies.
    pub fn new(vq: Virtqueue, engine: Engine) -> Vhost {
        Vhost { vq, engine, inflight: VecDeque::new(), stats: VhostStats::default() }
    }

    /// Statistics so far.
    pub fn stats(&self) -> VhostStats {
        self.stats
    }

    /// The virtqueue (for tests and the guest side).
    pub fn virtqueue(&self) -> &Virtqueue {
        &self.vq
    }

    /// Mutable virtqueue access (guest-side recycle).
    pub fn virtqueue_mut(&mut self) -> &mut Virtqueue {
        &mut self.vq
    }

    /// Stage 1: reap completed copies in order, writing back used
    /// descriptors up to the first still-in-flight one.
    fn reap(&mut self, rt: &mut DsaRuntime) -> SimDuration {
        let mut busy = SimDuration::ZERO;
        while let Some(front) = self.inflight.front() {
            busy += REORDER_SCAN;
            if front.completion <= rt.now() {
                if let Some(f) = self.inflight.pop_front() {
                    self.vq.used.push(f.desc_idx);
                    self.stats.delivered += 1;
                    busy += USED_WRITEBACK;
                }
            } else {
                break;
            }
        }
        rt.advance(busy);
        busy
    }

    /// Enqueues one burst of packets (typical burst: 32).
    ///
    /// # Errors
    ///
    /// Propagates DSA submission failures in offload mode.
    pub fn enqueue_burst(
        &mut self,
        rt: &mut DsaRuntime,
        pkts: &[(BufferHandle, u32)],
    ) -> Result<BurstReport, DsaError> {
        let start = rt.now();
        let mut report = BurstReport::default();

        // Stage 1: completion check + in-order used write-back.
        self.reap(rt);
        let reaped = rt.now();

        // Stage 2: fetch available descriptors and submit copies.
        match self.engine {
            Engine::Cpu => {
                for (pkt, len) in pkts {
                    rt.advance(AVAIL_FETCH);
                    let Some(idx) = self.vq.avail.pop_front() else {
                        report.dropped += 1;
                        self.stats.dropped += 1;
                        continue;
                    };
                    let dst = self.vq.buffers[idx as usize];
                    let t = rt.cpu_time(OpKind::Memcpy, *len as u64, Location::Llc, Location::Llc);
                    rt.memory_mut()
                        .copy(pkt.addr(), dst.addr(), (*len as u64).min(dst.len()))
                        // dsa-lint: allow(unwrap, packet and ring buffers were allocated by this workload)
                        .expect("vhost buffers are mapped");
                    rt.advance(t);
                    // Synchronous: immediately used.
                    self.vq.used.push(idx);
                    self.stats.delivered += 1;
                    self.stats.bytes += *len as u64;
                    rt.advance(USED_WRITEBACK);
                    report.enqueued += 1;
                }
            }
            Engine::Dsa { device, wq } => {
                let mut batch = Batch::new().on_device(device).on_wq(wq).cache_control();
                let mut idxs = Vec::new();
                for (pkt, len) in pkts {
                    rt.advance(AVAIL_FETCH);
                    let Some(idx) = self.vq.avail.pop_front() else {
                        report.dropped += 1;
                        self.stats.dropped += 1;
                        continue;
                    };
                    let dst = self.vq.buffers[idx as usize];
                    let src = pkt.slice(0, (*len as u64).min(pkt.len()));
                    let dstv = dst.slice(0, (*len as u64).min(dst.len()));
                    batch.push(Job::memcpy(&src, &dstv));
                    idxs.push((idx, *len));
                }
                if idxs.len() == 1 {
                    // A batch needs >= 2 descriptors; submit singly.
                    let (idx, len) = idxs[0];
                    let dst = self.vq.buffers[idx as usize];
                    // dsa-lint: allow(unwrap, idxs was built from this same pkts slice one loop above)
                    let pkt = pkts.iter().find(|(_, l)| *l == len).expect("present");
                    let src = pkt.0.slice(0, (len as u64).min(pkt.0.len()));
                    let dstv = dst.slice(0, (len as u64).min(dst.len()));
                    let h = Job::memcpy(&src, &dstv)
                        .on_device(device)
                        .on_wq(wq)
                        .cache_control()
                        .submit(rt)?;
                    self.inflight
                        .push_back(InFlight { desc_idx: idx, completion: h.completion_time() });
                    self.stats.bytes += len as u64;
                    report.enqueued += 1;
                } else if !idxs.is_empty() {
                    let handle = batch.submit(rt)?;
                    // Member i of the batch completes no later than the
                    // batch record; order within our model follows
                    // submission order.
                    for (idx, len) in idxs {
                        self.inflight
                            .push_back(InFlight { desc_idx: idx, completion: handle.data_done() });
                        self.stats.bytes += len as u64;
                        report.enqueued += 1;
                    }
                }
            }
        }
        report.core_busy = rt.now().duration_since(start);
        if let Some(hub) = rt.hub().cloned() {
            let track = Track::Workload("vhost-enqueue");
            hub.span(track, "reap", start, reaped);
            hub.span(track, "fetch+submit", reaped, rt.now());
        }
        Ok(report)
    }

    /// Dequeue path (§6.4: "a dequeue operation includes these three
    /// steps, but in a reverse order"): reap previous completions, fetch
    /// guest-offered descriptors, and copy their payloads into host
    /// `mbufs` — batched and asynchronous in DSA mode.
    ///
    /// Returns the descriptor indices whose payload copy was *submitted*
    /// this burst, in order (one per mbuf used).
    ///
    /// # Errors
    ///
    /// Propagates DSA submission failures.
    pub fn dequeue_burst(
        &mut self,
        rt: &mut DsaRuntime,
        mbufs: &[(BufferHandle, u32)],
    ) -> Result<Vec<u16>, DsaError> {
        // Stage 1: completion check + in-order used write-back.
        let start = rt.now();
        self.reap(rt);
        let reaped = rt.now();

        // Stage 2: fetch offered descriptors and submit guest->host copies.
        let mut taken = Vec::new();
        match self.engine {
            Engine::Cpu => {
                for (mbuf, len) in mbufs {
                    rt.advance(AVAIL_FETCH);
                    let Some(idx) = self.vq.avail.pop_front() else { break };
                    let src = self.vq.buffers[idx as usize];
                    let t = rt.cpu_time(OpKind::Memcpy, *len as u64, Location::Llc, Location::Llc);
                    rt.memory_mut()
                        .copy(src.addr(), mbuf.addr(), (*len as u64).min(mbuf.len()))
                        // dsa-lint: allow(unwrap, ring and mbuf buffers were allocated by this workload)
                        .expect("vhost buffers are mapped");
                    rt.advance(t);
                    self.vq.used.push(idx);
                    self.stats.delivered += 1;
                    self.stats.bytes += *len as u64;
                    rt.advance(USED_WRITEBACK);
                    taken.push(idx);
                }
            }
            Engine::Dsa { device, wq } => {
                let mut batch = Batch::new().on_device(device).on_wq(wq).cache_control();
                let mut idxs = Vec::new();
                for (mbuf, len) in mbufs {
                    rt.advance(AVAIL_FETCH);
                    let Some(idx) = self.vq.avail.pop_front() else { break };
                    let src = self.vq.buffers[idx as usize];
                    let s = src.slice(0, (*len as u64).min(src.len()));
                    let d = mbuf.slice(0, (*len as u64).min(mbuf.len()));
                    batch.push(Job::memcpy(&s, &d));
                    idxs.push((idx, *len));
                }
                if idxs.len() == 1 {
                    let (idx, len) = idxs[0];
                    let src = self.vq.buffers[idx as usize];
                    let (mbuf, _) = mbufs[0];
                    let s = src.slice(0, (len as u64).min(src.len()));
                    let d = mbuf.slice(0, (len as u64).min(mbuf.len()));
                    let h = Job::memcpy(&s, &d)
                        .on_device(device)
                        .on_wq(wq)
                        .cache_control()
                        .submit(rt)?;
                    self.inflight
                        .push_back(InFlight { desc_idx: idx, completion: h.completion_time() });
                    self.stats.bytes += len as u64;
                    taken.push(idx);
                } else if !idxs.is_empty() {
                    let handle = batch.submit(rt)?;
                    for (idx, len) in idxs {
                        self.inflight
                            .push_back(InFlight { desc_idx: idx, completion: handle.data_done() });
                        self.stats.bytes += len as u64;
                        taken.push(idx);
                    }
                }
            }
        }
        if let Some(hub) = rt.hub().cloned() {
            let track = Track::Workload("vhost-dequeue");
            hub.span(track, "reap", start, reaped);
            hub.span(track, "fetch+submit", reaped, rt.now());
        }
        Ok(taken)
    }

    /// Drains all in-flight copies (end of run).
    pub fn drain(&mut self, rt: &mut DsaRuntime) {
        if let Some(last) = self.inflight.back() {
            rt.advance_to(last.completion);
        }
        self.reap(rt);
    }
}

/// Fig. 16b's harness: TestPMD-style forwarding at a given packet size.
#[derive(Clone, Copy, Debug)]
pub struct Testpmd {
    /// Payload size in bytes.
    pub pkt_size: u32,
    /// Packets per burst (DPDK typical: 32).
    pub burst: usize,
    /// Bursts to run.
    pub bursts: u32,
    /// Base per-packet processing cost outside the copy (mac forwarding,
    /// mbuf management).
    pub per_pkt_overhead: SimDuration,
}

impl Default for Testpmd {
    fn default() -> Self {
        Testpmd {
            pkt_size: 1024,
            burst: 32,
            bursts: 300,
            per_pkt_overhead: SimDuration::from_ns(40),
        }
    }
}

/// Result of a forwarding run.
#[derive(Clone, Copy, Debug)]
pub struct ForwardingReport {
    /// Achieved forwarding rate in million packets per second.
    pub mpps: f64,
    /// Delivered packets.
    pub delivered: u64,
    /// Dropped packets.
    pub dropped: u64,
}

impl Testpmd {
    /// Runs the forwarding loop in `mode` against a fresh runtime.
    ///
    /// # Errors
    ///
    /// Propagates DSA submission failures.
    pub fn run(&self, rt: &mut DsaRuntime, engine: Engine) -> Result<ForwardingReport, DsaError> {
        let vq = Virtqueue::new(rt, 512, self.pkt_size as u64);
        let mut vhost = Vhost::new(vq, engine);
        // A pool of hot packet buffers (NIC RX ring, LLC-resident).
        let pool: Vec<BufferHandle> =
            (0..self.burst).map(|_| rt.alloc(self.pkt_size as u64, Location::Llc)).collect();
        let burst: Vec<(BufferHandle, u32)> = pool.iter().map(|b| (*b, self.pkt_size)).collect();

        let start = rt.now();
        for _ in 0..self.bursts {
            // Per-packet forwarding work outside the copy.
            rt.advance(self.per_pkt_overhead.saturating_mul(self.burst as u64));
            vhost.enqueue_burst(rt, &burst)?;
            // The guest consumes continuously.
            vhost.virtqueue_mut().recycle();
        }
        vhost.drain(rt);
        let elapsed = rt.now().duration_since(start);
        let stats = vhost.stats();
        Ok(ForwardingReport {
            mpps: stats.delivered as f64 / elapsed.as_us_f64(),
            delivered: stats.delivered,
            dropped: stats.dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::config::presets;
    use dsa_core::runtime::DsaRuntime;
    use dsa_mem::topology::Platform;

    fn rt_with_full_device() -> DsaRuntime {
        DsaRuntime::builder(Platform::spr()).device(presets::engines_behind_one_dwq(4, 128)).build()
    }

    #[test]
    fn packets_arrive_intact_and_in_order() {
        let mut rt = rt_with_full_device();
        let vq = Virtqueue::new(&mut rt, 64, 2048);
        let mut vhost = Vhost::new(vq, Engine::dsa());
        let pkts: Vec<(BufferHandle, u32)> = (0..8)
            .map(|i| {
                let b = rt.alloc(2048, Location::Llc);
                rt.fill_pattern(&b, i as u8 + 1);
                (b, 1500)
            })
            .collect();
        vhost.enqueue_burst(&mut rt, &pkts).unwrap();
        vhost.drain(&mut rt);
        let used = vhost.virtqueue().used_order().to_vec();
        assert_eq!(used.len(), 8);
        // In-order write-back: descriptors in ascending pop order.
        let mut sorted = used.clone();
        sorted.sort_unstable();
        assert_eq!(used, sorted);
        // Payloads intact.
        for (i, idx) in used.iter().enumerate() {
            let buf = *vhost.virtqueue().buffer(*idx);
            let data = rt.read(&buf).unwrap();
            assert!(data[..1500].iter().all(|&b| b == i as u8 + 1), "packet {i} corrupted");
        }
    }

    #[test]
    fn cpu_mode_delivers_synchronously() {
        let mut rt = DsaRuntime::spr_default();
        let vq = Virtqueue::new(&mut rt, 64, 2048);
        let mut vhost = Vhost::new(vq, Engine::Cpu);
        let b = rt.alloc(2048, Location::Llc);
        rt.fill_pattern(&b, 0xEE);
        let report = vhost.enqueue_burst(&mut rt, &[(b, 1024)]).unwrap();
        assert_eq!(report.enqueued, 1);
        assert_eq!(vhost.stats().delivered, 1);
        assert!(report.core_busy.as_ns_f64() > 40.0, "CPU copy should cost core time");
    }

    #[test]
    fn queue_exhaustion_drops() {
        let mut rt = rt_with_full_device();
        let vq = Virtqueue::new(&mut rt, 4, 2048);
        let mut vhost = Vhost::new(vq, Engine::dsa());
        let pkts: Vec<(BufferHandle, u32)> =
            (0..6).map(|_| (rt.alloc(2048, Location::Llc), 512)).collect();
        let report = vhost.enqueue_burst(&mut rt, &pkts).unwrap();
        assert_eq!(report.enqueued, 4);
        assert_eq!(report.dropped, 2);
    }

    #[test]
    fn dsa_forwarding_flat_cpu_drops_with_size() {
        let rate = |size: u32, engine: Engine| -> f64 {
            let mut rt = rt_with_full_device();
            Testpmd { pkt_size: size, bursts: 120, ..Testpmd::default() }
                .run(&mut rt, engine)
                .unwrap()
                .mpps
        };
        let dsa = Engine::dsa();
        let dsa_small = rate(256, dsa);
        let dsa_large = rate(1518, dsa);
        let cpu_small = rate(256, Engine::Cpu);
        let cpu_large = rate(1518, Engine::Cpu);
        // DSA mode stays roughly flat; CPU mode degrades with size.
        assert!(
            dsa_large > 0.8 * dsa_small,
            "DSA rate should be ~flat: {dsa_small} -> {dsa_large}"
        );
        assert!(
            cpu_large < 0.75 * cpu_small,
            "CPU rate should drop with size: {cpu_small} -> {cpu_large}"
        );
        // Above 256 B, DSA wins and the margin grows (paper: 1.14–2.29x).
        let ratio = dsa_large / cpu_large;
        assert!(ratio > 1.14, "large-packet speedup {ratio}");
    }

    #[test]
    fn burst_core_cost_is_small_in_dsa_mode() {
        let mut rt = rt_with_full_device();
        let vq = Virtqueue::new(&mut rt, 128, 2048);
        let mut vhost = Vhost::new(vq, Engine::dsa());
        let pkts: Vec<(BufferHandle, u32)> =
            (0..32).map(|_| (rt.alloc(2048, Location::Llc), 1518)).collect();
        let report = vhost.enqueue_burst(&mut rt, &pkts).unwrap();
        // 32 packets submitted with one batch descriptor: far below the
        // cost of 32 CPU copies of 1518 B (~100 ns each).
        assert!(
            report.core_busy < SimDuration::from_ns(1600),
            "stage-2 cost {:?}",
            report.core_busy
        );
    }
}

#[cfg(test)]
mod dequeue_tests {
    use super::*;
    use dsa_core::config::presets;
    use dsa_core::runtime::DsaRuntime;
    use dsa_mem::topology::Platform;

    fn rt4() -> DsaRuntime {
        DsaRuntime::builder(Platform::spr()).device(presets::engines_behind_one_dwq(4, 128)).build()
    }

    #[test]
    fn dequeue_moves_guest_payloads_to_host() {
        let mut rt = rt4();
        let mut vq = Virtqueue::new(&mut rt, 32, 2048);
        // The guest fills four descriptors and offers them. Take the
        // buffer handles up front (the host normally reads them from the
        // descriptor table).
        let idxs = [3u16, 7, 11, 15];
        for (i, &idx) in idxs.iter().enumerate() {
            let buf = *vq.buffer(idx);
            rt.fill_pattern(&buf, 0xC0 + i as u8);
        }
        // Remove from the default avail ring, then offer in guest order.
        vq.avail.clear();
        for &idx in &idxs {
            vq.offer(idx);
        }
        let mut vhost = Vhost::new(vq, Engine::dsa());
        let mbufs: Vec<(BufferHandle, u32)> =
            (0..4).map(|_| (rt.alloc(2048, Location::Llc), 1200u32)).collect();
        let taken = vhost.dequeue_burst(&mut rt, &mbufs).unwrap();
        assert_eq!(taken, idxs.to_vec(), "descriptors consumed in guest order");
        vhost.drain(&mut rt);
        for (i, (mbuf, len)) in mbufs.iter().enumerate() {
            let data = rt.read(mbuf).unwrap();
            assert!(
                data[..*len as usize].iter().all(|&b| b == 0xC0 + i as u8),
                "mbuf {i} payload corrupted"
            );
        }
        // Used write-back happened in order after drain.
        assert_eq!(vhost.virtqueue().used_order(), idxs);
        assert_eq!(vhost.stats().delivered, 4);
    }

    #[test]
    fn dequeue_cpu_mode_is_synchronous() {
        let mut rt = DsaRuntime::spr_default();
        let mut vq = Virtqueue::new(&mut rt, 8, 2048);
        let buf = *vq.buffer(0);
        rt.fill_pattern(&buf, 0x99);
        vq.avail.clear();
        vq.offer(0);
        let mut vhost = Vhost::new(vq, Engine::Cpu);
        let mbuf = (rt.alloc(2048, Location::Llc), 800u32);
        let taken = vhost.dequeue_burst(&mut rt, &[mbuf]).unwrap();
        assert_eq!(taken, vec![0]);
        assert_eq!(vhost.stats().delivered, 1);
        assert!(rt.read(&mbuf.0).unwrap()[..800].iter().all(|&b| b == 0x99));
    }

    #[test]
    fn dequeue_stops_when_guest_offers_nothing() {
        let mut rt = rt4();
        let mut vq = Virtqueue::new(&mut rt, 8, 2048);
        vq.avail.clear(); // guest offered nothing
        let mut vhost = Vhost::new(vq, Engine::dsa());
        let mbufs: Vec<(BufferHandle, u32)> =
            (0..2).map(|_| (rt.alloc(2048, Location::Llc), 512u32)).collect();
        let taken = vhost.dequeue_burst(&mut rt, &mbufs).unwrap();
        assert!(taken.is_empty());
    }
}
