//! Property-style tests for the workloads: ordering and integrity
//! invariants under arbitrary traffic.
//!
//! Randomized inputs come from the in-repo deterministic [`SplitMix64`]
//! generator so the suite runs offline with no external test-harness
//! dependency; every case is reproducible from the fixed seeds below.

use dsa_core::backend::Engine;
use dsa_core::config::presets;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_mem::memory::BufferHandle;
use dsa_mem::topology::Platform;
use dsa_sim::rng::SplitMix64;
use dsa_workloads::vhost::{Vhost, Virtqueue};

/// Whatever burst pattern arrives, the used ring preserves submission
/// order and every delivered payload is intact.
#[test]
fn vhost_inorder_delivery_under_arbitrary_bursts() {
    let mut rng = SplitMix64::new(0x1105_0001);
    for _ in 0..12 {
        let engines = 1 + rng.next_below(4) as u32;
        let bursts: Vec<(usize, u32)> = (0..1 + rng.next_below(7))
            .map(|_| (1 + rng.next_below(15) as usize, 64 + rng.next_below(1436) as u32))
            .collect();
        let mut rt = DsaRuntime::builder(Platform::spr())
            .device(presets::engines_behind_one_dwq(engines, 128))
            .build();
        let vq = Virtqueue::new(&mut rt, 256, 2048);
        let mut vhost = Vhost::new(vq, Engine::dsa());

        let mut seq = 0u8;
        let mut expected_payloads = Vec::new();
        for (count, len) in bursts {
            let pkts: Vec<(BufferHandle, u32)> = (0..count)
                .map(|_| {
                    seq = seq.wrapping_add(1).max(1);
                    let b = rt.alloc(2048, Location::Llc);
                    rt.fill_pattern(&b, seq);
                    expected_payloads.push((seq, len));
                    (b, len)
                })
                .collect();
            let report = vhost.enqueue_burst(&mut rt, &pkts).unwrap();
            assert_eq!(report.enqueued, count);
            assert_eq!(report.dropped, 0);
        }
        vhost.drain(&mut rt);

        let used = vhost.virtqueue().used_order().to_vec();
        assert_eq!(used.len(), expected_payloads.len());
        // In-order: descriptors were popped from a fresh queue 0,1,2,...
        for (i, &idx) in used.iter().enumerate() {
            assert_eq!(idx as usize, i, "used ring out of order");
            let buf = *vhost.virtqueue().buffer(idx);
            let (stamp, len) = expected_payloads[i];
            let data = rt.read(&buf).unwrap();
            assert!(data[..len as usize].iter().all(|&b| b == stamp), "payload {i} corrupted");
        }
        assert_eq!(vhost.stats().delivered, expected_payloads.len() as u64);
    }
}

/// CPU and DSA modes deliver identical payload bytes for the same
/// traffic (the offload is transparent to correctness).
#[test]
fn vhost_modes_agree_functionally() {
    let mut rng = SplitMix64::new(0x1105_0002);
    for _ in 0..12 {
        let lens: Vec<u32> =
            (0..1 + rng.next_below(11)).map(|_| 64 + rng.next_below(1936) as u32).collect();
        let deliver = |engine: Engine| {
            let mut rt = DsaRuntime::builder(Platform::spr())
                .device(presets::engines_behind_one_dwq(4, 128))
                .build();
            let vq = Virtqueue::new(&mut rt, 64, 2048);
            let mut vhost = Vhost::new(vq, engine);
            let pkts: Vec<(BufferHandle, u32)> = lens
                .iter()
                .enumerate()
                .map(|(i, &len)| {
                    let b = rt.alloc(2048, Location::Llc);
                    rt.fill_pattern(&b, (i % 251) as u8 + 1);
                    (b, len)
                })
                .collect();
            vhost.enqueue_burst(&mut rt, &pkts).unwrap();
            vhost.drain(&mut rt);
            let used = vhost.virtqueue().used_order().to_vec();
            used.iter()
                .map(|&idx| rt.read(vhost.virtqueue().buffer(idx)).unwrap().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(deliver(Engine::Cpu), deliver(Engine::dsa()));
    }
}
