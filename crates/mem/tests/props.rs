//! Property-style tests for the memory-system model: cache conservation
//! laws, address-space safety, translation consistency, DDIO spill bounds.
//!
//! Randomized inputs come from the in-repo deterministic [`SplitMix64`]
//! generator so the suite runs offline with no external test-harness
//! dependency; every case is reproducible from the fixed seeds below.

use dsa_mem::agent::AgentId;
use dsa_mem::buffer::{Location, PageSize};
use dsa_mem::cache::{AllocPolicy, DdioTracker, Llc, WayMask};
use dsa_mem::memory::Memory;
use dsa_mem::translate::{PageTable, TranslationCache};
use dsa_sim::rng::SplitMix64;
use dsa_sim::time::{SimDuration, SimTime};

const CASES: usize = 32;

#[test]
fn llc_occupancy_is_conserved() {
    let mut rng = SplitMix64::new(0x3E3_0001);
    for _ in 0..CASES {
        let accesses = 1 + rng.next_below(499) as usize;
        let mut llc = Llc::new(64 << 10, 8, 64);
        for _ in 0..accesses {
            let agent = rng.next_below(4) as u16;
            let addr = rng.next_below(1 << 16);
            let policy = if rng.next_u64() & 1 == 0 {
                AllocPolicy::NoAllocInvalidate
            } else {
                AllocPolicy::AllocOnMiss
            };
            llc.access(AgentId::core(agent), addr, policy, WayMask::ALL);
            // Invariants after every access:
            assert!(llc.total_occupancy_bytes() <= llc.capacity_bytes());
            let per_agent: u64 = (0..4).map(|a| llc.occupancy_bytes(AgentId::core(a))).sum();
            assert_eq!(per_agent, llc.total_occupancy_bytes());
        }
    }
}

#[test]
fn llc_way_mask_confines_each_agent() {
    let mut rng = SplitMix64::new(0x3E3_0002);
    for _ in 0..CASES {
        // Agent 0 restricted to 2 of 8 ways; it can never hold more than
        // 2/8 of the cache.
        let mut llc = Llc::new(32 << 10, 8, 64);
        let mask = WayMask::range(0, 2);
        for _ in 0..1 + rng.next_below(399) {
            let addr = rng.next_below(1 << 18);
            llc.access(AgentId::io(0), addr, AllocPolicy::AllocOnMiss, mask);
            assert!(llc.occupancy_bytes(AgentId::io(0)) <= llc.capacity_bytes() / 4);
        }
    }
}

#[test]
fn llc_flush_leaves_no_trace() {
    let mut rng = SplitMix64::new(0x3E3_0003);
    for _ in 0..CASES {
        let base = rng.next_below(1 << 20);
        let lines = 1 + rng.next_below(63);
        let mut llc = Llc::new(64 << 10, 8, 64);
        let a = AgentId::core(0);
        for i in 0..lines {
            llc.access(a, base + i * 64, AllocPolicy::AllocOnMiss, WayMask::ALL);
        }
        llc.flush_range(base, lines * 64);
        for i in 0..lines {
            let r = llc.access(a, base + i * 64, AllocPolicy::NoAlloc, WayMask::ALL);
            assert!(!r.hit, "line {i} survived a flush");
        }
    }
}

#[test]
fn memory_roundtrips_at_arbitrary_offsets() {
    let mut rng = SplitMix64::new(0x3E3_0004);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(8191);
        let mut m = Memory::new();
        let buf = m.alloc(len, Location::local_dram());
        let mut shadow = vec![0u8; len as usize];
        for _ in 0..1 + rng.next_below(49) {
            let off = rng.next_below(len);
            let val = rng.next_u64() as u8;
            m.write(buf.addr() + off, &[val]).unwrap();
            shadow[off as usize] = val;
        }
        assert_eq!(m.read(buf.addr(), len).unwrap(), &shadow[..]);
    }
}

#[test]
fn memory_copy_is_memmove() {
    let mut rng = SplitMix64::new(0x3E3_0005);
    for _ in 0..CASES {
        let len = 8 + rng.next_below(248);
        let src_off = rng.next_below(64);
        let dst_off = rng.next_below(64);
        let mut m = Memory::new();
        let buf = m.alloc(512, Location::local_dram());
        let data: Vec<u8> = (0..512u32).map(|i| i as u8).collect();
        m.write(buf.addr(), &data).unwrap();
        let mut shadow = data.clone();
        m.copy(buf.addr() + src_off, buf.addr() + dst_off, len).unwrap();
        shadow.copy_within(src_off as usize..(src_off + len) as usize, dst_off as usize);
        assert_eq!(m.read(buf.addr(), 512).unwrap(), &shadow[..]);
    }
}

#[test]
fn out_of_range_accesses_always_fail() {
    let mut rng = SplitMix64::new(0x3E3_0006);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(4095);
        let over = 1 + rng.next_below(4095);
        let mut m = Memory::new();
        let buf = m.alloc(len, Location::local_dram());
        assert!(m.read(buf.addr() + len + over + (4 << 20), 1).is_err());
        assert!(m.read(buf.addr(), len + (4 << 20)).is_err());
    }
}

#[test]
fn translation_hits_iff_page_cached() {
    let mut rng = SplitMix64::new(0x3E3_0007);
    for _ in 0..CASES {
        let mut pt = PageTable::new();
        pt.map_range(0, 32 * 4096, PageSize::Base4K);
        let mut atc = TranslationCache::new(64, SimDuration::from_ns(100));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1 + rng.next_below(99) {
            let p = rng.next_below(32);
            let out = atc.translate(&pt, p * 4096 + 123);
            assert!(!out.fault);
            // With capacity 64 > 32 pages, a page hits iff seen before.
            assert_eq!(out.hit, seen.contains(&p));
            assert_eq!(out.cost.is_zero(), out.hit);
            seen.insert(p);
        }
    }
}

#[test]
fn huge_pages_never_translate_slower() {
    let mut rng = SplitMix64::new(0x3E3_0008);
    for _ in 0..CASES {
        let mut pt4k = PageTable::new();
        pt4k.map_range(0, 8 << 20, PageSize::Base4K);
        let mut pt2m = PageTable::new();
        pt2m.map_range(0, 8 << 20, PageSize::Huge2M);
        let mut atc4k = TranslationCache::new(32, SimDuration::from_ns(100));
        let mut atc2m = TranslationCache::new(32, SimDuration::from_ns(100));
        for _ in 0..1 + rng.next_below(199) {
            let a = rng.next_below(8 << 20);
            atc4k.translate(&pt4k, a);
            atc2m.translate(&pt2m, a);
        }
        assert!(
            atc2m.misses() <= atc4k.misses(),
            "2M pages can only reduce walk count: {} vs {}",
            atc2m.misses(),
            atc4k.misses()
        );
    }
}

#[test]
fn ddio_spill_fraction_is_bounded_and_monotone() {
    let mut rng = SplitMix64::new(0x3E3_0009);
    for _ in 0..CASES {
        let mut t = DdioTracker::new(1 << 20, SimDuration::from_ms(10));
        let mut last = 0.0f64;
        for _ in 0..1 + rng.next_below(99) {
            let addr = rng.next_below(1 << 24);
            let bytes = 1 + rng.next_below((1 << 18) - 1);
            let f = t.write(SimTime::ZERO, addr, bytes);
            assert!((0.0..=1.0).contains(&f), "spill fraction {f}");
            // Within one window the footprint only grows, so the spill
            // fraction is non-decreasing.
            assert!(f >= last - 1e-12);
            last = f;
        }
    }
}
