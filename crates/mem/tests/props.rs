//! Property tests for the memory-system model: cache conservation laws,
//! address-space safety, translation consistency, DDIO spill bounds.

use dsa_mem::agent::AgentId;
use dsa_mem::buffer::{Location, PageSize};
use dsa_mem::cache::{AllocPolicy, DdioTracker, Llc, WayMask};
use dsa_mem::memory::Memory;
use dsa_mem::translate::{PageTable, TranslationCache};
use dsa_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn llc_occupancy_is_conserved(
        accesses in prop::collection::vec((0u16..4, 0u64..1 << 16, any::<bool>()), 1..500)
    ) {
        let mut llc = Llc::new(64 << 10, 8, 64);
        for (agent, addr, invalidate) in accesses {
            let policy = if invalidate {
                AllocPolicy::NoAllocInvalidate
            } else {
                AllocPolicy::AllocOnMiss
            };
            llc.access(AgentId::core(agent), addr, policy, WayMask::ALL);
            // Invariants after every access:
            prop_assert!(llc.total_occupancy_bytes() <= llc.capacity_bytes());
            let per_agent: u64 =
                (0..4).map(|a| llc.occupancy_bytes(AgentId::core(a))).sum();
            prop_assert_eq!(per_agent, llc.total_occupancy_bytes());
        }
    }

    #[test]
    fn llc_way_mask_confines_each_agent(
        accesses in prop::collection::vec(0u64..1 << 18, 1..400)
    ) {
        // Agent 0 restricted to 2 of 8 ways; it can never hold more than
        // 2/8 of the cache.
        let mut llc = Llc::new(32 << 10, 8, 64);
        let mask = WayMask::range(0, 2);
        for addr in accesses {
            llc.access(AgentId::io(0), addr, AllocPolicy::AllocOnMiss, mask);
            prop_assert!(llc.occupancy_bytes(AgentId::io(0)) <= llc.capacity_bytes() / 4);
        }
    }

    #[test]
    fn llc_flush_leaves_no_trace(
        base in 0u64..1 << 20,
        lines in 1u64..64
    ) {
        let mut llc = Llc::new(64 << 10, 8, 64);
        let a = AgentId::core(0);
        for i in 0..lines {
            llc.access(a, base + i * 64, AllocPolicy::AllocOnMiss, WayMask::ALL);
        }
        llc.flush_range(base, lines * 64);
        for i in 0..lines {
            let r = llc.access(a, base + i * 64, AllocPolicy::NoAlloc, WayMask::ALL);
            prop_assert!(!r.hit, "line {i} survived a flush");
        }
    }

    #[test]
    fn memory_roundtrips_at_arbitrary_offsets(
        len in 1u64..8192,
        writes in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..50)
    ) {
        let mut m = Memory::new();
        let buf = m.alloc(len, Location::local_dram());
        let mut shadow = vec![0u8; len as usize];
        for (idx, val) in writes {
            let off = idx.index(len as usize) as u64;
            m.write(buf.addr() + off, &[val]).unwrap();
            shadow[off as usize] = val;
        }
        prop_assert_eq!(m.read(buf.addr(), len).unwrap(), &shadow[..]);
    }

    #[test]
    fn memory_copy_is_memmove(
        len in 8u64..256,
        src_off in 0u64..64,
        dst_off in 0u64..64
    ) {
        let mut m = Memory::new();
        let buf = m.alloc(512, Location::local_dram());
        let data: Vec<u8> = (0..512u32).map(|i| i as u8).collect();
        m.write(buf.addr(), &data).unwrap();
        let mut shadow = data.clone();
        m.copy(buf.addr() + src_off, buf.addr() + dst_off, len).unwrap();
        shadow.copy_within(src_off as usize..(src_off + len) as usize, dst_off as usize);
        prop_assert_eq!(m.read(buf.addr(), 512).unwrap(), &shadow[..]);
    }

    #[test]
    fn out_of_range_accesses_always_fail(
        len in 1u64..4096,
        over in 1u64..4096
    ) {
        let mut m = Memory::new();
        let buf = m.alloc(len, Location::local_dram());
        prop_assert!(m.read(buf.addr() + len + over + (4 << 20), 1).is_err());
        prop_assert!(m.read(buf.addr(), len + (4 << 20)).is_err());
    }

    #[test]
    fn translation_hits_iff_page_cached(
        pages in prop::collection::vec(0u64..32, 1..100)
    ) {
        let mut pt = PageTable::new();
        pt.map_range(0, 32 * 4096, PageSize::Base4K);
        let mut atc = TranslationCache::new(64, SimDuration::from_ns(100));
        let mut seen = std::collections::HashSet::new();
        for p in pages {
            let out = atc.translate(&pt, p * 4096 + 123);
            prop_assert!(!out.fault);
            // With capacity 64 > 32 pages, a page hits iff seen before.
            prop_assert_eq!(out.hit, seen.contains(&p));
            prop_assert_eq!(out.cost.is_zero(), out.hit);
            seen.insert(p);
        }
    }

    #[test]
    fn huge_pages_never_translate_slower(
        addrs in prop::collection::vec(0u64..(8 << 20), 1..200)
    ) {
        let mut pt4k = PageTable::new();
        pt4k.map_range(0, 8 << 20, PageSize::Base4K);
        let mut pt2m = PageTable::new();
        pt2m.map_range(0, 8 << 20, PageSize::Huge2M);
        let mut atc4k = TranslationCache::new(32, SimDuration::from_ns(100));
        let mut atc2m = TranslationCache::new(32, SimDuration::from_ns(100));
        for &a in &addrs {
            atc4k.translate(&pt4k, a);
            atc2m.translate(&pt2m, a);
        }
        prop_assert!(atc2m.misses() <= atc4k.misses(),
            "2M pages can only reduce walk count: {} vs {}", atc2m.misses(), atc4k.misses());
    }

    #[test]
    fn ddio_spill_fraction_is_bounded_and_monotone(
        writes in prop::collection::vec((0u64..1 << 24, 1u64..1 << 18), 1..100)
    ) {
        let mut t = DdioTracker::new(1 << 20, SimDuration::from_ms(10));
        let mut last = 0.0f64;
        for (addr, bytes) in writes {
            let f = t.write(SimTime::ZERO, addr, bytes);
            prop_assert!((0.0..=1.0).contains(&f), "spill fraction {f}");
            // Within one window the footprint only grows, so the spill
            // fraction is non-decreasing.
            prop_assert!(f >= last - 1e-12);
            last = f;
        }
    }
}
