//! Last-level cache model: set-associative, way-partitioned, with DDIO ways
//! and per-agent occupancy accounting.
//!
//! Reproduces the cache-side phenomena the paper measures:
//!
//! * **Cache pollution** (Figs. 12/13): software `memcpy()` allocates both
//!   its source reads and destination writes into the shared LLC, evicting
//!   co-running applications' data; DSA reads *never* allocate and DSA
//!   writes with the cache-control flag set are confined to the DDIO ways.
//! * **Way partitioning / CAT** (§4.1): experiments isolate cores to subsets
//!   of ways via a per-access [`WayMask`], mirroring `pqos`.
//! * **The leaky-DMA problem** (Fig. 10): when the inbound write footprint
//!   outruns the DDIO share of the LLC, writes spill to DRAM and throughput
//!   becomes memory-bound. [`DdioTracker`] measures the spill fraction.

use crate::agent::AgentId;
use dsa_sim::time::{SimDuration, SimTime};

/// A bitmask over LLC ways an access is allowed to allocate into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WayMask(pub u32);

impl WayMask {
    /// Allows allocation into every way.
    pub const ALL: WayMask = WayMask(u32::MAX);

    /// A mask covering ways `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `hi > 32`.
    pub fn range(lo: u32, hi: u32) -> WayMask {
        assert!(lo < hi && hi <= 32, "invalid way range {lo}..{hi}");
        let width = hi - lo;
        let bits = if width == 32 { u32::MAX } else { ((1u32 << width) - 1) << lo };
        WayMask(bits)
    }

    /// True if way `w` is allowed.
    pub fn allows(self, w: u32) -> bool {
        self.0 & (1 << w) != 0
    }
}

/// How an access interacts with allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Allocate the line on a miss (normal core load/store).
    AllocOnMiss,
    /// Never allocate; serve from cache on hit, memory on miss
    /// (DSA source reads, non-temporal core loads).
    NoAlloc,
    /// Never allocate and *invalidate* the line if present
    /// (DSA destination writes with cache-control = 0).
    NoAllocInvalidate,
}

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was found in the cache.
    pub hit: bool,
    /// Whether the access evicted a valid line owned by a *different* agent
    /// (the pollution signal).
    pub evicted_other: bool,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: u64,
    owner: AgentId,
    last_use: u64,
    valid: bool,
}

const INVALID: Entry = Entry { tag: 0, owner: AgentId::NONE, last_use: 0, valid: false };

/// The set-associative LLC.
///
/// ```
/// use dsa_mem::cache::{AllocPolicy, Llc, WayMask};
/// use dsa_mem::agent::AgentId;
/// let mut llc = Llc::new(1 << 20, 16, 64); // 1 MiB, 16-way, 64-B lines
/// let core = AgentId::core(0);
/// let miss = llc.access(core, 0x1000, AllocPolicy::AllocOnMiss, WayMask::ALL);
/// assert!(!miss.hit);
/// let hit = llc.access(core, 0x1000, AllocPolicy::AllocOnMiss, WayMask::ALL);
/// assert!(hit.hit);
/// assert_eq!(llc.occupancy_bytes(core), 64);
/// ```
#[derive(Clone, Debug)]
pub struct Llc {
    entries: Vec<Entry>,
    sets: u64,
    ways: u32,
    line_size: u64,
    tick: u64,
    occupancy: Vec<u64>, // lines held, indexed by AgentId slot
}

impl Llc {
    /// Creates a cache of `capacity_bytes` with `ways` ways and
    /// `line_size`-byte lines. The set count is rounded down to a power of
    /// two so indexing stays a shift.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets, ways > 32, …).
    pub fn new(capacity_bytes: u64, ways: u32, line_size: u64) -> Llc {
        assert!((1..=32).contains(&ways), "ways must be in 1..=32");
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        let raw_sets = capacity_bytes / (ways as u64 * line_size);
        assert!(raw_sets >= 1, "cache too small for its geometry");
        let sets = 1u64 << (63 - raw_sets.leading_zeros());
        Llc {
            entries: vec![INVALID; (sets * ways as u64) as usize],
            sets,
            ways,
            line_size,
            tick: 0,
            occupancy: vec![0; AgentId::SLOTS],
        }
    }

    /// Effective capacity in bytes (after set rounding).
    pub fn capacity_bytes(&self) -> u64 {
        self.sets * self.ways as u64 * self.line_size
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of ways.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    fn set_index(&self, addr: u64) -> u64 {
        // Mix the upper bits so page-strided streams spread over sets.
        let line = addr / self.line_size;
        let h = line ^ (line >> 13) ^ (line >> 29);
        h & (self.sets - 1)
    }

    fn line_tag(&self, addr: u64) -> u64 {
        addr / self.line_size
    }

    /// Performs one line-granular access.
    pub fn access(
        &mut self,
        owner: AgentId,
        addr: u64,
        policy: AllocPolicy,
        mask: WayMask,
    ) -> AccessResult {
        self.tick += 1;
        let set = self.set_index(addr);
        let tag = self.line_tag(addr);
        let base = (set * self.ways as u64) as usize;
        let slots = &mut self.entries[base..base + self.ways as usize];

        // Probe every way (data may live outside the allocation mask).
        for e in slots.iter_mut() {
            if e.valid && e.tag == tag {
                match policy {
                    AllocPolicy::NoAllocInvalidate => {
                        e.valid = false;
                        self.occupancy[e.owner.slot()] -= 1;
                        return AccessResult { hit: true, evicted_other: false };
                    }
                    _ => {
                        e.last_use = self.tick;
                        return AccessResult { hit: true, evicted_other: false };
                    }
                }
            }
        }

        // Miss.
        if matches!(policy, AllocPolicy::NoAlloc | AllocPolicy::NoAllocInvalidate) {
            return AccessResult { hit: false, evicted_other: false };
        }

        // Choose a victim: an invalid allowed way, else LRU among allowed.
        let mut victim: Option<usize> = None;
        let mut victim_lru = u64::MAX;
        for (w, e) in slots.iter().enumerate() {
            if !mask.allows(w as u32) {
                continue;
            }
            if !e.valid {
                victim = Some(w);
                break;
            }
            if e.last_use < victim_lru {
                victim_lru = e.last_use;
                victim = Some(w);
            }
        }
        let Some(w) = victim else {
            // Mask allows no way present in this cache: treat as uncached.
            return AccessResult { hit: false, evicted_other: false };
        };
        let e = &mut slots[w];
        let mut evicted_other = false;
        if e.valid {
            self.occupancy[e.owner.slot()] -= 1;
            evicted_other = e.owner != owner;
        }
        *e = Entry { tag, owner, last_use: self.tick, valid: true };
        self.occupancy[owner.slot()] += 1;
        AccessResult { hit: false, evicted_other }
    }

    /// Invalidates every line in `[start, start+len)` (the DSA Cache Flush
    /// operation / `clflush` loops).
    ///
    /// Returns the number of lines invalidated.
    pub fn flush_range(&mut self, start: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = start / self.line_size;
        let last = (start + len - 1) / self.line_size;
        let mut flushed = 0;
        for line in first..=last {
            let addr = line * self.line_size;
            let set = self.set_index(addr);
            let tag = self.line_tag(addr);
            let base = (set * self.ways as u64) as usize;
            for e in &mut self.entries[base..base + self.ways as usize] {
                if e.valid && e.tag == tag {
                    e.valid = false;
                    self.occupancy[e.owner.slot()] -= 1;
                    flushed += 1;
                }
            }
        }
        flushed
    }

    /// Bytes currently resident that were allocated by `owner`.
    pub fn occupancy_bytes(&self, owner: AgentId) -> u64 {
        self.occupancy[owner.slot()] * self.line_size
    }

    /// Bytes currently resident across all owners.
    pub fn total_occupancy_bytes(&self) -> u64 {
        self.occupancy.iter().sum::<u64>() * self.line_size
    }
}

/// Sliding-window tracker for the DDIO share of the LLC.
///
/// Inbound allocating writes (cache-control = 1) land in the DDIO ways.
/// When the *unique write footprint* per window exceeds the DDIO capacity,
/// lines start evicting each other and the excess "leaks" to DRAM (the
/// *leaky DMA* problem, paper Fig. 10 and its ref. \[64\]). Footprint is what matters,
/// not volume: re-writing the same buffers (small-transfer benchmarks with
/// reused rings) stays within the DDIO ways no matter the byte rate.
///
/// Footprint is tracked at a coarse granule so the tracker stays O(1) per
/// write; the returned spill fraction is the steady-state miss probability
/// `1 - capacity/footprint` once the footprint exceeds capacity.
#[derive(Clone, Debug)]
pub struct DdioTracker {
    capacity: u64,
    window: SimDuration,
    window_start: SimTime,
    granules: std::collections::HashSet<u64>,
}

/// Footprint tracking granule.
const DDIO_GRANULE: u64 = 16 * 1024;

impl DdioTracker {
    /// Tracks a DDIO share of `capacity` bytes with the given averaging
    /// window.
    pub fn new(capacity: u64, window: SimDuration) -> DdioTracker {
        DdioTracker {
            capacity,
            window,
            window_start: SimTime::ZERO,
            granules: std::collections::HashSet::new(),
        }
    }

    /// Capacity being tracked.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Current unique footprint within the window, in bytes.
    pub fn footprint(&self) -> u64 {
        self.granules.len() as u64 * DDIO_GRANULE
    }

    /// Records an allocating write of `bytes` at `[addr, addr+bytes)` at
    /// `now`; returns the fraction (0.0..=1.0) expected to spill past the
    /// DDIO ways to DRAM.
    pub fn write(&mut self, now: SimTime, addr: u64, bytes: u64) -> f64 {
        if now.saturating_duration_since(self.window_start) > self.window {
            self.window_start = now;
            self.granules.clear();
        }
        if bytes == 0 {
            return 0.0;
        }
        let first = addr / DDIO_GRANULE;
        let last = (addr + bytes - 1) / DDIO_GRANULE;
        for g in first..=last {
            self.granules.insert(g);
        }
        let footprint = self.footprint();
        if footprint <= self.capacity {
            0.0
        } else {
            1.0 - self.capacity as f64 / footprint as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentId;

    fn small_llc() -> Llc {
        Llc::new(8 * 1024, 4, 64) // 32 sets x 4 ways x 64 B
    }

    #[test]
    fn hit_after_alloc() {
        let mut c = small_llc();
        let a = AgentId::core(0);
        assert!(!c.access(a, 0x40, AllocPolicy::AllocOnMiss, WayMask::ALL).hit);
        assert!(c.access(a, 0x40, AllocPolicy::AllocOnMiss, WayMask::ALL).hit);
        assert!(c.access(a, 0x7f, AllocPolicy::AllocOnMiss, WayMask::ALL).hit, "same line");
    }

    #[test]
    fn no_alloc_never_allocates() {
        let mut c = small_llc();
        let d = AgentId::dsa(0);
        assert!(!c.access(d, 0x40, AllocPolicy::NoAlloc, WayMask::ALL).hit);
        assert!(!c.access(d, 0x40, AllocPolicy::NoAlloc, WayMask::ALL).hit);
        assert_eq!(c.occupancy_bytes(d), 0);
    }

    #[test]
    fn no_alloc_hits_existing_lines() {
        let mut c = small_llc();
        let core = AgentId::core(0);
        let d = AgentId::dsa(0);
        c.access(core, 0x40, AllocPolicy::AllocOnMiss, WayMask::ALL);
        assert!(c.access(d, 0x40, AllocPolicy::NoAlloc, WayMask::ALL).hit);
    }

    #[test]
    fn invalidating_write_removes_line() {
        let mut c = small_llc();
        let core = AgentId::core(0);
        c.access(core, 0x40, AllocPolicy::AllocOnMiss, WayMask::ALL);
        assert_eq!(c.occupancy_bytes(core), 64);
        let r = c.access(AgentId::dsa(0), 0x40, AllocPolicy::NoAllocInvalidate, WayMask::ALL);
        assert!(r.hit);
        assert_eq!(c.occupancy_bytes(core), 0);
        // Subsequent access misses.
        assert!(!c.access(core, 0x40, AllocPolicy::NoAlloc, WayMask::ALL).hit);
    }

    #[test]
    fn lru_evicts_oldest_and_tracks_pollution() {
        let mut c = Llc::new(256, 4, 64); // exactly one set
        assert_eq!(c.capacity_bytes(), 256);
        let a = AgentId::core(0);
        let b = AgentId::core(1);
        // Fill the set with agent a.
        for i in 0..4u64 {
            c.access(a, i * 64 * c_sets_stride(&c), AllocPolicy::AllocOnMiss, WayMask::ALL);
        }
        assert_eq!(c.occupancy_bytes(a), 256);
        // Agent b allocates: must evict a's oldest.
        let r = c.access(b, 4 * 64 * c_sets_stride(&c), AllocPolicy::AllocOnMiss, WayMask::ALL);
        assert!(r.evicted_other);
        assert_eq!(c.occupancy_bytes(a), 192);
        assert_eq!(c.occupancy_bytes(b), 64);
    }

    /// Stride (in lines) that maps successive allocations onto set 0 for a
    /// single-set cache — with one set every address maps to set 0, so the
    /// stride is simply 1.
    fn c_sets_stride(_c: &Llc) -> u64 {
        1
    }

    #[test]
    fn way_mask_confines_allocations() {
        let mut c = Llc::new(256, 4, 64); // one set, 4 ways
        let io = AgentId::dsa(0);
        let mask = WayMask::range(0, 2); // DDIO-style: 2 of 4 ways
        for i in 0..8u64 {
            c.access(io, i * 64, AllocPolicy::AllocOnMiss, mask);
        }
        // Never occupies more than its 2 ways.
        assert!(c.occupancy_bytes(io) <= 2 * 64);
    }

    #[test]
    fn flush_range_invalidates() {
        let mut c = small_llc();
        let a = AgentId::core(0);
        for i in 0..16u64 {
            c.access(a, i * 64, AllocPolicy::AllocOnMiss, WayMask::ALL);
        }
        assert_eq!(c.occupancy_bytes(a), 16 * 64);
        let flushed = c.flush_range(0, 16 * 64);
        assert_eq!(flushed, 16);
        assert_eq!(c.occupancy_bytes(a), 0);
        assert_eq!(c.flush_range(0, 0), 0);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = small_llc();
        let a = AgentId::core(0);
        for i in 0..10_000u64 {
            c.access(a, i * 64, AllocPolicy::AllocOnMiss, WayMask::ALL);
        }
        assert!(c.total_occupancy_bytes() <= c.capacity_bytes());
    }

    #[test]
    fn way_mask_range_bits() {
        assert_eq!(WayMask::range(0, 2).0, 0b11);
        assert_eq!(WayMask::range(2, 4).0, 0b1100);
        assert!(WayMask::range(0, 32).allows(31));
        assert!(!WayMask::range(1, 3).allows(0));
    }

    #[test]
    #[should_panic(expected = "invalid way range")]
    fn bad_way_range_panics() {
        WayMask::range(3, 3);
    }

    #[test]
    fn ddio_tracker_footprint_not_volume() {
        let cap = 1 << 20; // 1 MiB of DDIO
        let mut t = DdioTracker::new(cap, SimDuration::from_us(1));
        let now = SimTime::ZERO;
        // Re-writing the same 256 KiB buffer forever never spills.
        for _ in 0..100 {
            assert_eq!(t.write(now, 0x10000, 256 << 10), 0.0);
        }
        assert_eq!(t.footprint(), 256 << 10);
        // Streaming over a 4 MiB region does spill.
        let mut spilled = 0.0;
        for i in 0..256u64 {
            spilled = t.write(now, 0x100_0000 + i * (16 << 10), 16 << 10);
        }
        assert!(spilled > 0.7, "footprint >> capacity must spill: {spilled}");
    }

    #[test]
    fn ddio_tracker_window_resets() {
        let cap = 1 << 20;
        let mut t = DdioTracker::new(cap, SimDuration::from_us(1));
        for i in 0..256u64 {
            t.write(SimTime::ZERO, i * (16 << 10), 16 << 10);
        }
        assert!(t.footprint() > cap);
        // After the window passes, the footprint is forgotten.
        assert_eq!(t.write(SimTime::from_us(5), 0, 4096), 0.0);
        assert_eq!(t.capacity(), cap);
    }
}
