//! The memory-system timing façade shared by CPU and device models.
//!
//! [`MemSystem`] owns the bandwidth resources of every memory medium (per-
//! socket DRAM, the CXL expander's asymmetric read/write paths, UPI), the
//! LLC model with its DDIO tracker, and the process page table. Requesters
//! reserve chunk transfers against it; queueing and bandwidth sharing then
//! emerge from the underlying [`timeline`](dsa_sim::timeline) calculus.
//!
//! Design note: the *throughput* path works on declared buffer locations
//! (a streaming copy does not need per-line cache simulation), while the
//! *pollution* path (paper Figs. 12/13) drives the line-granular
//! `Llc` model explicitly. `DESIGN.md` §1 records this
//! split.

pub use crate::agent::AgentId;
use crate::buffer::Location;
use crate::cache::{DdioTracker, Llc};
use crate::topology::Platform;
use crate::translate::PageTable;
use dsa_sim::time::{scale_bytes, SimDuration, SimTime};
use dsa_sim::timeline::{BwResource, Interval};

/// How a write interacts with the cache hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// Cache-control = 1: allocate into the DDIO share of the LLC
    /// (spilling to DRAM past the DDIO capacity — the leaky-DMA effect).
    AllocateLlc,
    /// Cache-control = 0: write to memory, invalidating stale LLC lines.
    Memory,
}

/// A completed write reservation.
#[derive(Clone, Copy, Debug)]
pub struct WriteOutcome {
    /// Service interval (start of bandwidth occupancy to data landed).
    pub interval: Interval,
    /// Fraction of the bytes that spilled past the DDIO ways (0 for
    /// [`WritePolicy::Memory`] writes and for non-LLC destinations).
    pub ddio_spill: f64,
}

/// The platform memory system.
pub struct MemSystem {
    platform: Platform,
    /// One combined read+write channel-set per socket (DDR is effectively
    /// shared between directions).
    dram: Vec<BwResource>,
    cxl_read: Option<BwResource>,
    cxl_write: Option<BwResource>,
    upi: BwResource,
    llc_pipe: BwResource,
    llc: Llc,
    ddio: DdioTracker,
    page_table: PageTable,
}

/// Averaging window for the DDIO footprint tracker. ~0.4 ms of writes at
/// the 30 GB/s fabric cap is ≈ 12 MB — just under the 14 MB DDIO share of
/// the SPR LLC, so a single device does not leak but several do (Fig. 10).
const DDIO_WINDOW: SimDuration = SimDuration::from_us(400);

/// Extra DRAM traffic charged per spilled byte, in halves: the write
/// itself plus a displaced writeback (the "leaky
/// DMA" penalty). 4 halves = 2x.
const SPILL_TRAFFIC_HALVES: u64 = 4;

impl MemSystem {
    /// Builds the memory system of `platform`.
    pub fn new(platform: Platform) -> MemSystem {
        let dram =
            (0..platform.sockets).map(|_| BwResource::new(platform.dram.read_mgbps)).collect();
        let cxl_read = platform.cxl.map(|m| BwResource::new(m.read_mgbps));
        let cxl_write = platform.cxl.map(|m| BwResource::new(m.write_mgbps));
        let upi = BwResource::new(platform.upi_mgbps);
        let llc_pipe = BwResource::new(platform.llc_mgbps);
        // Line-granular LLC for occupancy experiments; 64-B lines.
        let llc = Llc::new(platform.llc_bytes, platform.llc_ways, 64);
        let ddio = DdioTracker::new(platform.ddio_bytes(), DDIO_WINDOW);
        MemSystem {
            platform,
            dram,
            cxl_read,
            cxl_write,
            upi,
            llc_pipe,
            llc,
            ddio,
            page_table: PageTable::new(),
        }
    }

    /// The platform description.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Shared process page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable access to the page table (mapping buffers, injecting faults).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// The line-granular LLC model (pollution experiments).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// Mutable access to the LLC model.
    pub fn llc_mut(&mut self) -> &mut Llc {
        &mut self.llc
    }

    /// Read latency of a location.
    pub fn read_latency(&self, loc: Location) -> SimDuration {
        self.platform.medium(loc).read_latency
    }

    /// Write latency of a location.
    pub fn write_latency(&self, loc: Location) -> SimDuration {
        self.platform.medium(loc).write_latency
    }

    /// Reserves a chunk read of `bytes` from `loc`, ready at `ready`.
    ///
    /// The returned interval ends when the data is available at the
    /// requester (bandwidth occupancy plus load-to-use latency).
    pub fn read(&mut self, _agent: AgentId, loc: Location, ready: SimTime, bytes: u64) -> Interval {
        let lat = self.read_latency(loc);
        let iv = match loc {
            Location::Dram { socket } => {
                let s = socket.min(self.platform.sockets - 1) as usize;
                let iv = self.dram[s].transfer(ready, bytes);
                if socket != 0 {
                    // Remote reads also occupy the UPI link.
                    let upi_iv = self.upi.transfer(ready, bytes);
                    Interval { start: iv.start.max(upi_iv.start), end: iv.end.max(upi_iv.end) }
                } else {
                    iv
                }
            }
            Location::Cxl => self
                .cxl_read
                .as_mut()
                // dsa-lint: allow(unwrap, CXL traffic only reaches here on platforms built with a CXL device)
                .expect("platform has no CXL memory device")
                .transfer(ready, bytes),
            Location::Llc => self.llc_pipe.transfer(ready, bytes),
        };
        Interval { start: iv.start, end: iv.end + lat }
    }

    /// Reserves a chunk write of `bytes` to `loc`, ready at `ready`.
    ///
    /// For LLC-destined writes ([`WritePolicy::AllocateLlc`] to any
    /// location, or explicit [`Location::Llc`]) the DDIO tracker may spill
    /// part of the footprint to DRAM, charging extra channel traffic.
    pub fn write(
        &mut self,
        _agent: AgentId,
        loc: Location,
        ready: SimTime,
        bytes: u64,
        policy: WritePolicy,
    ) -> WriteOutcome {
        self.write_at(_agent, loc, ready, 0, bytes, policy)
    }

    /// Like [`write`](Self::write), with the destination address known so
    /// the DDIO tracker can account *footprint* (buffer reuse does not
    /// leak; streaming over large regions does).
    pub fn write_at(
        &mut self,
        _agent: AgentId,
        loc: Location,
        ready: SimTime,
        addr: u64,
        bytes: u64,
        policy: WritePolicy,
    ) -> WriteOutcome {
        let lat = self.write_latency(loc);
        match loc {
            Location::Cxl => {
                let iv = self
                    .cxl_write
                    .as_mut()
                    // dsa-lint: allow(unwrap, CXL traffic only reaches here on platforms built with a CXL device)
                    .expect("platform has no CXL memory device")
                    .transfer(ready, bytes);
                WriteOutcome {
                    interval: Interval { start: iv.start, end: iv.end + lat },
                    ddio_spill: 0.0,
                }
            }
            Location::Dram { socket } => {
                let s = socket.min(self.platform.sockets - 1) as usize;
                match policy {
                    WritePolicy::Memory => {
                        let iv = self.dram[s].transfer(ready, bytes);
                        let iv = if socket != 0 {
                            let upi_iv = self.upi.transfer(ready, bytes);
                            Interval {
                                start: iv.start.max(upi_iv.start),
                                end: iv.end.max(upi_iv.end),
                            }
                        } else {
                            iv
                        };
                        WriteOutcome {
                            interval: Interval { start: iv.start, end: iv.end + lat },
                            ddio_spill: 0.0,
                        }
                    }
                    WritePolicy::AllocateLlc => {
                        // Destination data is steered into the local LLC's
                        // DDIO ways; past their capacity it leaks to DRAM.
                        let spill = self.ddio.write(ready, addr, bytes);
                        let kept = scale_bytes(bytes, 1.0 - spill);
                        let spilled = bytes - kept;
                        let mut end = ready;
                        let mut start = SimTime::MAX;
                        if kept > 0 {
                            let iv = self.llc_pipe.transfer(ready, kept);
                            start = start.min(iv.start);
                            end = end.max(iv.end + self.platform.llc_latency);
                        }
                        if spilled > 0 {
                            let iv =
                                self.dram[s].transfer(ready, spilled * SPILL_TRAFFIC_HALVES / 2);
                            start = start.min(iv.start);
                            end = end.max(iv.end + lat);
                        }
                        if start == SimTime::MAX {
                            start = ready;
                        }
                        WriteOutcome { interval: Interval { start, end }, ddio_spill: spill }
                    }
                }
            }
            Location::Llc => {
                let spill = match policy {
                    WritePolicy::AllocateLlc => self.ddio.write(ready, addr, bytes),
                    WritePolicy::Memory => 0.0,
                };
                let kept = scale_bytes(bytes, 1.0 - spill);
                let spilled = bytes - kept;
                let mut iv = self.llc_pipe.transfer(ready, kept.max(1));
                if spilled > 0 {
                    let div = self.dram[0].transfer(ready, spilled * SPILL_TRAFFIC_HALVES / 2);
                    iv = Interval { start: iv.start.min(div.start), end: iv.end.max(div.end) };
                }
                WriteOutcome {
                    interval: Interval { start: iv.start, end: iv.end + lat },
                    ddio_spill: spill,
                }
            }
        }
    }

    /// Total bytes served by the local-socket DRAM channels.
    pub fn local_dram_bytes(&self) -> u64 {
        self.dram[0].bytes_served()
    }
}

impl std::fmt::Debug for MemSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemSystem")
            .field("platform", &self.platform.name)
            .field("local_dram_bytes", &self.local_dram_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_sim::time::achieved_gbps;

    fn sys() -> MemSystem {
        MemSystem::new(Platform::spr())
    }

    #[test]
    fn read_includes_latency_and_bandwidth() {
        let mut m = sys();
        let iv = m.read(AgentId::dsa(0), Location::local_dram(), SimTime::ZERO, 4096);
        // 4 KiB at 220 GB/s ≈ 18.6 ns occupancy + 114 ns latency.
        let total = iv.end.as_ns_f64();
        assert!(total > 114.0 && total < 150.0, "got {total} ns");
    }

    #[test]
    fn streaming_reads_share_bandwidth() {
        let mut m = sys();
        let chunk = 1 << 20;
        let mut end = SimTime::ZERO;
        for _ in 0..64 {
            end = m.read(AgentId::dsa(0), Location::local_dram(), SimTime::ZERO, chunk).end;
        }
        let g = achieved_gbps(64 * chunk, end.duration_since(SimTime::ZERO));
        assert!((g - 220.0).abs() < 25.0, "aggregate {g} GB/s should approach channel bw");
    }

    #[test]
    fn remote_read_slower_latency_and_upi_capped() {
        let mut m = sys();
        let local = m.read(AgentId::dsa(0), Location::local_dram(), SimTime::ZERO, 64);
        let mut m2 = sys();
        let remote = m2.read(AgentId::dsa(0), Location::remote_dram(), SimTime::ZERO, 64);
        assert!(remote.end > local.end);
    }

    #[test]
    fn cxl_write_slower_than_read() {
        let mut m = sys();
        let r = m.read(AgentId::dsa(0), Location::Cxl, SimTime::ZERO, 1 << 20);
        let mut m2 = sys();
        let w =
            m2.write(AgentId::dsa(0), Location::Cxl, SimTime::ZERO, 1 << 20, WritePolicy::Memory);
        assert!(w.interval.end > r.end, "CXL writes are the slow direction");
    }

    #[test]
    fn ddio_writes_spill_after_footprint_exceeds_capacity() {
        let mut m = sys();
        let cap = m.platform().ddio_bytes();
        // Writing a footprint equal to capacity does not spill…
        let first = m.write_at(
            AgentId::dsa(0),
            Location::local_dram(),
            SimTime::ZERO,
            0,
            cap,
            WritePolicy::AllocateLlc,
        );
        assert_eq!(first.ddio_spill, 0.0);
        // …but extending it far past capacity does.
        let second = m.write_at(
            AgentId::dsa(0),
            Location::local_dram(),
            SimTime::ZERO,
            cap * 2,
            cap,
            WritePolicy::AllocateLlc,
        );
        assert!(second.ddio_spill > 0.3, "footprint 2x capacity spills: {}", second.ddio_spill);
        // Re-writing the same region keeps the same steady-state miss rate
        // without growing the footprint.
        let third = m.write_at(
            AgentId::dsa(0),
            Location::local_dram(),
            SimTime::ZERO,
            0,
            cap,
            WritePolicy::AllocateLlc,
        );
        assert!((third.ddio_spill - second.ddio_spill).abs() < 1e-9);
    }

    #[test]
    fn memory_policy_never_spills() {
        let mut m = sys();
        let w = m.write(
            AgentId::dsa(0),
            Location::local_dram(),
            SimTime::ZERO,
            1 << 26,
            WritePolicy::Memory,
        );
        assert_eq!(w.ddio_spill, 0.0);
    }

    #[test]
    fn page_table_shared_access() {
        let mut m = sys();
        m.page_table_mut().map_range(0x1000, 0x1000, crate::buffer::PageSize::Base4K);
        assert!(m.page_table().is_present(0x1800));
    }

    #[test]
    #[should_panic(expected = "no CXL")]
    fn icx_cxl_read_panics() {
        let mut m = MemSystem::new(Platform::icx());
        m.read(AgentId::dsa(0), Location::Cxl, SimTime::ZERO, 64);
    }

    #[test]
    fn llc_location_uses_llc_pipe() {
        let mut m = sys();
        let llc = m.read(AgentId::core(0), Location::Llc, SimTime::ZERO, 4096);
        let mut m2 = sys();
        let dram = m2.read(AgentId::core(0), Location::local_dram(), SimTime::ZERO, 4096);
        assert!(llc.end < dram.end, "LLC reads are faster");
    }
}

#[cfg(test)]
mod coverage_tests {
    use super::*;
    use dsa_sim::time::achieved_gbps;

    #[test]
    fn remote_write_occupies_upi() {
        // A stream of remote writes is bounded by the UPI link, not the
        // remote DRAM channels.
        let mut m = MemSystem::new(Platform::spr());
        let chunk = 1u64 << 20;
        let mut end = SimTime::ZERO;
        for _ in 0..64 {
            end = m
                .write(
                    AgentId::dsa(0),
                    Location::remote_dram(),
                    SimTime::ZERO,
                    chunk,
                    WritePolicy::Memory,
                )
                .interval
                .end;
        }
        let g = achieved_gbps(64 * chunk, end.duration_since(SimTime::ZERO));
        let upi = Platform::spr().upi_mgbps as f64 / 1000.0;
        assert!(g <= upi * 1.05, "remote writes capped by UPI: {g} vs {upi}");
    }

    #[test]
    fn cxl_read_and_write_paths_are_independent() {
        // Full-duplex CXL link model: concurrent read and write streams do
        // not halve each other.
        let mut m = MemSystem::new(Platform::spr());
        let chunk = 1u64 << 20;
        let mut r_end = SimTime::ZERO;
        let mut w_end = SimTime::ZERO;
        for _ in 0..16 {
            r_end = m.read(AgentId::dsa(0), Location::Cxl, SimTime::ZERO, chunk).end;
            w_end = m
                .write(AgentId::dsa(0), Location::Cxl, SimTime::ZERO, chunk, WritePolicy::Memory)
                .interval
                .end;
        }
        let rg = achieved_gbps(16 * chunk, r_end.duration_since(SimTime::ZERO));
        let wg = achieved_gbps(16 * chunk, w_end.duration_since(SimTime::ZERO));
        assert!(rg > 15.0, "CXL reads near their 18 GB/s: {rg}");
        assert!(wg > 9.0, "CXL writes near their 11 GB/s: {wg}");
    }

    #[test]
    fn llc_destined_memory_policy_writes_do_not_track_ddio() {
        let mut m = MemSystem::new(Platform::spr());
        // Location::Llc with Memory policy: charged on the LLC pipe but no
        // DDIO accounting (completion records behave this way).
        let w = m.write_at(
            AgentId::dsa(0),
            Location::Llc,
            SimTime::ZERO,
            0x1000,
            4096,
            WritePolicy::Memory,
        );
        assert_eq!(w.ddio_spill, 0.0);
    }

    #[test]
    fn local_dram_bytes_counts_all_local_traffic() {
        let mut m = MemSystem::new(Platform::spr());
        m.read(AgentId::core(0), Location::local_dram(), SimTime::ZERO, 1000);
        m.write(AgentId::core(0), Location::local_dram(), SimTime::ZERO, 500, WritePolicy::Memory);
        assert_eq!(m.local_dram_bytes(), 1500);
        // Remote traffic does not count as local.
        m.read(AgentId::core(0), Location::remote_dram(), SimTime::ZERO, 4096);
        assert_eq!(m.local_dram_bytes(), 1500);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        let m = MemSystem::new(Platform::spr());
        assert!(format!("{m:?}").contains("SPR"));
    }
}
