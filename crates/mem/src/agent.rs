//! Identities of memory-system requesters.
//!
//! Occupancy accounting (paper Fig. 12) attributes every cache line to the
//! agent that allocated it — a core (like a `pqos` RMID) or a device.

use std::fmt;

/// A memory-system requester: a CPU core, a DSA/CBDMA instance, or a NIC-
/// style I/O device.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(u16);

const CORE_BASE: u16 = 0;
const CORE_MAX: u16 = 128;
const DSA_BASE: u16 = CORE_BASE + CORE_MAX;
const DSA_MAX: u16 = 16;
const IO_BASE: u16 = DSA_BASE + DSA_MAX;
const IO_MAX: u16 = 15;
const NONE_SLOT: u16 = IO_BASE + IO_MAX;

impl AgentId {
    /// Number of distinct agent slots (sizing for occupancy arrays).
    pub const SLOTS: usize = (NONE_SLOT + 1) as usize;

    /// Sentinel for "no owner" (invalid cache entries).
    pub const NONE: AgentId = AgentId(NONE_SLOT);

    /// CPU core `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 128`.
    pub const fn core(n: u16) -> AgentId {
        assert!(n < CORE_MAX, "core index out of range");
        AgentId(CORE_BASE + n)
    }

    /// DSA (or CBDMA) instance `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    pub const fn dsa(n: u16) -> AgentId {
        assert!(n < DSA_MAX, "dsa index out of range");
        AgentId(DSA_BASE + n)
    }

    /// Generic I/O device `n` (e.g. a NIC doing DDIO writes).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 15`.
    pub const fn io(n: u16) -> AgentId {
        assert!(n < IO_MAX, "io index out of range");
        AgentId(IO_BASE + n)
    }

    /// Dense index for occupancy arrays.
    pub const fn slot(self) -> usize {
        self.0 as usize
    }

    /// True if this is a CPU core.
    pub fn is_core(self) -> bool {
        self.0 < CORE_MAX
    }

    /// True if this is a DSA/CBDMA device.
    pub fn is_dsa(self) -> bool {
        (DSA_BASE..DSA_BASE + DSA_MAX).contains(&self.0)
    }
}

impl fmt::Debug for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == AgentId::NONE {
            write!(f, "Agent(none)")
        } else if self.is_core() {
            write!(f, "Core({})", self.0 - CORE_BASE)
        } else if self.is_dsa() {
            write!(f, "Dsa({})", self.0 - DSA_BASE)
        } else {
            write!(f, "Io({})", self.0 - IO_BASE)
        }
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_distinct() {
        let ids =
            [AgentId::core(0), AgentId::core(5), AgentId::dsa(0), AgentId::io(3), AgentId::NONE];
        for (i, a) in ids.iter().enumerate() {
            for (j, b) in ids.iter().enumerate() {
                assert_eq!(a.slot() == b.slot(), i == j);
            }
        }
    }

    #[test]
    fn kind_predicates() {
        assert!(AgentId::core(1).is_core());
        assert!(!AgentId::core(1).is_dsa());
        assert!(AgentId::dsa(2).is_dsa());
        assert!(!AgentId::io(0).is_core());
        assert!(AgentId::NONE.slot() < AgentId::SLOTS);
    }

    #[test]
    fn debug_labels() {
        assert_eq!(format!("{:?}", AgentId::core(7)), "Core(7)");
        assert_eq!(format!("{}", AgentId::dsa(1)), "Dsa(1)");
        assert_eq!(format!("{:?}", AgentId::io(0)), "Io(0)");
        assert_eq!(format!("{:?}", AgentId::NONE), "Agent(none)");
    }

    #[test]
    #[should_panic(expected = "core index out of range")]
    fn core_bounds_checked() {
        AgentId::core(128);
    }
}
