//! Platform descriptions and calibrated timing parameters.
//!
//! [`Platform::spr`] and [`Platform::icx`] reproduce Table 2 of the paper:
//!
//! | Generation       | Ice Lake (ICX)    | Sapphire Rapids (SPR) |
//! |------------------|-------------------|-----------------------|
//! | Number of cores  | 40                | 56                    |
//! | L1I/L1D/L2 (KB)  | 32 / 48 / 1280    | 32 / 48 / 2048        |
//! | Shared LLC (MB)  | 57                | 105                   |
//! | Memory           | 6× DDR4 channels  | 8× DDR5 channels      |
//! | DMA engine       | CBDMA, 16 channels| DSA, 8 WQs, 4 engines |
//!
//! All latency/bandwidth constants are *calibrated model parameters*: they
//! are chosen so the reproduction matches the paper's anchors (single-DSA
//! fabric cap ≈ 30 GB/s, sync break-even ≈ 4 KB, async break-even ≈ 256 B,
//! DSA ≈ 2.1× CBDMA, leaky-DMA knee beyond the DDIO share of the LLC), and
//! each is documented with its provenance.

use crate::buffer::Location;
use dsa_sim::time::SimDuration;

/// Memory-medium timing parameters (one per [`Location`] class).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MediumParams {
    /// Loaded read latency seen by a streaming requester.
    pub read_latency: SimDuration,
    /// Loaded write latency (posted writes still occupy queues).
    pub write_latency: SimDuration,
    /// Sustainable read bandwidth in milli-GB/s.
    pub read_mgbps: u64,
    /// Sustainable write bandwidth in milli-GB/s.
    pub write_mgbps: u64,
}

/// Full platform description: core counts, cache geometry, memory media,
/// interconnects, and the CPU-side microarchitectural constants the
/// software-baseline models need.
#[derive(Clone, Debug, PartialEq)]
pub struct Platform {
    /// Marketing-generation label ("SPR", "ICX").
    pub name: &'static str,
    /// Physical cores per socket (Table 2).
    pub cores: u32,
    /// Core frequency in MHz (used to convert cycles to time).
    pub core_mhz: u32,
    /// Number of sockets modelled.
    pub sockets: u8,
    /// Shared LLC capacity in bytes (Table 2).
    pub llc_bytes: u64,
    /// LLC associativity (ways). SPR LLC is 15-way; ICX is 12-way.
    pub llc_ways: u32,
    /// Number of LLC ways reserved for DDIO / cache-control-1 writes.
    ///
    /// Intel platforms default to 2 ways for inbound I/O; the leaky-DMA
    /// literature (ref. \[64\] in the paper) studies exactly this knob.
    pub ddio_ways: u32,
    /// LLC load-to-use latency.
    pub llc_latency: SimDuration,
    /// Aggregate LLC streaming bandwidth in milli-GB/s across all agents
    /// (the mesh sustains several hundred GB/s; the device fabric, not the
    /// LLC, is the binding per-device constraint).
    pub llc_mgbps: u64,
    /// Socket-local DRAM parameters.
    pub dram: MediumParams,
    /// Extra one-way latency added by a UPI hop to remote DRAM.
    pub upi_latency: SimDuration,
    /// UPI per-direction bandwidth in milli-GB/s.
    pub upi_mgbps: u64,
    /// CXL memory-expander parameters (only present on SPR; `None` on ICX).
    pub cxl: Option<MediumParams>,
    /// IOTLB/ATC-missing page-walk latency (first-touch translation).
    pub iommu_walk: SimDuration,
    /// Core TLB miss page-walk latency.
    pub tlb_walk: SimDuration,
    /// OS page-fault service time (minor fault on touched-first pages).
    pub page_fault: SimDuration,
}

impl Platform {
    /// Sapphire Rapids preset (the paper's DSA system, Table 2).
    pub fn spr() -> Platform {
        Platform {
            name: "SPR",
            cores: 56,
            core_mhz: 2000,
            sockets: 2,
            llc_bytes: 105 << 20,
            llc_ways: 15,
            ddio_ways: 2,
            // ~33 ns LLC load-to-use on SPR mesh.
            llc_latency: SimDuration::from_ns(33),
            llc_mgbps: 240_000,
            dram: MediumParams {
                // Loaded DDR5-4800 latencies on SPR.
                read_latency: SimDuration::from_ns(114),
                write_latency: SimDuration::from_ns(118),
                // 8 channels DDR5-4800 ≈ 307 GB/s peak; ~72% sustained for
                // mixed streams.
                read_mgbps: 220_000,
                write_mgbps: 200_000,
            },
            // UPI 2.0 hop adds ~70 ns; ~62 GB/s per direction across links.
            upi_latency: SimDuration::from_ns(70),
            upi_mgbps: 62_000,
            cxl: Some(MediumParams {
                // Agilex-I CXL 1.1 FPGA expander with DDR4: reads ~250 ns
                // over loaded link; writes notably slower (paper §4.2:
                // "longer write latency of CXL-attached memory").
                read_latency: SimDuration::from_ns(350),
                write_latency: SimDuration::from_ns(560),
                read_mgbps: 18_000,
                write_mgbps: 11_000,
            }),
            iommu_walk: SimDuration::from_ns(240),
            tlb_walk: SimDuration::from_ns(85),
            page_fault: SimDuration::from_us(4),
        }
    }

    /// Ice Lake preset (the paper's CBDMA system, Table 2).
    pub fn icx() -> Platform {
        Platform {
            name: "ICX",
            cores: 40,
            core_mhz: 2300,
            sockets: 2,
            llc_bytes: 57 << 20,
            llc_ways: 12,
            ddio_ways: 2,
            llc_latency: SimDuration::from_ns(31),
            llc_mgbps: 200_000,
            dram: MediumParams {
                read_latency: SimDuration::from_ns(102),
                write_latency: SimDuration::from_ns(108),
                // 6 channels DDR4-3200 ≈ 154 GB/s peak.
                read_mgbps: 115_000,
                write_mgbps: 105_000,
            },
            upi_latency: SimDuration::from_ns(66),
            upi_mgbps: 56_000,
            cxl: None,
            iommu_walk: SimDuration::from_ns(260),
            tlb_walk: SimDuration::from_ns(80),
            page_fault: SimDuration::from_us(4),
        }
    }

    /// Returns a copy with the LLC (and DDIO share) scaled down by `factor`.
    ///
    /// Cache-pollution experiments shrink both the LLC and the working sets
    /// by the same factor so that line-granular simulation stays fast while
    /// preserving every capacity ratio the figures depend on.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn with_llc_scaled_down(mut self, factor: u64) -> Platform {
        assert!(factor > 0, "scale factor must be positive");
        self.llc_bytes /= factor;
        self
    }

    /// Returns a copy whose DDIO way allocation is divided among `sharers`
    /// co-resident device contexts (never below one way).
    ///
    /// The DDIO ways are a per-socket resource: when the fleet layer packs
    /// several shards' devices onto one socket, each shard's inbound
    /// writes see only a slice of the LLC's I/O share, so the leaky-DMA
    /// knee (paper Fig. 12 / ref. \[64\]) arrives proportionally earlier.
    ///
    /// # Panics
    ///
    /// Panics if `sharers == 0`.
    pub fn with_ddio_share(mut self, sharers: u32) -> Platform {
        assert!(sharers > 0, "DDIO sharer count must be positive");
        self.ddio_ways = (self.ddio_ways / sharers).max(1);
        self
    }

    /// Returns a copy whose UPI bandwidth is divided among `sharers`
    /// concurrent cross-socket streams (never below 1 milli-GB/s).
    ///
    /// The UPI link is a per-link resource: remote-socket placements from
    /// several shards contend for the same directionally-shared lanes
    /// (paper Fig. 8's cross-socket penalty), so each stream's remote-DRAM
    /// bandwidth cap shrinks with the number of crossers. Latency is
    /// unchanged — the hop count does not grow with contention in this
    /// static model, only the share of lane bandwidth does.
    ///
    /// # Panics
    ///
    /// Panics if `sharers == 0`.
    pub fn with_upi_share(mut self, sharers: u32) -> Platform {
        assert!(sharers > 0, "UPI sharer count must be positive");
        self.upi_mgbps = (self.upi_mgbps / u64::from(sharers)).max(1);
        self
    }

    /// The timing parameters of a [`Location`].
    ///
    /// # Panics
    ///
    /// Panics if `loc` is [`Location::Cxl`] on a platform without CXL.
    pub fn medium(&self, loc: Location) -> MediumParams {
        match loc {
            Location::Dram { socket: 0 } => self.dram,
            Location::Dram { .. } => MediumParams {
                read_latency: self.dram.read_latency + self.upi_latency,
                write_latency: self.dram.write_latency + self.upi_latency,
                // Remote DRAM bandwidth is min(DRAM, UPI); UPI binds.
                read_mgbps: self.dram.read_mgbps.min(self.upi_mgbps),
                write_mgbps: self.dram.write_mgbps.min(self.upi_mgbps),
            },
            // dsa-lint: allow(unwrap, documented panic — the method contract forbids Cxl on CXL-less platforms)
            Location::Cxl => self.cxl.expect("platform has no CXL memory device"),
            Location::Llc => MediumParams {
                read_latency: self.llc_latency,
                write_latency: self.llc_latency,
                read_mgbps: self.llc_mgbps,
                write_mgbps: self.llc_mgbps,
            },
        }
    }

    /// Bytes of LLC capacity available to cache-control-1 (DDIO-style)
    /// writes.
    pub fn ddio_bytes(&self) -> u64 {
        self.llc_bytes * self.ddio_ways as u64 / self.llc_ways as u64
    }

    /// Converts core cycles to time at this platform's frequency.
    pub fn cycles(&self, n: u64) -> SimDuration {
        // ps per cycle = 1e6 / MHz
        SimDuration::from_ps(n * 1_000_000 / self.core_mhz as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let spr = Platform::spr();
        assert_eq!(spr.cores, 56);
        assert_eq!(spr.llc_bytes, 105 << 20);
        let icx = Platform::icx();
        assert_eq!(icx.cores, 40);
        assert_eq!(icx.llc_bytes, 57 << 20);
        assert!(icx.cxl.is_none() && spr.cxl.is_some());
        // DDR5 (SPR) outruns DDR4 (ICX).
        assert!(spr.dram.read_mgbps > icx.dram.read_mgbps);
    }

    #[test]
    fn remote_dram_adds_upi_hop() {
        let spr = Platform::spr();
        let local = spr.medium(Location::local_dram());
        let remote = spr.medium(Location::remote_dram());
        assert_eq!(remote.read_latency, local.read_latency + spr.upi_latency);
        assert!(remote.read_mgbps <= spr.upi_mgbps);
    }

    #[test]
    fn cxl_is_slower_to_write_than_read() {
        let cxl = Platform::spr().medium(Location::Cxl);
        assert!(cxl.write_latency > cxl.read_latency);
        assert!(cxl.write_mgbps < cxl.read_mgbps);
    }

    #[test]
    #[should_panic(expected = "no CXL")]
    fn icx_has_no_cxl() {
        Platform::icx().medium(Location::Cxl);
    }

    #[test]
    fn ddio_share_is_two_fifteenths_on_spr() {
        let spr = Platform::spr();
        assert_eq!(spr.ddio_bytes(), (105 << 20) * 2 / 15);
    }

    #[test]
    fn llc_is_faster_than_dram_than_cxl() {
        let spr = Platform::spr();
        let llc = spr.medium(Location::Llc);
        let dram = spr.medium(Location::local_dram());
        let cxl = spr.medium(Location::Cxl);
        assert!(llc.read_latency < dram.read_latency);
        assert!(dram.read_latency < cxl.read_latency);
    }

    #[test]
    fn cycles_at_2ghz() {
        let spr = Platform::spr(); // 2000 MHz -> 0.5 ns per cycle
        assert_eq!(spr.cycles(2), SimDuration::from_ns(1));
        assert_eq!(spr.cycles(2000), SimDuration::from_us(1));
    }

    #[test]
    fn ddio_share_splits_ways_with_a_floor() {
        let spr = Platform::spr(); // 2 DDIO ways
        assert_eq!(spr.clone().with_ddio_share(1).ddio_ways, 2);
        assert_eq!(spr.clone().with_ddio_share(2).ddio_ways, 1);
        // Oversubscribed sockets floor at one way, never zero.
        assert_eq!(spr.clone().with_ddio_share(8).ddio_ways, 1);
        assert!(spr.clone().with_ddio_share(2).ddio_bytes() < spr.ddio_bytes());
    }

    #[test]
    fn upi_share_caps_remote_bandwidth() {
        let spr = Platform::spr();
        let split = spr.clone().with_upi_share(4);
        assert_eq!(split.upi_mgbps, spr.upi_mgbps / 4);
        let remote = split.medium(Location::remote_dram());
        assert_eq!(remote.read_mgbps, split.upi_mgbps, "UPI share binds remote reads");
        // Latency is a hop property, not a contention property, here.
        assert_eq!(remote.read_latency, spr.medium(Location::remote_dram()).read_latency);
    }

    #[test]
    fn llc_scaling_preserves_ratios() {
        let spr = Platform::spr();
        let scaled = spr.clone().with_llc_scaled_down(8);
        assert_eq!(scaled.llc_bytes, spr.llc_bytes / 8);
        // DDIO share scales with the LLC, preserving the 2/15 ratio.
        let ratio = scaled.ddio_bytes() as f64 / scaled.llc_bytes as f64;
        assert!((ratio - 2.0 / 15.0).abs() < 1e-6);
    }
}
