//! Address translation: page tables, core TLBs, device ATCs, IOMMU walks.
//!
//! DSA operates on user virtual addresses through shared virtual memory
//! (SVM): its address translation cache (ATC) asks the IOMMU to walk page
//! tables on a miss, and page faults are either blocked on or reported as
//! partial completions (paper §3.2/F1). Huge pages enlarge the reach of
//! each cached translation (paper Fig. 8).

use crate::buffer::{PageSize, SimBuffer};
use dsa_sim::time::SimDuration;
use std::collections::{BTreeMap, HashMap};

/// A process page table mapping virtual ranges with their page size.
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    // start -> (len, page size); ranges are disjoint.
    ranges: BTreeMap<u64, (u64, PageSize)>,
    unmapped_pages: HashMap<u64, ()>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Maps `[base, base+len)` with the given page size.
    pub fn map_range(&mut self, base: u64, len: u64, ps: PageSize) {
        if len == 0 {
            return;
        }
        self.ranges.insert(base, (len, ps));
    }

    /// Convenience: maps a buffer's range with its page size.
    pub fn map_buffer(&mut self, buf: &SimBuffer) {
        self.map_range(buf.base(), buf.len() as u64, buf.page_size());
    }

    /// Marks the page containing `addr` as *not present* (fault injection —
    /// models lazily-allocated or swapped-out pages).
    pub fn unmap_page(&mut self, addr: u64) {
        if let Some(ps) = self.lookup(addr) {
            let page = addr / ps.bytes() * ps.bytes();
            self.unmapped_pages.insert(page, ());
        }
    }

    /// Makes the page containing `addr` present again (fault serviced).
    pub fn service_fault(&mut self, addr: u64) {
        if let Some(ps) = self.lookup(addr) {
            let page = addr / ps.bytes() * ps.bytes();
            self.unmapped_pages.remove(&page);
        }
    }

    /// Page size of the mapping covering `addr`, if any.
    pub fn lookup(&self, addr: u64) -> Option<PageSize> {
        let (&base, &(len, ps)) = self.ranges.range(..=addr).next_back()?;
        if addr < base + len {
            Some(ps)
        } else {
            None
        }
    }

    /// True if `addr` is mapped *and* present (would not fault).
    pub fn is_present(&self, addr: u64) -> bool {
        match self.lookup(addr) {
            None => false,
            Some(ps) => {
                let page = addr / ps.bytes() * ps.bytes();
                !self.unmapped_pages.contains_key(&page)
            }
        }
    }

    /// The base address of the page containing `addr`, if mapped.
    pub fn page_base(&self, addr: u64) -> Option<u64> {
        let ps = self.lookup(addr)?;
        Some(addr / ps.bytes() * ps.bytes())
    }
}

/// Outcome of a translation attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslateOutcome {
    /// Time spent translating (zero on a cache hit).
    pub cost: SimDuration,
    /// Whether the page was missing (caller decides: block on fault or
    /// partially complete).
    pub fault: bool,
    /// Whether the translation cache hit.
    pub hit: bool,
}

/// An LRU translation cache — models both core TLBs and the device ATC.
///
/// ```
/// use dsa_mem::translate::{PageTable, TranslationCache};
/// use dsa_mem::buffer::PageSize;
/// use dsa_sim::time::SimDuration;
///
/// let mut pt = PageTable::new();
/// pt.map_range(0, 1 << 20, PageSize::Base4K);
/// let mut atc = TranslationCache::new(64, SimDuration::from_ns(240));
/// let first = atc.translate(&pt, 0x1234);
/// assert!(!first.hit && !first.fault);
/// let second = atc.translate(&pt, 0x1fff); // same 4 KiB page
/// assert!(second.hit && second.cost.is_zero());
/// ```
#[derive(Clone, Debug)]
pub struct TranslationCache {
    // BTreeMap, not HashMap: eviction scans the entries, and the R6
    // det-taint rule is right that hash iteration order would leak into
    // the victim choice (ticks break ties deterministically only because
    // they are unique — the *scan order* must still be stable).
    entries: BTreeMap<u64, u64>, // page base -> last use tick
    capacity: usize,
    walk_latency: SimDuration,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl TranslationCache {
    /// Creates a cache holding `capacity` translations with the given
    /// miss (walk) latency.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, walk_latency: SimDuration) -> TranslationCache {
        assert!(capacity > 0, "translation cache needs capacity");
        TranslationCache {
            entries: BTreeMap::new(),
            capacity,
            walk_latency,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `addr` against `pt`, charging a walk on a miss.
    pub fn translate(&mut self, pt: &PageTable, addr: u64) -> TranslateOutcome {
        self.tick += 1;
        let Some(ps) = pt.lookup(addr) else {
            // Unmapped address: full walk that ends in a fault.
            self.misses += 1;
            return TranslateOutcome { cost: self.walk_latency, fault: true, hit: false };
        };
        let page = addr / ps.bytes() * ps.bytes();
        let present = pt.is_present(addr);
        if let Some(t) = self.entries.get_mut(&page) {
            *t = self.tick;
            self.hits += 1;
            return TranslateOutcome { cost: SimDuration::ZERO, fault: !present, hit: true };
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // Evict the LRU entry.
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &t)| t) {
                self.entries.remove(&victim);
            }
        }
        if present {
            self.entries.insert(page, self.tick);
        }
        TranslateOutcome { cost: self.walk_latency, fault: !present, hit: false }
    }

    /// Drops every cached translation (e.g. TLB shootdown).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Hit count since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in `[0, 1]` (zero when unused).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{AddressSpace, Location};

    fn walk() -> SimDuration {
        SimDuration::from_ns(240)
    }

    #[test]
    fn unmapped_faults() {
        let pt = PageTable::new();
        let mut atc = TranslationCache::new(4, walk());
        let o = atc.translate(&pt, 0xdead_beef);
        assert!(o.fault);
        assert_eq!(o.cost, walk());
    }

    #[test]
    fn huge_pages_extend_reach() {
        let mut pt = PageTable::new();
        pt.map_range(0, 4 << 20, PageSize::Huge2M);
        let mut atc = TranslationCache::new(4, walk());
        assert!(!atc.translate(&pt, 0).hit);
        // 1 MiB away: same 2 MiB page -> hit.
        assert!(atc.translate(&pt, 1 << 20).hit);
        // 3 MiB away: next huge page -> miss.
        assert!(!atc.translate(&pt, 3 << 20).hit);
    }

    #[test]
    fn base_pages_miss_every_4k() {
        let mut pt = PageTable::new();
        pt.map_range(0, 1 << 20, PageSize::Base4K);
        let mut atc = TranslationCache::new(512, walk());
        for page in 0..16u64 {
            assert!(!atc.translate(&pt, page * 4096).hit);
            assert!(atc.translate(&pt, page * 4096 + 64).hit);
        }
        assert_eq!(atc.misses(), 16);
        assert_eq!(atc.hits(), 16);
        assert!((atc.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_bounds_size() {
        let mut pt = PageTable::new();
        pt.map_range(0, 1 << 30, PageSize::Base4K);
        let mut atc = TranslationCache::new(8, walk());
        for page in 0..100u64 {
            atc.translate(&pt, page * 4096);
        }
        // Recently-used pages stay; ancient ones were evicted.
        assert!(atc.translate(&pt, 99 * 4096).hit);
        assert!(!atc.translate(&pt, 0).hit);
    }

    #[test]
    fn fault_injection_roundtrip() {
        let mut pt = PageTable::new();
        pt.map_range(0, 1 << 20, PageSize::Base4K);
        pt.unmap_page(0x2345);
        assert!(!pt.is_present(0x2345));
        assert!(pt.is_present(0x8000));
        let mut atc = TranslationCache::new(8, walk());
        assert!(atc.translate(&pt, 0x2345).fault);
        pt.service_fault(0x2345);
        assert!(pt.is_present(0x2345));
        assert!(!atc.translate(&pt, 0x2345).fault);
    }

    #[test]
    fn map_buffer_covers_whole_range() {
        let mut asid = AddressSpace::new();
        let b = asid.alloc(10_000, Location::local_dram());
        let mut pt = PageTable::new();
        pt.map_buffer(&b);
        assert!(pt.is_present(b.base()));
        assert!(pt.is_present(b.base() + 9_999));
        assert!(!pt.is_present(b.base() + 20_000));
        assert_eq!(pt.page_base(b.base() + 5000), Some(b.base() + 4096));
    }

    #[test]
    fn flush_empties_cache() {
        let mut pt = PageTable::new();
        pt.map_range(0, 1 << 20, PageSize::Base4K);
        let mut atc = TranslationCache::new(8, walk());
        atc.translate(&pt, 0);
        atc.flush();
        assert!(!atc.translate(&pt, 0).hit);
    }

    #[test]
    fn zero_len_map_ignored() {
        let mut pt = PageTable::new();
        pt.map_range(0x1000, 0, PageSize::Base4K);
        assert!(pt.lookup(0x1000).is_none());
    }
}
