//! Shared-virtual-memory contents: the byte store devices and cores access.
//!
//! DSA operates directly on user virtual addresses (SVM, paper §3.2/F1).
//! [`Memory`] is the process address space as a *content* store: buffers are
//! allocated at page-aligned virtual addresses with a declared
//! [`Location`], and both CPU-side code and the device models read/write
//! them through plain addresses — exactly how descriptors reference data.
//!
//! Timing lives in [`MemSystem`](crate::memsys::MemSystem); contents live
//! here. The two are kept separate so functional execution can never
//! accidentally depend on timing state or vice versa.

use crate::buffer::{Location, PageSize};
use std::collections::BTreeMap;
use std::fmt;

/// A handle to an allocated region (cheap to copy, like a pointer+len).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufferHandle {
    base: u64,
    len: u64,
}

impl BufferHandle {
    /// A handle over an address range obtained elsewhere — e.g. decoded
    /// back out of a compiled descriptor. Carries no liveness guarantee
    /// beyond what the caller already holds; reads/writes through a stale
    /// range fail at the `Memory` API like any bad address.
    pub fn from_raw(addr: u64, len: u64) -> BufferHandle {
        BufferHandle { base: addr, len }
    }

    /// Starting virtual address.
    pub fn addr(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-range of this buffer.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds the buffer.
    pub fn slice(&self, offset: u64, len: u64) -> BufferHandle {
        assert!(offset + len <= self.len, "slice {offset}+{len} outside buffer of {}", self.len);
        BufferHandle { base: self.base + offset, len }
    }
}

#[derive(Debug)]
struct Segment {
    data: Vec<u8>,
    location: Location,
    page_size: PageSize,
}

/// Errors from address-based access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// The range touches unallocated address space.
    Unmapped {
        /// Offending address.
        addr: u64,
    },
    /// The range spans more than one allocation (descriptors may not).
    CrossesSegments {
        /// Start of the offending range.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemError::CrossesSegments { addr } => {
                write!(f, "range at {addr:#x} crosses allocation boundaries")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// The process address space as a content store.
///
/// ```
/// use dsa_mem::memory::Memory;
/// use dsa_mem::buffer::Location;
/// let mut mem = Memory::new();
/// let buf = mem.alloc(64, Location::local_dram());
/// mem.write(buf.addr(), &[1, 2, 3]).unwrap();
/// assert_eq!(mem.read(buf.addr(), 3).unwrap(), &[1, 2, 3]);
/// ```
#[derive(Debug, Default)]
pub struct Memory {
    segments: BTreeMap<u64, Segment>,
    next_base: u64,
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory { segments: BTreeMap::new(), next_base: 0x1000_0000 }
    }

    /// Allocates `len` zeroed bytes in `location` with 4 KiB pages.
    pub fn alloc(&mut self, len: u64, location: Location) -> BufferHandle {
        self.alloc_with_pages(len, location, PageSize::Base4K)
    }

    /// Allocates with an explicit page size.
    pub fn alloc_with_pages(
        &mut self,
        len: u64,
        location: Location,
        page_size: PageSize,
    ) -> BufferHandle {
        let align = page_size.bytes();
        let base = self.next_base.div_ceil(align) * align;
        let span = (len.div_ceil(align) * align).max(align);
        self.next_base = base + span;
        self.segments.insert(base, Segment { data: vec![0; len as usize], location, page_size });
        BufferHandle { base, len }
    }

    fn segment_of(&self, addr: u64, len: u64) -> Result<(u64, &Segment), MemError> {
        let (&base, seg) =
            self.segments.range(..=addr).next_back().ok_or(MemError::Unmapped { addr })?;
        if addr >= base + seg.data.len() as u64 {
            return Err(MemError::Unmapped { addr });
        }
        if addr + len > base + seg.data.len() as u64 {
            return Err(MemError::CrossesSegments { addr });
        }
        Ok((base, seg))
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped or spans allocations.
    pub fn read(&self, addr: u64, len: u64) -> Result<&[u8], MemError> {
        let (base, seg) = self.segment_of(addr, len)?;
        let off = (addr - base) as usize;
        Ok(&seg.data[off..off + len as usize])
    }

    /// Writes `bytes` at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped or spans allocations.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemError> {
        let (base, _) = self.segment_of(addr, bytes.len() as u64)?;
        let seg = self.segments.get_mut(&base).ok_or(MemError::Unmapped { addr })?;
        let off = (addr - base) as usize;
        seg.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Mutable view of a range.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped or spans allocations.
    pub fn read_mut(&mut self, addr: u64, len: u64) -> Result<&mut [u8], MemError> {
        let (base, _) = self.segment_of(addr, len)?;
        let seg = self.segments.get_mut(&base).ok_or(MemError::Unmapped { addr })?;
        let off = (addr - base) as usize;
        Ok(&mut seg.data[off..off + len as usize])
    }

    /// Copies `len` bytes from `src` to `dst` (may be in different
    /// allocations; overlapping ranges copy through a staging buffer, i.e.
    /// `memmove` semantics).
    ///
    /// # Errors
    ///
    /// Fails if either range is invalid.
    pub fn copy(&mut self, src: u64, dst: u64, len: u64) -> Result<(), MemError> {
        // Validate both before copying.
        self.segment_of(src, len)?;
        self.segment_of(dst, len)?;
        let tmp = self.read(src, len)?.to_vec();
        self.write(dst, &tmp)
    }

    /// The declared location of the allocation containing `addr`.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is unmapped.
    pub fn location_of(&self, addr: u64) -> Result<Location, MemError> {
        Ok(self.segment_of(addr, 1)?.1.location)
    }

    /// The page size of the allocation containing `addr`.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is unmapped.
    pub fn page_size_of(&self, addr: u64) -> Result<PageSize, MemError> {
        Ok(self.segment_of(addr, 1)?.1.page_size)
    }

    /// Re-declares the location of the allocation containing `addr`
    /// (data warmed into the LLC, or migrated between tiers).
    ///
    /// # Errors
    ///
    /// Fails if `addr` is unmapped.
    pub fn set_location(&mut self, addr: u64, location: Location) -> Result<(), MemError> {
        let (base, _) = self.segment_of(addr, 1)?;
        self.segments.get_mut(&base).ok_or(MemError::Unmapped { addr })?.location = location;
        Ok(())
    }

    /// Iterates over `(base, len, location, page_size)` of all allocations —
    /// used to populate page tables.
    pub fn iter_segments(&self) -> impl Iterator<Item = (u64, u64, Location, PageSize)> + '_ {
        self.segments.iter().map(|(&b, s)| (b, s.data.len() as u64, s.location, s.page_size))
    }

    /// Total allocated bytes.
    pub fn allocated_bytes(&self) -> u64 {
        self.segments.values().map(|s| s.data.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = Memory::new();
        let b = m.alloc(100, Location::local_dram());
        m.write(b.addr() + 10, &[5, 6, 7]).unwrap();
        assert_eq!(m.read(b.addr() + 10, 3).unwrap(), &[5, 6, 7]);
        assert_eq!(m.read(b.addr(), 1).unwrap(), &[0]);
    }

    #[test]
    fn unmapped_access_fails() {
        let m = Memory::new();
        assert_eq!(m.read(0x123, 1), Err(MemError::Unmapped { addr: 0x123 }));
    }

    #[test]
    fn cross_segment_access_fails() {
        let mut m = Memory::new();
        let b = m.alloc(100, Location::local_dram());
        assert!(matches!(
            m.read(b.addr() + 90, 20),
            Err(MemError::CrossesSegments { .. }) | Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn copy_between_allocations() {
        let mut m = Memory::new();
        let a = m.alloc(64, Location::local_dram());
        let b = m.alloc(64, Location::Cxl);
        m.write(a.addr(), &[9u8; 64]).unwrap();
        m.copy(a.addr(), b.addr(), 64).unwrap();
        assert_eq!(m.read(b.addr(), 64).unwrap(), &[9u8; 64]);
    }

    #[test]
    fn overlapping_copy_is_memmove() {
        let mut m = Memory::new();
        let b = m.alloc(16, Location::local_dram());
        m.write(b.addr(), &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        m.copy(b.addr(), b.addr() + 2, 6).unwrap();
        assert_eq!(m.read(b.addr(), 8).unwrap(), &[1, 2, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn location_metadata() {
        let mut m = Memory::new();
        let b = m.alloc(10, Location::Cxl);
        assert_eq!(m.location_of(b.addr()).unwrap(), Location::Cxl);
        m.set_location(b.addr(), Location::Llc).unwrap();
        assert_eq!(m.location_of(b.addr() + 5).unwrap(), Location::Llc);
    }

    #[test]
    fn handle_slicing() {
        let mut m = Memory::new();
        let b = m.alloc(100, Location::local_dram());
        let s = b.slice(10, 20);
        assert_eq!(s.addr(), b.addr() + 10);
        assert_eq!(s.len(), 20);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside buffer")]
    fn oversized_slice_panics() {
        let mut m = Memory::new();
        let b = m.alloc(10, Location::local_dram());
        b.slice(5, 10);
    }

    #[test]
    fn segments_iteration_and_accounting() {
        let mut m = Memory::new();
        m.alloc(10, Location::local_dram());
        m.alloc(20, Location::Cxl);
        assert_eq!(m.allocated_bytes(), 30);
        assert_eq!(m.iter_segments().count(), 2);
    }

    #[test]
    fn huge_page_allocation_alignment() {
        let mut m = Memory::new();
        let b = m.alloc_with_pages(10, Location::local_dram(), PageSize::Huge2M);
        assert_eq!(b.addr() % PageSize::Huge2M.bytes(), 0);
        assert_eq!(m.page_size_of(b.addr()).unwrap(), PageSize::Huge2M);
    }
}
