//! Simulated buffers and the virtual address space they live in.
//!
//! Every buffer is backed by real bytes (operations in this workspace are
//! functional, not mocked) and carries *placement metadata*: which memory
//! medium holds it, which NUMA socket, and the page size it was mapped with.
//! The timing models consume the metadata; the operations consume the bytes.

use std::fmt;

/// Where a buffer's backing memory lives.
///
/// Mirrors the placements evaluated in the paper: local/remote DRAM
/// (Fig. 6a), CXL-attached memory (Fig. 6b), and LLC-resident data
/// (Fig. 15).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Location {
    /// Socket-attached DRAM.
    Dram {
        /// NUMA socket id; socket 0 is "local" to the cores and devices used
        /// in the experiments.
        socket: u8,
    },
    /// CXL type-3 memory expander (exposed as a CPU-less NUMA node).
    Cxl,
    /// Data currently resident in the last-level cache of socket 0.
    Llc,
}

impl Location {
    /// DRAM on the local socket (socket 0).
    pub const fn local_dram() -> Location {
        Location::Dram { socket: 0 }
    }

    /// DRAM on the remote socket (socket 1), reached over UPI.
    pub const fn remote_dram() -> Location {
        Location::Dram { socket: 1 }
    }

    /// Short label used in experiment output, matching the paper's figures
    /// (`L` = LLC, `D` = local DRAM, `R` = remote DRAM, `C` = CXL).
    pub fn label(&self) -> &'static str {
        match self {
            Location::Dram { socket: 0 } => "D",
            Location::Dram { .. } => "R",
            Location::Cxl => "C",
            Location::Llc => "L",
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Dram { socket } => write!(f, "DRAM(socket {socket})"),
            Location::Cxl => write!(f, "CXL"),
            Location::Llc => write!(f, "LLC"),
        }
    }
}

/// Page size a mapping was created with (paper Fig. 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PageSize {
    /// Base 4 KiB pages.
    Base4K,
    /// 2 MiB huge pages.
    Huge2M,
}

impl PageSize {
    /// The size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Base4K => 4 << 10,
            PageSize::Huge2M => 2 << 20,
        }
    }
}

/// A buffer in the simulated address space.
///
/// Holds real bytes plus placement metadata. Cloning is deliberately not
/// provided: buffers model unique memory regions; use
/// [`AddressSpace::alloc`] for more.
pub struct SimBuffer {
    base: u64,
    data: Vec<u8>,
    location: Location,
    page_size: PageSize,
}

impl SimBuffer {
    /// Starting virtual address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Placement of the backing memory.
    pub fn location(&self) -> Location {
        self.location
    }

    /// Page size of the mapping.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Read-only view of the bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Reinterprets the buffer as living elsewhere (used by experiments that
    /// "warm" data into the LLC or migrate it between tiers).
    pub fn set_location(&mut self, location: Location) {
        self.location = location;
    }

    /// The virtual address range `[base, base+len)`.
    pub fn range(&self) -> std::ops::Range<u64> {
        self.base..self.base + self.data.len() as u64
    }
}

impl fmt::Debug for SimBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBuffer")
            .field("base", &format_args!("{:#x}", self.base))
            .field("len", &self.data.len())
            .field("location", &self.location)
            .field("page_size", &self.page_size)
            .finish()
    }
}

/// A process-style virtual address space that hands out page-aligned
/// buffers.
///
/// ```
/// use dsa_mem::buffer::{AddressSpace, Location, PageSize};
/// let mut asid = AddressSpace::new();
/// let b = asid.alloc(100, Location::local_dram());
/// assert_eq!(b.len(), 100);
/// assert_eq!(b.base() % PageSize::Base4K.bytes(), 0);
/// ```
#[derive(Debug)]
pub struct AddressSpace {
    next_base: u64,
    default_page: PageSize,
    allocated_bytes: u64,
}

impl AddressSpace {
    /// Creates an empty address space using 4 KiB pages by default.
    pub fn new() -> Self {
        // Start well above the null page, mimicking a real heap.
        Self { next_base: 0x1000_0000, default_page: PageSize::Base4K, allocated_bytes: 0 }
    }

    /// Switches the default page size for subsequent allocations.
    pub fn set_default_page_size(&mut self, ps: PageSize) {
        self.default_page = ps;
    }

    /// Default page size for [`alloc`](AddressSpace::alloc).
    pub fn default_page_size(&self) -> PageSize {
        self.default_page
    }

    /// Allocates a zero-filled buffer with the default page size.
    pub fn alloc(&mut self, len: usize, location: Location) -> SimBuffer {
        let ps = self.default_page;
        self.alloc_with_pages(len, location, ps)
    }

    /// Allocates a zero-filled buffer mapped with `page_size` pages.
    pub fn alloc_with_pages(
        &mut self,
        len: usize,
        location: Location,
        page_size: PageSize,
    ) -> SimBuffer {
        let align = page_size.bytes();
        let base = self.next_base.div_ceil(align) * align;
        let span = ((len as u64).div_ceil(align) * align).max(align);
        self.next_base = base + span;
        self.allocated_bytes += span;
        SimBuffer { base, data: vec![0u8; len], location, page_size }
    }

    /// Total bytes of address space handed out (page-rounded).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_page_aligned_and_disjoint() {
        let mut asid = AddressSpace::new();
        let a = asid.alloc(5000, Location::local_dram());
        let b = asid.alloc(100, Location::Cxl);
        assert_eq!(a.base() % 4096, 0);
        assert_eq!(b.base() % 4096, 0);
        assert!(a.range().end <= b.range().start, "ranges must not overlap");
        assert_eq!(a.len(), 5000);
        assert_eq!(b.location(), Location::Cxl);
    }

    #[test]
    fn huge_page_alignment() {
        let mut asid = AddressSpace::new();
        let b = asid.alloc_with_pages(10, Location::local_dram(), PageSize::Huge2M);
        assert_eq!(b.base() % (2 << 20), 0);
        assert_eq!(b.page_size(), PageSize::Huge2M);
    }

    #[test]
    fn default_page_size_applies() {
        let mut asid = AddressSpace::new();
        asid.set_default_page_size(PageSize::Huge2M);
        assert_eq!(asid.default_page_size(), PageSize::Huge2M);
        let b = asid.alloc(10, Location::local_dram());
        assert_eq!(b.page_size(), PageSize::Huge2M);
    }

    #[test]
    fn buffer_bytes_are_real_and_zeroed() {
        let mut asid = AddressSpace::new();
        let mut b = asid.alloc(64, Location::local_dram());
        assert!(b.bytes().iter().all(|&x| x == 0));
        b.bytes_mut()[0] = 0xAB;
        assert_eq!(b.bytes()[0], 0xAB);
        assert!(!b.is_empty());
    }

    #[test]
    fn location_labels_match_paper() {
        assert_eq!(Location::local_dram().label(), "D");
        assert_eq!(Location::remote_dram().label(), "R");
        assert_eq!(Location::Cxl.label(), "C");
        assert_eq!(Location::Llc.label(), "L");
    }

    #[test]
    fn page_size_bytes() {
        assert_eq!(PageSize::Base4K.bytes(), 4096);
        assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn set_location_reinterprets() {
        let mut asid = AddressSpace::new();
        let mut b = asid.alloc(64, Location::local_dram());
        b.set_location(Location::Llc);
        assert_eq!(b.location(), Location::Llc);
    }

    #[test]
    fn allocated_bytes_accumulates() {
        let mut asid = AddressSpace::new();
        asid.alloc(1, Location::local_dram());
        asid.alloc(4097, Location::local_dram());
        // 4 KiB + 8 KiB after page rounding
        assert_eq!(asid.allocated_bytes(), 4096 + 8192);
    }
}
