//! # dsa-mem — memory-system model
//!
//! Models the parts of a Sapphire-Rapids-class (and Ice-Lake-class) memory
//! system that the DSA paper's experiments exercise:
//!
//! * [`buffer`] — simulated virtual address space, buffer allocation with a
//!   declared [`Location`] (local/remote DRAM, CXL, LLC)
//!   and page size, with *real* backing bytes so operations stay functional.
//! * [`topology`] — platform presets reproducing Table 2 of the paper
//!   (SPR: 56 cores, 105 MB LLC, 8×DDR5; ICX: 40 cores, 57 MB LLC, 6×DDR4)
//!   plus all calibrated latency/bandwidth parameters.
//! * [`cache`] — a set-associative LLC with way partitioning (CAT) and
//!   dedicated DDIO ways, with per-agent occupancy accounting (paper
//!   Fig. 12) and a leaky-DMA overflow tracker (paper Fig. 10).
//! * [`translate`] — page tables, core TLB / device ATC models, IOMMU page
//!   walks, 4 KiB vs 2 MiB pages (paper Fig. 8), and page-fault costs.
//! * [`memsys`] — the central timing façade: bandwidth-shaped, latency-
//!   annotated reads/writes against every location, shared by the CPU
//!   software baselines and the device models.
//!
//! Timing is *transaction-level and calibrated*, not cycle-accurate; see
//! `DESIGN.md` §1 for what each simplification preserves.
//!
//! ```
//! use dsa_mem::{Memory, MemSystem, Platform};
//! use dsa_mem::buffer::Location;
//! use dsa_mem::memsys::{AgentId, WritePolicy};
//! use dsa_sim::SimTime;
//!
//! let mut memory = Memory::new();
//! let mut memsys = MemSystem::new(Platform::spr());
//! let buf = memory.alloc(4096, Location::local_dram());
//! memory.write(buf.addr(), b"hello").unwrap();
//!
//! // Timing: a 4 KiB read of local DRAM costs bandwidth + latency.
//! let iv = memsys.read(AgentId::core(0), Location::local_dram(), SimTime::ZERO, 4096);
//! assert!(iv.end.as_ns_f64() > 100.0);
//! let w = memsys.write(AgentId::core(0), Location::local_dram(), iv.end, 4096,
//!                      WritePolicy::Memory);
//! assert!(w.interval.end > iv.end);
//! ```

pub mod agent;
pub mod buffer;
pub mod cache;
pub mod memory;
pub mod memsys;
pub mod topology;
pub mod translate;

pub use agent::AgentId;
pub use buffer::{AddressSpace, Location, SimBuffer};
pub use memory::{BufferHandle, MemError, Memory};
pub use memsys::MemSystem;
pub use topology::Platform;
