//! Good twin of the R6 two-hop corpus, hop 1 — linted as
//! `crates/workloads/src/relay_fixture.rs`.

use dsa_telemetry::leaf_hash::coarse_stamp;

/// Forwards to the ordered leaf; carries no taint.
pub fn relay_delay(seed: u64) -> u64 {
    coarse_stamp(seed) | 1
}
