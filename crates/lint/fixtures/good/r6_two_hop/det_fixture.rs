//! Good twin of the R6 two-hop corpus, hop 0 — linted as
//! `crates/sim/src/det_fixture.rs`. Same shape as the bad chain; the leaf
//! is deterministic, so no taint reaches here.

use dsa_workloads::relay_fixture::relay_delay;

/// Same entry point as the bad corpus; must stay silent under R6.
pub fn schedule_next(seed: u64) -> u64 {
    relay_delay(seed)
}
