//! Good twin of the R6 two-hop corpus, hop 2 — linted as
//! `crates/telemetry/src/leaf_hash.rs`. Identical fold, but over a
//! `BTreeMap`, whose iteration order is defined. No source, no taint,
//! and the whole chain stays clean.

use std::collections::BTreeMap;

/// Folds a map in key order — the same u64 every run.
pub fn coarse_stamp(seed: u64) -> u64 {
    let mut m = BTreeMap::new();
    m.insert(seed, seed ^ 0x9e37_79b9);
    m.insert(seed.rotate_left(7), seed);
    let mut acc = 0u64;
    for (k, v) in m.iter() {
        acc = acc.wrapping_mul(31).wrapping_add(k ^ v);
    }
    acc
}
