//! R5 fixture: the sanctioned shapes — capacity reserved up front, arenas
//! reused via clear(), and one-time construction documented with a pragma.

pub struct Pool {
    slots: Vec<u64>,
}

impl Pool {
    pub fn new() -> Pool {
        let slots = Vec::new(); // dsa-lint: allow(hot-alloc, arena built once per engine)
        Pool { slots }
    }

    pub fn with_capacity(n: usize) -> Pool {
        Pool { slots: Vec::with_capacity(n) }
    }

    pub fn recycle(&mut self) {
        self.slots.clear();
    }

    pub fn fill(&mut self, xs: &[u64]) {
        self.slots.extend_from_slice(xs);
    }
}
