//! Good twin of the R7 corpus — the same computations written with unit
//! discipline: literals live in named consts, byte counts cross into
//! picoseconds only through a conversion helper.

/// Link gap between back-to-back frames.
pub const LINK_GAP_PS: u64 = 5_000;

/// Wire time of one byte at the modeled link rate.
pub const BYTE_TIME_PS: u64 = 50;

/// A queued transfer with a picosecond deadline.
pub struct Pending {
    pub deadline_ps: u64,
}

/// Converts a byte count to wire time. Carries both unit families, so
/// R7 treats uses of it as sanctioned conversions.
pub fn bytes_to_ps(bytes: u64) -> u64 {
    bytes * BYTE_TIME_PS
}

/// Pure ps arithmetic through the conversion helper — silent under R7.
pub fn arrival(now_ps: u64, frame: &[u8]) -> u64 {
    now_ps + bytes_to_ps(frame.len() as u64)
}

/// Named const into the ps constructor — silent under R7.
pub fn gap() -> u64 {
    from_ps(LINK_GAP_PS)
}

/// Const-derived field store — silent under R7.
pub fn stamp(job: &mut Pending) {
    job.deadline_ps = LINK_GAP_PS;
}

fn from_ps(ps: u64) -> u64 {
    ps
}
