// Fixture: idiomatic deterministic-core code the linter must pass untouched.
use std::collections::BTreeMap;

struct Descriptor {
    opcode: u8,
}

impl Descriptor {
    fn nop() -> Descriptor {
        Self { opcode: 0 }
    }
}

fn schedule(jobs: &BTreeMap<u64, u32>) -> Result<u64, &'static str> {
    // Strings mentioning unwrap() or Instant::now() are not code.
    let banner = "never unwrap(); never Instant::now()";
    let first = jobs.keys().next().ok_or(banner)?;
    Ok(*first + u64::from(Descriptor::nop().opcode))
}

fn pure_integer_scaling(bytes: u64) -> u64 {
    // Integer-only `as` casts are fine under R3.
    (bytes as u128 * 3 / 2) as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
