//! Good twin of the R8 corpus — linted as a shard module path. All state
//! is owned by value: the shard struct holds plain containers, mutation
//! goes through `&mut self`, and the only shared-state construct in the
//! file sits under `#[cfg(test)]`, where R8 does not apply.

use std::collections::BTreeMap;

/// Per-shard state: owned, `Send` by construction, movable wholesale.
pub struct ShardState {
    pending: Vec<u64>,
    by_tenant: BTreeMap<u64, u64>,
}

impl ShardState {
    /// Creates an empty shard.
    pub fn new() -> ShardState {
        ShardState { pending: Vec::new(), by_tenant: BTreeMap::new() }
    }

    /// Queues a tenant's transfer on this shard only.
    pub fn push(&mut self, tenant: u64) {
        self.pending.push(tenant);
        *self.by_tenant.entry(tenant).or_insert(0) += 1;
    }

    /// Transfers queued for `tenant` on this shard.
    pub fn queued_for(&self, tenant: u64) -> u64 {
        self.by_tenant.get(&tenant).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::ShardState;
    use std::rc::Rc;

    #[test]
    fn rc_in_tests_is_fine() {
        let shared = Rc::new(ShardState::new());
        assert_eq!(shared.queued_for(7), 0);
    }
}
