// Fixture: documented pragmas silence their rule without other findings.
use std::sync::Mutex;

fn counter_value(m: &Mutex<u64>) -> u64 {
    // dsa-lint: allow(unwrap, lock poisoning means a test already panicked; propagating is pointless)
    *m.lock().unwrap()
}
