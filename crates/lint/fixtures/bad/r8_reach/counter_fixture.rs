//! R8 transitive-reach corpus, helper side — linted as
//! `crates/workloads/src/counter_fixture.rs`. Owning a process-global
//! counter is legal *here* (workloads is not a shard module); the
//! violation belongs to the shard-side caller that reaches it.

static mut CALLS: u64 = 0;

/// Bumps a process-global counter — fine locally, poison for shards.
pub fn bump_global() -> u64 {
    unsafe {
        CALLS += 1;
        CALLS
    }
}
