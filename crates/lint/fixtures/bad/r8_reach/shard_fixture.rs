//! R8 transitive-reach corpus, shard side — linted as
//! `crates/sim/src/engine.rs`. The file itself is lexically clean: no
//! `Rc`, no `static mut`, nothing the lexical ban list can see. But
//! `step` calls a workloads helper that bumps a process-global counter,
//! so two engines on different shards would race through it. Only the
//! call-graph pass catches this.

use dsa_workloads::counter_fixture::bump_global;

/// A shard engine that launders global state through a helper crate.
pub struct Engine;

impl Engine {
    /// Must be flagged: reaches `CALLS` via `bump_global`.
    pub fn step(&mut self) -> u64 {
        bump_global()
    }
}
