//! R8 shard-isolation corpus — linted as a shard module path such as
//! `crates/sim/src/engine.rs`. Every construct here breaks the
//! one-owner-per-shard story ROADMAP item 1 depends on: state that can be
//! aliased across shards, observed cross-thread, or smuggled through
//! thread-local storage.

use std::rc::Rc;

use std::sync::atomic::AtomicU64;

static mut EVENTS_SEEN: u64 = 0;

thread_local! {
    static SCRATCH: u64 = 0;
}

/// A cursor whose slots could be aliased by another owner.
pub struct SharedCursor {
    pub slots: Rc<u64>,
    pub hits: AtomicU64,
}
