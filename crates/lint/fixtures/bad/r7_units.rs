//! R7 unit-consistency corpus — linted as a timeline-math path such as
//! `crates/mem/src/link_fixture.rs`. Three distinct ways to silently
//! change units; each line marked BAD must produce one finding.

/// A queued transfer with a picosecond deadline.
pub struct Pending {
    pub deadline_ps: u64,
}

/// BAD: adds a byte count to a picosecond timestamp. Compiles fine —
/// both are u64 — and is wrong by twelve orders of magnitude.
pub fn arrival(now_ps: u64, frame: &[u8]) -> u64 {
    now_ps + frame.len() as u64
}

/// BAD: feeds a raw magic number into a ps-typed constructor. The
/// calibration story behind 5_000 is lost the moment it is inlined.
pub fn gap() -> u64 {
    from_ps(5_000)
}

/// BAD: assigns a raw literal to a ps-named field.
pub fn stamp(job: &mut Pending) {
    job.deadline_ps = 7_500_000;
}

fn from_ps(ps: u64) -> u64 {
    ps
}
