//! R6 two-hop corpus, hop 2 (the source) — linted as
//! `crates/telemetry/src/leaf_hash.rs`.
//!
//! Iterates a `HashMap`. Lexical R1 *permits* this here: the telemetry
//! crate (outside `causal.rs`) is not in the det-core hash-container
//! scope, and that is correct as a lexical policy — presentation code may
//! use hash maps. The hole is reachability: a det-core function calling
//! into this picks up iteration-order dependence, which is exactly what
//! R6's graph taint closes.

use std::collections::HashMap;

/// Folds a map in iteration order — a different u64 per process run.
pub fn coarse_stamp(seed: u64) -> u64 {
    let mut m = HashMap::new();
    m.insert(seed, seed ^ 0x9e37_79b9);
    m.insert(seed.rotate_left(7), seed);
    let mut acc = 0u64;
    for (k, v) in m.iter() {
        acc = acc.wrapping_mul(31).wrapping_add(k ^ v);
    }
    acc
}
