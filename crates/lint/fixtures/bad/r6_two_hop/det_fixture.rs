//! R6 two-hop corpus, hop 0 — linted as `crates/sim/src/det_fixture.rs`.
//!
//! This det-core entry point is lexically spotless: no wall clocks, no
//! hash containers, nothing R1 can object to. The nondeterminism is two
//! calls away, laundered through a helper in a crate the lexical
//! hash-container scope never covers. Only the call-graph taint pass can
//! see it from here.

use dsa_workloads::relay_fixture::relay_delay;

/// Picks the next event delay. R6 must flag this function with a chain
/// through `relay_delay` to the hash-iterating leaf.
pub fn schedule_next(seed: u64) -> u64 {
    relay_delay(seed)
}
