//! R6 two-hop corpus, hop 1 — linted as
//! `crates/workloads/src/relay_fixture.rs`.
//!
//! The middle of the laundering chain: a perfectly innocent-looking
//! workloads helper that forwards to the telemetry leaf. Nothing here is
//! a source either — the point is that taint flows *through* it.

use dsa_telemetry::leaf_hash::coarse_stamp;

/// Forwards to the leaf; tainted transitively, but outside the det-core
/// scope, so R6 reports the sim-side caller, not this.
pub fn relay_delay(seed: u64) -> u64 {
    coarse_stamp(seed) | 1
}
