// Fixture: a reasonless pragma still suppresses, but is itself flagged.
fn lookup(table: Option<u64>) -> u64 {
    // dsa-lint: allow(unwrap)
    table.unwrap()
}
