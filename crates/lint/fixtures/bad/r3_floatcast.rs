// Fixture: R3 must flag hand-rolled float<->int timeline arithmetic.
fn derate(bytes: u64, factor: f64) -> u64 {
    (bytes as f64 * factor) as u64
}

fn nanos(ns_f64: f64) -> u64 {
    ns_f64 as u64
}
