// Fixture: R2 must flag panicking result-handling in library code.
fn hot_path(slot: Option<u64>, res: Result<u64, ()>) -> u64 {
    let a = slot.unwrap();
    let b = res.expect("submission failed");
    a + b
}
