// Fixture: R1 must flag unordered hash containers in the deterministic core.
use std::collections::HashMap;
use std::collections::HashSet;

fn build() -> (HashMap<u32, u32>, HashSet<u32>) {
    (HashMap::new(), HashSet::new())
}
