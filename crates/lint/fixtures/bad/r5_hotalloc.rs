//! R5 fixture: heap allocation on the hot path. Every allocating construct
//! the rule names appears once in non-test code.

pub fn hot(xs: &[u64]) -> u64 {
    let boxed = Box::new(xs.len() as u64);
    let mut pooled = Vec::new();
    pooled.push(*boxed);
    let copied = xs.to_vec();
    let doubled = copied.clone();
    let literal = vec![1u64, 2, 3];
    doubled.iter().chain(literal.iter()).chain(pooled.iter()).sum()
}
