// Fixture: R4 must flag raw descriptor literals that bypass validate().
fn forge(src: u64, dst: u64, len: u32) -> Descriptor {
    Descriptor {
        opcode: 3,
        flags: 0,
        src,
        dst,
        xfer_size: len,
    }
}

fn forge_batch(list: u64, count: u32) -> BatchDescriptor {
    BatchDescriptor { desc_list_addr: list, desc_count: count }
}
