// Fixture: R1 must flag wall-clock time sources and OS threads.
use std::time::Instant;
use std::time::SystemTime;

fn measure() -> u128 {
    let start = Instant::now();
    let _epoch = SystemTime::now();
    let worker = std::thread::spawn(|| 42u128);
    worker.join().unwrap_or(0) + start.elapsed().as_nanos()
}
