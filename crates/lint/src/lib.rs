//! # dsa-lint
//!
//! A dependency-free static-analysis tool for this workspace. It enforces
//! the invariants the DSA reproduction's results rest on — deterministic
//! simulation and spec-legal descriptors — as machine-checked lint rules:
//!
//! | rule | name | checks |
//! |------|------|--------|
//! | R1 | `nondeterminism` | no `std::time::Instant`/`SystemTime`, no `thread::spawn`; no `HashMap`/`HashSet` in the det-core scope |
//! | R2 | `unwrap` | no `.unwrap()`/`.expect()` in library non-test code |
//! | R3 | `float-cast` | no float↔int `as` casts in timeline arithmetic outside `sim::time` |
//! | R4 | `raw-descriptor` | no raw `Descriptor { .. }` literals bypassing `Descriptor::validate()` |
//! | R5 | `hot-alloc` | no `Box::new`/`Vec::new`/`vec![..]`/`.to_vec()`/`.clone()` in the designated hot-path modules |
//! | R6 | `det-taint` | no det-core function may *transitively* reach a nondeterminism source through the call graph |
//! | R7 | `unit-consistency` | no ps/byte mixing and no raw literals across ps boundaries in timeline math |
//! | R8 | `shard-isolation` | no shared-mutable-state constructs in (or reachable from) the ROADMAP-item-1 shard modules |
//!
//! R1–R5 and R7 plus R8's lexical half are per-file token scans
//! ([`rules`]). R6 and R8's transitive half are *workspace* rules: a
//! resolution pass ([`resolve`]) builds a symbol table, [`callgraph`]
//! links call sites across crates, and taint propagates over the reversed
//! edges. Rule scopes are data, not code: `crates/lint/scopes.toml`,
//! parsed by [`scopes`].
//!
//! Exceptions are documented inline with `// dsa-lint: allow(rule, reason)`.
//! See `crates/lint/RULES.md` for the full rationale.
//!
//! The crate deliberately has **zero dependencies** (the workspace's
//! Cargo.lock stays dependency-free), so parsing is done by a hand-rolled
//! lexer in [`lexer`] rather than `syn`.

pub mod callgraph;
pub mod lexer;
pub mod resolve;
pub mod rules;
pub mod scopes;

pub use rules::{check_file, Violation, RULES};

use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Lints a set of in-memory files (workspace-relative path + source) as
/// one workspace: every per-file rule runs on each file, then the
/// resolution pass builds the cross-file call graph and the workspace
/// rules (R6 `det-taint`, R8's transitive half) run over it. Returns
/// violations sorted by file and line.
pub fn check_files(files: &[(String, String)]) -> Vec<Violation> {
    let lexed: Vec<(String, lexer::Lexed)> =
        files.iter().map(|(path, source)| (path.clone(), lexer::lex(source))).collect();
    let mut out = Vec::new();
    for (path, lex) in &lexed {
        out.extend(rules::check_lexed(path, lex));
    }
    out.extend(callgraph::check_workspace(&lexed));
    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)).then(a.rule.cmp(b.rule)));
    out
}

/// Lints every `.rs` file under `root` (skipping `target/`, hidden
/// directories, and lint fixture corpora). Returns violations sorted by
/// file and line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut paths = Vec::new();
    collect_rs(root, Path::new(""), &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        files.push((rel_str, source));
    }
    Ok(check_files(&files))
}

fn collect_rs(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(root.join(rel))? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let file_type = entry.file_type()?;
        if file_type.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs(root, &rel.join(&name), out)?;
        } else if file_type.is_file() && name.ends_with(".rs") {
            out.push(rel.join(&name));
        }
    }
    Ok(())
}

/// Walks upward from `start` looking for the workspace root (a directory
/// whose `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_workspace_root_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }
}
