//! # dsa-lint
//!
//! A dependency-free static-analysis tool for this workspace. It enforces
//! the invariants the DSA reproduction's results rest on — deterministic
//! simulation and spec-legal descriptors — as machine-checked lint rules:
//!
//! | rule | name | checks |
//! |------|------|--------|
//! | R1 | `nondeterminism` | no `std::time::Instant`/`SystemTime`, no `thread::spawn`; no `HashMap`/`HashSet` in `crates/{sim,device,core}/src` |
//! | R2 | `unwrap` | no `.unwrap()`/`.expect()` in library non-test code |
//! | R3 | `float-cast` | no float↔int `as` casts in timeline arithmetic outside `sim::time` |
//! | R4 | `raw-descriptor` | no raw `Descriptor { .. }` literals bypassing `Descriptor::validate()` |
//! | R5 | `hot-alloc` | no `Box::new`/`Vec::new`/`vec![..]`/`.to_vec()`/`.clone()` in the designated hot-path modules |
//!
//! Exceptions are documented inline with `// dsa-lint: allow(rule, reason)`.
//! See `crates/lint/RULES.md` for the full rationale.
//!
//! The crate deliberately has **zero dependencies** (the workspace's
//! Cargo.lock stays dependency-free), so parsing is done by a hand-rolled
//! lexer in [`lexer`] rather than `syn`.

pub mod lexer;
pub mod rules;

pub use rules::{check_file, Violation, RULES};

use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Lints every `.rs` file under `root` (skipping `target/`, hidden
/// directories, and lint fixture corpora). Returns violations sorted by
/// file and line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs(root, Path::new(""), &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        out.extend(rules::check_file(&rel_str, &source));
    }
    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(out)
}

fn collect_rs(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(root.join(rel))? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let file_type = entry.file_type()?;
        if file_type.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs(root, &rel.join(&name), out)?;
        } else if file_type.is_file() && name.ends_with(".rs") {
            out.push(rel.join(&name));
        }
    }
    Ok(())
}

/// Walks upward from `start` looking for the workspace root (a directory
/// whose `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_workspace_root_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }
}
