//! Approximate workspace call graph + interprocedural taint rules.
//!
//! Built on [`crate::resolve`]'s per-file symbols, this module links call
//! sites to declarations across the whole workspace and runs the two
//! reachability rules:
//!
//! * **R6 `det-taint`** — a function in the det-core scope *transitively*
//!   reaches a nondeterminism source (wall clock, `thread::spawn`, RNG
//!   seeding, iteration over a hash container) through the call graph.
//!   The lexical R1 rule sees only the file it is looking at; R6 catches
//!   nondeterminism laundered through helpers in non-scoped crates.
//! * **R8 `shard-isolation` (transitive half)** — a function in a
//!   ROADMAP-item-1 shard module reaches process-global mutable state
//!   (`static mut`, `thread_local!`) anywhere in the workspace. Note the
//!   deliberate asymmetry with R8's lexical half: interior-mutability
//!   *types* (`Rc`, `RefCell`, …) are banned only lexically in the shard
//!   files themselves, because an `Rc` inside a callee (say, a telemetry
//!   hub) is per-instance state each shard can own privately — it does not
//!   break Send-per-shard partitioning. Process-global state does, no
//!   matter how many calls away it hides.
//!
//! Call resolution is CHA-style and deliberately over-approximate: a
//! `.method(..)` site links to *every* workspace method of that name
//! (minus a denylist of ubiquitous std names such as `len`/`clone` that
//! workspace types also implement), and path calls resolve through the
//! file's `use` map. Over-approximation errs toward extra findings, which
//! a reasoned pragma on the function can document away.

use crate::lexer::{Lexed, Token, TokenKind};
use crate::resolve::{normalize_crate_seg, resolve_file, FileSyms, FnDecl};
use crate::rules::{suppressed, Violation};
use crate::scopes::Scopes;
use std::collections::{BTreeMap, BTreeSet};

/// One call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee (R6/R8 walk these in reverse: callee → callers).
    pub to: usize,
    /// 1-based line of the call site (in the caller's file).
    pub line: u32,
}

/// A direct nondeterminism or shared-state source inside one function.
#[derive(Debug, Clone)]
pub struct Source {
    /// What was found, e.g. "`Instant::now()` wall clock".
    pub desc: String,
    /// 1-based line of the source token.
    pub line: u32,
}

/// How a function became tainted.
#[derive(Debug, Clone, Copy)]
enum Taint {
    /// The function contains a source itself.
    Direct,
    /// Tainted through a call to `callee`.
    Via { callee: usize },
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All non-test functions from graph-eligible files.
    pub fns: Vec<FnDecl>,
    /// Forward edges, indexed by caller.
    pub edges: Vec<Vec<Edge>>,
    /// Reverse edges, indexed by callee.
    pub redges: Vec<Vec<Edge>>,
    /// Direct nondeterminism sources per function.
    pub det_sources: Vec<Vec<Source>>,
    /// Direct process-global-state sources per function.
    pub state_sources: Vec<Vec<Source>>,
}

/// Method names too ubiquitous to CHA-link: std container/iterator/trait
/// vocabulary that workspace types also implement. Linking `.len()` to
/// every workspace `len` would connect everything to everything. Domain
/// method names (`submit`, `translate`, `step`, …) stay linkable.
const CHA_DENYLIST: &[&str] = &[
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "clear",
    "clone",
    "contains",
    "contains_key",
    "entry",
    "extend",
    "drain",
    "retain",
    "map",
    "and_then",
    "unwrap_or",
    "min",
    "max",
    "cmp",
    "partial_cmp",
    "eq",
    "fmt",
    "hash",
    "default",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "to_string",
    "new",
    "with_capacity",
];

/// Hash-container methods whose results depend on iteration order.
const HASH_ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "retain"];

impl Graph {
    /// Builds the graph from lexed files (workspace-relative path + lexed
    /// source). Files outside any library module tree (tests, benches,
    /// examples) and `#[cfg(test)]` functions are excluded.
    pub fn build(files: &[(String, Lexed)]) -> Graph {
        let syms: Vec<FileSyms> =
            files.iter().map(|(path, lexed)| resolve_file(path, lexed)).collect();

        let mut global_statics: BTreeSet<String> = BTreeSet::new();
        for s in &syms {
            if s.module.is_some() {
                global_statics.extend(s.mut_statics.iter().cloned());
            }
        }

        let mut g = Graph::default();
        let mut fn_file: Vec<usize> = Vec::new();
        for (file_idx, s) in syms.iter().enumerate() {
            if s.module.is_none() {
                continue;
            }
            for decl in &s.fns {
                if decl.is_test {
                    continue;
                }
                g.fns.push(decl.clone());
                fn_file.push(file_idx);
            }
        }

        // Indices for call resolution.
        let mut free: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, f) in g.fns.iter().enumerate() {
            match &f.owner {
                None => free.entry((f.module.clone(), f.name.clone())).or_default().push(idx),
                Some(owner) => {
                    by_owner.entry((owner.clone(), f.name.clone())).or_default().push(idx);
                    by_name.entry(f.name.clone()).or_default().push(idx);
                }
            }
        }

        g.edges = vec![Vec::new(); g.fns.len()];
        g.redges = vec![Vec::new(); g.fns.len()];
        g.det_sources = vec![Vec::new(); g.fns.len()];
        g.state_sources = vec![Vec::new(); g.fns.len()];

        for (caller, &file_idx) in fn_file.iter().enumerate() {
            let tokens = &files[file_idx].1.tokens;
            let file_syms = &syms[file_idx];
            let (start, end) = g.fns[caller].body;
            let mut seen_edges: BTreeSet<usize> = BTreeSet::new();
            let mut j = start;
            while j < end.min(tokens.len()) {
                let t = &tokens[j];
                if t.kind != TokenKind::Ident {
                    j += 1;
                    continue;
                }
                scan_sources(
                    tokens,
                    j,
                    file_syms,
                    &global_statics,
                    &mut g.det_sources[caller],
                    &mut g.state_sources[caller],
                );
                if is_call_site(tokens, j)
                    && !tokens.get(j.wrapping_sub(1)).is_some_and(|p| p.is_ident("fn"))
                {
                    let callees = if j > start && tokens[j - 1].is_punct(".") {
                        // Method call: CHA by name, minus the denylist.
                        if CHA_DENYLIST.contains(&t.text.as_str()) {
                            Vec::new()
                        } else {
                            by_name.get(&t.text).cloned().unwrap_or_default()
                        }
                    } else {
                        let segs = path_before(tokens, j, start);
                        resolve_path_call(
                            &segs,
                            &t.text,
                            &g.fns[caller],
                            file_syms,
                            &free,
                            &by_owner,
                        )
                    };
                    for callee in callees {
                        if callee != caller && seen_edges.insert(callee) {
                            g.edges[caller].push(Edge { to: callee, line: t.line });
                        }
                    }
                }
                j += 1;
            }
        }

        for caller in 0..g.fns.len() {
            for e in g.edges[caller].clone() {
                g.redges[e.to].push(Edge { to: caller, line: e.line });
            }
        }
        g
    }

    /// Finds a function by module path and name (tests use this).
    pub fn find(&self, module: &str, name: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.module == module && f.name == name)
    }

    /// `module::name` or `module::Owner::name` for messages.
    pub fn qualified(&self, idx: usize) -> String {
        let f = &self.fns[idx];
        match &f.owner {
            Some(o) => format!("{}::{}::{}", f.module, o, f.name),
            None => format!("{}::{}", f.module, f.name),
        }
    }

    /// Reverse-BFS taint: marks every function that reaches a seed (a
    /// function with a direct source) through the call graph. Cycle-safe:
    /// each function is tainted at most once (first, shortest discovery).
    fn propagate(&self, sources: &[Vec<Source>]) -> Vec<Option<Taint>> {
        let mut taint: Vec<Option<Taint>> = vec![None; self.fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for (idx, s) in sources.iter().enumerate() {
            if !s.is_empty() {
                taint[idx] = Some(Taint::Direct);
                queue.push(idx);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let f = queue[head];
            head += 1;
            for e in &self.redges[f] {
                if taint[e.to].is_none() {
                    taint[e.to] = Some(Taint::Via { callee: f });
                    queue.push(e.to);
                }
            }
        }
        taint
    }

    /// Renders the call chain from `start` to its source root:
    /// `(chain of callee names, root index)`.
    fn chain(&self, taint: &[Option<Taint>], start: usize) -> (Vec<String>, usize) {
        let mut names = Vec::new();
        let mut cur = start;
        loop {
            match taint[cur] {
                Some(Taint::Via { callee, .. }) => {
                    names.push(self.qualified(callee));
                    cur = callee;
                }
                _ => return (names, cur),
            }
        }
    }
}

/// True if the ident at `j` is directly called: followed by `(`, allowing
/// a turbofish (`collect::<Vec<_>>(..)`) in between.
fn is_call_site(tokens: &[Token], j: usize) -> bool {
    match tokens.get(j + 1) {
        Some(n) if n.is_punct("(") => true,
        Some(n) if n.is_punct("::") && tokens.get(j + 2).is_some_and(|a| a.is_punct("<")) => {
            let mut depth = 0usize;
            let mut k = j + 2;
            while k < tokens.len() {
                if tokens[k].is_punct("<") {
                    depth += 1;
                } else if tokens[k].is_punct(">") {
                    depth -= 1;
                    if depth == 0 {
                        return tokens.get(k + 1).is_some_and(|a| a.is_punct("("));
                    }
                }
                k += 1;
            }
            false
        }
        _ => false,
    }
}

/// Collects the `::`-joined path segments immediately before the called
/// ident at `j` (`dsa_sim :: time :: scale_bytes(` → `[dsa_sim, time]`).
fn path_before(tokens: &[Token], j: usize, start: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut k = j;
    while k >= start + 2 && tokens[k - 1].is_punct("::") && tokens[k - 2].kind == TokenKind::Ident {
        segs.push(tokens[k - 2].text.clone());
        k -= 2;
    }
    segs.reverse();
    segs
}

/// Resolves a non-method call (`name(..)` or `path::name(..)`) to zero or
/// more workspace functions.
fn resolve_path_call(
    segs: &[String],
    name: &str,
    caller: &FnDecl,
    syms: &FileSyms,
    free: &BTreeMap<(String, String), Vec<usize>>,
    by_owner: &BTreeMap<(String, String), Vec<usize>>,
) -> Vec<usize> {
    // Expand the head segment through the use map / path keywords into a
    // full path, then try both readings: `module::fn` and `Type::method`.
    let full: Vec<String> = if segs.is_empty() {
        match syms.uses.get(name) {
            Some(path) => path.clone(),
            // Unqualified call: same-module free function.
            None => {
                let mut p: Vec<String> = caller.module.split("::").map(|s| s.to_string()).collect();
                p.push(name.to_string());
                p
            }
        }
    } else {
        let mut p: Vec<String> = match segs[0].as_str() {
            "crate" => {
                let root = caller.module.split("::").next().unwrap_or("?");
                let mut v = vec![root.to_string()];
                v.extend(segs[1..].iter().cloned());
                v
            }
            "self" => {
                let mut v: Vec<String> = caller.module.split("::").map(|s| s.to_string()).collect();
                v.extend(segs[1..].iter().cloned());
                v
            }
            "super" => {
                let mut v: Vec<String> = caller.module.split("::").map(|s| s.to_string()).collect();
                v.pop();
                v.extend(segs[1..].iter().cloned());
                v
            }
            "Self" => {
                // `Self::helper()` — resolve against the enclosing impl.
                let mut v = Vec::new();
                if let Some(owner) = &caller.owner {
                    v.push(owner.clone());
                }
                v.extend(segs[1..].iter().cloned());
                v
            }
            head => match syms.uses.get(head) {
                Some(path) => {
                    let mut v = path.clone();
                    v.extend(segs[1..].iter().cloned());
                    v
                }
                None => {
                    let mut v = vec![normalize_crate_seg(head)];
                    v.extend(segs[1..].iter().cloned());
                    v
                }
            },
        };
        p.push(name.to_string());
        p
    };

    let mut out = Vec::new();
    if full.len() >= 2 {
        // Look up by the path's final segment, not the spelled name: for
        // an aliased import (`use m::walk_cost as wc;` then `wc(x)`) the
        // declaration is under the target name, not the alias.
        let fn_name = full[full.len() - 1].clone();
        let module = full[..full.len() - 1].join("::");
        if let Some(hits) = free.get(&(module, fn_name.clone())) {
            out.extend(hits.iter().copied());
        }
        let owner = &full[full.len() - 2];
        if let Some(hits) = by_owner.get(&(owner.clone(), fn_name)) {
            out.extend(hits.iter().copied());
        }
    }
    out
}

/// Checks the ident at `j` for direct nondeterminism / global-state
/// sources and records them.
fn scan_sources(
    tokens: &[Token],
    j: usize,
    syms: &FileSyms,
    global_statics: &BTreeSet<String>,
    det: &mut Vec<Source>,
    state: &mut Vec<Source>,
) {
    let t = &tokens[j];
    let prev_is = |off: usize, s: &str| j >= off && tokens[j - off].text == s;
    let next_is = |off: usize, s: &str| tokens.get(j + off).is_some_and(|t| t.text == s);
    match t.text.as_str() {
        "SystemTime" => {
            det.push(Source { desc: "std::time::SystemTime wall clock".into(), line: t.line })
        }
        "Instant"
            if (prev_is(1, "::") && prev_is(2, "time"))
                || (next_is(1, "::") && next_is(2, "now")) =>
        {
            det.push(Source { desc: "std::time::Instant wall clock".into(), line: t.line })
        }
        "spawn" if prev_is(1, "::") && prev_is(2, "thread") => det
            .push(Source { desc: "thread::spawn scheduling nondeterminism".into(), line: t.line }),
        "thread_rng" | "from_entropy" => {
            det.push(Source { desc: format!("`{}` entropy-seeded RNG", t.text), line: t.line })
        }
        name if syms.hash_names.contains(name) => {
            // Iteration over a hash-typed binding: `name.iter()` family or
            // `for x in [&][mut] name`.
            let method_iter = next_is(1, ".")
                && tokens.get(j + 2).is_some_and(|m| HASH_ITER_METHODS.contains(&m.text.as_str()))
                && next_is(3, "(");
            let mut p = j;
            while p > 0 && matches!(tokens[p - 1].text.as_str(), "&" | "mut") {
                p -= 1;
            }
            let for_iter = p > 0 && tokens[p - 1].is_ident("in");
            if method_iter || for_iter {
                det.push(Source {
                    desc: format!("iteration over hash container `{name}`"),
                    line: t.line,
                });
            }
        }
        _ => {}
    }
    if global_statics.contains(&t.text) {
        state.push(Source {
            desc: format!("process-global mutable state `{}`", t.text),
            line: t.line,
        });
    }
}

/// Runs the workspace-level rules (R6 det-taint, R8 shard-isolation's
/// transitive half) and applies pragma suppression per declaring file.
pub fn check_workspace(files: &[(String, Lexed)]) -> Vec<Violation> {
    let g = Graph::build(files);
    let det_taint = g.propagate(&g.det_sources);
    let state_taint = g.propagate(&g.state_sources);
    let pragmas: BTreeMap<&str, &Lexed> = files.iter().map(|(p, l)| (p.as_str(), l)).collect();
    let scopes = Scopes::builtin();

    let mut out = Vec::new();
    for idx in 0..g.fns.len() {
        let decl = &g.fns[idx];
        // R6: det-core functions that *transitively* reach a source.
        // Direct sources inside det-core files are R1's (lexical) job —
        // reporting them twice would be noise.
        if scopes.in_scope("det-core", &decl.file) {
            if let Some(Taint::Via { .. }) = det_taint[idx] {
                let (chain, root) = g.chain(&det_taint, idx);
                let src = &g.det_sources[root][0];
                out.push(Violation {
                    file: decl.file.clone(),
                    line: decl.line,
                    rule: "det-taint",
                    message: format!(
                        "fn `{}` reaches nondeterminism source ({}, {}:{}) via {}",
                        g.qualified(idx),
                        src.desc,
                        g.fns[root].file,
                        src.line,
                        chain.join(" -> "),
                    ),
                });
            }
        }
        // R8 transitive: shard modules reaching global mutable state,
        // whether they touch it directly or through any call chain.
        if scopes.in_scope("shard-isolation", &decl.file) {
            match state_taint[idx] {
                Some(Taint::Direct) => {
                    let src = &g.state_sources[idx][0];
                    out.push(Violation {
                        file: decl.file.clone(),
                        line: decl.line,
                        rule: "shard-isolation",
                        message: format!(
                            "fn `{}` touches {} (declared workspace-wide); shard modules \
                             must own their state",
                            g.qualified(idx),
                            src.desc,
                        ),
                    });
                }
                Some(Taint::Via { .. }) => {
                    let (chain, root) = g.chain(&state_taint, idx);
                    let src = &g.state_sources[root][0];
                    out.push(Violation {
                        file: decl.file.clone(),
                        line: decl.line,
                        rule: "shard-isolation",
                        message: format!(
                            "fn `{}` reaches {} ({}:{}) via {}; shard modules must own \
                             their state",
                            g.qualified(idx),
                            src.desc,
                            g.fns[root].file,
                            src.line,
                            chain.join(" -> "),
                        ),
                    });
                }
                None => {}
            }
        }
    }

    out.retain(|v| {
        !pragmas.get(v.file.as_str()).is_some_and(|l| suppressed(&l.pragmas, v.rule, v.line))
    });
    out
}
