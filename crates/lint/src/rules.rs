//! The dsa-lint rule engine.
//!
//! Each rule walks the token stream produced by [`crate::lexer`] and emits
//! [`Violation`]s. Rules are scoped by workspace-relative path (e.g. the
//! hash-container rule only applies to `crates/{sim,device,core,svc}/src`), and
//! violations inside `#[cfg(test)]` / `#[test]` regions are masked where the
//! rule only governs production code.
//!
//! See `crates/lint/RULES.md` for the rationale behind each rule.

use crate::lexer::{lex, Lexed, Token, TokenKind};
use std::collections::BTreeSet;

/// Canonical rule names, in severity-agnostic display order.
pub const RULES: &[&str] = &[
    "nondeterminism",   // R1
    "unwrap",           // R2
    "float-cast",       // R3
    "raw-descriptor",   // R4
    "hot-alloc",        // R5
    "det-taint",        // R6 (interprocedural, see crate::callgraph)
    "unit-consistency", // R7
    "shard-isolation",  // R8 (lexical half here; transitive half in callgraph)
    "pragma",           // pragma hygiene
];

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Canonical rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Maps a pragma's rule argument (canonical name or `r1`..`r8` shorthand)
/// to the canonical name, or `None` if unknown.
fn canonical_rule(name: &str) -> Option<&'static str> {
    match name {
        "r1" | "nondeterminism" => Some("nondeterminism"),
        "r2" | "unwrap" => Some("unwrap"),
        "r3" | "float-cast" => Some("float-cast"),
        "r4" | "raw-descriptor" => Some("raw-descriptor"),
        "r5" | "hot-alloc" => Some("hot-alloc"),
        "r6" | "det-taint" => Some("det-taint"),
        "r7" | "unit-consistency" => Some("unit-consistency"),
        "r8" | "shard-isolation" => Some("shard-isolation"),
        "pragma" => Some("pragma"),
        _ => None,
    }
}

/// True if a pragma in `pragmas` suppresses `rule` at `line` (a pragma
/// covers its own line and the line directly below). Shared between the
/// per-file engine and the workspace (call-graph) rules.
pub(crate) fn suppressed(pragmas: &[crate::lexer::Pragma], rule: &'static str, line: u32) -> bool {
    pragmas
        .iter()
        .any(|p| canonical_rule(&p.rule) == Some(rule) && (p.line == line || p.line + 1 == line))
}

/// True for files in the deterministic-simulation core, where the strictest
/// rules (hash containers, det-taint) apply. The member list lives in
/// `crates/lint/scopes.toml` (`[det-core]`) — rule scope is data, not code.
fn in_det_core(path: &str) -> bool {
    crate::scopes::Scopes::builtin().in_scope("det-core", path)
}

/// True for files doing integer-picosecond timeline arithmetic, where R3
/// (float-cast) and R7 (unit-consistency) apply. Wider than det-core: it
/// pulls in `crates/mem/src`, whose link math converts bytes to
/// picoseconds. `sim/src/time.rs` is carved out — it is the sanctioned
/// home for conversions. See `[timeline-math]` in `crates/lint/scopes.toml`.
fn in_timeline_math(path: &str) -> bool {
    crate::scopes::Scopes::builtin().in_scope("timeline-math", path)
}

/// True for the designated hot-path modules, where steady-state heap
/// allocation is banned (R5). These are the files the zero-allocation
/// audits (`crates/{sim,core}/tests/zero_alloc.rs`) measure. The list is
/// explicit (not directory-based) because sibling modules in the same
/// crates allocate by design; it lives in `crates/lint/scopes.toml`
/// (`[hot-alloc]`).
fn in_hot_path(path: &str) -> bool {
    crate::scopes::Scopes::builtin().in_scope("hot-alloc", path)
}

/// True for the modules ROADMAP item 1 will run one-per-shard-thread,
/// where R8 bans shared-mutable-state constructs. See `[shard-isolation]`
/// in `crates/lint/scopes.toml`.
fn in_shard_scope(path: &str) -> bool {
    crate::scopes::Scopes::builtin().in_scope("shard-isolation", path)
}

/// True for library source (any crate's `src/`, including the root package).
fn is_lib_src(path: &str) -> bool {
    if path.starts_with("src/") {
        return true;
    }
    path.starts_with("crates/") && path.contains("/src/")
}

/// True for integration-test files, which are exempt from production rules.
fn is_test_file(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

/// Lints one file given its workspace-relative path and source text.
pub fn check_file(path: &str, source: &str) -> Vec<Violation> {
    let lexed = lex(source);
    check_lexed(path, &lexed)
}

/// Lints an already-lexed file (exposed for fixture tests).
pub fn check_lexed(path: &str, lexed: &Lexed) -> Vec<Violation> {
    let tokens = &lexed.tokens;
    let test_lines = test_line_set(tokens);
    let mut raw: Vec<Violation> = Vec::new();

    if !is_test_file(path) {
        rule_nondeterminism(path, tokens, &test_lines, &mut raw);
        if is_lib_src(path) {
            rule_unwrap(path, tokens, &test_lines, &mut raw);
            rule_raw_descriptor(path, tokens, &test_lines, &mut raw);
        }
        if in_timeline_math(path) {
            rule_float_cast(path, tokens, &test_lines, &mut raw);
            rule_unit_consistency(path, tokens, &test_lines, &mut raw);
        }
        if in_hot_path(path) {
            rule_hot_alloc(path, tokens, &test_lines, &mut raw);
        }
        if in_shard_scope(path) {
            rule_shard_isolation(path, tokens, &test_lines, &mut raw);
        }
    }

    // Pragma hygiene: every allow() needs a known rule and a reason.
    for p in &lexed.pragmas {
        match canonical_rule(&p.rule) {
            None => raw.push(Violation {
                file: path.to_string(),
                line: p.line,
                rule: "pragma",
                message: format!(
                    "pragma references unknown rule `{}` (known: {})",
                    p.rule,
                    RULES.join(", ")
                ),
            }),
            Some(_) if p.reason.is_empty() => raw.push(Violation {
                file: path.to_string(),
                line: p.line,
                rule: "pragma",
                message: "pragma has no reason; write `// dsa-lint: allow(rule, reason)`"
                    .to_string(),
            }),
            Some(_) => {}
        }
    }

    // Apply suppressions: a pragma on the violation's line or the line above
    // silences that rule there. Pragma-hygiene findings are never silenced.
    raw.retain(|v| v.rule == "pragma" || !suppressed(&lexed.pragmas, v.rule, v.line));
    raw
}

/// Computes the set of source lines covered by `#[cfg(test)]` / `#[test]`
/// items, by brace-matching the item that follows the attribute. Also used
/// by the resolver to mark test functions out of the call graph.
pub(crate) fn test_line_set(tokens: &[Token]) -> BTreeSet<u32> {
    let mut set = BTreeSet::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        // Scan the attribute body for `test` (but back off for `not(test)`).
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut has_test = false;
        let mut has_not = false;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct("[") {
                depth += 1;
            } else if tokens[j].is_punct("]") {
                depth -= 1;
            } else if tokens[j].is_ident("test") {
                has_test = true;
            } else if tokens[j].is_ident("not") {
                has_not = true;
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Find the item body: first `{` (brace-match it) or `;` (one item).
        let start_line = tokens[i].line;
        let mut k = j;
        while k < tokens.len() && !tokens[k].is_punct("{") && !tokens[k].is_punct(";") {
            k += 1;
        }
        if k < tokens.len() && tokens[k].is_punct("{") {
            let mut bd = 1usize;
            let mut m = k + 1;
            while m < tokens.len() && bd > 0 {
                if tokens[m].is_punct("{") {
                    bd += 1;
                } else if tokens[m].is_punct("}") {
                    bd -= 1;
                }
                m += 1;
            }
            let end_line = tokens[m.saturating_sub(1)].line;
            for l in start_line..=end_line {
                set.insert(l);
            }
            i = j;
        } else if k < tokens.len() {
            for l in start_line..=tokens[k].line {
                set.insert(l);
            }
            i = k + 1;
        } else {
            i = j;
        }
    }
    set
}

fn flag(
    out: &mut Vec<Violation>,
    path: &str,
    line: u32,
    rule: &'static str,
    message: impl Into<String>,
) {
    out.push(Violation { file: path.to_string(), line, rule, message: message.into() });
}

/// R1: wall clocks, OS threads, and (in the deterministic core) unordered
/// hash containers.
fn rule_nondeterminism(
    path: &str,
    tokens: &[Token],
    test_lines: &BTreeSet<u32>,
    out: &mut Vec<Violation>,
) {
    let hash_scope = in_det_core(path);
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || test_lines.contains(&t.line) {
            continue;
        }
        let prev_is = |offset: usize, s: &str| i >= offset && tokens[i - offset].text == s;
        let next_is = |offset: usize, s: &str| tokens.get(i + offset).is_some_and(|t| t.text == s);
        match t.text.as_str() {
            "SystemTime" => flag(
                out,
                path,
                t.line,
                "nondeterminism",
                "std::time::SystemTime is wall-clock; derive timestamps from SimClock",
            ),
            // Only flag `Instant` when it is demonstrably std::time::Instant
            // (`time::Instant` or `Instant::now`) — the telemetry crate has
            // an unrelated `Instant` event variant.
            "Instant" => {
                let from_time = prev_is(1, "::") && prev_is(2, "time");
                let to_now = next_is(1, "::") && next_is(2, "now");
                if from_time || to_now {
                    flag(
                        out,
                        path,
                        t.line,
                        "nondeterminism",
                        "std::time::Instant is wall-clock; use SimClock / SwCost timings",
                    );
                }
            }
            "spawn" if prev_is(1, "::") && prev_is(2, "thread") => flag(
                out,
                path,
                t.line,
                "nondeterminism",
                "thread::spawn makes scheduling nondeterministic; model \
                 concurrency on the sim timeline",
            ),
            "HashMap" | "HashSet" if hash_scope => flag(
                out,
                path,
                t.line,
                "nondeterminism",
                format!(
                    "{} iteration order is unordered; use BTreeMap/BTreeSet in \
                     the deterministic core",
                    t.text
                ),
            ),
            _ => {}
        }
    }
}

/// R2: no `.unwrap()` / `.expect(..)` in library non-test code.
fn rule_unwrap(path: &str, tokens: &[Token], test_lines: &BTreeSet<u32>, out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if test_lines.contains(&t.line) {
            continue;
        }
        if !(t.is_ident("unwrap") || t.is_ident("expect")) {
            continue;
        }
        let prev_dot = i > 0 && tokens[i - 1].is_punct(".");
        let next_paren = tokens.get(i + 1).is_some_and(|t| t.is_punct("("));
        if prev_dot && next_paren {
            flag(
                out,
                path,
                t.line,
                "unwrap",
                format!(".{}() panics; return DsaError (or document with a pragma)", t.text),
            );
        }
    }
}

const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// R3: float↔int `as` casts in timeline arithmetic. Heuristic: a statement
/// that casts to an integer type *and* shows float involvement (an `as
/// f32/f64` cast, a float-typed ident, or a float literal) is doing lossy
/// time math by hand — it must go through the `sim::time` helpers.
fn rule_float_cast(
    path: &str,
    tokens: &[Token],
    test_lines: &BTreeSet<u32>,
    out: &mut Vec<Violation>,
) {
    let mut start = 0usize;
    for i in 0..=tokens.len() {
        let boundary = i == tokens.len()
            || tokens[i].is_punct(";")
            || tokens[i].is_punct("{")
            || tokens[i].is_punct("}");
        if !boundary {
            continue;
        }
        let stmt = &tokens[start..i];
        start = i + 1;

        // Float evidence must *precede* the int cast within the statement:
        // the pattern under fire is `(<float expr>) as u64`. An integer
        // cast followed by unrelated float math later in the same
        // statement (e.g. two arguments of one call) is fine.
        let mut int_cast_line: Option<u32> = None;
        let mut float_seen = false;
        for (k, t) in stmt.iter().enumerate() {
            if t.is_ident("as") {
                if let Some(ty) = stmt.get(k + 1) {
                    if INT_TYPES.contains(&ty.text.as_str()) {
                        if float_seen {
                            int_cast_line.get_or_insert(ty.line);
                        }
                    } else if ty.text == "f32" || ty.text == "f64" {
                        float_seen = true;
                    }
                }
            } else if (t.kind == TokenKind::Ident
                && (t.text.contains("f64") || t.text.contains("f32")))
                || (t.kind == TokenKind::Number && t.text.contains('.'))
            {
                float_seen = true;
            }
        }
        if let Some(line) = int_cast_line {
            if !test_lines.contains(&line) {
                flag(
                    out,
                    path,
                    line,
                    "float-cast",
                    "float↔int `as` cast in timeline arithmetic; use \
                     sim::time helpers (SimDuration::from_ns_f64 / scale_bytes)",
                );
            }
        }
    }
}

/// R5: no heap allocation in the designated hot-path modules (see
/// [`in_hot_path`]). The engine loop, the scheduler arenas, the op-program
/// replay path, and the per-descriptor kernels must run out of storage
/// acquired up front — that is the property the counting-allocator tests
/// pin at runtime, and this rule keeps allocating constructs from creeping
/// in between audit runs. Flagged: `Box::new`, `Vec::new`, `vec![..]`,
/// `.to_vec()`, `.clone()`. Sanctioned alternatives: `Vec::with_capacity`
/// at construction, `clear()` + reuse, `Copy` types on the wire. One-time
/// construction sites carry a pragma naming the invariant ("built once per
/// engine"), which doubles as documentation of where allocation *is* legal.
fn rule_hot_alloc(
    path: &str,
    tokens: &[Token],
    test_lines: &BTreeSet<u32>,
    out: &mut Vec<Violation>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || test_lines.contains(&t.line) {
            continue;
        }
        let prev_is = |offset: usize, s: &str| i >= offset && tokens[i - offset].text == s;
        let next_is = |offset: usize, s: &str| tokens.get(i + offset).is_some_and(|t| t.text == s);
        match t.text.as_str() {
            "new" if prev_is(1, "::") && (prev_is(2, "Box") || prev_is(2, "Vec")) => flag(
                out,
                path,
                t.line,
                "hot-alloc",
                format!(
                    "{}::new allocates on the hot path; pre-size with with_capacity \
                     and reuse (or document one-time construction with a pragma)",
                    tokens[i - 2].text
                ),
            ),
            "vec" if next_is(1, "!") => flag(
                out,
                path,
                t.line,
                "hot-alloc",
                "vec![..] allocates on the hot path; pre-size and reuse \
                 (or document one-time construction with a pragma)",
            ),
            "to_vec" | "clone" if prev_is(1, ".") && next_is(1, "(") => flag(
                out,
                path,
                t.line,
                "hot-alloc",
                format!(
                    ".{}() copies into a fresh heap allocation; hot-path data \
                     must be Copy or borrowed (or document with a pragma)",
                    t.text
                ),
            ),
            _ => {}
        }
    }
}

/// True if the (lowercased) identifier names a picosecond-typed value:
/// the workspace convention is a `_ps` suffix (`interval_ps`, `GAP_PS`)
/// or the `as_ps()` accessor.
fn is_ps_ident(name: &str) -> bool {
    let l = name.to_ascii_lowercase();
    l.ends_with("_ps") || l == "as_ps"
}

/// True if the identifier names a byte-count value: `len()`, a `_len`
/// suffix, or anything spelled with `bytes`.
fn is_bytes_ident(name: &str) -> bool {
    let l = name.to_ascii_lowercase();
    l.contains("bytes") || l == "len" || l.ends_with("_len") || l == "nbytes"
}

/// Punct tokens a term walk stops at (additive/comparison/statement
/// boundaries). Multiplicative operators continue the walk: in
/// `bytes * PS_PER_BYTE` the factors form *one* term, so a named
/// conversion constant neutralizes the byte operand.
fn is_term_boundary(text: &str) -> bool {
    matches!(text, "+" | "-" | ";" | "," | "{" | "}" | "=" | "<" | ">" | "&" | "|" | "?" | "..")
}

/// Collects identifier texts of the term starting at `k` (walking right).
fn term_idents_fwd(tokens: &[Token], mut k: usize, out: &mut Vec<String>) {
    let mut depth = 0usize;
    for _ in 0..16 {
        let Some(t) = tokens.get(k) else { return };
        match t.kind {
            TokenKind::Ident => out.push(t.text.clone()),
            TokenKind::Punct => match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" if depth == 0 => return,
                ")" | "]" => depth -= 1,
                "." | "::" | "*" | "/" => {}
                other if depth == 0 && is_term_boundary(other) => return,
                _ => {}
            },
            _ => {}
        }
        k += 1;
    }
}

/// Collects identifier texts of the term ending at `k` (walking left).
fn term_idents_back(tokens: &[Token], mut k: usize, out: &mut Vec<String>) {
    let mut depth = 0usize;
    for _ in 0..16 {
        let t = &tokens[k];
        match t.kind {
            TokenKind::Ident => out.push(t.text.clone()),
            TokenKind::Punct => match t.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" if depth == 0 => return,
                "(" | "[" => depth -= 1,
                "." | "::" | "*" | "/" => {}
                other if depth == 0 && is_term_boundary(other) => return,
                _ => {}
            },
            _ => {}
        }
        if k == 0 {
            return;
        }
        k -= 1;
    }
}

/// True if the statement containing token `i` is a `const`/`static` item —
/// the sanctioned home for raw ps literals (naming the constant *is* the
/// fix R7 asks for).
fn stmt_is_const_item(tokens: &[Token], i: usize) -> bool {
    let mut start = i;
    while start > 0 {
        let t = &tokens[start - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        start -= 1;
    }
    tokens[start..(start + 3).min(tokens.len())]
        .iter()
        .any(|t| t.is_ident("const") || t.is_ident("static"))
}

/// R7: unit consistency in timeline math. Two heuristics over the `u64`
/// ps/bytes convention:
///
/// 1. An additive expression with a picosecond term on one side and a
///    byte-count term on the other (`deadline_ps + frame.len()`). Terms
///    extend across `*`//`, so a conversion factor (`bytes *
///    PS_PER_BYTE`) makes the term ps-typed and is not flagged.
/// 2. A bare integer literal crossing a ps API boundary — `from_ps(5_000)`
///    or `timeout_ps = 2_500_000` — outside a `const`/`static` item. The
///    magic number's unit lives only in the author's head; naming it
///    (`const LINK_GAP_PS`) or deriving it (`SimDuration::from_ns`) keeps
///    the unit in the source.
fn rule_unit_consistency(
    path: &str,
    tokens: &[Token],
    test_lines: &BTreeSet<u32>,
    out: &mut Vec<Violation>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if test_lines.contains(&t.line) {
            continue;
        }
        // (1) ps ± bytes mixes.
        if t.kind == TokenKind::Punct && (t.text == "+" || t.text == "-") && i > 0 {
            let prev = &tokens[i - 1];
            let binary = matches!(prev.kind, TokenKind::Ident | TokenKind::Number)
                || prev.is_punct(")")
                || prev.is_punct("]");
            if !binary {
                continue;
            }
            let rhs =
                if tokens.get(i + 1).is_some_and(|e| e.is_punct("=")) { i + 2 } else { i + 1 };
            let mut left = Vec::new();
            let mut right = Vec::new();
            term_idents_back(tokens, i - 1, &mut left);
            term_idents_fwd(tokens, rhs, &mut right);
            let class = |ids: &[String]| {
                (ids.iter().any(|n| is_ps_ident(n)), ids.iter().any(|n| is_bytes_ident(n)))
            };
            let (lp, lb) = class(&left);
            let (rp, rb) = class(&right);
            if (lp && !lb && rb && !rp) || (rp && !rb && lb && !lp) {
                flag(
                    out,
                    path,
                    t.line,
                    "unit-consistency",
                    "arithmetic mixes picosecond and byte-count terms; convert \
                     explicitly (scale_bytes / SimDuration arithmetic) before combining",
                );
            }
        }
        // (2) raw literals crossing a ps boundary.
        if t.kind == TokenKind::Ident && is_ps_ident(&t.text) && !stmt_is_const_item(tokens, i) {
            let lit = match (tokens.get(i + 1), tokens.get(i + 2), tokens.get(i + 3)) {
                (Some(open), Some(n), Some(close))
                    if open.is_punct("(") && n.kind == TokenKind::Number && close.is_punct(")") =>
                {
                    Some(n)
                }
                (Some(eq), Some(n), _)
                    if (eq.is_punct("=") || eq.is_punct(":")) && n.kind == TokenKind::Number =>
                {
                    Some(n)
                }
                _ => None,
            };
            if let Some(n) = lit {
                let digits: String = n.text.chars().filter(|c| c.is_ascii_digit()).collect();
                let trivial = digits.chars().all(|c| c == '0')
                    || digits.trim_start_matches('0').parse::<u64>() == Ok(1);
                if !trivial {
                    flag(
                        out,
                        path,
                        n.line,
                        "unit-consistency",
                        format!(
                            "raw literal `{}` crosses a picosecond boundary; name it \
                             (`const .._PS`) or derive it (SimDuration::from_ns/from_us)",
                            n.text
                        ),
                    );
                }
            }
        }
    }
}

/// R8 (lexical half): shared-mutable-state constructs banned in the
/// ROADMAP-item-1 shard modules. Each shard thread will own its engine,
/// scheduler, store, and service slice outright; `Rc`/`RefCell` make the
/// types `!Send`, interior mutability hides writes from the
/// one-owner-per-shard story, and `static mut` / `thread_local!` /
/// atomics are process-global by construction. The transitive half
/// (reaching global state through calls) lives in `crate::callgraph`.
fn rule_shard_isolation(
    path: &str,
    tokens: &[Token],
    test_lines: &BTreeSet<u32>,
    out: &mut Vec<Violation>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || test_lines.contains(&t.line) {
            continue;
        }
        let next_is = |offset: usize, s: &str| tokens.get(i + offset).is_some_and(|t| t.text == s);
        match t.text.as_str() {
            "Rc" | "RefCell" | "Cell" | "UnsafeCell" | "OnceCell" | "OnceLock" | "Mutex"
            | "RwLock" => flag(
                out,
                path,
                t.line,
                "shard-isolation",
                format!(
                    "`{}` breaks Send-per-shard partitioning; shard modules own their \
                     state outright (or document the invariant with a pragma)",
                    t.text
                ),
            ),
            "static" if next_is(1, "mut") => flag(
                out,
                path,
                t.line,
                "shard-isolation",
                "`static mut` is process-global state; shard modules must not share \
                 mutable state",
            ),
            "thread_local" if next_is(1, "!") => flag(
                out,
                path,
                t.line,
                "shard-isolation",
                "`thread_local!` pins state to OS threads; shard state must live in \
                 the shard's own struct",
            ),
            name if name.starts_with("Atomic") && name.len() > "Atomic".len() => flag(
                out,
                path,
                t.line,
                "shard-isolation",
                format!(
                    "`{name}` implies cross-thread shared state; shards communicate \
                     only through the merge step"
                ),
            ),
            _ => {}
        }
    }
}

/// Tokens that, when immediately preceding `Descriptor {`, mean the brace
/// opens an item body or impl block rather than a struct literal.
const TYPE_POSITION_PREV: &[&str] = &["impl", "for", "struct", "enum", "trait", "mod", "dyn", "->"];

/// R4: raw `Descriptor { .. }` / `BatchDescriptor { .. }` struct literals
/// bypass `Descriptor::validate()`; construction must go through the
/// `crates/device` constructors (which the validator covers).
fn rule_raw_descriptor(
    path: &str,
    tokens: &[Token],
    test_lines: &BTreeSet<u32>,
    out: &mut Vec<Violation>,
) {
    if path == "crates/device/src/descriptor.rs" {
        return; // the constructors themselves live here
    }
    for (i, t) in tokens.iter().enumerate() {
        if test_lines.contains(&t.line) {
            continue;
        }
        if !(t.is_ident("Descriptor") || t.is_ident("BatchDescriptor")) {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|n| n.is_punct("{")) {
            continue;
        }
        // Walk back over `&`/`&&`/`mut` so `-> &Descriptor {` and
        // `-> &mut Descriptor {` read as type positions, not literals.
        let mut p = i;
        while p > 0 && matches!(tokens[p - 1].text.as_str(), "&" | "&&" | "mut") {
            p -= 1;
        }
        let type_position = p > 0 && TYPE_POSITION_PREV.contains(&tokens[p - 1].text.as_str());
        if !type_position {
            flag(
                out,
                path,
                t.line,
                "raw-descriptor",
                format!(
                    "raw `{} {{ .. }}` literal bypasses Descriptor::validate(); \
                     use a dsa_device constructor",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        check_file(path, src)
    }

    #[test]
    fn r1_flags_wall_clock_and_threads() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); \
                   std::thread::spawn(|| {}); }\n";
        let v = lint("crates/bench/src/x.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "nondeterminism").count(), 3);
    }

    #[test]
    fn r1_ignores_unrelated_instant_variant() {
        let src = "enum Event { Instant { name: u32 } }\nfn f(e: Event) { \
                   if let Event::Instant { name } = e { let _ = name; } }\n";
        let v = lint("crates/telemetry/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r1_hash_containers_only_in_det_core() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint("crates/core/src/x.rs", src).len(), 1);
        assert_eq!(lint("crates/svc/src/x.rs", src).len(), 1);
        // The causal module is the one telemetry file inside the scope.
        assert_eq!(lint("crates/telemetry/src/causal.rs", src).len(), 1);
        assert!(lint("crates/telemetry/src/x.rs", src).is_empty());
        assert!(lint("crates/telemetry/src/hub.rs", src).is_empty());
    }

    #[test]
    fn r2_flags_unwrap_but_not_in_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n  fn g(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        let v = lint("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unwrap");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn r2_ignores_unwrap_or_family() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn r3_flags_round_trip_casts() {
        let src = "fn f(b: u64) -> u64 { (b as f64 * 1.5) as u64 }\n";
        let v = lint("crates/device/src/x.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "float-cast").count(), 1);
    }

    #[test]
    fn r3_allows_pure_integer_casts_and_time_rs() {
        let int_only = "fn f(b: u32) -> u64 { b as u64 * 3 }\n";
        assert!(lint("crates/device/src/x.rs", int_only).is_empty());
        let float = "fn f(b: u64) -> u64 { (b as f64 * 1.5) as u64 }\n";
        assert!(lint("crates/sim/src/time.rs", float).is_empty());
        assert!(lint("crates/workloads/src/x.rs", float).is_empty());
    }

    #[test]
    fn r4_flags_literals_not_type_positions() {
        let literal = "fn f() -> Descriptor { Descriptor { opcode: 0 } }\n";
        let v = lint("crates/core/src/x.rs", literal);
        assert_eq!(v.iter().filter(|v| v.rule == "raw-descriptor").count(), 1);
        let ty = "impl Descriptor { fn g() {} }\n";
        assert!(lint("crates/core/src/x.rs", ty).is_empty());
    }

    #[test]
    fn r4_reference_return_types_are_type_positions() {
        let by_ref = "impl Job { pub fn descriptor(&self) -> &Descriptor { &self.desc } }\n";
        assert!(lint("crates/core/src/x.rs", by_ref).is_empty());
        let by_mut = "fn g(j: &mut Job) -> &mut Descriptor { &mut j.desc }\n";
        assert!(lint("crates/core/src/x.rs", by_mut).is_empty());
        // Taking a reference *to a literal* is still a literal.
        let ref_literal = "fn h() { let d = &Descriptor { opcode: 0 }; }\n";
        let v = lint("crates/core/src/x.rs", ref_literal);
        assert_eq!(v.iter().filter(|v| v.rule == "raw-descriptor").count(), 1);
    }

    #[test]
    fn r3_ignores_int_cast_before_unrelated_float() {
        // An integer cast as one argument and float math as a later
        // argument of the same call is not a float->int round trip.
        let src = "fn f(w: u16, n: u64) { push(w as u16, n as f64); }\n";
        assert!(lint("crates/device/src/x.rs", src).is_empty());
    }

    #[test]
    fn r5_flags_alloc_in_hot_modules_only() {
        let src = "fn f(xs: &[u64]) -> u64 { let v = xs.to_vec(); let b = Box::new(v.clone()); \
                   let mut w = Vec::new(); w.push(b.len() as u64); vec![0u64].len() as u64 }\n";
        let v = lint("crates/sim/src/sched.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "hot-alloc").count(), 5, "{v:?}");
        // The same code one module over (not a designated hot path) is legal.
        assert!(lint("crates/sim/src/engine.rs", src).is_empty());
        assert!(lint("crates/ops/src/delta.rs", src).is_empty());
    }

    #[test]
    fn r5_exempts_tests_and_allows_with_capacity() {
        let src = "fn f(n: usize) -> Vec<u64> { Vec::with_capacity(n) }\n\
                   #[cfg(test)]\nmod tests {\n  fn g() -> Vec<u64> { vec![1, 2].to_vec() }\n}\n";
        assert!(lint("crates/core/src/program.rs", src).is_empty());
    }

    #[test]
    fn r5_pragma_documents_one_time_construction() {
        let src = "fn f() -> Vec<u64> { Vec::new() } \
                   // dsa-lint: allow(hot-alloc, arena built once per engine)\n";
        assert!(lint("crates/sim/src/store.rs", src).is_empty());
    }

    #[test]
    fn pragmas_suppress_with_reason_and_flag_without() {
        let with = "// dsa-lint: allow(unwrap, poisoned mutex is fatal)\n\
                    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint("crates/core/src/x.rs", with).is_empty());
        let without = "// dsa-lint: allow(unwrap)\n\
                       fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = lint("crates/core/src/x.rs", without);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "pragma");
    }

    #[test]
    fn unknown_pragma_rule_is_flagged() {
        let src = "// dsa-lint: allow(fancy-rule, because)\nfn f() {}\n";
        let v = lint("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "pragma");
    }

    #[test]
    fn integration_test_files_are_exempt() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint("crates/core/tests/it.rs", src).is_empty());
        assert!(lint("tests/smoke.rs", src).is_empty());
    }

    #[test]
    fn r7_flags_ps_byte_mixes() {
        let src = "fn f(now_ps: u64, frame: &[u8]) -> u64 { now_ps + frame.len() as u64 }\n";
        let v = lint("crates/sim/src/x.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "unit-consistency").count(), 1, "{v:?}");
        // The mem crate's link math is in the timeline-math scope too.
        let v = lint("crates/mem/src/x.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "unit-consistency").count(), 1, "{v:?}");
        // Outside the scope the same code is legal.
        assert!(lint("crates/workloads/src/x.rs", src).is_empty());
    }

    #[test]
    fn r7_allows_pure_ps_sums_and_conversions() {
        // Both sides ps-typed, including through method calls and factors.
        let a = "fn f(t: SimTime, earned: u64, interval_ps: u64) -> u64 {\n\
                 t.as_ps() + earned * interval_ps }\n";
        assert!(lint("crates/svc/src/x.rs", a).is_empty(), "pure ps sum");
        // A named conversion constant makes the byte factor a ps term.
        let b = "fn f(now_ps: u64, bytes: u64) -> u64 { now_ps + bytes * LINK_PS_PER_BYTE_PS }\n";
        assert!(lint("crates/sim/src/x.rs", b).is_empty(), "converted term");
        // Pure byte math never fires.
        let c = "fn f(a_bytes: u64, chunk: &[u8]) -> u64 { a_bytes + chunk.len() as u64 }\n";
        assert!(lint("crates/sim/src/x.rs", c).is_empty(), "pure bytes");
    }

    #[test]
    fn r7_flags_raw_literals_crossing_ps_boundaries() {
        let call = "fn f() -> SimTime { SimTime::from_ps(2_500_000) }\n";
        let v = lint("crates/sim/src/x.rs", call);
        assert_eq!(v.iter().filter(|v| v.rule == "unit-consistency").count(), 1, "{v:?}");
        let assign = "fn f(mut j: Job) { j.deadline_ps = 5_000_000; }\n";
        let v = lint("crates/svc/src/x.rs", assign);
        assert_eq!(v.iter().filter(|v| v.rule == "unit-consistency").count(), 1, "{v:?}");
    }

    #[test]
    fn r7_named_consts_and_trivial_literals_are_sanctioned() {
        let named = "const LINK_GAP_PS: u64 = 1_500;\nfn f() -> SimTime { \
                     SimTime::from_ps(LINK_GAP_PS) }\n";
        assert!(lint("crates/sim/src/x.rs", named).is_empty());
        let trivial = "fn f() -> SimTime { SimTime::from_ps(0).max(SimTime::from_ps(1)) }\n";
        assert!(lint("crates/sim/src/x.rs", trivial).is_empty());
        // Expressions (not bare literals) are the normal path and legal.
        let expr = "fn f(n: u64, mhz: u64) -> SimTime { SimTime::from_ps(n * 1_000_000 / mhz) }\n";
        assert!(lint("crates/sim/src/x.rs", expr).is_empty());
    }

    #[test]
    fn r8_flags_shared_state_constructs_in_shard_modules() {
        let src = "use std::rc::Rc;\nstruct S { c: RefCell<u64> }\n\
                   static mut HITS: u64 = 0;\nthread_local! { static TL: u64 = 0; }\n\
                   fn f() -> u64 { AtomicU64::new(0).into_inner() }\n";
        let v = lint("crates/sim/src/engine.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "shard-isolation").count(), 5, "{v:?}");
        // The same constructs outside the shard scope are not R8's business.
        let v = lint("crates/telemetry/src/hub.rs", src);
        assert!(v.iter().all(|v| v.rule != "shard-isolation"), "{v:?}");
    }

    #[test]
    fn r8_exempts_tests_and_honors_pragmas() {
        let test_only = "#[cfg(test)]\nmod tests {\n  use std::rc::Rc;\n  \
                         fn g() -> Rc<u64> { Rc::new(1) }\n}\n";
        assert!(lint("crates/sim/src/store.rs", test_only).is_empty());
        let with_pragma = "// dsa-lint: allow(shard-isolation, read-only after init)\n\
                           struct S { c: OnceLock<u64> }\n";
        assert!(lint("crates/svc/src/service.rs", with_pragma).is_empty());
    }
}
