//! Symbol resolution: the per-file half of the workspace call graph.
//!
//! For each library source file this pass extracts, from the same token
//! stream the lexical rules run on:
//!
//! * every `fn` declaration — free functions, inherent/trait-impl methods,
//!   and trait default methods — with its body's token range, its module
//!   path, and whether it lives in test code;
//! * the file's `use` imports, flattened to `binding name -> full path`
//!   (nested groups and `as` aliases included), so call sites written as
//!   `scale_bytes(..)` or `time::scale_bytes(..)` can be resolved back to
//!   the declaring module;
//! * names of locals/fields declared with `HashMap`/`HashSet` types, so
//!   the R6 source detector can recognize *iteration over* those bindings
//!   (declaring a map is fine; iterating it is a nondeterminism source);
//! * `static mut` items and `thread_local!` statics — the process-global
//!   mutable state R8 forbids shard modules from reaching.
//!
//! This is deliberately an approximation, not rustc name resolution: it
//! has no type inference and treats method names workspace-wide (the call
//! graph does CHA-style resolution by method name). The approximation is
//! conservative in the direction the rules need — extra edges can only
//! cause a finding that a reasoned pragma documents away, while missing
//! edges are bounded to constructs the workspace style already avoids
//! (macro-generated functions, function pointers passed as values).

use crate::lexer::{Lexed, Token, TokenKind};
use crate::rules::test_line_set;
use std::collections::{BTreeMap, BTreeSet};

/// One `fn` declaration.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// The function's name.
    pub name: String,
    /// The type or trait name owning it (`impl X`/`impl T for X` → `X`,
    /// trait default method → the trait's name), `None` for free functions.
    pub owner: Option<String>,
    /// Module path, e.g. `sim::engine` (inline `mod`s appended).
    pub module: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range `[start, end)` of the body (inside the braces).
    pub body: (usize, usize),
    /// True if the declaration sits under `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
}

/// Everything the call-graph builder needs from one file.
#[derive(Debug, Default)]
pub struct FileSyms {
    /// Workspace-relative file path.
    pub file: String,
    /// Module path of the file root, `None` if the file is outside the
    /// graph (tests, benches, examples, bins' fixture data).
    pub module: Option<String>,
    /// `use` imports: binding name → full normalized path segments.
    pub uses: BTreeMap<String, Vec<String>>,
    /// Function declarations, in source order.
    pub fns: Vec<FnDecl>,
    /// Names of bindings/fields declared with a `HashMap`/`HashSet` type.
    pub hash_names: BTreeSet<String>,
    /// Names of `static mut` items and `thread_local!` statics.
    pub mut_statics: Vec<String>,
}

/// Maps a workspace-relative path to its module path, or `None` for files
/// that stay out of the call graph (integration tests, benches, examples,
/// fixtures — they are not part of any library's reachability story).
pub fn module_path_of(path: &str) -> Option<String> {
    if path.contains("/tests/")
        || path.starts_with("tests/")
        || path.contains("/benches/")
        || path.starts_with("benches/")
        || path.contains("/examples/")
        || path.starts_with("examples/")
        || path.contains("/fixtures/")
    {
        return None;
    }
    let (crate_name, rest) = if let Some(rest) = path.strip_prefix("crates/") {
        let (dir, rest) = rest.split_once("/src/")?;
        (dir.replace('-', "_"), rest)
    } else if let Some(rest) = path.strip_prefix("src/") {
        ("repro".to_string(), rest)
    } else {
        return None;
    };
    let rest = rest.strip_suffix(".rs")?;
    let mut segs = vec![crate_name];
    if rest != "lib" && rest != "main" {
        for seg in rest.split('/') {
            if seg != "mod" {
                segs.push(seg.to_string());
            }
        }
    }
    Some(segs.join("::"))
}

/// Normalizes a path's leading crate segment: the workspace's lib names
/// (`dsa_sim`, `dsa_core`, …, `dsa_repro`) map onto the module space
/// [`module_path_of`] builds from directory names (`sim`, `core`, `repro`).
pub fn normalize_crate_seg(seg: &str) -> String {
    match seg.strip_prefix("dsa_") {
        Some(rest) => rest.to_string(),
        None => seg.to_string(),
    }
}

/// Extracts symbols from one lexed file.
pub fn resolve_file(path: &str, lexed: &Lexed) -> FileSyms {
    let tokens = &lexed.tokens;
    let test_lines = test_line_set(tokens);
    let mut syms =
        FileSyms { file: path.to_string(), module: module_path_of(path), ..FileSyms::default() };

    // Pass 1: linear scan with local scan-aheads, recording which `{`
    // token opens what (fn body, impl/trait block, inline mod) plus the
    // file's imports and nondeterminism-relevant declarations.
    let mut fn_open: BTreeMap<usize, (String, u32)> = BTreeMap::new();
    let mut owner_open: BTreeMap<usize, String> = BTreeMap::new();
    let mut mod_open: BTreeMap<usize, String> = BTreeMap::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "fn" => {
                if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    if let Some(open) = find_body_open(tokens, i + 2) {
                        fn_open.insert(open, (name.text.clone(), t.line));
                    }
                }
            }
            "impl" => {
                if let Some((open, owner)) = parse_impl_header(tokens, i) {
                    owner_open.insert(open, owner);
                }
            }
            "trait" => {
                if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    if let Some(open) = find_body_open(tokens, i + 2) {
                        owner_open.insert(open, name.text.clone());
                    }
                }
            }
            "mod" => {
                if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    if tokens.get(i + 2).is_some_and(|b| b.is_punct("{")) {
                        mod_open.insert(i + 2, name.text.clone());
                    }
                }
            }
            "use" => {
                i = parse_use(tokens, i + 1, &mut syms.uses);
                continue;
            }
            "static" if tokens.get(i + 1).is_some_and(|m| m.is_ident("mut")) => {
                if let Some(name) = tokens.get(i + 2).filter(|n| n.kind == TokenKind::Ident) {
                    syms.mut_statics.push(name.text.clone());
                }
            }
            "thread_local" if tokens.get(i + 1).is_some_and(|b| b.is_punct("!")) => {
                collect_thread_local_statics(tokens, i + 2, &mut syms.mut_statics);
            }
            "HashMap" | "HashSet" => {
                if let Some(name) = declared_binding_name(tokens, i) {
                    syms.hash_names.insert(name);
                }
            }
            _ => {}
        }
        i += 1;
    }

    // Pass 2: brace-stack walk assigning each fn its module path (base +
    // inline mods), its owner (innermost impl/trait frame), and its body's
    // closing token index.
    let base = syms.module.clone().unwrap_or_else(|| "?".to_string());
    enum Frame {
        Fn { decl_idx: usize },
        Owner,
        Mod,
        Plain,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut mods: Vec<String> = Vec::new();
    let mut owners: Vec<String> = Vec::new();
    for (idx, t) in tokens.iter().enumerate() {
        if t.is_punct("{") {
            if let Some((name, line)) = fn_open.get(&idx) {
                let module = if mods.is_empty() {
                    base.clone()
                } else {
                    format!("{base}::{}", mods.join("::"))
                };
                syms.fns.push(FnDecl {
                    name: name.clone(),
                    owner: owners.last().cloned(),
                    module,
                    file: path.to_string(),
                    line: *line,
                    body: (idx + 1, idx + 1), // end patched on pop
                    is_test: test_lines.contains(line),
                });
                stack.push(Frame::Fn { decl_idx: syms.fns.len() - 1 });
            } else if let Some(owner) = owner_open.get(&idx) {
                owners.push(owner.clone());
                stack.push(Frame::Owner);
            } else if let Some(m) = mod_open.get(&idx) {
                mods.push(m.clone());
                stack.push(Frame::Mod);
            } else {
                stack.push(Frame::Plain);
            }
        } else if t.is_punct("}") {
            match stack.pop() {
                Some(Frame::Fn { decl_idx }) => syms.fns[decl_idx].body.1 = idx,
                Some(Frame::Owner) => {
                    owners.pop();
                }
                Some(Frame::Mod) => {
                    mods.pop();
                }
                _ => {}
            }
        }
    }
    syms
}

/// From just past `fn name`, finds the token index of the body's `{`,
/// skipping the whole signature (generics, parameters, return type,
/// `where` clause). Returns `None` for bodyless declarations (`;`).
fn find_body_open(tokens: &[Token], mut i: usize) -> Option<usize> {
    let mut parens = 0usize;
    let mut angles = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => parens += 1,
                ")" | "]" => parens = parens.saturating_sub(1),
                "<" => angles += 1,
                ">" => angles = angles.saturating_sub(1),
                "{" if parens == 0 && angles == 0 => return Some(i),
                ";" if parens == 0 && angles == 0 => return None,
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Parses an `impl` header starting at the `impl` keyword. Returns the
/// body's `{` token index and the implementing type's name — the last
/// depth-0 path ident before the brace (so `impl<T> Sched for Cal<T>` and
/// `impl fmt::Display for Violation` both yield the type after `for`).
fn parse_impl_header(tokens: &[Token], impl_idx: usize) -> Option<(usize, String)> {
    let mut angles = 0usize;
    let mut parens = 0usize;
    let mut owner: Option<String> = None;
    let mut i = impl_idx + 1;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "<" => angles += 1,
                ">" => angles = angles.saturating_sub(1),
                "(" | "[" => parens += 1,
                ")" | "]" => parens = parens.saturating_sub(1),
                "{" if angles == 0 && parens == 0 => {
                    return owner.map(|o| (i, o));
                }
                ";" if angles == 0 && parens == 0 => return None,
                _ => {}
            },
            TokenKind::Ident if angles == 0 && parens == 0 => match t.text.as_str() {
                "where" => {
                    // Owner is settled; scan on to the brace only.
                    let open = find_body_open(tokens, i + 1)?;
                    return owner.map(|o| (open, o));
                }
                "for" | "dyn" | "mut" | "const" | "unsafe" => {}
                name => owner = Some(name.to_string()),
            },
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses a `use` tree starting just past the `use` keyword; inserts each
/// flattened binding into `uses` with its crate segment normalized.
/// Returns the index just past the terminating `;`.
fn parse_use(tokens: &[Token], start: usize, uses: &mut BTreeMap<String, Vec<String>>) -> usize {
    // `pub use` re-exports arrive here too (the `use` keyword is what we
    // keyed on); `pub` was consumed as a plain ident before it.
    let mut i = start;
    let mut prefix: Vec<String> = Vec::new();
    parse_use_tree(tokens, &mut i, &mut prefix, uses)
}

/// Recursive worker: parses one use-tree at `*i` under `prefix`.
fn parse_use_tree(
    tokens: &[Token],
    i: &mut usize,
    prefix: &mut Vec<String>,
    uses: &mut BTreeMap<String, Vec<String>>,
) -> usize {
    let depth_at_entry = prefix.len();
    let mut glob = false;
    while *i < tokens.len() {
        let t = &tokens[*i];
        if t.kind == TokenKind::Ident {
            if t.text == "as" {
                if let Some(alias) = tokens.get(*i + 1).filter(|a| a.kind == TokenKind::Ident) {
                    uses.insert(alias.text.clone(), normalized(prefix));
                    prefix.truncate(depth_at_entry);
                    *i += 2;
                    continue;
                }
            }
            prefix.push(t.text.clone());
            *i += 1;
        } else if t.is_punct("::") {
            *i += 1;
        } else if t.is_punct("*") {
            glob = true;
            *i += 1;
        } else if t.is_punct("{") {
            *i += 1;
            loop {
                parse_use_tree(tokens, i, prefix, uses);
                match tokens.get(*i) {
                    Some(t) if t.is_punct(",") => {
                        *i += 1;
                    }
                    Some(t) if t.is_punct("}") => {
                        *i += 1;
                        break;
                    }
                    _ => break,
                }
            }
            prefix.truncate(depth_at_entry);
        } else if t.is_punct(",") || t.is_punct("}") {
            // End of this branch: bind what we accumulated (if anything).
            if prefix.len() > depth_at_entry && !glob {
                let name = prefix.last().cloned().unwrap_or_default();
                uses.insert(name, normalized(prefix));
            }
            prefix.truncate(depth_at_entry);
            return *i;
        } else if t.is_punct(";") {
            if prefix.len() > depth_at_entry && !glob {
                let name = prefix.last().cloned().unwrap_or_default();
                uses.insert(name, normalized(prefix));
            }
            prefix.truncate(depth_at_entry);
            return *i + 1;
        } else {
            *i += 1;
        }
    }
    *i
}

/// Clones a use path with its crate segment normalized.
fn normalized(segs: &[String]) -> Vec<String> {
    let mut out: Vec<String> = segs.to_vec();
    if let Some(first) = out.first_mut() {
        *first = normalize_crate_seg(first);
    }
    out
}

/// Inside `thread_local! { ... }`, collects each `static NAME`.
fn collect_thread_local_statics(tokens: &[Token], mut i: usize, out: &mut Vec<String>) {
    while i < tokens.len() && !tokens[i].is_punct("{") {
        i += 1;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return;
            }
        } else if t.is_ident("static") {
            if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                out.push(name.text.clone());
            }
        }
        i += 1;
    }
}

/// For a `HashMap`/`HashSet` type token, back-walks over its path prefix
/// (`std :: collections :: HashMap`) to the `:` or `=` that introduced it,
/// and returns the binding/field name before that — `let m: HashMap<..>`,
/// `entries: HashMap<..>` (struct field), `let m = HashMap::new()`.
fn declared_binding_name(tokens: &[Token], at: usize) -> Option<String> {
    let mut p = at;
    while p >= 2 && tokens[p - 1].is_punct("::") && tokens[p - 2].kind == TokenKind::Ident {
        p -= 2;
    }
    if p == 0 {
        return None;
    }
    let intro = &tokens[p - 1];
    if !(intro.is_punct(":") || intro.is_punct("=")) {
        return None;
    }
    let name = tokens.get(p.checked_sub(2)?)?;
    (name.kind == TokenKind::Ident && name.text != "mut").then(|| name.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn module_paths_map_crates_and_skip_tests() {
        assert_eq!(module_path_of("crates/sim/src/lib.rs").as_deref(), Some("sim"));
        assert_eq!(module_path_of("crates/sim/src/engine.rs").as_deref(), Some("sim::engine"));
        assert_eq!(module_path_of("crates/mem/src/sub/mod.rs").as_deref(), Some("mem::sub"));
        assert_eq!(module_path_of("src/lib.rs").as_deref(), Some("repro"));
        assert_eq!(module_path_of("crates/sim/tests/it.rs"), None);
        assert_eq!(module_path_of("crates/bench/benches/simperf.rs"), None);
        assert_eq!(module_path_of("examples/demo.rs"), None);
    }

    #[test]
    fn fns_get_modules_owners_and_test_flags() {
        let src = "impl Engine { fn step(&mut self) { self.tick(); } }\n\
                   fn free() {}\n\
                   mod inner { fn nested() {} }\n\
                   #[cfg(test)]\nmod tests { fn helper() {} }\n";
        let syms = resolve_file("crates/sim/src/engine.rs", &lex(src));
        let by_name: BTreeMap<&str, &FnDecl> =
            syms.fns.iter().map(|f| (f.name.as_str(), f)).collect();
        assert_eq!(by_name["step"].owner.as_deref(), Some("Engine"));
        assert_eq!(by_name["step"].module, "sim::engine");
        assert_eq!(by_name["free"].owner, None);
        assert_eq!(by_name["nested"].module, "sim::engine::inner");
        assert!(by_name["helper"].is_test);
        assert!(!by_name["step"].is_test);
    }

    #[test]
    fn impl_trait_for_type_owns_by_type() {
        let src = "impl<T: Ord> Scheduler for Calendar<T> { fn pop(&mut self) {} }\n\
                   impl fmt::Display for Violation { fn fmt(&self) {} }\n\
                   trait Backend { fn submit(&self) { self.poll(); } }\n";
        let syms = resolve_file("crates/sim/src/sched.rs", &lex(src));
        let owners: Vec<_> = syms.fns.iter().map(|f| f.owner.as_deref().unwrap()).collect();
        assert_eq!(owners, vec!["Calendar", "Violation", "Backend"]);
    }

    #[test]
    fn impl_trait_in_signature_does_not_confuse_bodies() {
        let src = "impl Store { fn iter_jobs(&self) -> impl Iterator<Item = u64> + '_ {\n\
                   (0..4) } fn after(&self) {} }\n";
        let syms = resolve_file("crates/sim/src/store.rs", &lex(src));
        let names: Vec<_> = syms.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["iter_jobs", "after"]);
        assert_eq!(syms.fns[1].owner.as_deref(), Some("Store"));
    }

    #[test]
    fn use_trees_flatten_with_aliases_and_groups() {
        let src = "use dsa_sim::time::{scale_bytes, SimTime as T};\n\
                   use std::collections::BTreeMap;\n\
                   use dsa_mem::memsys::*;\n";
        let syms = resolve_file("crates/svc/src/service.rs", &lex(src));
        assert_eq!(
            syms.uses.get("scale_bytes").map(|p| p.join("::")).as_deref(),
            Some("sim::time::scale_bytes")
        );
        assert_eq!(syms.uses.get("T").map(|p| p.join("::")).as_deref(), Some("sim::time::SimTime"));
        assert_eq!(
            syms.uses.get("BTreeMap").map(|p| p.join("::")).as_deref(),
            Some("std::collections::BTreeMap")
        );
        assert!(!syms.uses.contains_key("*"), "globs are not bindings");
    }

    #[test]
    fn hash_bindings_and_global_state_are_collected() {
        let src = "struct C { entries: std::collections::HashMap<u64, u64> }\n\
                   fn f() { let mut seen = HashMap::new(); seen.insert(1, 2); }\n\
                   static mut COUNTER: u64 = 0;\n\
                   thread_local! { static SLOT: u64 = 0; }\n";
        let syms = resolve_file("crates/workloads/src/x.rs", &lex(src));
        assert!(syms.hash_names.contains("entries"));
        assert!(syms.hash_names.contains("seen"));
        assert_eq!(syms.mut_statics, vec!["COUNTER", "SLOT"]);
    }
}
