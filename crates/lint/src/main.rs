//! dsa-lint CLI.
//!
//! ```text
//! cargo run -p dsa-lint              # report violations
//! cargo run -p dsa-lint -- --deny    # exit non-zero if any (the CI gate)
//! cargo run -p dsa-lint -- --root P  # lint a different workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("dsa-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!(
                    "dsa-lint: workspace determinism + DSA-spec conformance linter\n\
                     \n\
                     usage: dsa-lint [--deny] [--root PATH]\n\
                     \n\
                     --deny   exit non-zero if any violation is found (CI gate)\n\
                     --root   workspace root to lint (default: found from cwd)\n\
                     \n\
                     rules: {}\n\
                     suppress with: // dsa-lint: allow(rule, reason)",
                    dsa_lint::RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dsa-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir().ok().and_then(|cwd| dsa_lint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("dsa-lint: no workspace root found (pass --root PATH)");
            return ExitCode::from(2);
        }
    };

    let violations = match dsa_lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("dsa-lint: walk failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("dsa-lint: clean ({} rules enforced)", dsa_lint::RULES.len());
        ExitCode::SUCCESS
    } else {
        println!("dsa-lint: {} violation(s)", violations.len());
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
