//! dsa-lint CLI.
//!
//! ```text
//! cargo run -p dsa-lint              # report violations
//! cargo run -p dsa-lint -- --deny    # exit non-zero if any (the CI gate)
//! cargo run -p dsa-lint -- --json    # machine-readable findings on stdout
//! cargo run -p dsa-lint -- --root P  # lint a different workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

/// Escapes a string for a JSON string literal (the crate is
/// dependency-free, so no serde — findings are flat and the escape set
/// small enough to write by hand).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("dsa-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!(
                    "dsa-lint: workspace determinism + DSA-spec conformance linter\n\
                     \n\
                     usage: dsa-lint [--deny] [--json] [--root PATH]\n\
                     \n\
                     --deny   exit non-zero if any violation is found (CI gate)\n\
                     --json   print findings as a JSON array on stdout\n\
                     --root   workspace root to lint (default: found from cwd)\n\
                     \n\
                     rules: {}\n\
                     suppress with: // dsa-lint: allow(rule, reason)",
                    dsa_lint::RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dsa-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir().ok().and_then(|cwd| dsa_lint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("dsa-lint: no workspace root found (pass --root PATH)");
            return ExitCode::from(2);
        }
    };

    let violations = match dsa_lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("dsa-lint: walk failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        // One finding per object; stable field order; the whole report is
        // a single array so `jq`/problem-matcher consumers need no
        // line-format knowledge.
        let items: Vec<String> = violations
            .iter()
            .map(|v| {
                format!(
                    "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                    json_escape(&v.file),
                    v.line,
                    v.rule,
                    json_escape(&v.message)
                )
            })
            .collect();
        if items.is_empty() {
            println!("[]");
        } else {
            println!("[\n{}\n]", items.join(",\n"));
        }
    } else {
        for v in &violations {
            println!("{v}");
        }
    }
    if violations.is_empty() {
        if !json {
            println!("dsa-lint: clean ({} rules enforced)", dsa_lint::RULES.len());
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            println!("dsa-lint: {} violation(s)", violations.len());
        }
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
