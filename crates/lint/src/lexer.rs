//! A hand-rolled Rust lexer, just deep enough for lint rules.
//!
//! The workspace's Cargo.lock is deliberately dependency-free, so `syn` is
//! off the table. This lexer understands exactly what the rule engine
//! needs and nothing more:
//!
//! * string literals (plain, raw, byte, byte-raw) and char literals are
//!   consumed whole, so `"unwrap()"` inside a string never triggers a rule;
//! * lifetimes (`'a`, `'static`) are distinguished from char literals;
//! * line and block comments (nested, as Rust's are) are stripped from the
//!   token stream but scanned for `dsa-lint:` pragmas;
//! * everything else becomes an identifier, a number, or a punctuation
//!   token (with `::`, `->` and `=>` kept as single tokens), each tagged
//!   with its 1-based source line.

/// What a token is, as far as the rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `as`, `Instant`, …).
    Ident,
    /// Numeric literal.
    Number,
    /// String or char literal (contents dropped).
    Literal,
    /// Punctuation; `::`, `->` and `=>` are single tokens.
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Token text (empty for [`TokenKind::Literal`]).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// An inline suppression found in a comment:
/// `// dsa-lint: allow(rule, reason)`.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// The rule name inside `allow(...)` (not yet canonicalized).
    pub rule: String,
    /// The documented reason (may be empty — the rule engine rejects that).
    pub reason: String,
    /// 1-based line the pragma comment starts on.
    pub line: u32,
}

/// Output of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The comment-free, literal-collapsed token stream.
    pub tokens: Vec<Token>,
    /// Every `dsa-lint:` pragma found in comments.
    pub pragmas: Vec<Pragma>,
}

/// Lexes `source` (one Rust file).
pub fn lex(source: &str) -> Lexed {
    Lexer { chars: source.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::Literal, String::new(), line);
                }
                'r' | 'b' if self.raw_or_byte_string() => {
                    self.push(TokenKind::Literal, String::new(), line);
                }
                '\'' => self.quote(),
                c if c.is_alphabetic() || c == '_' => {
                    let mut text = String::new();
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Ident, text, line);
                }
                c if c.is_ascii_digit() => {
                    let mut text = String::new();
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Number, text, line);
                }
                _ => {
                    self.bump();
                    let text = match (c, self.peek(0)) {
                        (':', Some(':')) => {
                            self.bump();
                            "::".to_string()
                        }
                        ('-', Some('>')) => {
                            self.bump();
                            "->".to_string()
                        }
                        ('=', Some('>')) => {
                            self.bump();
                            "=>".to_string()
                        }
                        _ => c.to_string(),
                    };
                    self.push(TokenKind::Punct, text, line);
                }
            }
        }
        self.out
    }

    /// Consumes `//...` to end of line; scans for a pragma. Doc comments
    /// (`///`, `//!`) are documentation, not directives — syntax examples
    /// in them must not register as real pragmas.
    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let is_doc = text.starts_with("///") || text.starts_with("//!");
        if !is_doc {
            self.scan_pragma(&text, line);
        }
    }

    /// Consumes a (nested) `/* ... */` block comment; scans for pragmas.
    fn block_comment(&mut self) {
        let line = self.line;
        let mut depth = 0usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        let is_doc = text.starts_with('*') || text.starts_with('!');
        if !is_doc {
            self.scan_pragma(&text, line);
        }
    }

    /// Parses `dsa-lint: allow(rule[, reason])` out of comment text.
    fn scan_pragma(&mut self, text: &str, line: u32) {
        let Some(at) = text.find("dsa-lint:") else { return };
        let rest = text[at + "dsa-lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else { return };
        let Some(close) = args.find(')') else { return };
        let inner = &args[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        self.out.pragmas.push(Pragma { rule: rule.to_string(), reason: reason.to_string(), line });
    }

    /// Consumes the body of a `"`-delimited string (opening quote already
    /// consumed).
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Tries to consume a raw/byte string starting at the current `r`/`b`.
    /// Returns false (consuming nothing) if this is just an identifier.
    fn raw_or_byte_string(&mut self) -> bool {
        // Recognized shapes: r"…", r#"…"#…, b"…", br"…", br#"…"#, b'…'.
        let mut ahead = 1; // past the leading r/b
        let first = self.peek(0);
        if first == Some('b') {
            match self.peek(1) {
                Some('\'') => {
                    // Byte char literal b'x'.
                    self.bump(); // b
                    self.bump(); // '
                    while let Some(c) = self.bump() {
                        match c {
                            '\\' => {
                                self.bump();
                            }
                            '\'' => break,
                            _ => {}
                        }
                    }
                    return true;
                }
                Some('r') => ahead = 2,
                Some('"') => {
                    self.bump(); // b
                    self.bump(); // "
                    self.string_body();
                    return true;
                }
                _ => return false,
            }
        }
        // At this point we need r[#*]" at offset `ahead - 1`.
        let mut hashes = 0usize;
        loop {
            match self.peek(ahead) {
                Some('#') => {
                    hashes += 1;
                    ahead += 1;
                }
                Some('"') => break,
                _ => return false,
            }
        }
        // Commit: consume prefix, quote, then scan for `"` + hashes.
        for _ in 0..=ahead {
            self.bump();
        }
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        true
    }

    /// Disambiguates lifetimes from char literals at a `'`.
    fn quote(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        match self.peek(0) {
            // Escape: definitely a char literal. Consume the backslash and
            // the escaped char (so `'\''` doesn't end early), then scan to
            // the closing quote (covers multi-char escapes like `'\u{41}'`).
            Some('\\') => {
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Literal, String::new(), line);
            }
            // Identifier-start char: 'a' (char) vs 'a (lifetime) — decided
            // by whether a closing quote follows immediately.
            Some(c) if c.is_alphanumeric() || c == '_' => {
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Literal, String::new(), line);
                } else {
                    let mut text = String::from("'");
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Ident, text, line);
                }
            }
            // Any other char ('(' etc.): a one-char literal.
            Some(_) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Literal, String::new(), line);
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let src = r##"let s = "unwrap() Instant::now()"; let r = r#"expect("x")"#;"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "r"]);
    }

    #[test]
    fn comments_are_stripped_but_pragmas_found() {
        let src = "// dsa-lint: allow(unwrap, const table lookup)\nlet x = 1; /* unwrap() */";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().all(|t| t.text != "unwrap"));
        assert_eq!(lexed.pragmas.len(), 1);
        assert_eq!(lexed.pragmas[0].rule, "unwrap");
        assert_eq!(lexed.pragmas[0].reason, "const table lookup");
        assert_eq!(lexed.pragmas[0].line, 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let p = '('; let n = '\\n'; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed.tokens.iter().filter(|t| t.text.starts_with('\'')).collect();
        assert_eq!(lifetimes.len(), 2, "two 'a lifetimes: {lifetimes:?}");
        let literals = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(literals, 3, "'x', '(' and '\\n'");
    }

    #[test]
    fn multi_char_puncts_are_single_tokens() {
        let toks = lex("a::b -> c => d");
        let puncts: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["::", "->", "=>"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        assert_eq!(idents(src), vec!["let", "x"]);
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn byte_and_raw_strings() {
        let src = "let a = b\"unwrap\"; let b = br#\"expect\"#; let c = b'x';";
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
    }

    #[test]
    fn doc_comments_do_not_register_pragmas() {
        let src = "/// `// dsa-lint: allow(unwrap, reason)`\n\
                   //! dsa-lint: allow(unwrap, reason)\n\
                   /** dsa-lint: allow(unwrap, reason) */\n\
                   // dsa-lint: allow(unwrap, real one)\n";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 1);
        assert_eq!(lexed.pragmas[0].line, 4);
    }

    #[test]
    fn pragma_without_reason_is_captured_empty() {
        let lexed = lex("// dsa-lint: allow(float-cast)\n");
        assert_eq!(lexed.pragmas[0].reason, "");
    }
}
