//! Rule-scope data, loaded from `crates/lint/scopes.toml`.
//!
//! Scope lists used to be hard-coded `match`es in `rules.rs`; extending a
//! rule to a new module meant patching the linter. They are now data: a
//! checked-in TOML file mapping scope names to `dirs` (path prefixes),
//! `files` (exact paths), and `exempt` (exact paths carved back out).
//! PRs widen or narrow a rule by editing the data file, and the scope
//! regression tests in `crates/lint/tests/fixtures.rs` pin the result.
//!
//! The workspace is dependency-free, so the file is read by a hand-rolled
//! parser for exactly the TOML subset the data uses: `[section]` headers,
//! `key = ["a", "b"]` string arrays (single-line or multi-line), and `#`
//! comments. Anything outside that subset is a hard parse error — better
//! to fail loudly than silently drop a scope entry.

use std::collections::BTreeMap;
use std::sync::OnceLock;

/// The scope table embedded at compile time. Using `include_str!` (rather
/// than reading from disk at runtime) keeps the rule engine usable on
/// synthetic paths — fixture tests lint in-memory sources against
/// made-up workspace paths with no filesystem underneath.
const SCOPES_TOML: &str = include_str!("../scopes.toml");

/// One named scope: which workspace-relative paths a rule applies to.
#[derive(Debug, Default, Clone)]
pub struct Scope {
    /// Directory prefixes; a file is in scope if it lives under one.
    pub dirs: Vec<String>,
    /// Exact file paths pulled in individually.
    pub files: Vec<String>,
    /// Exact file paths carved back out (beats `dirs` and `files`).
    pub exempt: Vec<String>,
}

impl Scope {
    /// True if `path` (workspace-relative, `/`-separated) is in this scope.
    pub fn contains(&self, path: &str) -> bool {
        if self.exempt.iter().any(|e| e == path) {
            return false;
        }
        self.files.iter().any(|f| f == path)
            || self
                .dirs
                .iter()
                .any(|d| path.starts_with(d) && path.as_bytes().get(d.len()) == Some(&b'/'))
    }
}

/// The full scope table parsed from `scopes.toml`.
#[derive(Debug, Default)]
pub struct Scopes {
    sections: BTreeMap<String, Scope>,
}

impl Scopes {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Scopes, String> {
        let mut scopes = Scopes::default();
        let mut current: Option<String> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().to_string();
                if scopes.sections.contains_key(&name) {
                    return Err(format!("line {}: duplicate section [{name}]", idx + 1));
                }
                scopes.sections.insert(name.clone(), Scope::default());
                current = Some(name);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = [..]` or `[section]`", idx + 1));
            };
            let Some(section) = current.as_ref() else {
                return Err(format!("line {}: key before any [section]", idx + 1));
            };
            // Collect the array text, consuming continuation lines until the
            // closing bracket (arrays may span lines, as rustfmt writes them).
            let mut array = value.trim().to_string();
            while !array.ends_with(']') {
                let Some((_, next)) = lines.next() else {
                    return Err(format!(
                        "line {}: unterminated array for `{}`",
                        idx + 1,
                        key.trim()
                    ));
                };
                array.push(' ');
                array.push_str(strip_comment(next).trim());
            }
            let items = parse_string_array(&array)
                .map_err(|e| format!("line {}: key `{}`: {e}", idx + 1, key.trim()))?;
            let scope = scopes.sections.entry(section.clone()).or_default();
            match key.trim() {
                "dirs" => scope.dirs = items,
                "files" => scope.files = items,
                "exempt" => scope.exempt = items,
                other => {
                    return Err(format!(
                        "line {}: unknown key `{other}` (expected dirs/files/exempt)",
                        idx + 1
                    ))
                }
            }
        }
        Ok(scopes)
    }

    /// The compiled-in workspace scope table. Panics at first use if
    /// `scopes.toml` fails to parse — a broken scope file must never
    /// silently lint nothing (a unit test also pins parseability).
    pub fn builtin() -> &'static Scopes {
        static BUILTIN: OnceLock<Scopes> = OnceLock::new();
        BUILTIN.get_or_init(|| match Scopes::parse(SCOPES_TOML) {
            Ok(s) => s,
            Err(e) => panic!("crates/lint/scopes.toml is invalid: {e}"),
        })
    }

    /// Looks up a scope by name.
    pub fn get(&self, name: &str) -> Option<&Scope> {
        self.sections.get(name)
    }

    /// True if `path` is inside the named scope. Unknown scope names are
    /// `false` (and the `builtin_table_has_expected_sections` test keeps
    /// the known names from drifting).
    pub fn in_scope(&self, name: &str, path: &str) -> bool {
        self.get(name).is_some_and(|s| s.contains(path))
    }
}

/// Strips a `#` comment, respecting `"` string boundaries.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b", "c"]` (trailing comma allowed) into its items.
fn parse_string_array(text: &str) -> Result<Vec<String>, String> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [..] array, got `{text}`"))?;
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        let item = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{part}`"))?;
        items.push(item.to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_table_parses_and_has_expected_sections() {
        let s = Scopes::builtin();
        for name in ["det-core", "timeline-math", "hot-alloc", "shard-isolation"] {
            assert!(s.get(name).is_some(), "scopes.toml lost section [{name}]");
        }
    }

    #[test]
    fn dirs_are_prefixes_files_exact_exempt_wins() {
        let s = Scopes::parse(
            "[t]\ndirs = [\"crates/sim/src\"]\nfiles = [\"crates/x/src/y.rs\"]\n\
             exempt = [\"crates/sim/src/time.rs\"]\n",
        )
        .expect("parse");
        assert!(s.in_scope("t", "crates/sim/src/engine.rs"));
        assert!(s.in_scope("t", "crates/sim/src/deep/mod.rs"));
        assert!(s.in_scope("t", "crates/x/src/y.rs"));
        assert!(!s.in_scope("t", "crates/sim/src/time.rs"), "exempt beats dirs");
        assert!(!s.in_scope("t", "crates/simx/src/a.rs"), "prefix must stop at a slash");
        assert!(!s.in_scope("t", "crates/x/src/z.rs"));
        assert!(!s.in_scope("nope", "crates/sim/src/engine.rs"), "unknown scope is empty");
    }

    #[test]
    fn multiline_arrays_and_comments() {
        let s = Scopes::parse("# header\n[a]\ndirs = [\n  \"p/q\", # inline\n  \"r/s\",\n]\n")
            .expect("parse");
        assert!(s.in_scope("a", "p/q/f.rs"));
        assert!(s.in_scope("a", "r/s/f.rs"));
    }

    #[test]
    fn parse_errors_are_loud() {
        assert!(Scopes::parse("dirs = [\"x\"]\n").is_err(), "key before section");
        assert!(Scopes::parse("[a]\nwhat = [\"x\"]\n").is_err(), "unknown key");
        assert!(Scopes::parse("[a]\ndirs = [\"x\"\n").is_err(), "unterminated array");
        assert!(Scopes::parse("[a]\ndirs = [x]\n").is_err(), "unquoted item");
        assert!(Scopes::parse("[a]\n[a]\n").is_err(), "duplicate section");
    }
}
