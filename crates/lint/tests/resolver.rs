//! Tests for the resolution pass and call-graph construction that power
//! the interprocedural rules (R6 det-taint, R8-transitive). These drive
//! `dsa_lint::resolve` / `dsa_lint::callgraph` directly over synthetic
//! sources, so regressions in symbol resolution show up here with small
//! reproducers instead of as mysterious fixture failures.

use dsa_lint::callgraph::Graph;
use dsa_lint::lexer::lex;
use dsa_lint::resolve::{module_path_of, resolve_file};

fn lex_files(files: &[(&str, &str)]) -> Vec<(String, dsa_lint::lexer::Lexed)> {
    files.iter().map(|&(path, src)| (path.to_string(), lex(src))).collect()
}

/// Edges out of `module::name`, rendered as qualified callee names.
fn edges_of(g: &Graph, module: &str, name: &str) -> Vec<String> {
    let idx =
        g.find(module, name).unwrap_or_else(|| panic!("fn {module}::{name} not found in graph"));
    g.edges[idx].iter().map(|e| g.qualified(e.to)).collect()
}

#[test]
fn module_paths_mirror_the_crate_layout() {
    assert_eq!(module_path_of("crates/sim/src/lib.rs").as_deref(), Some("sim"));
    assert_eq!(module_path_of("crates/sim/src/sched.rs").as_deref(), Some("sim::sched"));
    assert_eq!(module_path_of("crates/core/src/program.rs").as_deref(), Some("core::program"));
    // Dashes in crate dir names become underscores, like cargo does.
    assert_eq!(
        module_path_of("crates/dsa-core/src/program.rs").as_deref(),
        Some("dsa_core::program")
    );
    // Tests, benches, and fixtures never join the graph.
    assert_eq!(module_path_of("crates/sim/tests/replay.rs"), None);
    assert_eq!(module_path_of("crates/lint/fixtures/bad/r6.rs"), None);
}

#[test]
fn use_path_calls_link_across_crates() {
    let files = lex_files(&[
        (
            "crates/sim/src/a.rs",
            "use dsa_mem::helpers::walk_cost;\n\
             pub fn plan(x: u64) -> u64 { walk_cost(x) }\n",
        ),
        ("crates/mem/src/helpers.rs", "pub fn walk_cost(x: u64) -> u64 { x * 3 }\n"),
    ]);
    let g = Graph::build(&files);
    assert_eq!(edges_of(&g, "sim::a", "plan"), vec!["mem::helpers::walk_cost"]);
}

#[test]
fn crate_and_self_qualified_paths_resolve() {
    let files = lex_files(&[
        (
            "crates/sim/src/a.rs",
            "pub fn outer() -> u64 { crate::b::inner() + self::local() }\n\
             pub fn local() -> u64 { 1 }\n",
        ),
        ("crates/sim/src/b.rs", "pub fn inner() -> u64 { 2 }\n"),
    ]);
    let g = Graph::build(&files);
    let mut callees = edges_of(&g, "sim::a", "outer");
    callees.sort();
    assert_eq!(callees, vec!["sim::a::local", "sim::b::inner"]);
}

#[test]
fn method_calls_resolve_by_name_minus_the_denylist() {
    let files = lex_files(&[
        (
            "crates/sim/src/a.rs",
            "pub fn drive(d: &mut Dev, q: &[u64]) -> usize {\n\
                 d.submit_one(7);\n\
                 q.len()\n\
             }\n",
        ),
        (
            "crates/device/src/dev.rs",
            "pub struct Dev;\n\
             impl Dev { pub fn submit_one(&mut self, _x: u64) {} }\n\
             pub fn len() -> usize { 0 }\n",
        ),
    ]);
    let g = Graph::build(&files);
    let callees = edges_of(&g, "sim::a", "drive");
    // `.submit_one(` links CHA-style to the only workspace fn of that
    // name; `.len()` is denylisted (ubiquitous std method) even though a
    // workspace fn happens to share the name.
    assert_eq!(callees, vec!["device::dev::Dev::submit_one"]);
}

#[test]
fn qualified_type_method_calls_resolve() {
    let files = lex_files(&[
        (
            "crates/sim/src/a.rs",
            "use dsa_device::dev::Dev;\n\
             pub fn boot() { Dev::reset_all(); }\n",
        ),
        (
            "crates/device/src/dev.rs",
            "pub struct Dev;\n\
             impl Dev { pub fn reset_all() {} }\n",
        ),
    ]);
    let g = Graph::build(&files);
    assert_eq!(edges_of(&g, "sim::a", "boot"), vec!["device::dev::Dev::reset_all"]);
}

#[test]
fn resolver_records_owners_modules_and_test_masks() {
    let src = "pub struct Store;\n\
               impl Store {\n\
                   pub fn push(&mut self) { self.grow(); }\n\
                   fn grow(&mut self) {}\n\
               }\n\
               pub fn free_fn() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn t() { super::free_fn(); }\n\
               }\n";
    let syms = resolve_file("crates/sim/src/store.rs", &lex(src));
    assert_eq!(syms.module.as_deref(), Some("sim::store"));
    let names: Vec<(&str, Option<&str>, bool)> =
        syms.fns.iter().map(|f| (f.name.as_str(), f.owner.as_deref(), f.is_test)).collect();
    assert!(names.contains(&("push", Some("Store"), false)), "{names:?}");
    assert!(names.contains(&("grow", Some("Store"), false)), "{names:?}");
    assert!(names.contains(&("free_fn", None, false)), "{names:?}");
    assert!(names.contains(&("t", None, true)), "{names:?}");
}

#[test]
fn recursion_and_cycles_terminate_with_stable_taint() {
    // a -> b -> a mutual recursion plus a self-recursive fn, with the
    // source inside the cycle. Taint propagation must terminate and flag
    // both det-core members of the cycle (each reaches the source).
    let files = lex_files(&[(
        "crates/sim/src/cycle.rs",
        "use std::collections::HashMap;\n\
             pub fn ping(n: u64) -> u64 { if n == 0 { 0 } else { pong(n - 1) } }\n\
             pub fn pong(n: u64) -> u64 {\n\
                 let mut m = HashMap::new();\n\
                 m.insert(n, n);\n\
                 let mut acc = 0;\n\
                 for (k, _) in m.iter() { acc += k; }\n\
                 acc + ping(n / 2)\n\
             }\n\
             pub fn spin(n: u64) -> u64 { if n == 0 { 0 } else { spin(n - 1) } }\n",
    )]);
    let v = dsa_lint::callgraph::check_workspace(&files);
    // `pong` holds the source directly (R1's jurisdiction, not R6's);
    // `ping` reaches it transitively and is the one det-taint finding.
    // `spin` is recursive but clean. If propagation failed to converge
    // this test would hang instead of failing.
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "det-taint", "{v:?}");
    assert!(v[0].message.contains("ping"), "{v:?}");
    assert!(v[0].message.contains("pong"), "{v:?}");
}

#[test]
fn use_aliases_and_nested_groups_resolve() {
    let files = lex_files(&[
        (
            "crates/sim/src/a.rs",
            "use dsa_mem::{helpers::{walk_cost as wc}, other::noop};\n\
             pub fn plan(x: u64) -> u64 { noop(); wc(x) }\n",
        ),
        ("crates/mem/src/helpers.rs", "pub fn walk_cost(x: u64) -> u64 { x }\n"),
        ("crates/mem/src/other.rs", "pub fn noop() {}\n"),
    ]);
    let g = Graph::build(&files);
    let mut callees = edges_of(&g, "sim::a", "plan");
    callees.sort();
    assert_eq!(callees, vec!["mem::helpers::walk_cost", "mem::other::noop"]);
}
