//! Fixture corpus: known-bad snippets the linter must flag, known-good it
//! must pass. Fixtures live under `crates/lint/fixtures/` (excluded from
//! the workspace walk) and are linted under synthetic workspace paths so
//! the path-scoped rules apply.

use dsa_lint::{check_file, Violation};
use std::path::Path;

/// Lints a fixture file as if it lived at `synthetic_path` in the workspace.
fn lint_fixture(kind: &str, file: &str, synthetic_path: &str) -> Vec<Violation> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(kind).join(file);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    check_file(synthetic_path, &source)
}

fn rules_of(violations: &[Violation]) -> Vec<&str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn bad_r1_wallclock_is_flagged() {
    let v = lint_fixture("bad", "r1_wallclock.rs", "crates/sim/src/fixture.rs");
    let n = v.iter().filter(|v| v.rule == "nondeterminism").count();
    // use Instant, use SystemTime, Instant::now, SystemTime::now, thread::spawn
    assert!(n >= 4, "expected >=4 nondeterminism findings, got {v:?}");
    assert!(v.iter().all(|v| v.rule == "nondeterminism"), "{v:?}");
}

#[test]
fn bad_r1_hash_containers_are_flagged_in_det_core_only() {
    let v = lint_fixture("bad", "r1_hashmap.rs", "crates/core/src/fixture.rs");
    let n = v.iter().filter(|v| v.rule == "nondeterminism").count();
    assert!(n >= 2, "expected HashMap+HashSet findings, got {v:?}");

    // The same file outside the deterministic core is legal.
    let outside = lint_fixture("bad", "r1_hashmap.rs", "crates/telemetry/src/fixture.rs");
    assert!(outside.is_empty(), "{outside:?}");
}

#[test]
fn bad_r2_unwrap_is_flagged() {
    let v = lint_fixture("bad", "r2_unwrap.rs", "crates/device/src/fixture.rs");
    assert_eq!(rules_of(&v), vec!["unwrap", "unwrap"], "{v:?}");
}

#[test]
fn bad_r3_float_casts_are_flagged() {
    let v = lint_fixture("bad", "r3_floatcast.rs", "crates/sim/src/fixture.rs");
    assert_eq!(rules_of(&v), vec!["float-cast", "float-cast"], "{v:?}");

    // The sim::time helpers themselves are the one sanctioned home for this.
    let exempt = lint_fixture("bad", "r3_floatcast.rs", "crates/sim/src/time.rs");
    assert!(exempt.is_empty(), "{exempt:?}");
}

#[test]
fn bad_r4_raw_descriptor_literals_are_flagged() {
    let v = lint_fixture("bad", "r4_raw_descriptor.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_of(&v), vec!["raw-descriptor", "raw-descriptor"], "{v:?}");
}

#[test]
fn bad_r5_hot_alloc_is_flagged_in_hot_modules_only() {
    let v = lint_fixture("bad", "r5_hotalloc.rs", "crates/sim/src/sched.rs");
    assert_eq!(
        rules_of(&v),
        vec!["hot-alloc", "hot-alloc", "hot-alloc", "hot-alloc", "hot-alloc"],
        "{v:?}"
    );

    // The same code outside the designated hot-path modules is legal:
    // allocation policy is per-module, not per-crate.
    for outside in
        ["crates/sim/src/engine.rs", "crates/core/src/dispatch.rs", "crates/ops/src/delta.rs"]
    {
        let v = lint_fixture("bad", "r5_hotalloc.rs", outside);
        assert!(v.is_empty(), "{outside}: {v:?}");
    }
}

#[test]
fn good_r5_pooled_shapes_pass_inside_the_hot_scope() {
    for hot in ["crates/sim/src/store.rs", "crates/core/src/program.rs", "crates/ops/src/memops.rs"]
    {
        let v = lint_fixture("good", "r5_pooled.rs", hot);
        assert!(v.is_empty(), "{hot}: {v:?}");
    }
}

#[test]
fn bad_reasonless_pragma_suppresses_but_is_itself_flagged() {
    let v = lint_fixture("bad", "pragma_no_reason.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_of(&v), vec!["pragma"], "{v:?}");
}

#[test]
fn all_five_rule_classes_fire_across_the_bad_corpus() {
    let mut seen = std::collections::BTreeSet::new();
    for (file, path) in [
        ("r1_wallclock.rs", "crates/sim/src/fixture.rs"),
        ("r1_hashmap.rs", "crates/core/src/fixture.rs"),
        ("r2_unwrap.rs", "crates/device/src/fixture.rs"),
        ("r3_floatcast.rs", "crates/sim/src/fixture.rs"),
        ("r4_raw_descriptor.rs", "crates/core/src/fixture.rs"),
        ("r5_hotalloc.rs", "crates/sim/src/sched.rs"),
    ] {
        for v in lint_fixture("bad", file, path) {
            seen.insert(v.rule);
        }
    }
    for rule in ["nondeterminism", "unwrap", "float-cast", "raw-descriptor", "hot-alloc"] {
        assert!(seen.contains(rule), "rule {rule} never fired; saw {seen:?}");
    }
}

#[test]
fn scheduler_module_sits_inside_the_det_core_scope() {
    // PR 5 moved the engine's priority queue into `crates/sim/src/sched.rs`.
    // The calendar queue's correctness rests on integer-picosecond bucket
    // math and deterministic pop order, so the strictest scopes must cover
    // it: R1 wall-clock/hash-container findings and R3 float-cast findings
    // all fire when bad code is placed at that path.
    let wall = lint_fixture("bad", "r1_wallclock.rs", "crates/sim/src/sched.rs");
    assert!(wall.iter().any(|v| v.rule == "nondeterminism"), "{wall:?}");
    let hash = lint_fixture("bad", "r1_hashmap.rs", "crates/sim/src/sched.rs");
    assert!(hash.iter().any(|v| v.rule == "nondeterminism"), "{hash:?}");
    let float = lint_fixture("bad", "r3_floatcast.rs", "crates/sim/src/sched.rs");
    assert!(float.iter().any(|v| v.rule == "float-cast"), "{float:?}");
}

#[test]
fn causal_module_sits_inside_the_det_core_scope() {
    // PR 6 added `crates/telemetry/src/causal.rs`, the critical-path
    // attribution module. Its segment arithmetic feeds replay digests and
    // a ps-exact partition invariant, so the det-core scopes must cover
    // exactly that file — and nothing else in the telemetry crate.
    let causal = "crates/telemetry/src/causal.rs";
    let hash = lint_fixture("bad", "r1_hashmap.rs", causal);
    assert!(hash.iter().any(|v| v.rule == "nondeterminism"), "{hash:?}");
    let float = lint_fixture("bad", "r3_floatcast.rs", causal);
    assert!(float.iter().any(|v| v.rule == "float-cast"), "{float:?}");
    // Sibling telemetry files stay exempt from the det-core-only rules.
    for exempt in ["crates/telemetry/src/hub.rs", "crates/telemetry/src/export.rs"] {
        let hash = lint_fixture("bad", "r1_hashmap.rs", exempt);
        assert!(hash.is_empty(), "{exempt}: {hash:?}");
        let float = lint_fixture("bad", "r3_floatcast.rs", exempt);
        assert!(float.is_empty(), "{exempt}: {float:?}");
    }
}

#[test]
fn good_fixtures_pass_clean() {
    for file in ["clean.rs", "pragma_ok.rs"] {
        let v = lint_fixture("good", file, "crates/core/src/fixture.rs");
        assert!(v.is_empty(), "{file}: {v:?}");
    }
}
