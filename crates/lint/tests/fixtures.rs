//! Fixture corpus: known-bad snippets the linter must flag, known-good it
//! must pass. Fixtures live under `crates/lint/fixtures/` (excluded from
//! the workspace walk) and are linted under synthetic workspace paths so
//! the path-scoped rules apply.

use dsa_lint::{check_file, check_files, Violation};
use std::path::Path;

fn read_fixture(kind: &str, file: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(kind).join(file);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Lints a fixture file as if it lived at `synthetic_path` in the workspace.
fn lint_fixture(kind: &str, file: &str, synthetic_path: &str) -> Vec<Violation> {
    check_file(synthetic_path, &read_fixture(kind, file))
}

/// Lints a *set* of fixtures as one synthetic workspace, so the
/// interprocedural rules (R6, R8-transitive) see the whole call graph.
fn lint_fixture_set(files: &[(&str, &str, &str)]) -> Vec<Violation> {
    let set: Vec<(String, String)> = files
        .iter()
        .map(|&(kind, file, synthetic)| (synthetic.to_string(), read_fixture(kind, file)))
        .collect();
    check_files(&set)
}

fn rules_of(violations: &[Violation]) -> Vec<&str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn bad_r1_wallclock_is_flagged() {
    let v = lint_fixture("bad", "r1_wallclock.rs", "crates/sim/src/fixture.rs");
    let n = v.iter().filter(|v| v.rule == "nondeterminism").count();
    // use Instant, use SystemTime, Instant::now, SystemTime::now, thread::spawn
    assert!(n >= 4, "expected >=4 nondeterminism findings, got {v:?}");
    assert!(v.iter().all(|v| v.rule == "nondeterminism"), "{v:?}");
}

#[test]
fn bad_r1_hash_containers_are_flagged_in_det_core_only() {
    let v = lint_fixture("bad", "r1_hashmap.rs", "crates/core/src/fixture.rs");
    let n = v.iter().filter(|v| v.rule == "nondeterminism").count();
    assert!(n >= 2, "expected HashMap+HashSet findings, got {v:?}");

    // The same file outside the deterministic core is legal.
    let outside = lint_fixture("bad", "r1_hashmap.rs", "crates/telemetry/src/fixture.rs");
    assert!(outside.is_empty(), "{outside:?}");
}

#[test]
fn bad_r2_unwrap_is_flagged() {
    let v = lint_fixture("bad", "r2_unwrap.rs", "crates/device/src/fixture.rs");
    assert_eq!(rules_of(&v), vec!["unwrap", "unwrap"], "{v:?}");
}

#[test]
fn bad_r3_float_casts_are_flagged() {
    let v = lint_fixture("bad", "r3_floatcast.rs", "crates/sim/src/fixture.rs");
    assert_eq!(rules_of(&v), vec!["float-cast", "float-cast"], "{v:?}");

    // The sim::time helpers themselves are the one sanctioned home for this.
    let exempt = lint_fixture("bad", "r3_floatcast.rs", "crates/sim/src/time.rs");
    assert!(exempt.is_empty(), "{exempt:?}");
}

#[test]
fn bad_r4_raw_descriptor_literals_are_flagged() {
    let v = lint_fixture("bad", "r4_raw_descriptor.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_of(&v), vec!["raw-descriptor", "raw-descriptor"], "{v:?}");
}

#[test]
fn bad_r5_hot_alloc_is_flagged_in_hot_modules_only() {
    let v = lint_fixture("bad", "r5_hotalloc.rs", "crates/sim/src/sched.rs");
    assert_eq!(
        rules_of(&v),
        vec!["hot-alloc", "hot-alloc", "hot-alloc", "hot-alloc", "hot-alloc"],
        "{v:?}"
    );

    // The same code outside the designated hot-path modules is legal:
    // allocation policy is per-module, not per-crate.
    for outside in
        ["crates/sim/src/engine.rs", "crates/core/src/dispatch.rs", "crates/ops/src/delta.rs"]
    {
        let v = lint_fixture("bad", "r5_hotalloc.rs", outside);
        assert!(v.is_empty(), "{outside}: {v:?}");
    }
}

#[test]
fn good_r5_pooled_shapes_pass_inside_the_hot_scope() {
    for hot in ["crates/sim/src/store.rs", "crates/core/src/program.rs", "crates/ops/src/memops.rs"]
    {
        let v = lint_fixture("good", "r5_pooled.rs", hot);
        assert!(v.is_empty(), "{hot}: {v:?}");
    }
}

#[test]
fn bad_reasonless_pragma_suppresses_but_is_itself_flagged() {
    let v = lint_fixture("bad", "pragma_no_reason.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_of(&v), vec!["pragma"], "{v:?}");
}

#[test]
fn all_five_rule_classes_fire_across_the_bad_corpus() {
    let mut seen = std::collections::BTreeSet::new();
    for (file, path) in [
        ("r1_wallclock.rs", "crates/sim/src/fixture.rs"),
        ("r1_hashmap.rs", "crates/core/src/fixture.rs"),
        ("r2_unwrap.rs", "crates/device/src/fixture.rs"),
        ("r3_floatcast.rs", "crates/sim/src/fixture.rs"),
        ("r4_raw_descriptor.rs", "crates/core/src/fixture.rs"),
        ("r5_hotalloc.rs", "crates/sim/src/sched.rs"),
    ] {
        for v in lint_fixture("bad", file, path) {
            seen.insert(v.rule);
        }
    }
    for rule in ["nondeterminism", "unwrap", "float-cast", "raw-descriptor", "hot-alloc"] {
        assert!(seen.contains(rule), "rule {rule} never fired; saw {seen:?}");
    }
}

#[test]
fn scheduler_module_sits_inside_the_det_core_scope() {
    // PR 5 moved the engine's priority queue into `crates/sim/src/sched.rs`.
    // The calendar queue's correctness rests on integer-picosecond bucket
    // math and deterministic pop order, so the strictest scopes must cover
    // it: R1 wall-clock/hash-container findings and R3 float-cast findings
    // all fire when bad code is placed at that path.
    let wall = lint_fixture("bad", "r1_wallclock.rs", "crates/sim/src/sched.rs");
    assert!(wall.iter().any(|v| v.rule == "nondeterminism"), "{wall:?}");
    let hash = lint_fixture("bad", "r1_hashmap.rs", "crates/sim/src/sched.rs");
    assert!(hash.iter().any(|v| v.rule == "nondeterminism"), "{hash:?}");
    let float = lint_fixture("bad", "r3_floatcast.rs", "crates/sim/src/sched.rs");
    assert!(float.iter().any(|v| v.rule == "float-cast"), "{float:?}");
}

#[test]
fn causal_module_sits_inside_the_det_core_scope() {
    // PR 6 added `crates/telemetry/src/causal.rs`, the critical-path
    // attribution module. Its segment arithmetic feeds replay digests and
    // a ps-exact partition invariant, so the det-core scopes must cover
    // exactly that file — and nothing else in the telemetry crate.
    let causal = "crates/telemetry/src/causal.rs";
    let hash = lint_fixture("bad", "r1_hashmap.rs", causal);
    assert!(hash.iter().any(|v| v.rule == "nondeterminism"), "{hash:?}");
    let float = lint_fixture("bad", "r3_floatcast.rs", causal);
    assert!(float.iter().any(|v| v.rule == "float-cast"), "{float:?}");
    // Sibling telemetry files stay exempt from the det-core-only rules.
    for exempt in ["crates/telemetry/src/hub.rs", "crates/telemetry/src/export.rs"] {
        let hash = lint_fixture("bad", "r1_hashmap.rs", exempt);
        assert!(hash.is_empty(), "{exempt}: {hash:?}");
        let float = lint_fixture("bad", "r3_floatcast.rs", exempt);
        assert!(float.is_empty(), "{exempt}: {float:?}");
    }
}

#[test]
fn good_fixtures_pass_clean() {
    for file in ["clean.rs", "pragma_ok.rs"] {
        let v = lint_fixture("good", file, "crates/core/src/fixture.rs");
        assert!(v.is_empty(), "{file}: {v:?}");
    }
}

/// The three-file chain the two-hop R6 tests lint together: a det-core
/// entry point, a workloads relay, and a telemetry leaf.
const R6_CHAIN: [(&str, &str); 3] = [
    ("det_fixture.rs", "crates/sim/src/det_fixture.rs"),
    ("relay_fixture.rs", "crates/workloads/src/relay_fixture.rs"),
    ("leaf_hash.rs", "crates/telemetry/src/leaf_hash.rs"),
];

#[test]
fn r6_catches_two_hop_laundering_that_lexical_r1_provably_misses() {
    // First the "provably misses" half: linted file-by-file, the lexical
    // rules find NOTHING. The det-core entry point is spotless, the relay
    // is spotless, and the hash-iterating leaf sits in a telemetry path
    // that the R1 hash-container scope deliberately exempts.
    for (file, synthetic) in R6_CHAIN {
        let v = lint_fixture("bad/r6_two_hop", file, synthetic);
        assert!(v.is_empty(), "lexical pass should be silent on {file}, got {v:?}");
    }

    // Then the call-graph half: linted as a set, R6 walks
    // schedule_next -> relay_delay -> coarse_stamp and pins exactly one
    // det-taint finding on the det-core entry point, naming the chain and
    // the true source location.
    let v = lint_fixture_set(&R6_CHAIN.map(|(f, s)| ("bad/r6_two_hop", f, s)));
    assert_eq!(v.len(), 1, "expected exactly one finding, got {v:?}");
    let f = &v[0];
    assert_eq!(f.rule, "det-taint", "{f:?}");
    assert_eq!(f.file, "crates/sim/src/det_fixture.rs", "{f:?}");
    assert!(f.message.contains("schedule_next"), "{f:?}");
    assert!(f.message.contains("relay_delay"), "chain hop 1 missing: {f:?}");
    assert!(f.message.contains("coarse_stamp"), "chain hop 2 missing: {f:?}");
    assert!(f.message.contains("leaf_hash.rs"), "source location missing: {f:?}");
    assert!(f.message.contains("hash container"), "source kind missing: {f:?}");
}

#[test]
fn good_r6_chain_with_ordered_leaf_is_clean() {
    // Identical call shape, BTreeMap leaf: no source, so no taint anywhere.
    let v = lint_fixture_set(&R6_CHAIN.map(|(f, s)| ("good/r6_two_hop", f, s)));
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn bad_r7_units_fixture_fires_once_per_confusion() {
    // Three marked-BAD sites: ps+bytes addition, literal into from_ps,
    // literal assigned to a _ps field.
    let v = lint_fixture("bad", "r7_units.rs", "crates/mem/src/link_fixture.rs");
    assert_eq!(
        rules_of(&v),
        vec!["unit-consistency", "unit-consistency", "unit-consistency"],
        "{v:?}"
    );
    assert!(v.iter().any(|v| v.message.contains("picosecond and byte-count")), "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("5_000")), "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("7_500_000")), "{v:?}");

    // Outside the timeline-math scope the same code is legal: unit
    // discipline is enforced where ps arithmetic feeds the timeline.
    let outside = lint_fixture("bad", "r7_units.rs", "crates/workloads/src/fixture.rs");
    assert!(outside.is_empty(), "{outside:?}");
}

#[test]
fn good_r7_units_fixture_passes() {
    let v = lint_fixture("good", "r7_units.rs", "crates/mem/src/link_fixture.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn bad_r8_shared_state_is_flagged_in_shard_modules_only() {
    let v = lint_fixture("bad", "r8_shared_state.rs", "crates/sim/src/engine.rs");
    let n = v.iter().filter(|v| v.rule == "shard-isolation").count();
    // Rc (use + field), AtomicU64 (use + field), static mut, thread_local!
    assert!(n >= 5, "expected >=5 shard-isolation findings, got {v:?}");
    assert!(v.iter().all(|v| v.rule == "shard-isolation"), "{v:?}");

    // The same constructs outside the shard modules are legal — e.g. the
    // telemetry hub deliberately uses Rc<RefCell> for its sink registry.
    let outside = lint_fixture("bad", "r8_shared_state.rs", "crates/telemetry/src/hub.rs");
    assert!(outside.is_empty(), "{outside:?}");
}

#[test]
fn good_r8_owned_state_passes_with_test_only_rc() {
    // Owned-by-value shard state passes; the Rc under #[cfg(test)] is
    // exempt because R8 skips test code.
    let v = lint_fixture("good", "r8_owned.rs", "crates/svc/src/service.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn r8_reaches_global_state_through_a_helper_crate() {
    // The shard file is lexically clean; the global counter lives in a
    // workloads helper. Only the call-graph pass connects them.
    let shard = lint_fixture("bad/r8_reach", "shard_fixture.rs", "crates/sim/src/engine.rs");
    assert!(shard.is_empty(), "lexical pass should be silent, got {shard:?}");

    let v = lint_fixture_set(&[
        ("bad/r8_reach", "shard_fixture.rs", "crates/sim/src/engine.rs"),
        ("bad/r8_reach", "counter_fixture.rs", "crates/workloads/src/counter_fixture.rs"),
    ]);
    assert_eq!(v.len(), 1, "expected exactly one finding, got {v:?}");
    let f = &v[0];
    assert_eq!(f.rule, "shard-isolation", "{f:?}");
    assert_eq!(f.file, "crates/sim/src/engine.rs", "{f:?}");
    assert!(f.message.contains("CALLS"), "{f:?}");
    assert!(f.message.contains("bump_global"), "{f:?}");
    assert!(f.message.contains("shard modules must own their state"), "{f:?}");
}

#[test]
fn all_nine_rule_ids_are_registered() {
    let ids = dsa_lint::rules::RULES;
    for id in [
        "nondeterminism",
        "unwrap",
        "float-cast",
        "raw-descriptor",
        "hot-alloc",
        "det-taint",
        "unit-consistency",
        "shard-isolation",
        "pragma",
    ] {
        assert!(ids.contains(&id), "rule {id} missing from registry {ids:?}");
    }
}
