//! Tier-1 gate: the real workspace must lint clean. This is the same check
//! CI runs via `cargo run -p dsa-lint -- --deny`, embedded as a test so a
//! plain `cargo test` catches regressions too.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = dsa_lint::find_workspace_root(here).expect("workspace root above crates/lint");
    let violations = dsa_lint::lint_workspace(&root).expect("workspace walk");
    assert!(
        violations.is_empty(),
        "dsa-lint found {} violation(s):\n{}",
        violations.len(),
        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}

/// The R8 sweep report (ISSUE 8 acceptance): the ROADMAP-item-1 shard
/// modules — engine, scheduler, event store, service, and the fleet
/// layer that actually runs them one-per-thread — carry zero
/// shared-mutable-state findings, lexical or transitive. This is the
/// static precondition for sharding the engine across threads: each
/// shard can own its engine/sched/store/service slice outright.
///
/// Unlike `workspace_lints_clean` (which would also fail on, say, an
/// unwrap in telemetry), this test pins the specific guarantee: if it
/// fails, someone introduced shared mutable state into a shard module.
#[test]
fn shard_modules_carry_zero_shared_state_findings() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = dsa_lint::find_workspace_root(here).expect("workspace root above crates/lint");

    // The scope list is data (scopes.toml); assert the files it names
    // actually exist so a rename can't silently hollow out the guarantee.
    for shard in [
        "crates/sim/src/engine.rs",
        "crates/sim/src/sched.rs",
        "crates/sim/src/store.rs",
        "crates/svc/src/service.rs",
        "crates/svc/src/actionq.rs",
        "crates/svc/src/shard.rs",
        "crates/svc/src/fleet.rs",
    ] {
        assert!(root.join(shard).is_file(), "shard module {shard} missing from workspace");
        assert!(
            dsa_lint::scopes::Scopes::builtin().in_scope("shard-isolation", shard),
            "{shard} fell out of the shard-isolation scope"
        );
    }

    let violations = dsa_lint::lint_workspace(&root).expect("workspace walk");
    let shard_findings: Vec<_> =
        violations.iter().filter(|v| v.rule == "shard-isolation").collect();
    assert!(
        shard_findings.is_empty(),
        "shard modules must own their state; found:\n{}",
        shard_findings.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}
