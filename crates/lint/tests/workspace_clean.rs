//! Tier-1 gate: the real workspace must lint clean. This is the same check
//! CI runs via `cargo run -p dsa-lint -- --deny`, embedded as a test so a
//! plain `cargo test` catches regressions too.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = dsa_lint::find_workspace_root(here).expect("workspace root above crates/lint");
    let violations = dsa_lint::lint_workspace(&root).expect("workspace walk");
    assert!(
        violations.is_empty(),
        "dsa-lint found {} violation(s):\n{}",
        violations.len(),
        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}
