//! Property-style tests of the service layer, driven by seeded
//! `SplitMix64` schedules: token conservation, typed failure on retry
//! exhaustion, bit-identical replay, and the dedicated-vs-shared fairness
//! claim under saturation.

use dsa_core::error::DsaError;
use dsa_sim::rng::SplitMix64;
use dsa_sim::time::{SimDuration, SimTime};
use dsa_svc::prelude::*;
use dsa_svc::TokenBucket;

/// Over any request schedule, a bucket with rate R and burst B grants at
/// most `B + elapsed·R` tokens — conservation no interleaving can violate.
#[test]
fn token_bucket_conserves_rate() {
    for seed in [3u64, 17, 0xBEEF] {
        let mut rng = SplitMix64::new(seed);
        let rate = 1_000_000u64; // 1 token per µs
        let interval_ps = 1_000_000u64;
        let burst = 5u64;
        let mut bucket = TokenBucket::new(rate, burst);
        let mut granted = 0u64;
        let mut t_ps = 0u64;
        let mut requests = 0u64;
        for _ in 0..20_000 {
            // Random gaps between 0 and 3 µs, so demand oscillates around
            // the metered rate.
            t_ps += rng.next_below(3_000_000);
            requests += 1;
            if bucket.try_acquire(SimTime::from_ps(t_ps)) {
                granted += 1;
            }
        }
        let ceiling = burst + t_ps / interval_ps;
        assert!(
            granted <= ceiling,
            "seed {seed}: granted {granted} > burst + elapsed·rate = {ceiling}"
        );
        // Liveness: with mean demand 1.5× the rate, well over half the
        // requests must still be granted.
        assert!(
            granted * 2 > requests,
            "seed {seed}: granted only {granted} of {requests} requests"
        );
    }
}

/// A tenant with no CPU fallback and a zero retry budget surfaces WQ
/// saturation as the typed `RetryExhausted` error, not a panic or a hang.
#[test]
fn retry_exhaustion_is_a_typed_error() {
    let specs = vec![
        TenantSpec::new("flood", 1 << 20, 500)
            .with_arrival(Arrival::open(SimDuration::from_ns(100)))
            .with_outstanding(256)
            .with_retry_budget(0)
            .with_cpu_fallback(false),
        TenantSpec::new("idle", 4 << 10, 1),
    ];
    let cfg =
        ServiceConfig::builder().plan(PlanSpec::Dedicated).seed(11).tenants(specs).build().unwrap();
    let mut svc = DsaService::from_config(cfg).unwrap();
    let mut sess = svc.session(0);
    let mut exhausted = None;
    for _ in 0..300 {
        match sess.submit() {
            Err(e @ DsaError::RetryExhausted { .. }) => {
                exhausted = Some(e);
                break;
            }
            Err(e) => panic!("unexpected error before exhaustion: {e}"),
            Ok(_) => {}
        }
    }
    assert_eq!(
        exhausted,
        Some(DsaError::RetryExhausted { attempts: 1 }),
        "a zero-budget tenant must fail typed after its first WqFull"
    );
    let stats = svc.stats(0);
    assert!(stats.failed > 0);
    assert_eq!(stats.cpu_completed, 0, "no fallback was configured");
}

fn polite(name: &str) -> TenantSpec {
    TenantSpec::new(name, 16 << 10, 200)
        .with_class(QosClass::Latency)
        .with_arrival(Arrival::open(SimDuration::from_us(4)))
        .with_outstanding(8)
        .with_retry_budget(1)
}

/// One aggressor flooding 64 KiB jobs for the whole run (offered load far
/// beyond device bandwidth) next to three polite latency-class tenants.
fn mixed_four_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("aggr", 64 << 10, 2700)
            .with_arrival(Arrival::open(SimDuration::from_ns(300)))
            .with_outstanding(256)
            .with_retry_budget(32)
            .with_backoff(SimDuration::from_ns(100)),
        polite("polite0"),
        polite("polite1"),
        polite("polite2").with_deadline(SimDuration::from_ms(1)),
    ]
}

/// Two services built from identical specs and seed replay bit-identically:
/// same summary string, same digest.
#[test]
fn four_tenant_replay_is_bit_identical() {
    let cfg = ServiceConfig::builder()
        .plan(PlanSpec::Shared)
        .seed(0xFEED)
        .tenants(mixed_four_tenants())
        .build()
        .unwrap();
    let a = DsaService::from_config(cfg.clone()).unwrap().run();
    let b = DsaService::from_config(cfg).unwrap().run();
    assert_eq!(a.summary(), b.summary());
    assert_eq!(a.digest(), b.digest());
    // And the run actually exercised contention, not a trivial timeline.
    assert!(a.tenants[0].retries > 0, "aggressor never saw WqFull:\n{}", a.summary());
}

/// The paper's isolation claim as a service-level property: at saturation,
/// dedicated per-tenant WQs yield a higher Jain fairness index over
/// accelerator-served shares than one fully shared WQ.
#[test]
fn dedicated_wqs_are_fairer_than_shared_at_saturation() {
    let at_saturation = |plan: PlanSpec| {
        let cfg = ServiceConfig::builder()
            .plan(plan)
            .seed(7)
            .tenants(mixed_four_tenants())
            .build()
            .unwrap();
        DsaService::from_config(cfg).unwrap().run()
    };
    let ded = at_saturation(PlanSpec::Dedicated);
    let sha = at_saturation(PlanSpec::Shared);
    assert!(
        ded.fairness > sha.fairness,
        "dedicated {:.4} must beat shared {:.4}\n--- dedicated ---\n{}\n--- shared ---\n{}",
        ded.fairness,
        sha.fairness,
        ded.summary(),
        sha.summary()
    );
}
