//! The multi-tenant service: WQ placement plans, the deterministic
//! scheduling loop, sessions, and the fairness report.
//!
//! # Determinism
//!
//! N tenants share one [`DsaRuntime`] without threads: each tenant keeps a
//! local clock cursor, and the service always processes the tenant whose
//! next admissible action is earliest on the simulated timeline (ties
//! break by scheduling order in the [`ActionQueue`], itself deterministic).
//! A tenant's next-action instant depends only on its own state, so the
//! service maintains it in a calendar-queue-backed action queue instead of
//! rescanning all tenants per job — O(1) amortized per step, which is what
//! lets one shard of the fleet layer carry thousands of tenants.
//! Per-tenant randomness comes from [`SplitMix64`] streams split off one
//! master seed. Two services built from the same config therefore replay
//! bit-identically — [`ServiceReport::digest`] makes that checkable in one
//! comparison.

use crate::actionq::ActionQueue;
use crate::admission::TokenBucket;
use crate::plan::{Plan, PlanDelta, PlanSpec, TransitionCosts};
use crate::slo::{SloTarget, SloViolation};
use crate::tenant::{QosClass, TenantReport, TenantSpec, TenantStats};
use dsa_core::digest::{Digestible, Fnv1a};
use dsa_core::error::DsaError;
use dsa_core::job::Job;
use dsa_core::program::OpInstr;
use dsa_core::runtime::DsaRuntime;
use dsa_core::submit::InflightWindow;
use dsa_device::descriptor::Descriptor;
use dsa_device::device::SubmitError;
use dsa_mem::buffer::Location;
use dsa_mem::memory::BufferHandle;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;
use dsa_sim::rng::SplitMix64;
use dsa_sim::stats::jain_fairness;
use dsa_sim::time::{SimDuration, SimTime};
use dsa_telemetry::{Hub, Labels};

/// Exponential-backoff cap: base backoff never grows beyond 64×.
const MAX_BACKOFF_SHIFT: u32 = 6;

/// Service-wide configuration: plan, seed, platform, tenant placement,
/// and the tenant roster itself.
///
/// Built exclusively through [`ServiceConfig::builder`], which validates
/// the whole configuration (plan vs the DSA 1.0 envelope, buffer location
/// vs the platform's memory devices) before any runtime is constructed —
/// the same by-value builder idiom as
/// [`AccelConfig::builder`](dsa_core::config::AccelConfig::builder).
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The materialized placement plan (recipes from the builder are
    /// resolved against the roster at `build()`).
    pub plan: Plan,
    /// Master seed for all per-tenant randomness.
    pub seed: u64,
    /// Platform the service's runtime simulates.
    pub platform: Platform,
    /// Where tenant buffers live. The fleet layer places remote shards'
    /// buffers in remote DRAM so every transfer pays the UPI crossing.
    pub location: Location,
    /// Service-level objectives, if any (feeds
    /// [`ServiceReport::slo_violations`] and the control plane).
    pub slo: Option<SloTarget>,
    /// The tenant roster, in tenant-index order.
    pub tenants: Vec<TenantSpec>,
}

impl ServiceConfig {
    /// Starts a builder with the defaults: [`PlanSpec::Dedicated`],
    /// the stock seed, [`Platform::spr`], local-DRAM buffers, no SLO, no
    /// tenants.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder {
            plan: PlanSpec::Dedicated,
            seed: 0xD5A_5E1F_0CA5,
            platform: Platform::spr(),
            location: Location::local_dram(),
            slo: None,
            tenants: Vec::new(),
        }
    }
}

/// By-value builder for [`ServiceConfig`]. See [`ServiceConfig::builder`].
#[derive(Clone, Debug)]
pub struct ServiceBuilder {
    plan: PlanSpec,
    seed: u64,
    platform: Platform,
    location: Location,
    slo: Option<SloTarget>,
    tenants: Vec<TenantSpec>,
}

impl ServiceBuilder {
    /// Sets the placement plan: a [`PlanSpec`] recipe, a concrete
    /// [`Plan`] (via `Plan -> PlanSpec`), or a deprecated `WqPlan`
    /// variant during migration.
    pub fn plan(mut self, plan: impl Into<PlanSpec>) -> ServiceBuilder {
        self.plan = plan.into();
        self
    }

    /// Sets the service-level objectives the run is held to.
    pub fn slo(mut self, slo: SloTarget) -> ServiceBuilder {
        self.slo = Some(slo);
        self
    }

    /// Sets the master seed for all per-tenant randomness.
    pub fn seed(mut self, seed: u64) -> ServiceBuilder {
        self.seed = seed;
        self
    }

    /// Sets the simulated platform (default [`Platform::spr`]).
    pub fn platform(mut self, platform: Platform) -> ServiceBuilder {
        self.platform = platform;
        self
    }

    /// Sets where tenant buffers are allocated (default local DRAM).
    pub fn location(mut self, location: Location) -> ServiceBuilder {
        self.location = location;
        self
    }

    /// Appends one tenant to the roster.
    pub fn tenant(mut self, spec: TenantSpec) -> ServiceBuilder {
        self.tenants.push(spec);
        self
    }

    /// Appends a batch of tenants to the roster.
    pub fn tenants(mut self, specs: impl IntoIterator<Item = TenantSpec>) -> ServiceBuilder {
        self.tenants.extend(specs);
        self
    }

    /// Validates the full configuration.
    ///
    /// # Errors
    ///
    /// [`DsaError::InvalidService`] when a tenant moves zero bytes per job
    /// or the buffer location names a memory device the platform lacks;
    /// [`DsaError::InvalidConfig`] when the plan violates the device
    /// envelope for this roster (e.g. more dedicated tenants than the
    /// 8-WQ envelope allows).
    pub fn build(self) -> Result<ServiceConfig, DsaError> {
        if self.tenants.iter().any(|t| t.xfer == 0) {
            return Err(DsaError::InvalidService { reason: "tenant transfer size is zero".into() });
        }
        match self.location {
            Location::Cxl if self.platform.cxl.is_none() => {
                return Err(DsaError::InvalidService {
                    reason: "tenant buffers placed in CXL memory on a platform without CXL".into(),
                });
            }
            Location::Dram { socket } if u32::from(socket) >= u32::from(self.platform.sockets) => {
                return Err(DsaError::InvalidService {
                    reason: "tenant buffer socket beyond the platform's socket count".into(),
                });
            }
            _ => {}
        }
        // Materializing the plan surfaces plan-vs-envelope violations at
        // build time, not first use.
        let plan = self.plan.materialize(&self.tenants)?;
        Ok(ServiceConfig {
            plan,
            seed: self.seed,
            platform: self.platform,
            location: self.location,
            slo: self.slo,
            tenants: self.tenants,
        })
    }
}

/// How one job submission ended, from [`Session::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Completed (or will complete) on the accelerator.
    Dsa {
        /// Device completion instant.
        completion: SimTime,
        /// Arrival-to-completion latency.
        latency: SimDuration,
    },
    /// Degraded to the synchronous CPU fallback.
    Cpu {
        /// CPU completion instant.
        completion: SimTime,
        /// Arrival-to-completion latency.
        latency: SimDuration,
    },
}

struct TenantState {
    spec: TenantSpec,
    wq: usize,
    rng: SplitMix64,
    bucket: TokenBucket,
    window: InflightWindow<u64>,
    src: BufferHandle,
    dst: BufferHandle,
    /// The tenant's steady-state copy, compiled once at service build:
    /// every submission attempt rebuilds a stack descriptor from this
    /// fixed-width instruction instead of cloning a `Job` per attempt.
    instr: OpInstr,
    /// Tenant-local core clock: the submitting context is busy until here.
    cursor: SimTime,
    /// Arrival instant of the next job in the stream.
    next_arrival: SimTime,
    issued: u64,
    stats: TenantStats,
}

impl TenantState {
    fn active(&self) -> bool {
        self.issued < self.spec.jobs
    }

    /// Advances the arrival process past a job that finished (or was shed)
    /// at `completion`.
    fn schedule_next(&mut self, completion: SimTime) {
        let gap = self.spec.arrival.gap(&mut self.rng);
        self.next_arrival = if self.spec.arrival.is_open() {
            // Open loop: the schedule marches on regardless of completions.
            self.next_arrival + gap
        } else {
            completion + gap
        };
    }

    fn note_completion(&mut self, arrival: SimTime, completion: SimTime) -> SimDuration {
        let latency = completion.duration_since(arrival);
        self.stats.latency.record(latency);
        self.stats.last_completion = self.stats.last_completion.max(completion);
        if let Some(d) = self.spec.deadline {
            if latency > d {
                self.stats.deadline_misses += 1;
            }
        }
        latency
    }
}

/// The multi-tenant service layer: owns the runtime and drives every
/// tenant's stream through admission control, placement, bounded retry,
/// and fallback. See the crate docs for the full policy tour.
pub struct DsaService {
    rt: DsaRuntime,
    plan: Plan,
    seed: u64,
    location: Location,
    slo: Option<SloTarget>,
    tenants: Vec<TenantState>,
    /// Earliest-next-action queue; one live entry per active tenant.
    queue: ActionQueue,
    /// Plan transitions applied so far (see [`transition`]).
    ///
    /// [`transition`]: DsaService::transition
    transitions: u32,
}

/// What one [`DsaService::transition`] call did: the quiesce barrier,
/// the instant tenants resume, and the priced delta.
#[derive(Clone, Copy, Debug)]
pub struct PlanTransition {
    /// The quiesce instant: every in-flight job had completed and every
    /// tenant cursor had been reached by here.
    pub barrier: SimTime,
    /// When tenants resume: `barrier` plus the transition cost.
    pub ready: SimTime,
    /// What changed between the plans.
    pub delta: PlanDelta,
    /// Tenants whose WQ wiring moved.
    pub moved: u64,
}

impl DsaService {
    /// Builds the device per `cfg.plan`, allocates per-tenant buffers at
    /// `cfg.location` on `cfg.platform`, and seeds per-tenant RNG streams.
    ///
    /// # Errors
    ///
    /// Returns [`DsaError::InvalidConfig`] with the device-configuration
    /// constraint a plan violates (e.g. more dedicated tenants than the
    /// 8-WQ envelope allows). A config from
    /// [`ServiceConfig::builder`] has already passed this validation.
    pub fn from_config(cfg: ServiceConfig) -> Result<DsaService, DsaError> {
        let ServiceConfig { plan, seed, platform, location, slo, tenants: specs } = cfg;
        let device = plan.device_config()?;
        let wqs = plan.assign(&specs);
        let mut rt = DsaRuntime::builder(platform).device(device).build();
        let mut master = SplitMix64::new(seed);
        let mut tenants = Vec::with_capacity(specs.len());
        for (i, spec) in specs.into_iter().enumerate() {
            let src = rt.alloc(spec.xfer, location);
            let dst = rt.alloc(spec.xfer, location);
            rt.fill_pattern(&src, (i as u8).wrapping_mul(37).wrapping_add(1));
            rt.fill_pattern(&dst, 0);
            let mut rng = master.split();
            let base = SimTime::ZERO + spec.start;
            let first =
                if spec.arrival.is_open() { base + spec.arrival.gap(&mut rng) } else { base };
            // Compile the tenant's steady-state op once (placement + the
            // same descriptor `Job::memcpy(...).on_wq(wq)` would build),
            // so the retry loop below allocates nothing per attempt.
            let instr = OpInstr::from_descriptor(
                &Descriptor::memmove(src.addr(), dst.addr(), spec.xfer as u32),
                0,
                wqs[i] as u16,
            );
            tenants.push(TenantState {
                wq: wqs[i],
                bucket: TokenBucket::new(spec.rate, spec.burst),
                window: InflightWindow::new(spec.max_outstanding.max(1)),
                src,
                dst,
                instr,
                rng,
                cursor: SimTime::ZERO,
                next_arrival: first,
                issued: 0,
                stats: TenantStats::new(),
                spec,
            });
        }
        let queue = ActionQueue::with_tenants(tenants.len());
        let mut svc = DsaService { rt, plan, seed, location, slo, tenants, queue, transitions: 0 };
        // Prime the action queue in tenant-index order, so simultaneous
        // first actions keep the historical index tie-break.
        for i in 0..svc.tenants.len() {
            if svc.tenants[i].active() {
                let at = svc.next_action(i);
                svc.queue.schedule(i, at);
            }
        }
        Ok(svc)
    }

    /// The placement plan in force.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The master seed the service was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Where tenant buffers live.
    pub fn location(&self) -> Location {
        self.location
    }

    /// The service-level objectives, if any.
    pub fn slo(&self) -> Option<&SloTarget> {
        self.slo.as_ref()
    }

    /// Plan transitions applied so far.
    pub fn transitions(&self) -> u32 {
        self.transitions
    }

    /// The spec of tenant `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tenant_spec(&self, i: usize) -> &TenantSpec {
        &self.tenants[i].spec
    }

    /// Jobs tenant `i` has yet to issue.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn remaining_jobs(&self, i: usize) -> u64 {
        let t = &self.tenants[i];
        t.spec.jobs - t.issued
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Live accounting for tenant `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn stats(&self, i: usize) -> &TenantStats {
        &self.tenants[i].stats
    }

    /// The underlying runtime (read-only).
    pub fn runtime(&self) -> &DsaRuntime {
        &self.rt
    }

    /// Attaches a fresh telemetry hub and returns a clone, mirroring
    /// [`DsaRuntime::trace`]. Per-tenant series land under
    /// `svc_*` metrics with [`Labels::tenant`] label sets.
    pub fn trace(&mut self) -> Hub {
        self.rt.trace()
    }

    /// A handle for driving tenant `i`'s stream by hand (tests, custom
    /// loops). [`run`](Self::run) drives all tenants to completion instead.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn session(&mut self, i: usize) -> Session<'_> {
        assert!(i < self.tenants.len(), "no tenant {i}");
        Session { svc: self, tenant: i }
    }

    /// Drives every tenant's stream to completion in deterministic merged
    /// timeline order and returns the final report.
    pub fn run(&mut self) -> ServiceReport {
        while let Some((_, i)) = self.queue.pop() {
            let _ = self.step(i);
        }
        self.report()
    }

    /// Drives the merged timeline up to (and including) every action at
    /// or before `until`, then stops — the epoch primitive the control
    /// plane's governed loop is built on. Returns the number of steps
    /// taken. The queue stays exact: [`run`](Self::run) (or another
    /// `run_until`) picks up where this left off.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let mut steps = 0;
        while let Some((at, _)) = self.queue.peek() {
            if at > until {
                break;
            }
            if let Some((_, i)) = self.queue.pop() {
                let _ = self.step(i);
                steps += 1;
            }
        }
        steps
    }

    /// True when no tenant has a pending action (every stream drained).
    pub fn is_idle(&mut self) -> bool {
        self.queue.peek().is_none()
    }

    /// The instant of the earliest pending action, if any.
    pub fn next_ready(&mut self) -> Option<SimTime> {
        self.queue.peek().map(|(at, _)| at)
    }

    /// Transitions the live service to plan `to`: quiesces to a barrier
    /// (all in-flight completions and tenant cursors), rebuilds the
    /// device under the new layout, re-wires every tenant, and charges
    /// the priced transition stall before tenants resume. Open-loop
    /// arrival schedules march on through the stall, so a transition
    /// under pressure genuinely costs queueing — the control plane's
    /// digital twin weighs exactly that.
    ///
    /// # Errors
    ///
    /// [`DsaError::InvalidConfig`] when `to` violates the device
    /// envelope; the service is left untouched on error.
    pub fn transition(
        &mut self,
        to: Plan,
        costs: &TransitionCosts,
    ) -> Result<PlanTransition, DsaError> {
        let device = to.device_config()?;
        let classes: Vec<QosClass> = self.tenants.iter().map(|t| t.spec.class).collect();
        let assign = to.assign_classes(&classes);
        let delta = self.plan.diff(&to);
        let moved =
            self.tenants.iter().enumerate().filter(|(i, t)| assign[*i] != t.wq).count() as u64;
        // Quiesce: the barrier is past every completion the old device
        // has promised and every tenant's core cursor, so dropping the
        // old device loses no in-flight accounting.
        let mut barrier = self.rt.now();
        for t in &self.tenants {
            barrier = barrier.max(t.cursor).max(t.stats.last_completion);
        }
        let ready = barrier + delta.cost(costs, moved);
        if delta.is_empty() && moved == 0 {
            return Ok(PlanTransition { barrier, ready: barrier, delta, moved });
        }
        self.rt.replace_device(0, device);
        self.rt.set_now(ready);
        for (i, t) in self.tenants.iter_mut().enumerate() {
            if assign[i] != t.wq {
                t.stats.migrations += 1;
                t.wq = assign[i];
                t.instr = OpInstr::from_descriptor(
                    &Descriptor::memmove(t.src.addr(), t.dst.addr(), t.spec.xfer as u32),
                    0,
                    t.wq as u16,
                );
            }
            t.cursor = t.cursor.max(ready);
            while t.window.pop_completed(ready).is_some() {}
        }
        // Re-prime in tenant-index order, as from_config does, so
        // simultaneous resumes keep the index tie-break.
        for i in 0..self.tenants.len() {
            if self.tenants[i].active() {
                let at = self.next_action(i);
                self.queue.schedule(i, at);
            } else {
                self.queue.cancel(i);
            }
        }
        self.plan = to;
        self.transitions += 1;
        Ok(PlanTransition { barrier, ready, delta, moved })
    }

    /// Earliest instant tenant `i` could start its next job: its arrival,
    /// its core cursor, a free in-flight slot, and an admission token must
    /// all line up.
    fn next_action(&self, i: usize) -> SimTime {
        let t = &self.tenants[i];
        let at = t.next_arrival.max(t.cursor);
        let at = t.window.admission_at(at);
        t.bucket.ready_at(at)
    }

    /// Processes tenant `i`'s next job, then re-queues the tenant's new
    /// next-action instant (or retires it when the stream is exhausted).
    /// Keeps the action queue exact whether the step came from [`run`]
    /// (queue-driven) or a [`Session`] (caller-driven): the stale entry
    /// the queue may still hold is invalidated by the re-schedule.
    ///
    /// [`run`]: Self::run
    fn step(&mut self, i: usize) -> Result<JobOutcome, DsaError> {
        let out = self.advance(i);
        if self.tenants[i].active() {
            let at = self.next_action(i);
            self.queue.schedule(i, at);
        } else {
            self.queue.cancel(i);
        }
        out
    }

    /// Processes tenant `i`'s next job end-to-end: admission, bounded-retry
    /// submission, fallback, accounting, and arrival-process advance.
    fn advance(&mut self, i: usize) -> Result<JobOutcome, DsaError> {
        let rt = &mut self.rt;
        let t = &mut self.tenants[i];
        let tid = i as u16;

        let arrival = t.next_arrival;
        let start = t.bucket.ready_at(t.window.admission_at(arrival.max(t.cursor)));
        while t.window.pop_completed(start).is_some() {}

        t.issued += 1;
        t.stats.offered += 1;
        t.stats.offered_bytes += t.spec.xfer;
        if let Some(hub) = rt.hub() {
            hub.counter_add("svc_offered", Labels::tenant(tid), 1);
        }

        // Shed at admission: if queueing delay alone blows the deadline,
        // reject before occupying a WQ slot or burning a token.
        if let Some(d) = t.spec.deadline {
            if start.duration_since(arrival) > d {
                t.stats.shed += 1;
                if let Some(hub) = rt.hub() {
                    hub.counter_add("svc_shed", Labels::tenant(tid), 1);
                }
                t.schedule_next(start);
                return Err(DsaError::DeadlineExceeded { deadline: arrival + d });
            }
        }
        let _ = t.bucket.try_acquire(start); // a token is banked at `start` by construction

        rt.set_now(start);
        // Tenant context for causal tracing: job traces recorded below the
        // service layer get attributed to this tenant's profile cell.
        if let Some(hub) = rt.hub() {
            hub.set_tenant(Some(tid));
        }
        let mut attempts: u32 = 0;
        let submitted = loop {
            // Rebuild the job from the compiled instruction per attempt:
            // identical descriptor to the old `job.clone()` path, zero
            // heap traffic.
            match Job::from_instr(&t.instr).try_submit(rt) {
                Ok(h) => break Ok(h),
                Err(DsaError::Submit(SubmitError::WqFull { .. })) => {
                    attempts += 1;
                    t.stats.retries += 1;
                    if attempts > t.spec.retry_budget {
                        break Err(DsaError::RetryExhausted { attempts });
                    }
                    // Blind exponential backoff: real ENQCMD/MOVDIR64B get
                    // no slot-free hint, so the portal may well still be
                    // full at the next attempt — that is what makes the
                    // retry budget a genuine bound under saturation.
                    let shift = (attempts - 1).min(MAX_BACKOFF_SHIFT);
                    let backoff = t.spec.backoff.saturating_mul(1u64 << shift);
                    rt.advance(backoff);
                }
                Err(e) => break Err(e),
            }
        };

        match submitted {
            Ok(h) => {
                let mut completion = h.completion_time();
                if !h.record().status.is_ok() {
                    // Page-faulted partial completion: the caller touches
                    // the pages and finishes the move on the cores.
                    t.stats.faults += 1;
                    rt.advance_to(completion);
                    rt.cpu_op(OpKind::Memcpy, &t.src, &t.dst);
                    completion = rt.now();
                }
                let latency = t.note_completion(arrival, completion);
                t.stats.dsa_completed += 1;
                t.stats.dsa_bytes += t.spec.xfer;
                t.cursor = rt.now();
                if completion > rt.now() {
                    t.window.push(completion, t.spec.xfer);
                }
                if let Some(hub) = rt.hub() {
                    hub.counter_add("svc_jobs", Labels::tenant(tid), 1);
                    hub.observe("svc_latency", Labels::tenant_wq(tid, 0, t.wq as u16), latency);
                    if t.spec.deadline.is_some_and(|d| latency > d) {
                        hub.counter_add("svc_deadline_miss", Labels::tenant(tid), 1);
                    }
                }
                t.schedule_next(completion);
                Ok(JobOutcome::Dsa { completion, latency })
            }
            Err(DsaError::RetryExhausted { .. }) if t.spec.degrade_to_cpu => {
                // Graceful degradation: the device is saturated, so serve
                // this job synchronously on the cores.
                t.stats.exhausted += 1;
                rt.cpu_op(OpKind::Memcpy, &t.src, &t.dst);
                let completion = rt.now();
                let latency = t.note_completion(arrival, completion);
                t.stats.cpu_completed += 1;
                t.stats.cpu_bytes += t.spec.xfer;
                t.cursor = completion;
                if let Some(hub) = rt.hub() {
                    hub.counter_add("svc_degraded", Labels::tenant(tid), 1);
                    hub.observe("svc_latency", Labels::tenant_wq(tid, 0, t.wq as u16), latency);
                    if t.spec.deadline.is_some_and(|d| latency > d) {
                        hub.counter_add("svc_deadline_miss", Labels::tenant(tid), 1);
                    }
                }
                t.schedule_next(completion);
                Ok(JobOutcome::Cpu { completion, latency })
            }
            Err(e) => {
                if matches!(e, DsaError::RetryExhausted { .. }) {
                    t.stats.exhausted += 1;
                }
                t.stats.failed += 1;
                t.cursor = rt.now();
                if let Some(hub) = rt.hub() {
                    hub.counter_add("svc_failed", Labels::tenant(tid), 1);
                }
                t.schedule_next(rt.now());
                Err(e)
            }
        }
    }

    /// Snapshot of all tenants plus the Jain fairness index over their
    /// accelerator-served shares.
    pub fn report(&self) -> ServiceReport {
        let tenants: Vec<TenantReport> = self
            .tenants
            .iter()
            .map(|t| {
                let h = &t.stats.latency;
                let pct = |p: f64| h.percentile(p).unwrap_or(SimDuration::ZERO);
                TenantReport {
                    name: t.spec.name.clone(),
                    class: t.spec.class,
                    wq: t.wq,
                    offered: t.stats.offered,
                    dsa_completed: t.stats.dsa_completed,
                    cpu_completed: t.stats.cpu_completed,
                    shed: t.stats.shed,
                    failed: t.stats.failed,
                    retries: t.stats.retries,
                    deadline_misses: t.stats.deadline_misses,
                    dsa_share: t.stats.dsa_share(),
                    p50: pct(50.0),
                    p99: pct(99.0),
                    p999: pct(99.9),
                    mean: if h.count() == 0 { SimDuration::ZERO } else { h.mean() },
                }
            })
            .collect();
        let shares: Vec<f64> = tenants.iter().map(|t| t.dsa_share).collect();
        let makespan =
            self.tenants.iter().map(|t| t.stats.last_completion).max().unwrap_or(SimTime::ZERO);
        ServiceReport {
            plan: self.plan.label().to_string(),
            fairness: jain_fairness(&shares),
            makespan,
            slo: self.slo,
            transitions: self.transitions,
            tenants,
        }
    }
}

/// A per-tenant handle for driving one stream by hand. Obtained from
/// [`DsaService::session`]; each [`submit`](Session::submit) call processes
/// exactly one job of the stream under the tenant's full policy.
pub struct Session<'a> {
    svc: &'a mut DsaService,
    tenant: usize,
}

impl Session<'_> {
    /// The tenant index this session drives.
    pub fn tenant(&self) -> usize {
        self.tenant
    }

    /// Submits the stream's next job under admission control, bounded
    /// retry, and fallback policy.
    ///
    /// # Errors
    ///
    /// [`DsaError::DeadlineExceeded`] when the job is shed at admission,
    /// [`DsaError::RetryExhausted`] when the retry budget runs out and CPU
    /// fallback is disabled.
    pub fn submit(&mut self) -> Result<JobOutcome, DsaError> {
        self.svc.step(self.tenant)
    }

    /// Live accounting for this tenant.
    pub fn stats(&self) -> &TenantStats {
        self.svc.stats(self.tenant)
    }
}

/// Final report: per-tenant rows plus cross-tenant fairness.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Label of the placement plan the run ended under.
    pub plan: String,
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Jain fairness index over per-tenant accelerator-served shares
    /// (1.0 = perfectly even service relative to demand).
    pub fairness: f64,
    /// Latest completion across all tenants.
    pub makespan: SimTime,
    /// The objectives the run was held to, if any.
    pub slo: Option<SloTarget>,
    /// Plan transitions applied during the run.
    pub transitions: u32,
}

impl ServiceReport {
    /// Jobs generated across all tenants.
    pub fn offered(&self) -> u64 {
        self.tenants.iter().map(|t| t.offered).sum()
    }

    /// Jobs that failed their deadline — completed too late or shed at
    /// admission because queueing alone had already blown it.
    pub fn deadline_failures(&self) -> u64 {
        self.tenants.iter().map(|t| t.deadline_misses + t.shed).sum()
    }

    /// Deadline failures as a fraction of offered jobs (0.0 when nothing
    /// was offered).
    pub fn deadline_miss_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.deadline_failures() as f64 / offered as f64
        }
    }

    /// Every objective of the report's [`SloTarget`] the run failed,
    /// derived from the same per-tenant histograms the control plane
    /// reads. Empty when no SLO was set or everything held.
    pub fn slo_violations(&self) -> Vec<SloViolation> {
        let mut out = Vec::new();
        let Some(slo) = &self.slo else { return out };
        if let Some(target) = slo.p99 {
            for (i, t) in self.tenants.iter().enumerate() {
                if t.p99 > target {
                    out.push(SloViolation::P99 { tenant: i, observed: t.p99, target });
                }
            }
        }
        if let Some(target) = slo.deadline_miss_frac {
            let observed = self.deadline_miss_rate();
            if observed > target {
                out.push(SloViolation::MissRate { observed, target });
            }
        }
        if let Some(target) = slo.min_jain {
            if self.fairness < target {
                out.push(SloViolation::Fairness { observed: self.fairness, target });
            }
        }
        out
    }

    /// Canonical multi-line rendering — integer picosecond timings, so the
    /// string (and [`digest`](Self::digest)) is bit-identical across
    /// replays of the same configuration.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan={} fairness={:.4} makespan_ps={}",
            self.plan,
            self.fairness,
            self.makespan.as_ps()
        );
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "{} class={:?} wq={} offered={} dsa={} cpu={} shed={} failed={} \
                 retries={} misses={} share={:.4} p50_ps={} p99_ps={} p999_ps={} mean_ps={}",
                t.name,
                t.class,
                t.wq,
                t.offered,
                t.dsa_completed,
                t.cpu_completed,
                t.shed,
                t.failed,
                t.retries,
                t.deadline_misses,
                t.dsa_share,
                t.p50.as_ps(),
                t.p99.as_ps(),
                t.p999.as_ps(),
                t.mean.as_ps()
            );
        }
        out
    }

    /// FNV-1a hash of [`summary`](Self::summary) — one number to compare
    /// for bit-identical replay. Equivalent to
    /// [`Digestible::digest64`]; kept as the idiomatic name report
    /// consumers already use.
    pub fn digest(&self) -> u64 {
        self.digest64()
    }
}

impl Digestible for ServiceReport {
    fn fold(&self, h: &mut Fnv1a) {
        h.write(self.summary().as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::Arrival;

    fn svc(plan: PlanSpec, specs: Vec<TenantSpec>) -> DsaService {
        let cfg = ServiceConfig::builder().plan(plan).tenants(specs).build().unwrap();
        DsaService::from_config(cfg).unwrap()
    }

    fn two_tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new("a", 4 << 10, 20).with_arrival(Arrival::closed(SimDuration::ZERO)),
            TenantSpec::new("b", 4 << 10, 20).with_arrival(Arrival::open(SimDuration::from_us(2))),
        ]
    }

    #[test]
    fn dedicated_plan_runs_all_jobs_on_dsa() {
        let mut svc = svc(PlanSpec::Dedicated, two_tenants());
        let rep = svc.run();
        for t in &rep.tenants {
            assert_eq!(t.offered, 20);
            assert_eq!(t.dsa_completed, 20);
            assert_eq!(t.cpu_completed + t.shed + t.failed, 0);
        }
        assert!((rep.fairness - 1.0).abs() < 1e-9, "uncontended run is perfectly fair");
        assert!(rep.makespan > SimTime::ZERO);
    }

    #[test]
    fn shared_plan_maps_everyone_to_wq0() {
        let mut svc = svc(PlanSpec::Shared, two_tenants());
        let rep = svc.run();
        assert!(rep.tenants.iter().all(|t| t.wq == 0));
        assert_eq!(rep.tenants[0].dsa_completed, 20);
    }

    #[test]
    fn by_class_places_latency_on_dedicated_wq() {
        let specs = vec![
            TenantSpec::new("lat", 4 << 10, 10).with_class(QosClass::Latency),
            TenantSpec::new("bulk", 16 << 10, 10),
        ];
        let mut svc = svc(PlanSpec::ByClass, specs);
        let rep = svc.run();
        assert_eq!(rep.tenants[0].wq, 0, "latency tenant on the dedicated WQ");
        assert_eq!(rep.tenants[1].wq, 1, "throughput tenant on the shared WQ");
        assert_eq!(rep.tenants[0].dsa_completed, 10);
        assert_eq!(rep.tenants[1].dsa_completed, 10);
    }

    #[test]
    fn admission_rate_paces_an_eager_tenant() {
        // Closed loop with zero think, but metered to 100k jobs/s: 50 jobs
        // need ≥ 49 token intervals of 10 µs.
        let specs = vec![TenantSpec::new("paced", 1 << 10, 50).with_admission(100_000, 1)];
        let mut svc = svc(PlanSpec::Dedicated, specs);
        let rep = svc.run();
        assert_eq!(rep.tenants[0].dsa_completed, 50);
        assert!(
            rep.makespan >= SimTime::ZERO + SimDuration::from_us(490),
            "metering must stretch the run to ≥ 49 × 10 µs, got {:?}",
            rep.makespan
        );
    }

    #[test]
    fn deadline_sheds_when_queueing_exceeds_it() {
        // One in-flight slot and a deadline far below the per-job service
        // time: job 0 is admitted, later arrivals find the slot busy past
        // their deadline and are shed.
        let specs = vec![TenantSpec::new("dl", 1 << 20, 8)
            .with_outstanding(1)
            .with_arrival(Arrival::open(SimDuration::from_ns(200)))
            .with_deadline(SimDuration::from_us(1))];
        let mut svc = svc(PlanSpec::Dedicated, specs);
        let rep = svc.run();
        let t = &rep.tenants[0];
        assert_eq!(t.offered, 8);
        assert!(t.shed > 0, "expected admission shedding, got {t:?}");
        assert_eq!(t.dsa_completed + t.shed, 8);
    }

    #[test]
    fn session_drives_one_job_per_submit() {
        let mut svc = svc(PlanSpec::Dedicated, two_tenants());
        let mut sess = svc.session(0);
        for k in 1..=5u64 {
            let out = sess.submit().unwrap();
            assert!(matches!(out, JobOutcome::Dsa { .. }));
            assert_eq!(sess.stats().dsa_completed, k);
        }
        assert_eq!(svc.stats(1).offered, 0, "other tenants untouched");
    }

    #[test]
    fn session_then_run_finishes_every_stream() {
        // Hand-driving a tenant must leave the action queue exact: the
        // remaining jobs of BOTH tenants still complete under run().
        let mut svc = svc(PlanSpec::Dedicated, two_tenants());
        svc.session(0).submit().unwrap();
        svc.session(0).submit().unwrap();
        let rep = svc.run();
        assert_eq!(rep.tenants[0].dsa_completed, 20);
        assert_eq!(rep.tenants[1].dsa_completed, 20);
    }

    #[test]
    fn builder_rejects_zero_transfer() {
        let err = ServiceConfig::builder().tenant(TenantSpec::new("z", 0, 1)).build().unwrap_err();
        assert!(matches!(err, DsaError::InvalidService { .. }), "got {err}");
    }

    #[test]
    fn builder_rejects_cxl_buffers_without_cxl() {
        let err = ServiceConfig::builder()
            .platform(Platform::icx())
            .location(Location::Cxl)
            .tenant(TenantSpec::new("t", 4 << 10, 1))
            .build()
            .unwrap_err();
        assert!(matches!(err, DsaError::InvalidService { .. }), "got {err}");
    }

    #[test]
    fn builder_rejects_out_of_range_socket() {
        let err = ServiceConfig::builder()
            .location(Location::Dram { socket: 7 })
            .tenant(TenantSpec::new("t", 4 << 10, 1))
            .build()
            .unwrap_err();
        assert!(matches!(err, DsaError::InvalidService { .. }), "got {err}");
    }

    #[test]
    fn builder_surfaces_plan_envelope_violations() {
        // 9 dedicated tenants cannot fit the 8-WQ envelope.
        let specs: Vec<TenantSpec> =
            (0..9).map(|i| TenantSpec::new(&format!("t{i}"), 1 << 10, 1)).collect();
        let err =
            ServiceConfig::builder().plan(PlanSpec::Dedicated).tenants(specs).build().unwrap_err();
        assert!(matches!(err, DsaError::InvalidConfig(_)), "got {err}");
    }

    #[test]
    fn remote_dram_buffers_pay_the_upi_hop() {
        let run_at = |loc: Location| {
            let cfg = ServiceConfig::builder()
                .location(loc)
                .tenant(TenantSpec::new("t", 64 << 10, 10).with_outstanding(1))
                .build()
                .unwrap();
            DsaService::from_config(cfg).unwrap().run().makespan
        };
        let local = run_at(Location::local_dram());
        let remote = run_at(Location::remote_dram());
        assert!(
            remote > local,
            "remote-DRAM tenants must be slower than local ({remote:?} vs {local:?})"
        );
    }

    #[test]
    fn report_digest_matches_unified_digestible() {
        let mut s = svc(PlanSpec::Dedicated, two_tenants());
        let rep = s.run();
        assert_eq!(rep.digest(), rep.digest64());
        assert_eq!(rep.digest(), Fnv1a::digest(rep.summary().as_bytes()));
    }
}
