//! Deterministic arrival generators for tenant job streams.
//!
//! Two classic load models, both driven by the simulation's seeded
//! [`SplitMix64`] streams (never a wall clock), so any run replays
//! bit-identically:
//!
//! * **Open loop** — Poisson arrivals with exponential inter-arrival gaps.
//!   Arrival `k+1` happens a random gap after arrival `k` *regardless of
//!   completions*, so queueing delay compounds under overload. This is the
//!   honest way to measure tail latency at saturation (coordinated
//!   omission cannot hide).
//! * **Closed loop** — the next request is issued a fixed think time after
//!   the previous one *completes*, modelling a caller that blocks on each
//!   offload (the paper's synchronous mode).

use dsa_sim::rng::SplitMix64;
use dsa_sim::time::SimDuration;

/// How a tenant's job stream is generated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrival {
    /// Poisson process with the given mean inter-arrival gap.
    Open {
        /// Mean of the exponential inter-arrival distribution.
        mean_gap: SimDuration,
    },
    /// Next job `think` after the previous completion.
    Closed {
        /// Think time between a completion and the next submission.
        think: SimDuration,
    },
}

impl Arrival {
    /// An open-loop (Poisson) generator with mean gap `mean_gap`.
    pub fn open(mean_gap: SimDuration) -> Arrival {
        Arrival::Open { mean_gap }
    }

    /// A closed-loop generator with the given think time.
    pub fn closed(think: SimDuration) -> Arrival {
        Arrival::Closed { think }
    }

    /// True for open-loop generators.
    pub fn is_open(self) -> bool {
        matches!(self, Arrival::Open { .. })
    }

    /// The gap to the next arrival: random for open loop (drawn from
    /// `rng`), the fixed think time for closed loop.
    pub fn gap(self, rng: &mut SplitMix64) -> SimDuration {
        match self {
            Arrival::Open { mean_gap } => {
                SimDuration::from_ns_f64(rng.next_exp(mean_gap.as_ns_f64()))
            }
            Arrival::Closed { think } => think,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_gap_is_the_think_time() {
        let mut rng = SplitMix64::new(1);
        let a = Arrival::closed(SimDuration::from_us(7));
        assert_eq!(a.gap(&mut rng), SimDuration::from_us(7));
        assert!(!a.is_open());
    }

    #[test]
    fn open_gaps_average_to_the_mean() {
        let mut rng = SplitMix64::new(99);
        let mean = SimDuration::from_us(2);
        let a = Arrival::open(mean);
        let n = 50_000u32;
        let total = (0..n).fold(SimDuration::ZERO, |acc, _| acc + a.gap(&mut rng));
        let avg_ns = total.as_ns_f64() / f64::from(n);
        let err = (avg_ns - mean.as_ns_f64()).abs() / mean.as_ns_f64();
        assert!(err < 0.02, "mean gap off by {:.1}%", err * 100.0);
    }
}
