//! Tenant specifications and per-tenant accounting.

use crate::arrival::Arrival;
use dsa_sim::stats::DurationHistogram;
use dsa_sim::time::{SimDuration, SimTime};

/// QoS class of a tenant, used by [`PlanSpec::ByClass`](crate::PlanSpec)
/// to map the tenant onto a dedicated (latency-isolated) or shared
/// (bandwidth-pooled) work queue — the paper's DWQ-vs-SWQ trade (§4.1,
/// Fig. 9) recast as a placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QosClass {
    /// Tail-latency sensitive: prefers an isolated dedicated WQ.
    Latency,
    /// Bandwidth oriented: tolerates sharing a pooled WQ.
    Throughput,
}

/// Everything the service needs to know about one tenant's stream.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (report rows, not identity — tenants are indexed).
    pub name: String,
    /// QoS class (see [`QosClass`]).
    pub class: QosClass,
    /// Arrival process of the job stream.
    pub arrival: Arrival,
    /// Offset of the stream's first arrival from t=0 (zero = from the
    /// start). Lets churn workloads stage tenants onto a running service
    /// without breaking determinism: the offset is part of the spec, so
    /// every replay stages identically.
    pub start: SimDuration,
    /// Bytes moved per job.
    pub xfer: u64,
    /// Total jobs the tenant offers before going idle.
    pub jobs: u64,
    /// Admission rate in jobs per simulated second (0 = unmetered).
    pub rate: u64,
    /// Admission burst (token-bucket capacity).
    pub burst: u64,
    /// Maximum jobs in flight on the device at once.
    pub max_outstanding: usize,
    /// Per-job deadline measured from arrival, if any. A job whose
    /// *queueing delay alone* exceeds it is shed at admission; a job that
    /// completes past it counts as a deadline miss.
    pub deadline: Option<SimDuration>,
    /// Failed portal attempts tolerated per job before the submission is
    /// declared exhausted (0 = give up after the first `WqFull`).
    pub retry_budget: u32,
    /// Base backoff after a rejected portal attempt. Doubles per retry,
    /// capped at 64× base — blind polling, as on real portals: the next
    /// attempt may find the queue still full.
    pub backoff: SimDuration,
    /// Degrade exhausted submissions to a synchronous CPU `memcpy`
    /// instead of failing them.
    pub degrade_to_cpu: bool,
}

impl TenantSpec {
    /// A throughput-class tenant moving `xfer` bytes per job for `jobs`
    /// jobs, back-to-back closed loop, unmetered, depth 32, 8 retries,
    /// 100 ns base backoff, with CPU fallback enabled.
    pub fn new(name: &str, xfer: u64, jobs: u64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            class: QosClass::Throughput,
            arrival: Arrival::closed(SimDuration::ZERO),
            start: SimDuration::ZERO,
            xfer,
            jobs,
            rate: 0,
            burst: 1,
            max_outstanding: 32,
            deadline: None,
            retry_budget: 8,
            backoff: SimDuration::from_ns(100),
            degrade_to_cpu: true,
        }
    }

    /// Sets the QoS class.
    pub fn with_class(mut self, class: QosClass) -> TenantSpec {
        self.class = class;
        self
    }

    /// Sets the arrival process.
    pub fn with_arrival(mut self, arrival: Arrival) -> TenantSpec {
        self.arrival = arrival;
        self
    }

    /// Delays the stream's first arrival by `start` from t=0.
    pub fn with_start(mut self, start: SimDuration) -> TenantSpec {
        self.start = start;
        self
    }

    /// Meters admission to `rate` jobs/s with the given burst.
    pub fn with_admission(mut self, rate: u64, burst: u64) -> TenantSpec {
        self.rate = rate;
        self.burst = burst;
        self
    }

    /// Sets the in-flight window depth (clamped to ≥ 1).
    pub fn with_outstanding(mut self, depth: usize) -> TenantSpec {
        self.max_outstanding = depth.max(1);
        self
    }

    /// Sets a per-job deadline.
    pub fn with_deadline(mut self, deadline: SimDuration) -> TenantSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the retry budget.
    pub fn with_retry_budget(mut self, budget: u32) -> TenantSpec {
        self.retry_budget = budget;
        self
    }

    /// Sets the base retry backoff.
    pub fn with_backoff(mut self, backoff: SimDuration) -> TenantSpec {
        self.backoff = backoff;
        self
    }

    /// Enables or disables CPU fallback on retry exhaustion.
    pub fn with_cpu_fallback(mut self, degrade: bool) -> TenantSpec {
        self.degrade_to_cpu = degrade;
        self
    }
}

/// Live per-tenant accounting, updated as the service processes jobs.
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Jobs generated (admitted, shed, or failed alike).
    pub offered: u64,
    /// Jobs completed on the accelerator.
    pub dsa_completed: u64,
    /// Jobs completed by the CPU fallback.
    pub cpu_completed: u64,
    /// Jobs shed at admission (queueing delay already past deadline).
    pub shed: u64,
    /// Jobs that failed outright (retry exhaustion without CPU fallback).
    pub failed: u64,
    /// Rejected portal attempts (`WqFull` responses seen).
    pub retries: u64,
    /// Jobs whose retry budget ran out.
    pub exhausted: u64,
    /// Jobs that page-faulted into partial completion.
    pub faults: u64,
    /// Completed jobs that finished past their deadline.
    pub deadline_misses: u64,
    /// Times a plan transition moved this tenant to a different WQ.
    pub migrations: u64,
    /// Bytes offered across all generated jobs.
    pub offered_bytes: u64,
    /// Bytes served by the accelerator.
    pub dsa_bytes: u64,
    /// Bytes served by the CPU fallback.
    pub cpu_bytes: u64,
    /// Arrival-to-completion latency distribution of completed jobs.
    pub latency: DurationHistogram,
    /// Latest completion instant observed.
    pub last_completion: SimTime,
}

impl TenantStats {
    /// Fresh, all-zero accounting.
    pub fn new() -> TenantStats {
        TenantStats {
            offered: 0,
            dsa_completed: 0,
            cpu_completed: 0,
            shed: 0,
            failed: 0,
            retries: 0,
            exhausted: 0,
            faults: 0,
            deadline_misses: 0,
            migrations: 0,
            offered_bytes: 0,
            dsa_bytes: 0,
            cpu_bytes: 0,
            latency: DurationHistogram::new(),
            last_completion: SimTime::ZERO,
        }
    }

    /// Jobs completed on either path.
    pub fn completed(&self) -> u64 {
        self.dsa_completed + self.cpu_completed
    }

    /// Fraction of offered bytes the *accelerator* served — the share
    /// measure the Jain fairness index is computed over. 1.0 when nothing
    /// was offered.
    pub fn dsa_share(&self) -> f64 {
        if self.offered_bytes == 0 {
            1.0
        } else {
            self.dsa_bytes as f64 / self.offered_bytes as f64
        }
    }
}

impl Default for TenantStats {
    fn default() -> TenantStats {
        TenantStats::new()
    }
}

/// One tenant's row of the final [`ServiceReport`](crate::ServiceReport).
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant display name.
    pub name: String,
    /// QoS class.
    pub class: QosClass,
    /// Work queue the tenant's stream was mapped onto.
    pub wq: usize,
    /// Jobs generated.
    pub offered: u64,
    /// Jobs completed on the accelerator.
    pub dsa_completed: u64,
    /// Jobs completed by the CPU fallback.
    pub cpu_completed: u64,
    /// Jobs shed at admission.
    pub shed: u64,
    /// Jobs failed outright.
    pub failed: u64,
    /// Rejected portal attempts.
    pub retries: u64,
    /// Completed jobs finishing past their deadline.
    pub deadline_misses: u64,
    /// Accelerator-served fraction of offered bytes.
    pub dsa_share: f64,
    /// Median arrival-to-completion latency.
    pub p50: SimDuration,
    /// 99th percentile latency.
    pub p99: SimDuration,
    /// 99.9th percentile latency.
    pub p999: SimDuration,
    /// Mean latency.
    pub mean: SimDuration,
}
