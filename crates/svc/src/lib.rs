//! # dsa-svc — the multi-tenant DSA service layer
//!
//! The paper's §3.4/§4.1 QoS knobs (dedicated vs shared WQs, group/engine
//! partitioning) answer *how hardware arbitrates* once descriptors are
//! enqueued. This crate supplies the missing software half: a
//! [`DsaService`] that owns a [`DsaRuntime`](dsa_core::runtime::DsaRuntime)
//! and multiplexes N tenant job streams over it with explicit policy:
//!
//! * **Arrival generation** ([`Arrival`]) — seeded open-loop (Poisson) or
//!   closed-loop streams on the simulated timeline; no wall clock anywhere.
//! * **Admission control** ([`TokenBucket`]) — per-tenant rate/burst
//!   metering plus a max-outstanding in-flight window, so a tenant's burst
//!   is bounded before it reaches the portal.
//! * **Placement** ([`Plan`] / [`PlanSpec`]) — tenants map onto dedicated
//!   WQs, one shared WQ, by QoS class ([`QosClass`]), or any explicit
//!   layout built through [`Plan::builder`]; the service builds the
//!   matching device configuration itself, and a live service can
//!   [`transition`](DsaService::transition) between plans with the stall
//!   priced by [`Plan::diff`].
//! * **Objectives** ([`SloTarget`]) — typed p99 / miss-rate / fairness
//!   targets on the config; [`ServiceReport::slo_violations`] and the
//!   `dsa-ctl` control plane both check against the same object.
//! * **Deadlines and bounded retry** — jobs whose queueing delay exceeds
//!   their deadline are shed
//!   ([`DsaError::DeadlineExceeded`](dsa_core::DsaError)); `WqFull` portal
//!   rejections retry with exponential backoff until a budget runs out
//!   ([`DsaError::RetryExhausted`](dsa_core::DsaError)).
//! * **Graceful degradation** — exhausted submissions optionally complete
//!   on the cores (the runtime's CPU cost model), so saturation degrades
//!   throughput instead of correctness.
//! * **Fairness accounting** ([`ServiceReport`]) — per-tenant latency
//!   percentiles plus a Jain index over accelerator-served shares, with an
//!   FNV digest for bit-identical replay checks.
//!
//! ```
//! use dsa_svc::prelude::*;
//!
//! let cfg = ServiceConfig::builder()
//!     .plan(PlanSpec::ByClass)
//!     .tenant(
//!         TenantSpec::new("latency", 4 << 10, 40)
//!             .with_class(QosClass::Latency)
//!             .with_arrival(Arrival::open(SimDuration::from_us(2))),
//!     )
//!     .tenant(TenantSpec::new("bulk", 64 << 10, 40))
//!     .build()?;
//! let mut svc = DsaService::from_config(cfg)?;
//! let report = svc.run();
//! assert_eq!(report.tenants[0].offered, 40);
//! assert!(report.fairness > 0.0 && report.fairness <= 1.0);
//! // Same config ⇒ bit-identical digest.
//! # Ok::<(), dsa_core::DsaError>(())
//! ```
//!
//! At rack scale, [`Fleet`] shards the tenant space across N sockets × M
//! DSA devices, runs one isolated `DsaService` per shard (optionally on K
//! threads), and proves the parallel run bit-identical to a sequential
//! replay through per-shard digests merged in shard order.

pub mod actionq;
pub mod admission;
pub mod arrival;
pub mod fleet;
pub mod plan;
pub mod service;
pub mod shard;
pub mod slo;
pub mod tenant;

pub use admission::TokenBucket;
pub use arrival::Arrival;
pub use fleet::{Fleet, FleetConfig, FleetReport, ShardReport, TenantProfile};
#[allow(deprecated)]
pub use plan::WqPlan;
pub use plan::{
    Plan, PlanBuilder, PlanDelta, PlanGroup, PlanSpec, PlanWq, TransitionCosts, Wiring,
};
pub use service::{
    DsaService, JobOutcome, PlanTransition, ServiceBuilder, ServiceConfig, ServiceReport, Session,
};
pub use shard::{ShardAssignment, ShardPlan};
pub use slo::{SloTarget, SloViolation};
pub use tenant::{QosClass, TenantReport, TenantSpec, TenantStats};

/// The types most service-layer programs need.
pub mod prelude {
    pub use crate::admission::TokenBucket;
    pub use crate::arrival::Arrival;
    pub use crate::fleet::{Fleet, FleetConfig, FleetReport, ShardReport, TenantProfile};
    pub use crate::plan::{Plan, PlanDelta, PlanSpec, TransitionCosts};
    pub use crate::service::{
        DsaService, JobOutcome, PlanTransition, ServiceBuilder, ServiceConfig, ServiceReport,
        Session,
    };
    pub use crate::shard::{ShardAssignment, ShardPlan};
    pub use crate::slo::{SloTarget, SloViolation};
    pub use crate::tenant::{QosClass, TenantReport, TenantSpec, TenantStats};
    pub use dsa_core::backend::PoolPolicy;
    pub use dsa_sim::time::{SimDuration, SimTime};
}
