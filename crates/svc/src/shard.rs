//! Deterministic partitioning of the tenant space across sockets and
//! devices.
//!
//! A [`ShardPlan`] is pure data computed up front from the fleet
//! configuration: contiguous, gap-free tenant ranges, one per shard, each
//! mapped to an execution slot (socket × device) by a
//! [`PoolPolicy`] and given its own RNG seed drawn from the master stream
//! in shard order. Because the plan is fixed before any shard runs,
//! shards share *nothing* at runtime — which is what makes the K-thread
//! fleet run provably identical to the sequential replay.
//!
//! The plan also carries the fleet's lightweight inter-shard cost model:
//!
//! * **DDIO share** — shards whose devices land on the same socket split
//!   that socket's DDIO ways ([`Platform::with_ddio_share`]), so packing
//!   moves the leaky-DMA knee earlier (paper Fig. 12).
//! * **UPI crossing** — a shard placed off its tenants' home socket runs
//!   with its buffers in remote DRAM, paying the UPI hop latency, and all
//!   crossing shards split the link bandwidth
//!   ([`Platform::with_upi_share`]; paper Fig. 8, guideline G4).
//!
//! Each shard's runtime is socket-centric: the shard's device is "socket
//! 0" of its private [`Platform`], and a remote placement maps tenant
//! memory to remote DRAM (`Dram { socket: 1 }`) so every descriptor pays
//! the crossing in both the latency and bandwidth terms.

use dsa_core::backend::PoolPolicy;
use dsa_mem::buffer::Location;
use dsa_mem::topology::Platform;
use dsa_sim::rng::SplitMix64;

/// One shard's slice of the fleet: a contiguous tenant range bound to an
/// execution slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Shard index (also the digest-merge position).
    pub shard: u32,
    /// Socket the shard's DSA device lives on.
    pub socket: u32,
    /// Device index within that socket.
    pub device: u32,
    /// Socket the shard's tenants are homed on (where their memory is).
    pub home_socket: u32,
    /// First global tenant id owned by this shard (inclusive).
    pub tenant_lo: u64,
    /// One past the last global tenant id owned by this shard.
    pub tenant_hi: u64,
    /// Master seed for the shard's private SplitMix64 stream.
    pub seed: u64,
}

impl ShardAssignment {
    /// Number of tenants this shard owns.
    pub fn tenants(&self) -> u64 {
        self.tenant_hi - self.tenant_lo
    }

    /// True when the shard's device is off its tenants' home socket, so
    /// every transfer crosses the UPI link.
    pub fn remote(&self) -> bool {
        self.socket != self.home_socket
    }
}

/// The fleet's deterministic partition: tenant ranges, placement, seeds,
/// and the per-shard platform adjustments of the inter-shard cost model.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    sockets: u32,
    devices_per_socket: u32,
    placement: PoolPolicy,
    shards: Vec<ShardAssignment>,
}

impl ShardPlan {
    /// Partitions `tenants` tenant ids over `shards` shards placed on
    /// `sockets × devices_per_socket` execution slots under `placement`,
    /// drawing per-shard seeds from `seed` in shard order.
    ///
    /// The partition is total: ranges are contiguous, in order, gap-free
    /// and overlap-free, with sizes differing by at most one (earlier
    /// shards absorb the remainder). Tenants are homed on sockets in
    /// contiguous blocks (shard `i`'s home is `i * sockets / shards`), so
    /// "NUMA-local" has a well-defined meaning for every policy.
    ///
    /// # Panics
    ///
    /// Panics when `shards`, `sockets`, or `devices_per_socket` is zero —
    /// [`FleetConfig::builder`](crate::FleetConfig::builder) validates
    /// these before constructing a plan.
    pub fn new(
        tenants: u64,
        shards: u32,
        sockets: u32,
        devices_per_socket: u32,
        placement: PoolPolicy,
        seed: u64,
    ) -> ShardPlan {
        assert!(shards > 0 && sockets > 0 && devices_per_socket > 0, "degenerate fleet shape");
        let mut master = SplitMix64::new(seed);
        let slots = (sockets * devices_per_socket) as usize;
        // Tenants assigned per execution slot, for the LeastLoaded greedy.
        let mut slot_load = vec![0u64; slots];
        // Next device (round-robin cursor) per socket, for NumaLocal.
        let mut socket_cursor = vec![0u32; sockets as usize];

        let base = tenants / u64::from(shards);
        let rem = tenants % u64::from(shards);
        let mut lo = 0u64;
        let mut out = Vec::with_capacity(shards as usize);
        for i in 0..shards {
            let size = base + u64::from(u64::from(i) < rem);
            let home_socket = (i * sockets) / shards;
            let slot = match placement {
                PoolPolicy::RoundRobin => i % slots as u32,
                PoolPolicy::NumaLocal => {
                    let dev = socket_cursor[home_socket as usize];
                    socket_cursor[home_socket as usize] = (dev + 1) % devices_per_socket;
                    home_socket * devices_per_socket + dev
                }
                PoolPolicy::LeastLoaded => {
                    let mut best = 0usize;
                    for s in 1..slots {
                        if slot_load[s] < slot_load[best] {
                            best = s;
                        }
                    }
                    best as u32
                }
            };
            slot_load[slot as usize] += size;
            out.push(ShardAssignment {
                shard: i,
                socket: slot / devices_per_socket,
                device: slot % devices_per_socket,
                home_socket,
                tenant_lo: lo,
                tenant_hi: lo + size,
                seed: master.next_u64(),
            });
            lo += size;
        }
        ShardPlan { sockets, devices_per_socket, placement, shards: out }
    }

    /// The shard assignments, in shard order.
    pub fn shards(&self) -> &[ShardAssignment] {
        &self.shards
    }

    /// The placement policy the plan was built under.
    pub fn placement(&self) -> PoolPolicy {
        self.placement
    }

    /// Sockets in the fleet.
    pub fn sockets(&self) -> u32 {
        self.sockets
    }

    /// Devices per socket.
    pub fn devices_per_socket(&self) -> u32 {
        self.devices_per_socket
    }

    /// Shards whose devices share shard `i`'s socket (including itself) —
    /// the DDIO-way divisor of that socket.
    pub fn socket_sharers(&self, i: usize) -> u32 {
        let socket = self.shards[i].socket;
        self.shards.iter().filter(|s| s.socket == socket).count() as u32
    }

    /// Shards that cross the UPI link — the bandwidth-share divisor every
    /// crossing shard sees.
    pub fn upi_crossers(&self) -> u32 {
        self.shards.iter().filter(|s| s.remote()).count() as u32
    }

    /// The platform shard `i` simulates: `base` with its socket's DDIO
    /// ways split among co-resident shards, and — when the shard crosses
    /// sockets — the UPI bandwidth split among all crossing shards.
    pub fn platform_for(&self, i: usize, base: &Platform) -> Platform {
        let mut p = base.clone().with_ddio_share(self.socket_sharers(i));
        if self.shards[i].remote() {
            p = p.with_upi_share(self.upi_crossers());
        }
        p
    }

    /// Where shard `i`'s tenant buffers live in its private runtime:
    /// device-local DRAM for a NUMA-local placement, remote DRAM (one UPI
    /// hop from the device) when the shard was placed off-socket.
    pub fn location_for(&self, i: usize) -> Location {
        if self.shards[i].remote() {
            Location::remote_dram()
        } else {
            Location::local_dram()
        }
    }

    /// Verifies the partition is total over `tenants` ids: contiguous
    /// in-order ranges, no gaps, no overlaps, full coverage. The property
    /// test pins this for randomized fleet shapes.
    pub fn covers(&self, tenants: u64) -> bool {
        let mut next = 0u64;
        for s in &self.shards {
            if s.tenant_lo != next || s.tenant_hi < s.tenant_lo {
                return false;
            }
            next = s.tenant_hi;
        }
        next == tenants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_total_and_balanced() {
        let plan = ShardPlan::new(103, 8, 2, 2, PoolPolicy::RoundRobin, 7);
        assert!(plan.covers(103));
        let sizes: Vec<u64> = plan.shards().iter().map(|s| s.tenants()).collect();
        assert_eq!(sizes.iter().sum::<u64>(), 103);
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "balanced within one tenant: {sizes:?}");
    }

    #[test]
    fn numa_local_never_crosses_sockets() {
        let plan = ShardPlan::new(1000, 8, 2, 4, PoolPolicy::NumaLocal, 7);
        assert!(plan.shards().iter().all(|s| !s.remote()), "{:?}", plan.shards());
        assert_eq!(plan.upi_crossers(), 0);
        // Both sockets are used: home sockets spread contiguously.
        assert_eq!(plan.shards()[0].socket, 0);
        assert_eq!(plan.shards()[7].socket, 1);
    }

    #[test]
    fn round_robin_crosses_sockets_and_pays_upi() {
        // 2 shards homed [0, 1), slots socket-major: shard 1 homed on
        // socket 1 lands on socket 0's device 1 → one UPI crosser.
        let plan = ShardPlan::new(100, 2, 2, 2, PoolPolicy::RoundRobin, 7);
        assert_eq!(plan.upi_crossers(), 1);
        let crosser = plan.shards().iter().position(|s| s.remote()).unwrap();
        assert_eq!(plan.location_for(crosser), Location::remote_dram());
        let p = plan.platform_for(crosser, &Platform::spr());
        assert!(p.upi_mgbps <= Platform::spr().upi_mgbps);
    }

    #[test]
    fn least_loaded_spreads_by_tenant_count() {
        let plan = ShardPlan::new(64, 4, 2, 2, PoolPolicy::LeastLoaded, 7);
        // 4 equal shards over 4 slots: every slot gets exactly one.
        let mut slots: Vec<(u32, u32)> =
            plan.shards().iter().map(|s| (s.socket, s.device)).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 4, "each slot used once: {:?}", plan.shards());
    }

    #[test]
    fn ddio_share_counts_co_resident_shards() {
        // 4 NumaLocal shards on 2 sockets × 1 device: 2 per socket.
        let plan = ShardPlan::new(40, 4, 2, 1, PoolPolicy::NumaLocal, 7);
        for i in 0..4 {
            assert_eq!(plan.socket_sharers(i), 2);
            let p = plan.platform_for(i, &Platform::spr());
            assert_eq!(p.ddio_ways, 1, "2 SPR DDIO ways split across 2 shards");
        }
    }

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let a = ShardPlan::new(100, 8, 2, 2, PoolPolicy::RoundRobin, 42);
        let b = ShardPlan::new(100, 8, 2, 2, PoolPolicy::RoundRobin, 42);
        assert_eq!(a.shards(), b.shards(), "plans are pure functions of the config");
        let mut seeds: Vec<u64> = a.shards().iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8, "every shard draws a distinct seed");
    }

    #[test]
    fn more_shards_than_tenants_leaves_empty_tails() {
        let plan = ShardPlan::new(3, 8, 2, 2, PoolPolicy::RoundRobin, 7);
        assert!(plan.covers(3));
        assert_eq!(plan.shards().iter().filter(|s| s.tenants() == 0).count(), 5);
    }
}
