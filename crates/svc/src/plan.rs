//! First-class placement plans: validated, diffable, immutable WQ/group
//! layouts replacing the old `WqPlan` enum-variants-as-API.
//!
//! A [`Plan`] is the explicit object the old enum only hinted at: the
//! group carve (engines and optional read-buffer allotment per group),
//! the WQ layout (size, mode, owning group per WQ), and the tenant
//! wiring (which WQ each tenant submits to). Plans are built through
//! [`Plan::builder`] (validated against the DSA 1.0 envelope at
//! `build()`, the same by-value idiom as
//! [`AccelConfig::builder`](dsa_core::config::AccelConfig::builder)) or
//! through the canonical recipes [`Plan::shared`], [`Plan::dedicated`],
//! and [`Plan::by_class_of`], which reproduce the historical enum
//! layouts bit-for-bit.
//!
//! Because a plan is now a value, transitions are too: [`Plan::diff`]
//! yields a [`PlanDelta`] whose [`cost`](PlanDelta::cost) prices the
//! reconfiguration stall a live service pays to adopt the new layout —
//! the quantity the control plane's digital twin weighs against the
//! projected SLO win.
//!
//! [`PlanSpec`] is the roster-polymorphic recipe used where the old enum
//! was a config knob: `Dedicated`/`Shared`/`ByClass` materialize against
//! the tenant roster at build time, `Fixed(plan)` pins an explicit
//! layout. The deprecated [`WqPlan`] shims convert losslessly via
//! `From<WqPlan> for PlanSpec` during migration.

use crate::tenant::{QosClass, TenantSpec};
use dsa_core::config::AccelConfig;
use dsa_core::digest::{Digestible, Fnv1a};
use dsa_core::error::DsaError;
use dsa_device::config::DeviceConfig;
use dsa_sim::time::SimDuration;

/// DSA 1.0 envelope the plans carve up (see `DeviceCaps::dsa1`).
pub const TOTAL_ENGINES: u32 = 4;
/// Total WQ entries the device exposes.
pub const TOTAL_WQ_ENTRIES: u32 = 128;
/// Maximum engine groups.
pub const MAX_GROUPS: usize = 4;

/// One engine group of a plan: how many of the 4 engines it owns and,
/// optionally, an explicit per-engine read-buffer allotment (`None`
/// leaves the device default in force).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanGroup {
    /// Engines assigned to this group.
    pub engines: u32,
    /// Per-engine read-buffer allotment override, if any.
    pub read_buffers: Option<u32>,
}

/// One work queue of a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanWq {
    /// WQ entries carved out of the 128-entry envelope.
    pub size: u32,
    /// Shared (`ENQCMD`) vs dedicated (`MOVDIR64B`) mode.
    pub shared: bool,
    /// Owning group index.
    pub group: usize,
}

/// How tenants are wired onto the plan's WQs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Wiring {
    /// Tenant `i` submits to `wqs[i % len]`. A single-element list pools
    /// everyone on one WQ; a list as long as the roster is a 1:1 map.
    ByIndex(Vec<usize>),
    /// Tenants are wired by QoS class, each class round-robining over its
    /// own WQ list in roster order.
    ByClass {
        /// WQs serving [`QosClass::Latency`] tenants.
        latency: Vec<usize>,
        /// WQs serving [`QosClass::Throughput`] tenants.
        throughput: Vec<usize>,
    },
}

/// A validated, immutable placement plan. See the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plan {
    label: String,
    groups: Vec<PlanGroup>,
    wqs: Vec<PlanWq>,
    wiring: Wiring,
}

impl Plan {
    /// Starts an empty builder. Add at least one group and one WQ.
    pub fn builder() -> PlanBuilder {
        PlanBuilder {
            label: String::from("custom"),
            groups: Vec::new(),
            wqs: Vec::new(),
            wire_index: None,
            wire_latency: None,
            wire_throughput: None,
            misuse: None,
        }
    }

    /// The canonical pooled layout: one group owning all 4 engines, one
    /// shared 128-entry WQ, every tenant wired to it. Maximum pooling,
    /// zero isolation.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for uniformity with the
    /// other recipes.
    pub fn shared() -> Result<Plan, DsaError> {
        Plan::builder()
            .label("shared")
            .group(TOTAL_ENGINES)
            .shared_wq(TOTAL_WQ_ENTRIES)
            .wire([0])
            .build()
    }

    /// The canonical isolated layout for `n` tenants (Fig. 9 "DWQ: N"):
    /// the 128 entries and 4 engines split evenly, one dedicated WQ per
    /// tenant, tenant `i` on WQ `i`.
    ///
    /// # Errors
    ///
    /// [`DsaError::InvalidConfig`] when `n` exceeds the 8-WQ envelope.
    pub fn dedicated(n: usize) -> Result<Plan, DsaError> {
        let n = n.max(1);
        let groups = n.min(MAX_GROUPS);
        let size = (TOTAL_WQ_ENTRIES / n as u32).max(1);
        let mut b = Plan::builder().label("dedicated");
        for g in 0..groups {
            b = b.group(engines_for(g, groups));
        }
        for t in 0..n {
            b = b.dedicated_wq_in(size, t % groups);
        }
        b.wire(0..n).build()
    }

    /// The canonical QoS layout for a roster with these classes:
    /// latency tenants get dedicated WQs (half the entries, one engine
    /// per group, up to 3 groups), throughput tenants pool on one shared
    /// WQ behind the remaining engines. Falls back to the dedicated
    /// (all-latency) or shared (all-throughput) layout — still labelled
    /// `by-class` — exactly as the old enum did.
    ///
    /// # Errors
    ///
    /// [`DsaError::InvalidConfig`] when the latency population exceeds
    /// the WQ envelope.
    pub fn by_class_of(classes: &[QosClass]) -> Result<Plan, DsaError> {
        let n = classes.len().max(1);
        let latency = classes.iter().filter(|c| **c == QosClass::Latency).count();
        let throughput = n - latency;
        if throughput == 0 {
            return Ok(Plan::dedicated(n)?.with_label("by-class"));
        }
        if latency == 0 {
            return Ok(Plan::shared()?.with_label("by-class"));
        }
        let dgroups = latency.min(MAX_GROUPS - 1);
        let mut b = Plan::builder().label("by-class");
        for _ in 0..dgroups {
            b = b.group(1);
        }
        let shared_group = dgroups;
        b = b.group(TOTAL_ENGINES - dgroups as u32);
        let dsize = ((TOTAL_WQ_ENTRIES / 2) / latency as u32).max(1);
        for t in 0..latency {
            b = b.dedicated_wq_in(dsize, t % dgroups);
        }
        b = b.shared_wq_in(TOTAL_WQ_ENTRIES / 2, shared_group);
        let shared_wq = latency; // appended after the dedicated WQs
        b.wire_latency(0..latency).wire_throughput([shared_wq]).build()
    }

    /// The same plan with a different display label (labels feed report
    /// summaries, not the device layout).
    pub fn with_label(mut self, label: &str) -> Plan {
        self.label = String::from(label);
        self
    }

    /// The same plan with group `g`'s per-engine read-buffer allotment
    /// set to `per_engine` — the control plane's cheapest candidate move
    /// (paper guideline G6: read-buffer allocation shifts bandwidth
    /// between groups without re-carving WQs).
    ///
    /// # Errors
    ///
    /// [`DsaError::InvalidService`] when `g` is out of range;
    /// [`DsaError::InvalidConfig`] when the allotment violates the
    /// device's read-buffer envelope.
    pub fn with_read_buffers(&self, g: usize, per_engine: u32) -> Result<Plan, DsaError> {
        if g >= self.groups.len() {
            return Err(DsaError::InvalidService {
                reason: format!("plan has no group {g} to re-buffer"),
            });
        }
        let mut next = self.clone();
        next.groups[g].read_buffers = Some(per_engine);
        next.device_config()?; // re-validate against the envelope
        Ok(next)
    }

    /// Short lowercase label for tables and digests.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The engine groups, in device order.
    pub fn groups(&self) -> &[PlanGroup] {
        &self.groups
    }

    /// The WQ layout, in device order.
    pub fn wqs(&self) -> &[PlanWq] {
        &self.wqs
    }

    /// The tenant wiring rule.
    pub fn wiring(&self) -> &Wiring {
        &self.wiring
    }

    /// Builds the device configuration this plan describes, re-validating
    /// it against the DSA 1.0 envelope.
    ///
    /// # Errors
    ///
    /// [`DsaError::InvalidConfig`] with the violated constraint.
    pub fn device_config(&self) -> Result<DeviceConfig, DsaError> {
        let mut cfg = AccelConfig::builder();
        for g in &self.groups {
            cfg = cfg.group(g.engines);
            if let Some(rb) = g.read_buffers {
                cfg = cfg.read_buffers(rb);
            }
        }
        for w in &self.wqs {
            cfg = if w.shared {
                cfg.shared_wq_in(w.size, w.group)
            } else {
                cfg.dedicated_wq_in(w.size, w.group)
            };
        }
        cfg.build()
    }

    /// The WQ index each tenant of `specs` submits to under this plan's
    /// wiring.
    pub fn assign(&self, specs: &[TenantSpec]) -> Vec<usize> {
        let classes: Vec<QosClass> = specs.iter().map(|s| s.class).collect();
        self.assign_classes(&classes)
    }

    /// [`assign`](Self::assign) from bare QoS classes (the live service
    /// re-wires from tenant state, not specs).
    pub fn assign_classes(&self, classes: &[QosClass]) -> Vec<usize> {
        match &self.wiring {
            Wiring::ByIndex(list) => (0..classes.len()).map(|i| list[i % list.len()]).collect(),
            Wiring::ByClass { latency, throughput } => {
                let (mut lk, mut tk) = (0usize, 0usize);
                classes
                    .iter()
                    .map(|c| match c {
                        QosClass::Latency => {
                            let wq = latency[lk % latency.len()];
                            lk += 1;
                            wq
                        }
                        QosClass::Throughput => {
                            let wq = throughput[tk % throughput.len()];
                            tk += 1;
                            wq
                        }
                    })
                    .collect()
            }
        }
    }

    /// What changes when transitioning from `self` to `to`.
    pub fn diff(&self, to: &Plan) -> PlanDelta {
        let engines = |p: &Plan| p.groups.iter().map(|g| g.engines).collect::<Vec<_>>();
        let buffers = |p: &Plan| p.groups.iter().map(|g| g.read_buffers).collect::<Vec<_>>();
        let n = self.wqs.len().min(to.wqs.len());
        let mut resized = 0usize;
        let mut remoded = 0usize;
        for i in 0..n {
            let (a, b) = (self.wqs[i], to.wqs[i]);
            if a.shared != b.shared {
                remoded += 1;
            } else if a.size != b.size || a.group != b.group {
                resized += 1;
            }
        }
        PlanDelta {
            groups_changed: engines(self) != engines(to),
            read_buffers_changed: buffers(self) != buffers(to),
            wqs_added: to.wqs.len().saturating_sub(self.wqs.len()),
            wqs_removed: self.wqs.len().saturating_sub(to.wqs.len()),
            wqs_resized: resized,
            wqs_remoded: remoded,
            rewired: self.wiring != to.wiring,
        }
    }
}

impl Digestible for Plan {
    fn fold(&self, h: &mut Fnv1a) {
        h.write(self.label.as_bytes());
        h.write_u64(self.groups.len() as u64);
        for g in &self.groups {
            h.write_u64(u64::from(g.engines));
            match g.read_buffers {
                Some(rb) => {
                    h.write_u64(1);
                    h.write_u64(u64::from(rb));
                }
                None => h.write_u64(0),
            }
        }
        h.write_u64(self.wqs.len() as u64);
        for w in &self.wqs {
            h.write_u64(u64::from(w.size));
            h.write_u64(u64::from(w.shared));
            h.write_u64(w.group as u64);
        }
        match &self.wiring {
            Wiring::ByIndex(list) => {
                h.write_u64(0);
                h.write_u64(list.len() as u64);
                for &wq in list {
                    h.write_u64(wq as u64);
                }
            }
            Wiring::ByClass { latency, throughput } => {
                h.write_u64(1);
                for list in [latency, throughput] {
                    h.write_u64(list.len() as u64);
                    for &wq in list {
                        h.write_u64(wq as u64);
                    }
                }
            }
        }
    }
}

/// By-value builder for [`Plan`]. See [`Plan::builder`].
#[derive(Clone, Debug)]
pub struct PlanBuilder {
    label: String,
    groups: Vec<PlanGroup>,
    wqs: Vec<PlanWq>,
    wire_index: Option<Vec<usize>>,
    wire_latency: Option<Vec<usize>>,
    wire_throughput: Option<Vec<usize>>,
    misuse: Option<&'static str>,
}

impl PlanBuilder {
    /// Sets the plan's display label.
    pub fn label(mut self, label: &str) -> PlanBuilder {
        self.label = String::from(label);
        self
    }

    /// Opens the next engine group with `engines` engines.
    pub fn group(mut self, engines: u32) -> PlanBuilder {
        self.groups.push(PlanGroup { engines, read_buffers: None });
        self
    }

    /// Sets the per-engine read-buffer allotment of the group opened
    /// last.
    pub fn read_buffers(mut self, per_engine: u32) -> PlanBuilder {
        match self.groups.last_mut() {
            Some(g) => g.read_buffers = Some(per_engine),
            None => self.misuse = self.misuse.or(Some("read_buffers before any group")),
        }
        self
    }

    /// Adds a dedicated WQ to the group opened last.
    pub fn dedicated_wq(self, size: u32) -> PlanBuilder {
        let g = self.groups.len().saturating_sub(1);
        self.push_wq(size, false, g)
    }

    /// Adds a shared WQ to the group opened last.
    pub fn shared_wq(self, size: u32) -> PlanBuilder {
        let g = self.groups.len().saturating_sub(1);
        self.push_wq(size, true, g)
    }

    /// Adds a dedicated WQ to group `g`.
    pub fn dedicated_wq_in(self, size: u32, g: usize) -> PlanBuilder {
        self.push_wq(size, false, g)
    }

    /// Adds a shared WQ to group `g`.
    pub fn shared_wq_in(self, size: u32, g: usize) -> PlanBuilder {
        self.push_wq(size, true, g)
    }

    fn push_wq(mut self, size: u32, shared: bool, g: usize) -> PlanBuilder {
        if self.groups.is_empty() {
            self.misuse = self.misuse.or(Some("work queue before any group"));
        }
        self.wqs.push(PlanWq { size, shared, group: g });
        self
    }

    /// Wires tenants by index: tenant `i` submits to the `i % len`-th WQ
    /// of `list`. Mutually exclusive with the class wiring below.
    pub fn wire(mut self, list: impl IntoIterator<Item = usize>) -> PlanBuilder {
        self.wire_index = Some(list.into_iter().collect());
        self
    }

    /// Wires [`QosClass::Latency`] tenants round-robin over `list`
    /// (default: all WQs).
    pub fn wire_latency(mut self, list: impl IntoIterator<Item = usize>) -> PlanBuilder {
        self.wire_latency = Some(list.into_iter().collect());
        self
    }

    /// Wires [`QosClass::Throughput`] tenants round-robin over `list`
    /// (default: all WQs).
    pub fn wire_throughput(mut self, list: impl IntoIterator<Item = usize>) -> PlanBuilder {
        self.wire_throughput = Some(list.into_iter().collect());
        self
    }

    /// Validates the layout against the DSA 1.0 envelope and freezes the
    /// plan.
    ///
    /// # Errors
    ///
    /// [`DsaError::InvalidService`] for wiring errors (out-of-range or
    /// empty WQ lists, mixed wiring styles, WQs before any group);
    /// [`DsaError::InvalidConfig`] for envelope violations.
    pub fn build(self) -> Result<Plan, DsaError> {
        if let Some(why) = self.misuse {
            return Err(DsaError::InvalidService { reason: String::from(why) });
        }
        if self.wqs.is_empty() {
            return Err(DsaError::InvalidService {
                reason: String::from("plan has no work queues"),
            });
        }
        if self.wire_index.is_some()
            && (self.wire_latency.is_some() || self.wire_throughput.is_some())
        {
            return Err(DsaError::InvalidService {
                reason: String::from("plan mixes by-index and by-class wiring"),
            });
        }
        let all: Vec<usize> = (0..self.wqs.len()).collect();
        let wiring = if let Some(list) = self.wire_index {
            Wiring::ByIndex(list)
        } else if self.wire_latency.is_some() || self.wire_throughput.is_some() {
            Wiring::ByClass {
                latency: self.wire_latency.unwrap_or_else(|| all.clone()),
                throughput: self.wire_throughput.unwrap_or(all),
            }
        } else {
            Wiring::ByIndex(all)
        };
        let lists: &[&[usize]] = match &wiring {
            Wiring::ByIndex(list) => &[list],
            Wiring::ByClass { latency, throughput } => &[latency, throughput],
        };
        for list in lists {
            if list.is_empty() {
                return Err(DsaError::InvalidService {
                    reason: String::from("plan wiring lists no work queues"),
                });
            }
            if list.iter().any(|&wq| wq >= self.wqs.len()) {
                return Err(DsaError::InvalidService {
                    reason: String::from("plan wiring names a work queue the plan lacks"),
                });
            }
        }
        let plan = Plan { label: self.label, groups: self.groups, wqs: self.wqs, wiring };
        plan.device_config()?;
        Ok(plan)
    }
}

/// What changes between two plans — the input to transition costing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanDelta {
    /// The engine carve changed.
    pub groups_changed: bool,
    /// A group's read-buffer allotment changed.
    pub read_buffers_changed: bool,
    /// WQs present in the target but not the source.
    pub wqs_added: usize,
    /// WQs present in the source but not the target.
    pub wqs_removed: usize,
    /// WQs whose size or owning group changed.
    pub wqs_resized: usize,
    /// WQs whose shared/dedicated mode flipped.
    pub wqs_remoded: usize,
    /// The tenant wiring rule changed.
    pub rewired: bool,
}

impl PlanDelta {
    /// True when the plans are identical.
    pub fn is_empty(&self) -> bool {
        *self == PlanDelta::default()
    }

    /// True when the device itself must be reconfigured (anything beyond
    /// a pure re-wiring of tenants onto the same layout).
    pub fn structural(&self) -> bool {
        self.groups_changed
            || self.read_buffers_changed
            || self.wqs_added > 0
            || self.wqs_removed > 0
            || self.wqs_resized > 0
            || self.wqs_remoded > 0
    }

    /// The simulated stall adopting this delta costs: one device
    /// reconfiguration (drain + WQ re-enable) when structural, plus a
    /// per-moved-tenant re-wiring charge.
    pub fn cost(&self, costs: &TransitionCosts, moved: u64) -> SimDuration {
        let mut c = costs.rewire_per_tenant.saturating_mul(moved);
        if self.structural() {
            c += costs.reconfigure;
        }
        c
    }
}

/// Simulated prices of a plan transition, fed to
/// [`PlanDelta::cost`]. Defaults model a WQ drain + re-enable cycle
/// (microseconds, per the paper's configuration-latency observations)
/// and a portal remap per moved tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransitionCosts {
    /// Flat charge for any structural device reconfiguration.
    pub reconfigure: SimDuration,
    /// Charge per tenant whose WQ wiring changed.
    pub rewire_per_tenant: SimDuration,
}

impl Default for TransitionCosts {
    fn default() -> TransitionCosts {
        TransitionCosts {
            reconfigure: SimDuration::from_us(5),
            rewire_per_tenant: SimDuration::from_ns(200),
        }
    }
}

/// A roster-polymorphic plan recipe: what the old `WqPlan` enum was,
/// made explicit. Config builders take `impl Into<PlanSpec>` so both a
/// recipe and a concrete [`Plan`] read naturally at the call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanSpec {
    /// One dedicated WQ per tenant ([`Plan::dedicated`]).
    Dedicated,
    /// One shared WQ pooling everyone ([`Plan::shared`]).
    Shared,
    /// QoS split by tenant class ([`Plan::by_class_of`]).
    ByClass,
    /// An explicit pinned layout.
    Fixed(Plan),
}

impl PlanSpec {
    /// Materializes the recipe against a tenant roster.
    ///
    /// # Errors
    ///
    /// [`DsaError::InvalidConfig`] when the materialized layout violates
    /// the device envelope for this roster.
    pub fn materialize(&self, specs: &[TenantSpec]) -> Result<Plan, DsaError> {
        match self {
            PlanSpec::Dedicated => Plan::dedicated(specs.len()),
            PlanSpec::Shared => Plan::shared(),
            PlanSpec::ByClass => {
                let classes: Vec<QosClass> = specs.iter().map(|s| s.class).collect();
                Plan::by_class_of(&classes)
            }
            PlanSpec::Fixed(plan) => Ok(plan.clone()),
        }
    }

    /// Short lowercase label for tables and digests.
    pub fn label(&self) -> &str {
        match self {
            PlanSpec::Dedicated => "dedicated",
            PlanSpec::Shared => "shared",
            PlanSpec::ByClass => "by-class",
            PlanSpec::Fixed(plan) => plan.label(),
        }
    }
}

impl From<Plan> for PlanSpec {
    fn from(plan: Plan) -> PlanSpec {
        PlanSpec::Fixed(plan)
    }
}

/// How tenants are mapped onto the device's work queues.
#[deprecated(
    since = "0.2.0",
    note = "use `PlanSpec` (roster recipes) or `Plan::builder()` (explicit layouts)"
)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WqPlan {
    /// One dedicated WQ per tenant — use [`PlanSpec::Dedicated`].
    DedicatedPerTenant,
    /// One shared 128-entry WQ — use [`PlanSpec::Shared`].
    SharedAll,
    /// QoS placement by tenant class — use [`PlanSpec::ByClass`].
    ByClass,
}

#[allow(deprecated)]
impl WqPlan {
    /// Short lowercase label for tables and digests.
    pub fn label(self) -> &'static str {
        match self {
            WqPlan::DedicatedPerTenant => "dedicated",
            WqPlan::SharedAll => "shared",
            WqPlan::ByClass => "by-class",
        }
    }
}

#[allow(deprecated)]
impl From<WqPlan> for PlanSpec {
    fn from(plan: WqPlan) -> PlanSpec {
        match plan {
            WqPlan::DedicatedPerTenant => PlanSpec::Dedicated,
            WqPlan::SharedAll => PlanSpec::Shared,
            WqPlan::ByClass => PlanSpec::ByClass,
        }
    }
}

#[allow(deprecated)]
impl TryFrom<WqPlan> for Plan {
    type Error = DsaError;

    /// Converts the roster-independent variant directly; the
    /// roster-dependent recipes must go through
    /// [`PlanSpec::materialize`].
    fn try_from(plan: WqPlan) -> Result<Plan, DsaError> {
        match plan {
            WqPlan::SharedAll => Plan::shared(),
            WqPlan::DedicatedPerTenant | WqPlan::ByClass => Err(DsaError::InvalidService {
                reason: format!(
                    "WqPlan::{plan:?} depends on the tenant roster; \
                     materialize it through PlanSpec instead"
                ),
            }),
        }
    }
}

/// Engines assigned to group `g` of `groups`: the 4 engines split as
/// evenly as possible, earlier groups taking the remainder.
pub(crate) fn engines_for(g: usize, groups: usize) -> u32 {
    let base = TOTAL_ENGINES / groups as u32;
    let extra = TOTAL_ENGINES as usize % groups;
    base + u32::from(g < extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roster(classes: &[QosClass]) -> Vec<TenantSpec> {
        classes
            .iter()
            .enumerate()
            .map(|(i, c)| TenantSpec::new(&format!("t{i}"), 4 << 10, 1).with_class(*c))
            .collect()
    }

    #[test]
    fn shared_recipe_matches_historical_layout() {
        let p = Plan::shared().unwrap();
        assert_eq!(p.label(), "shared");
        assert_eq!(p.groups().len(), 1);
        assert_eq!(p.groups()[0].engines, TOTAL_ENGINES);
        assert_eq!(p.wqs(), &[PlanWq { size: TOTAL_WQ_ENTRIES, shared: true, group: 0 }]);
        let specs = roster(&[QosClass::Throughput; 5]);
        assert_eq!(p.assign(&specs), vec![0; 5]);
    }

    #[test]
    fn dedicated_recipe_matches_historical_layout() {
        let p = Plan::dedicated(6).unwrap();
        assert_eq!(p.groups().len(), 4, "6 tenants cap at MAX_GROUPS groups");
        assert_eq!(p.groups().iter().map(|g| g.engines).sum::<u32>(), TOTAL_ENGINES);
        assert_eq!(p.wqs().len(), 6);
        assert!(p.wqs().iter().all(|w| !w.shared && w.size == 128 / 6));
        let specs = roster(&[QosClass::Throughput; 6]);
        assert_eq!(p.assign(&specs), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn by_class_recipe_matches_historical_layout() {
        use QosClass::{Latency as L, Throughput as T};
        let classes = [T, L, T, L];
        let p = Plan::by_class_of(&classes).unwrap();
        assert_eq!(p.label(), "by-class");
        assert_eq!(p.groups().len(), 3, "2 single-engine dedicated groups + shared group");
        assert_eq!(p.wqs().len(), 3, "2 dedicated WQs + 1 shared");
        assert!(p.wqs()[2].shared);
        // Latency tenants take dedicated WQs in roster order; throughput
        // tenants pool on the appended shared WQ.
        assert_eq!(p.assign(&roster(&classes)), vec![2, 0, 2, 1]);
    }

    #[test]
    fn by_class_falls_back_but_keeps_its_label() {
        let all_thr = Plan::by_class_of(&[QosClass::Throughput; 3]).unwrap();
        assert_eq!(all_thr.label(), "by-class");
        assert_eq!(all_thr.wqs().len(), 1);
        assert!(all_thr.wqs()[0].shared);
        let all_lat = Plan::by_class_of(&[QosClass::Latency; 3]).unwrap();
        assert_eq!(all_lat.label(), "by-class");
        assert_eq!(all_lat.wqs().len(), 3);
        assert!(all_lat.wqs().iter().all(|w| !w.shared));
    }

    #[test]
    fn builder_rejects_bad_wiring() {
        let no_wqs = Plan::builder().group(4).build();
        assert!(matches!(no_wqs, Err(DsaError::InvalidService { .. })), "got {no_wqs:?}");
        let out_of_range = Plan::builder().group(4).shared_wq(64).wire([3]).build();
        assert!(
            matches!(out_of_range, Err(DsaError::InvalidService { .. })),
            "got {out_of_range:?}"
        );
        let mixed = Plan::builder().group(4).shared_wq(64).wire([0]).wire_latency([0]).build();
        assert!(matches!(mixed, Err(DsaError::InvalidService { .. })), "got {mixed:?}");
        let orphan_wq = Plan::builder().shared_wq(64).build();
        assert!(matches!(orphan_wq, Err(DsaError::InvalidService { .. })), "got {orphan_wq:?}");
    }

    #[test]
    fn builder_surfaces_envelope_violations() {
        let nine = Plan::dedicated(9);
        assert!(matches!(nine, Err(DsaError::InvalidConfig(_))), "got {nine:?}");
        let five_engines = Plan::builder().group(5).shared_wq(64).build();
        assert!(matches!(five_engines, Err(DsaError::InvalidConfig(_))), "got {five_engines:?}");
    }

    #[test]
    fn diff_classifies_every_change() {
        let shared = Plan::shared().unwrap();
        let dedicated = Plan::dedicated(2).unwrap();
        assert!(shared.diff(&shared).is_empty());
        let d = shared.diff(&dedicated);
        assert!(d.groups_changed && d.rewired);
        assert_eq!(d.wqs_added, 1);
        assert_eq!(d.wqs_remoded, 1, "WQ 0 flips shared -> dedicated");
        let rb = shared.with_read_buffers(0, 8).unwrap();
        let d = shared.diff(&rb);
        assert!(d.read_buffers_changed && !d.groups_changed && !d.rewired);
        assert!(d.structural() && !d.is_empty());
    }

    #[test]
    fn delta_cost_prices_structure_and_moves() {
        let costs = TransitionCosts::default();
        let none = PlanDelta::default();
        assert_eq!(none.cost(&costs, 0), SimDuration::ZERO);
        assert_eq!(none.cost(&costs, 3), costs.rewire_per_tenant.saturating_mul(3));
        let structural = PlanDelta { groups_changed: true, ..PlanDelta::default() };
        assert_eq!(
            structural.cost(&costs, 2),
            costs.reconfigure + costs.rewire_per_tenant.saturating_mul(2)
        );
    }

    #[test]
    fn plan_spec_materializes_like_the_old_enum() {
        let specs = roster(&[QosClass::Latency, QosClass::Throughput]);
        assert_eq!(PlanSpec::Dedicated.materialize(&specs).unwrap(), Plan::dedicated(2).unwrap());
        assert_eq!(PlanSpec::Shared.materialize(&specs).unwrap(), Plan::shared().unwrap());
        let by_class = PlanSpec::ByClass.materialize(&specs).unwrap();
        assert_eq!(
            by_class,
            Plan::by_class_of(&[QosClass::Latency, QosClass::Throughput]).unwrap()
        );
        let fixed = PlanSpec::Fixed(by_class.clone());
        assert_eq!(fixed.materialize(&[]).unwrap(), by_class);
    }

    #[test]
    #[allow(deprecated)]
    fn wq_plan_shims_convert() {
        assert_eq!(PlanSpec::from(WqPlan::SharedAll), PlanSpec::Shared);
        assert_eq!(PlanSpec::from(WqPlan::DedicatedPerTenant), PlanSpec::Dedicated);
        assert_eq!(PlanSpec::from(WqPlan::ByClass), PlanSpec::ByClass);
        assert_eq!(Plan::try_from(WqPlan::SharedAll).unwrap(), Plan::shared().unwrap());
        assert!(Plan::try_from(WqPlan::ByClass).is_err(), "roster-dependent recipe");
    }

    #[test]
    fn plan_digest_is_layout_sensitive() {
        let shared = Plan::shared().unwrap();
        let dedicated = Plan::dedicated(2).unwrap();
        assert_ne!(shared.digest64(), dedicated.digest64());
        assert_eq!(shared.digest64(), Plan::shared().unwrap().digest64());
        let rb = shared.with_read_buffers(0, 8).unwrap();
        assert_ne!(shared.digest64(), rb.digest64());
    }
}
