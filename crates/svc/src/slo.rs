//! Typed service-level objectives.
//!
//! An [`SloTarget`] turns the thresholds benches used to hard-code into
//! a first-class config field: set it on
//! [`ServiceConfig::builder`](crate::service::ServiceConfig::builder)
//! (or the fleet builder) and the same object drives both offline
//! reporting ([`ServiceReport::slo_violations`]) and the online control
//! plane's pressure detection — one definition of "violated", derived
//! from the same latency histograms in both places.
//!
//! [`ServiceReport::slo_violations`]: crate::service::ServiceReport::slo_violations

use dsa_sim::time::SimDuration;

/// The service-level objectives a tenant population is held to. All
/// fields are optional; an unset field is simply not checked.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SloTarget {
    /// Per-tenant p99 arrival-to-completion latency ceiling.
    pub p99: Option<SimDuration>,
    /// Ceiling on the fraction of offered jobs that fail their deadline
    /// (completions past deadline plus admission sheds).
    pub deadline_miss_frac: Option<f64>,
    /// Floor on the Jain fairness index over accelerator-served shares.
    pub min_jain: Option<f64>,
}

impl SloTarget {
    /// A target with no objectives set (nothing is checked).
    pub fn new() -> SloTarget {
        SloTarget::default()
    }

    /// Caps every tenant's p99 latency.
    pub fn with_p99(mut self, p99: SimDuration) -> SloTarget {
        self.p99 = Some(p99);
        self
    }

    /// Caps the deadline-miss fraction over offered jobs.
    pub fn with_deadline_miss_frac(mut self, frac: f64) -> SloTarget {
        self.deadline_miss_frac = Some(frac);
        self
    }

    /// Floors the Jain fairness index.
    pub fn with_min_jain(mut self, jain: f64) -> SloTarget {
        self.min_jain = Some(jain);
        self
    }

    /// True when no objective is set.
    pub fn is_empty(&self) -> bool {
        self.p99.is_none() && self.deadline_miss_frac.is_none() && self.min_jain.is_none()
    }
}

/// One objective a run failed, from
/// [`ServiceReport::slo_violations`](crate::service::ServiceReport::slo_violations).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SloViolation {
    /// A tenant's p99 latency exceeded the target.
    P99 {
        /// Tenant index.
        tenant: usize,
        /// Observed p99.
        observed: SimDuration,
        /// The target it blew.
        target: SimDuration,
    },
    /// The deadline-miss fraction exceeded the target.
    MissRate {
        /// Observed miss fraction.
        observed: f64,
        /// The target it blew.
        target: f64,
    },
    /// The Jain fairness index fell below the floor.
    Fairness {
        /// Observed Jain index.
        observed: f64,
        /// The floor it undercut.
        target: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_each_objective() {
        let slo = SloTarget::new()
            .with_p99(SimDuration::from_us(50))
            .with_deadline_miss_frac(0.01)
            .with_min_jain(0.9);
        assert_eq!(slo.p99, Some(SimDuration::from_us(50)));
        assert_eq!(slo.deadline_miss_frac, Some(0.01));
        assert_eq!(slo.min_jain, Some(0.9));
        assert!(!slo.is_empty());
        assert!(SloTarget::new().is_empty());
    }
}
