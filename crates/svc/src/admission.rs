//! Per-tenant admission control.
//!
//! A [`TokenBucket`] meters how many jobs a tenant may *start* per unit of
//! simulated time, independent of how fast the device drains them. This is
//! the software half of the paper's QoS story (§3.4): the hardware knobs
//! (WQ size, priority, read-buffer limits) shape service *after* a
//! descriptor is enqueued; the bucket bounds what reaches the portal in the
//! first place, so one tenant's burst cannot monopolise shared WQ slots.
//!
//! The arithmetic is pure integer picoseconds — refill state advances only
//! by whole tokens, so fractional credit is never lost and replays are
//! bit-identical.

use dsa_sim::time::SimTime;

const PS_PER_SEC: u64 = 1_000_000_000_000;

/// A deterministic token bucket: `rate` tokens per simulated second with a
/// burst capacity, one token per admitted job.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    capacity: u64,
    tokens: u64,
    /// Picoseconds between token credits; 0 means unmetered.
    interval_ps: u64,
    /// Credit cursor: tokens earned strictly before this instant are banked.
    credited_at: SimTime,
}

impl TokenBucket {
    /// A bucket crediting `rate_per_sec` tokens per second, holding at most
    /// `burst` (clamped to ≥ 1). `rate_per_sec == 0` builds an unmetered
    /// bucket that always admits, as do rates above 10¹² (sub-picosecond
    /// intervals are indistinguishable from unmetered).
    pub fn new(rate_per_sec: u64, burst: u64) -> TokenBucket {
        let capacity = burst.max(1);
        TokenBucket {
            capacity,
            tokens: capacity,
            interval_ps: PS_PER_SEC.checked_div(rate_per_sec).unwrap_or(0),
            credited_at: SimTime::ZERO,
        }
    }

    /// A bucket that never rejects (admission disabled).
    pub fn unmetered() -> TokenBucket {
        TokenBucket::new(0, 1)
    }

    /// Banks tokens earned up to `now`.
    pub fn refill(&mut self, now: SimTime) {
        if self.interval_ps == 0 {
            self.tokens = self.capacity;
            return;
        }
        let elapsed = now.as_ps().saturating_sub(self.credited_at.as_ps());
        let earned = elapsed / self.interval_ps;
        if earned == 0 {
            return;
        }
        if self.tokens + earned >= self.capacity {
            // Bucket full: surplus idle time earns nothing further.
            self.tokens = self.capacity;
            self.credited_at = now;
        } else {
            self.tokens += earned;
            self.credited_at =
                SimTime::from_ps(self.credited_at.as_ps() + earned * self.interval_ps);
        }
    }

    /// Takes one token if available at `now`.
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Earliest instant at or after `now` when a token will be available
    /// (pure: does not bank credit).
    pub fn ready_at(&self, now: SimTime) -> SimTime {
        if self.interval_ps == 0 || self.tokens > 0 {
            return now;
        }
        let elapsed = now.as_ps().saturating_sub(self.credited_at.as_ps());
        if elapsed / self.interval_ps > 0 {
            return now;
        }
        SimTime::from_ps(self.credited_at.as_ps() + self.interval_ps).max(now)
    }

    /// Tokens currently banked (as of the last refill).
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Burst capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_metered_refill() {
        // 1 token per microsecond, burst of 3.
        let mut b = TokenBucket::new(1_000_000, 3);
        let t0 = SimTime::ZERO;
        assert!(b.try_acquire(t0));
        assert!(b.try_acquire(t0));
        assert!(b.try_acquire(t0));
        assert!(!b.try_acquire(t0), "burst exhausted");
        let ready = b.ready_at(t0);
        assert_eq!(ready, SimTime::from_ps(1_000_000));
        assert!(b.try_acquire(ready), "one token after one interval");
        assert!(!b.try_acquire(ready));
    }

    #[test]
    fn fractional_credit_is_never_lost() {
        let mut b = TokenBucket::new(1_000_000, 1);
        assert!(b.try_acquire(SimTime::ZERO));
        // Two half-interval refills must together earn one token.
        b.refill(SimTime::from_ps(500_000));
        assert_eq!(b.tokens(), 0);
        assert!(b.try_acquire(SimTime::from_ps(1_000_000)));
    }

    #[test]
    fn idle_time_caps_at_burst() {
        let mut b = TokenBucket::new(1_000_000, 2);
        // A long idle period banks only `burst` tokens.
        b.refill(SimTime::from_ms(10));
        let t = SimTime::from_ms(10);
        assert!(b.try_acquire(t));
        assert!(b.try_acquire(t));
        assert!(!b.try_acquire(t));
    }

    #[test]
    fn unmetered_always_admits() {
        let mut b = TokenBucket::unmetered();
        for _ in 0..1000 {
            assert!(b.try_acquire(SimTime::ZERO));
        }
        assert_eq!(b.ready_at(SimTime::ZERO), SimTime::ZERO);
    }
}
