//! The rack-scale fleet layer: shards the tenant space across N sockets ×
//! M DSA devices and proves the parallel run bit-identical to a
//! sequential replay.
//!
//! A [`Fleet`] is built from a validated [`FleetConfig`] and a
//! deterministic [`ShardPlan`]: each shard owns a contiguous tenant
//! range, its own [`DsaService`] (hence its own `DsaRuntime` and
//! calendar-queue action scheduler), and its own SplitMix64 stream seeded
//! from the master seed in shard order. Shards share *nothing* — no
//! atomics, no locks, no channels; the only cross-shard effects are the
//! static platform adjustments the plan computes up front (DDIO-way
//! splits per socket, UPI bandwidth shares for crossing shards). Lint
//! rule R8 (`shard-isolation`) checks that lexically and through the
//! call graph.
//!
//! # The parallel-determinism proof
//!
//! [`Fleet::run_parallel`] forks K worker threads over contiguous shard
//! chunks with `std::thread::scope`; each worker writes finished
//! [`ShardReport`]s into its own disjoint slice of the result vector, so
//! the join is a plain scope exit — no synchronization primitives, no
//! result reordering. [`Fleet::run_sequential`] runs the identical shard
//! closure in a plain loop. Because every shard is a pure function of its
//! [`ShardAssignment`], both produce the same per-shard FNV-1a digests,
//! and [`FleetReport::digest`] merges them **in shard order** through
//! [`dsa_core::digest::merge_in_order`] — one number that must be
//! bit-identical across thread counts. The `fleet_determinism` tier-1
//! test pins exactly that for K ∈ {1, 2, 8} over three placement
//! policies.

use crate::plan::PlanSpec;
use crate::service::{DsaService, ServiceConfig, ServiceReport};
use crate::shard::{ShardAssignment, ShardPlan};
use crate::slo::SloTarget;
use crate::tenant::{QosClass, TenantSpec};
use dsa_core::backend::PoolPolicy;
use dsa_core::digest::{merge_in_order, Digestible, Fnv1a};
use dsa_core::error::DsaError;
use dsa_mem::topology::Platform;
use dsa_sim::stats::DurationHistogram;
use dsa_sim::time::{SimDuration, SimTime};

/// The uniform workload template stamped out for every tenant in the
/// fleet (tenant `i`'s spec is `profile.spec(i)`). Kept as plain data —
/// not closures — so a [`FleetConfig`] stays `Send + Sync` and the plan
/// stays a pure function of the config.
#[derive(Clone, Copy, Debug)]
pub struct TenantProfile {
    /// Bytes moved per job.
    pub xfer: u64,
    /// Jobs per tenant before the stream goes idle.
    pub jobs: u64,
    /// Open-loop arrival gap; `None` runs a closed loop with zero think.
    pub open_gap: Option<SimDuration>,
    /// Per-job deadline (misses and admission sheds feed the p999 /
    /// miss-rate curves).
    pub deadline: Option<SimDuration>,
    /// Every `latency_every`-th tenant is [`QosClass::Latency`]
    /// (0 = everyone is throughput class).
    pub latency_every: u64,
    /// In-flight window depth per tenant.
    pub outstanding: usize,
    /// Every `aggressor_every`-th tenant (0 = none) is a bulk aggressor:
    /// 8× the base transfer size, held back until [`aggressor_start`] —
    /// the mid-run churn that makes a statically-chosen plan go stale.
    ///
    /// [`aggressor_start`]: TenantProfile::aggressor_start
    pub aggressor_every: u64,
    /// When the aggressor tenants begin submitting (ignored when
    /// `aggressor_every` is 0).
    pub aggressor_start: SimDuration,
}

impl TenantProfile {
    /// A small-transfer profile suited to large tenant counts: 2 KiB
    /// jobs, closed loop, depth 4, no deadline, all throughput class.
    pub fn small() -> TenantProfile {
        TenantProfile {
            xfer: 2 << 10,
            jobs: 2,
            open_gap: None,
            deadline: None,
            latency_every: 0,
            outstanding: 4,
            aggressor_every: 0,
            aggressor_start: SimDuration::ZERO,
        }
    }

    /// The spec stamped out for global tenant id `gid`.
    pub fn spec(&self, gid: u64) -> TenantSpec {
        let mut spec = TenantSpec::new(&format!("t{gid}"), self.xfer, self.jobs)
            .with_outstanding(self.outstanding)
            .with_retry_budget(2);
        if let Some(gap) = self.open_gap {
            spec = spec.with_arrival(crate::arrival::Arrival::open(gap));
        }
        if let Some(d) = self.deadline {
            spec = spec.with_deadline(d);
        }
        if self.latency_every > 0 && gid.is_multiple_of(self.latency_every) {
            spec = spec.with_class(QosClass::Latency);
        }
        if self.aggressor_every > 0 && gid.is_multiple_of(self.aggressor_every) {
            spec.xfer = self.xfer.saturating_mul(8);
            spec = spec.with_start(self.aggressor_start);
        }
        spec
    }
}

/// Rack-shape + workload configuration for a [`Fleet`]. Built exclusively
/// through [`FleetConfig::builder`]; the fields are private so every
/// constructed config has passed validation.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    sockets: u32,
    devices_per_socket: u32,
    shards: u32,
    tenants: u64,
    placement: PoolPolicy,
    plan: PlanSpec,
    seed: u64,
    platform: Platform,
    profile: TenantProfile,
    slo: Option<SloTarget>,
}

impl FleetConfig {
    /// Starts a builder with the defaults: 2 sockets × 4 devices, 8
    /// shards, 1024 tenants, [`PoolPolicy::NumaLocal`] placement,
    /// [`PlanSpec::Shared`] inside each shard, [`Platform::spr`], no SLO,
    /// and [`TenantProfile::small`].
    pub fn builder() -> FleetBuilder {
        FleetBuilder {
            sockets: 2,
            devices_per_socket: 4,
            shards: 8,
            tenants: 1024,
            placement: PoolPolicy::NumaLocal,
            plan: PlanSpec::Shared,
            seed: 0xF1EE_7D5A,
            platform: Platform::spr(),
            profile: TenantProfile::small(),
            slo: None,
        }
    }

    /// Total tenants across the fleet.
    pub fn tenants(&self) -> u64 {
        self.tenants
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Sockets in the rack shape.
    pub fn sockets(&self) -> u32 {
        self.sockets
    }

    /// DSA devices per socket.
    pub fn devices_per_socket(&self) -> u32 {
        self.devices_per_socket
    }

    /// Shard-to-slot placement policy.
    pub fn placement(&self) -> PoolPolicy {
        self.placement
    }

    /// Intra-shard placement recipe.
    pub fn plan(&self) -> &PlanSpec {
        &self.plan
    }

    /// Master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-tenant workload template.
    pub fn profile(&self) -> TenantProfile {
        self.profile
    }

    /// The SLO target every shard's service carries, when one is set.
    pub fn slo(&self) -> Option<&SloTarget> {
        self.slo.as_ref()
    }
}

/// By-value builder for [`FleetConfig`]. See [`FleetConfig::builder`].
#[derive(Clone, Debug)]
pub struct FleetBuilder {
    sockets: u32,
    devices_per_socket: u32,
    shards: u32,
    tenants: u64,
    placement: PoolPolicy,
    plan: PlanSpec,
    seed: u64,
    platform: Platform,
    profile: TenantProfile,
    slo: Option<SloTarget>,
}

impl FleetBuilder {
    /// Sets the socket count of the rack shape.
    pub fn sockets(mut self, sockets: u32) -> FleetBuilder {
        self.sockets = sockets;
        self
    }

    /// Sets the DSA device count per socket.
    pub fn devices_per_socket(mut self, devices: u32) -> FleetBuilder {
        self.devices_per_socket = devices;
        self
    }

    /// Sets the shard count.
    pub fn shards(mut self, shards: u32) -> FleetBuilder {
        self.shards = shards;
        self
    }

    /// Sets the total tenant count partitioned across shards.
    pub fn tenants(mut self, tenants: u64) -> FleetBuilder {
        self.tenants = tenants;
        self
    }

    /// Sets the shard-to-slot placement policy.
    pub fn placement(mut self, placement: PoolPolicy) -> FleetBuilder {
        self.placement = placement;
        self
    }

    /// Sets the placement recipe every shard's service uses internally.
    /// Accepts a [`PlanSpec`] or a concrete [`Plan`](crate::plan::Plan)
    /// (via `Into`).
    pub fn plan(mut self, plan: impl Into<PlanSpec>) -> FleetBuilder {
        self.plan = plan.into();
        self
    }

    /// Sets the typed SLO target every shard's service is judged against
    /// (and that the `dsa-ctl` control plane re-plans toward).
    pub fn slo(mut self, slo: SloTarget) -> FleetBuilder {
        self.slo = Some(slo);
        self
    }

    /// Sets the master seed (shard seeds derive from it in shard order).
    pub fn seed(mut self, seed: u64) -> FleetBuilder {
        self.seed = seed;
        self
    }

    /// Sets the base platform every shard's runtime derives from.
    pub fn platform(mut self, platform: Platform) -> FleetBuilder {
        self.platform = platform;
        self
    }

    /// Sets the per-tenant workload template.
    pub fn profile(mut self, profile: TenantProfile) -> FleetBuilder {
        self.profile = profile;
        self
    }

    /// Validates the fleet shape and **every** shard's derived service
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`DsaError::InvalidService`] for a degenerate shape (zero sockets,
    /// devices, shards, or tenants; a cross-socket placement on a
    /// single-socket platform), and for any shard whose roster fails
    /// [`ServiceConfig::builder`] validation — zero-byte transfers, WQ
    /// envelope violations, etc. — with the offending shard and its
    /// socket/device slot named in the reason. Shard rosters are not all
    /// identical (class mix and aggressor marks vary with the tenant
    /// range), so shard 0 passing does not prove the rest would.
    pub fn build(self) -> Result<FleetConfig, DsaError> {
        if self.sockets == 0 || self.devices_per_socket == 0 {
            return Err(DsaError::InvalidService {
                reason: "fleet needs at least one device".into(),
            });
        }
        if self.shards == 0 {
            return Err(DsaError::InvalidService {
                reason: "fleet needs at least one shard".into(),
            });
        }
        if self.tenants == 0 {
            return Err(DsaError::InvalidService {
                reason: "fleet needs at least one tenant".into(),
            });
        }
        if self.profile.jobs == 0 {
            return Err(DsaError::InvalidService {
                reason: "tenant profile offers zero jobs".into(),
            });
        }
        let cfg = FleetConfig {
            sockets: self.sockets,
            devices_per_socket: self.devices_per_socket,
            shards: self.shards,
            tenants: self.tenants,
            placement: self.placement,
            plan: self.plan,
            seed: self.seed,
            platform: self.platform,
            profile: self.profile,
            slo: self.slo,
        };
        let plan = cfg.shard_plan();
        if plan.upi_crossers() > 0 && cfg.platform.sockets < 2 {
            return Err(DsaError::InvalidService {
                reason: "cross-socket placement on a single-socket platform".into(),
            });
        }
        // Validate every shard's roster through the service builder so
        // plan-vs-envelope and profile errors surface here — naming the
        // shard — not on a worker thread mid-run.
        for i in 0..plan.shards().len() {
            if let Err(e) = cfg.shard_service_config(&plan, i) {
                let a = plan.shards()[i];
                return Err(DsaError::InvalidService {
                    reason: format!(
                        "shard {} (socket {} device {}): {e}",
                        a.shard, a.socket, a.device
                    ),
                });
            }
        }
        Ok(cfg)
    }
}

impl FleetConfig {
    /// The deterministic partition this config implies.
    pub fn shard_plan(&self) -> ShardPlan {
        ShardPlan::new(
            self.tenants,
            self.shards,
            self.sockets,
            self.devices_per_socket,
            self.placement,
            self.seed,
        )
    }

    /// The fully-derived [`ServiceConfig`] of shard `i` under `plan`.
    fn shard_service_config(&self, plan: &ShardPlan, i: usize) -> Result<ServiceConfig, DsaError> {
        let a = plan.shards()[i];
        let mut b = ServiceConfig::builder()
            .plan(self.plan.clone())
            .seed(a.seed)
            .platform(plan.platform_for(i, &self.platform))
            .location(plan.location_for(i))
            .tenants((a.tenant_lo..a.tenant_hi).map(|gid| self.profile.spec(gid)));
        if let Some(slo) = self.slo {
            b = b.slo(slo);
        }
        b.build()
    }
}

/// One shard's aggregated outcome: compact (no per-tenant rows), so a
/// 100k-tenant sweep's live memory is K shards' runtimes, not the whole
/// fleet's reports.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index (digest-merge position).
    pub shard: u32,
    /// Execution socket.
    pub socket: u32,
    /// Device within the socket.
    pub device: u32,
    /// True when the shard crossed the UPI link.
    pub remote: bool,
    /// Tenants the shard owned.
    pub tenants: u64,
    /// Jobs generated.
    pub offered: u64,
    /// Jobs completed on the accelerator.
    pub dsa_completed: u64,
    /// Jobs completed by the CPU fallback.
    pub cpu_completed: u64,
    /// Jobs shed at admission.
    pub shed: u64,
    /// Jobs failed outright.
    pub failed: u64,
    /// Completed jobs that finished past their deadline.
    pub deadline_misses: u64,
    /// Bytes offered.
    pub offered_bytes: u64,
    /// Bytes the accelerator served.
    pub dsa_bytes: u64,
    /// Σ share over the shard's tenants (for the fleet-wide Jain index).
    pub share_sum: f64,
    /// Σ share² over the shard's tenants.
    pub share_sumsq: f64,
    /// Intra-shard Jain fairness.
    pub fairness: f64,
    /// Latest completion on the shard's timeline.
    pub makespan: SimTime,
    /// Merged arrival-to-completion latency distribution.
    pub latency: DurationHistogram,
    /// The shard service's replay digest.
    pub digest: u64,
}

impl ShardReport {
    /// Aggregates a finished shard service into its compact report row.
    /// Public so custom drivers (the `dsa-ctl` governed fleet) can run a
    /// shard's service their own way and still produce the same row the
    /// stock [`Fleet::run_parallel`] loop would.
    pub fn from_service(a: ShardAssignment, svc: &DsaService, rep: &ServiceReport) -> ShardReport {
        let mut out = ShardReport {
            shard: a.shard,
            socket: a.socket,
            device: a.device,
            remote: a.remote(),
            tenants: a.tenants(),
            offered: 0,
            dsa_completed: 0,
            cpu_completed: 0,
            shed: 0,
            failed: 0,
            deadline_misses: 0,
            offered_bytes: 0,
            dsa_bytes: 0,
            share_sum: 0.0,
            share_sumsq: 0.0,
            fairness: rep.fairness,
            makespan: rep.makespan,
            latency: DurationHistogram::new(),
            digest: rep.digest(),
        };
        for t in 0..svc.tenant_count() {
            let st = svc.stats(t);
            out.offered += st.offered;
            out.dsa_completed += st.dsa_completed;
            out.cpu_completed += st.cpu_completed;
            out.shed += st.shed;
            out.failed += st.failed;
            out.deadline_misses += st.deadline_misses;
            out.offered_bytes += st.offered_bytes;
            out.dsa_bytes += st.dsa_bytes;
            let share = st.dsa_share();
            out.share_sum += share;
            out.share_sumsq += share * share;
            out.latency.merge(&st.latency);
        }
        out
    }
}

impl Digestible for ShardReport {
    fn fold(&self, h: &mut Fnv1a) {
        h.write_u64(u64::from(self.shard));
        h.write_u64(self.digest);
    }
}

/// The fleet-wide outcome: per-shard rows plus cross-shard aggregates and
/// the order-merged replay digest.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Placement policy the run used.
    pub placement: PoolPolicy,
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardReport>,
    /// Per-shard digests merged in shard order — THE number the
    /// parallel-determinism proof compares across thread counts.
    pub digest: u64,
    /// Jain fairness over every tenant's accelerator-served share.
    pub fairness: f64,
    /// Latest completion across all shards' timelines.
    pub makespan: SimTime,
    /// Fleet-wide latency distribution (all shards merged).
    pub latency: DurationHistogram,
}

impl FleetReport {
    /// Merges per-shard rows (in shard order) into the fleet-wide report,
    /// order-merging the digests. Public for custom drivers that produce
    /// their own [`ShardReport`]s via [`ShardReport::from_service`].
    pub fn from_shards(placement: PoolPolicy, shards: Vec<ShardReport>) -> FleetReport {
        let digests: Vec<u64> = shards.iter().map(|s| s.digest).collect();
        let mut latency = DurationHistogram::new();
        let (mut n, mut sum, mut sumsq) = (0u64, 0.0f64, 0.0f64);
        let mut makespan = SimTime::ZERO;
        for s in &shards {
            latency.merge(&s.latency);
            n += s.tenants;
            sum += s.share_sum;
            sumsq += s.share_sumsq;
            makespan = makespan.max(s.makespan);
        }
        let fairness = if n == 0 || sumsq == 0.0 { 1.0 } else { (sum * sum) / (n as f64 * sumsq) };
        FleetReport {
            placement,
            digest: merge_in_order(&digests),
            fairness,
            makespan,
            latency,
            shards,
        }
    }

    /// Jobs generated across the fleet.
    pub fn offered(&self) -> u64 {
        self.shards.iter().map(|s| s.offered).sum()
    }

    /// Jobs completed on either path across the fleet.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.dsa_completed + s.cpu_completed).sum()
    }

    /// Jobs that failed their deadline — completed too late or shed at
    /// admission because queueing alone had already blown it.
    pub fn deadline_failures(&self) -> u64 {
        self.shards.iter().map(|s| s.deadline_misses + s.shed).sum()
    }

    /// Deadline failures as a fraction of offered jobs (0.0 when nothing
    /// was offered).
    pub fn deadline_miss_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.deadline_failures() as f64 / offered as f64
        }
    }

    /// Fleet-wide p999 arrival-to-completion latency, when any job
    /// completed.
    pub fn p999(&self) -> Option<SimDuration> {
        self.latency.percentile(99.9)
    }
}

impl Digestible for FleetReport {
    fn fold(&self, h: &mut Fnv1a) {
        h.write_u64(self.digest);
    }
}

/// The sharded multi-socket fleet. See the module docs for the isolation
/// and determinism story.
pub struct Fleet {
    cfg: FleetConfig,
    plan: ShardPlan,
}

impl Fleet {
    /// Builds the fleet's shard plan from a validated config.
    pub fn new(cfg: FleetConfig) -> Fleet {
        let plan = cfg.shard_plan();
        Fleet { cfg, plan }
    }

    /// The deterministic partition in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The configuration in force.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.plan.shards().len()
    }

    /// Shard `i`'s deterministic assignment (tenant range, slot, seed).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard_assignment(&self, i: usize) -> ShardAssignment {
        self.plan.shards()[i]
    }

    /// Builds shard `i`'s private [`DsaService`], primed at time zero and
    /// not yet run — the entry point for custom drivers (epoch loops,
    /// governed runs) that need more than [`run_parallel`]'s
    /// start-to-finish semantics.
    ///
    /// [`run_parallel`]: Fleet::run_parallel
    ///
    /// # Errors
    ///
    /// Propagates the shard's service-construction error (a config from
    /// [`FleetConfig::builder`] has already validated every shard).
    pub fn shard_service(&self, i: usize) -> Result<DsaService, DsaError> {
        let cfg = self.cfg.shard_service_config(&self.plan, i)?;
        DsaService::from_config(cfg)
    }

    /// Runs one shard start-to-finish: build its private service, drive
    /// every tenant stream, aggregate, drop the runtime. Pure function of
    /// the shard assignment — the core of the determinism argument.
    fn run_shard(&self, i: usize, mut svc: DsaService) -> ShardReport {
        let rep = svc.run();
        ShardReport::from_service(self.plan.shards()[i], &svc, &rep)
    }

    /// Runs every shard on the calling thread, in shard order — the
    /// reference replay the parallel run is compared against.
    ///
    /// # Errors
    ///
    /// Propagates the first shard's service-construction error (a config
    /// from [`FleetConfig::builder`] has already validated every shard).
    pub fn run_sequential(&self) -> Result<FleetReport, DsaError> {
        self.run_parallel(1)
    }

    /// Runs the shards on up to `threads` worker threads (clamped to
    /// `[1, shards]`) and merges the reports in shard order. The merged
    /// digest is bit-identical to [`run_sequential`](Self::run_sequential)'s
    /// for any thread count.
    ///
    /// # Errors
    ///
    /// Propagates the first failing shard's error, in shard order.
    pub fn run_parallel(&self, threads: usize) -> Result<FleetReport, DsaError> {
        let shards = self.map_shards(threads, |i, svc| Ok(self.run_shard(i, svc)))?;
        Ok(FleetReport::from_shards(self.cfg.placement, shards))
    }

    /// Drives every shard's freshly-built service through `f` — on the
    /// calling thread in shard order when `threads <= 1`, else on up to
    /// `threads` workers over contiguous shard chunks — and returns the
    /// per-shard results **in shard order** regardless of thread count.
    ///
    /// This is the generalized core under [`run_parallel`]: `f` takes
    /// ownership of the shard's service and may drive it however it
    /// likes (the stock loop calls [`DsaService::run`]; the `dsa-ctl`
    /// governed fleet runs an epoch/re-plan loop). Workers own contiguous
    /// chunks and write into disjoint slices of one result vector — the
    /// scoped fork-join needs no locks, no atomics, and no channels, so
    /// the shard-isolation lint (R8) holds here too. Because each shard's
    /// service is a pure function of its assignment and `f` is applied
    /// per-shard, any deterministic `f` yields thread-count-independent
    /// results.
    ///
    /// # Errors
    ///
    /// Propagates the first failing shard's construction or `f` error, in
    /// shard order.
    pub fn map_shards<T, F>(&self, threads: usize, f: F) -> Result<Vec<T>, DsaError>
    where
        T: Send,
        F: Fn(usize, DsaService) -> Result<T, DsaError> + Sync,
    {
        let n = self.plan.shards().len();
        let threads = threads.clamp(1, n.max(1));
        if threads == 1 {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(f(i, self.shard_service(i)?)?);
            }
            return Ok(out);
        }
        let mut results: Vec<Option<Result<T, DsaError>>> = Vec::new();
        results.resize_with(n, || None);
        let chunk = n.div_ceil(threads);
        // Scoped fork-join: `scope` joins every worker before returning
        // and propagates panics, so no JoinHandle bookkeeping is needed.
        // Each worker's slice is disjoint by construction (`chunks_mut`).
        std::thread::scope(|scope| {
            for (ci, out) in results.chunks_mut(chunk).enumerate() {
                let lo = ci * chunk;
                let f = &f;
                scope.spawn(move || {
                    for (k, slot) in out.iter_mut().enumerate() {
                        let i = lo + k;
                        *slot = Some(self.shard_service(i).and_then(|svc| f(i, svc)));
                    }
                });
            }
        });
        let mut out = Vec::with_capacity(n);
        for r in results {
            match r {
                Some(Ok(v)) => out.push(v),
                Some(Err(e)) => return Err(e),
                // Unreachable: every slot is covered by exactly one chunk.
                None => return Err(DsaError::InvalidService { reason: "shard never ran".into() }),
            }
        }
        Ok(out)
    }

    /// The fleet's merged replay digest from a sequential run — the
    /// reference value any parallel run must reproduce bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates shard construction errors like
    /// [`run_sequential`](Self::run_sequential).
    pub fn digest(&self) -> Result<u64, DsaError> {
        Ok(self.run_sequential()?.digest)
    }
}

/// Short lowercase label for a placement policy, used by bench tables and
/// `BENCH_fleet_scale.json` lane names.
pub fn placement_label(p: PoolPolicy) -> &'static str {
    match p {
        PoolPolicy::RoundRobin => "round-robin",
        PoolPolicy::LeastLoaded => "least-loaded",
        PoolPolicy::NumaLocal => "numa-local",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(placement: PoolPolicy) -> Fleet {
        let cfg = FleetConfig::builder()
            .sockets(2)
            .devices_per_socket(2)
            .shards(4)
            .tenants(32)
            .placement(placement)
            .build()
            .unwrap();
        Fleet::new(cfg)
    }

    #[test]
    fn parallel_matches_sequential_digest() {
        let fleet = tiny(PoolPolicy::NumaLocal);
        let seq = fleet.run_sequential().unwrap();
        let par = fleet.run_parallel(4).unwrap();
        assert_eq!(seq.digest, par.digest, "2-thread run must replay bit-identically");
        assert_eq!(seq.offered(), par.offered());
    }

    #[test]
    fn report_aggregates_every_tenant() {
        let fleet = tiny(PoolPolicy::RoundRobin);
        let rep = fleet.run_sequential().unwrap();
        assert_eq!(rep.shards.len(), 4);
        assert_eq!(rep.offered(), 32 * TenantProfile::small().jobs);
        assert_eq!(
            rep.completed() + rep.shards.iter().map(|s| s.shed + s.failed).sum::<u64>(),
            rep.offered()
        );
        assert!(rep.fairness > 0.0 && rep.fairness <= 1.0 + 1e-9);
        assert!(rep.makespan > SimTime::ZERO);
        assert!(rep.latency.count() > 0);
    }

    #[test]
    fn digest_is_sensitive_to_placement() {
        // Two shards over 2×2 slots: round-robin sends shard 1 (homed on
        // socket 1) to socket 0's device 1 — a UPI crosser — while
        // NUMA-local keeps it home. The changed platform must show up in
        // the merged digest.
        let mk = |p| {
            let cfg = FleetConfig::builder()
                .sockets(2)
                .devices_per_socket(2)
                .shards(2)
                .tenants(32)
                .placement(p)
                .build()
                .unwrap();
            Fleet::new(cfg).digest().unwrap()
        };
        let numa = mk(PoolPolicy::NumaLocal);
        let rr = mk(PoolPolicy::RoundRobin);
        assert_ne!(numa, rr, "placement must be visible in the fleet digest");
    }

    #[test]
    fn builder_rejects_degenerate_shapes() {
        for (s, d, k, t) in [(0, 4, 8, 100), (2, 0, 8, 100), (2, 4, 0, 100), (2, 4, 8, 0)] {
            let err = FleetConfig::builder()
                .sockets(s)
                .devices_per_socket(d)
                .shards(k)
                .tenants(t)
                .build();
            assert!(
                matches!(err, Err(DsaError::InvalidService { .. })),
                "shape ({s},{d},{k},{t}) must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn builder_surfaces_shard_envelope_violations_naming_the_shard() {
        // A dedicated plan inside a 100-tenant shard blows the 8-WQ
        // envelope; the FLEET builder must say so — naming the shard and
        // its slot — not a worker thread mid-run.
        let err = FleetConfig::builder().shards(1).tenants(100).plan(PlanSpec::Dedicated).build();
        match err {
            Err(DsaError::InvalidService { reason }) => {
                assert!(reason.contains("shard 0"), "reason must name the shard: {reason}");
                assert!(reason.contains("socket"), "reason must name the slot: {reason}");
            }
            other => panic!("expected InvalidService naming the shard, got {other:?}"),
        }
    }

    #[test]
    fn builder_validates_every_shard_not_just_shard_zero() {
        // Four shards of 10 tenants each — every dedicated roster blows
        // the 8-WQ envelope, and the loop reports the first offender in
        // shard order; a valid multi-shard dedicated config still builds.
        let err = FleetConfig::builder().shards(4).tenants(40).plan(PlanSpec::Dedicated).build();
        assert!(
            matches!(err, Err(DsaError::InvalidService { ref reason }) if reason.contains("shard 0")),
            "got {err:?}"
        );
        let ok = FleetConfig::builder().shards(4).tenants(16).plan(PlanSpec::Dedicated).build();
        assert!(ok.is_ok(), "4 tenants per shard fits the dedicated envelope: {ok:?}");
    }

    #[test]
    fn aggressor_profile_marks_late_heavy_tenants() {
        let mut p = TenantProfile::small();
        p.aggressor_every = 4;
        p.aggressor_start = SimDuration::from_us(5);
        let agg = p.spec(8);
        assert_eq!(agg.xfer, p.xfer * 8);
        assert_eq!(agg.start, SimDuration::from_us(5));
        let plain = p.spec(3);
        assert_eq!(plain.xfer, p.xfer);
        assert_eq!(plain.start, SimDuration::ZERO);
    }

    #[test]
    fn map_shards_matches_stock_run_in_any_thread_count() {
        let fleet = tiny(PoolPolicy::NumaLocal);
        let stock = fleet.run_sequential().unwrap();
        for threads in [1usize, 3] {
            let shards = fleet
                .map_shards(threads, |i, mut svc| {
                    let rep = svc.run();
                    Ok(ShardReport::from_service(fleet.shard_assignment(i), &svc, &rep))
                })
                .unwrap();
            let rep = FleetReport::from_shards(fleet.config().placement(), shards);
            assert_eq!(rep.digest, stock.digest, "threads={threads}");
        }
    }

    #[test]
    fn remote_placement_slows_the_fleet() {
        // Same tenants, same devices; forcing every shard off-socket
        // must cost makespan vs NUMA-local placement (guideline G4).
        let mk = |p| tiny(p).run_sequential().unwrap().makespan;
        let local = mk(PoolPolicy::NumaLocal);
        let rr = mk(PoolPolicy::RoundRobin);
        assert!(
            rr >= local,
            "round-robin (with UPI crossers) cannot beat NUMA-local: {rr:?} vs {local:?}"
        );
    }

    #[test]
    fn deadline_profile_feeds_miss_curves() {
        let mut profile = TenantProfile::small();
        profile.xfer = 64 << 10;
        profile.deadline = Some(SimDuration::from_ns(500)); // unmeetable
        let cfg = FleetConfig::builder().shards(2).tenants(16).profile(profile).build().unwrap();
        let rep = Fleet::new(cfg).run_sequential().unwrap();
        assert!(rep.deadline_miss_rate() > 0.0, "unmeetable deadlines must show up");
        assert!(rep.deadline_miss_rate() <= 1.0);
    }
}
