//! The service's pending-action queue: a [`CalendarScheduler`] over
//! per-tenant next-action instants.
//!
//! The original scheduling loop re-scanned every tenant per step to find
//! the earliest admissible action — O(T) per job, which is fine for the
//! tens of tenants the ablation benches drive but hopeless for the
//! thousands-per-shard tenant counts the fleet layer shards out. A
//! tenant's next-action instant depends only on its *own* state (arrival
//! stream, core cursor, in-flight window, token bucket), so it changes
//! exactly when that tenant steps — which makes the earliest-action scan
//! an event queue: push the new instant after each step, pop the global
//! minimum in O(1) amortized from the same calendar queue the simulation
//! engine runs on. This is also what "each shard owns its own
//! `CalendarScheduler`" means concretely: the queue is plain owned state,
//! no shared-anything, so shards stay thread-independent (lint rule R8
//! covers this module).
//!
//! Stale entries are handled lazily: re-scheduling or cancelling a tenant
//! bumps its generation stamp, and outdated queue entries are skipped
//! (and their payload slots released) when they surface at the head.

use dsa_sim::engine::ComponentId;
use dsa_sim::sched::{CalendarScheduler, EventKey, Scheduler};
use dsa_sim::store::EventStore;
use dsa_sim::time::SimTime;

/// A deterministic earliest-next-action queue over tenant indices.
///
/// Ordering is exact `(time, push order)`: among tenants whose next
/// actions coincide, the one whose instant was scheduled first pops
/// first. Every operation is deterministic — two queues fed the same
/// schedule/cancel/pop sequence drain identically.
pub struct ActionQueue {
    sched: CalendarScheduler,
    store: EventStore<u64>,
    /// Current generation stamp per tenant; queue entries carry the stamp
    /// they were scheduled under and are dead once the two disagree.
    stamp: Vec<u64>,
    seq: u64,
    /// The earliest live entry, held out of the calendar by [`peek`]
    /// (the calendar pops destructively, so peeking parks the head here
    /// until the next [`pop`] consumes it or a schedule/cancel
    /// invalidates it).
    ///
    /// [`peek`]: ActionQueue::peek
    /// [`pop`]: ActionQueue::pop
    head: Option<(SimTime, usize)>,
}

impl ActionQueue {
    /// An empty queue sized for `tenants` tenant indices.
    pub fn with_tenants(tenants: usize) -> ActionQueue {
        ActionQueue {
            sched: CalendarScheduler::new(),
            store: EventStore::new(),
            stamp: vec![0; tenants],
            seq: 0,
            head: None,
        }
    }

    /// Schedules (or re-schedules) tenant `tenant`'s next admissible
    /// action at `at`, invalidating any entry previously queued for it.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn schedule(&mut self, tenant: usize, at: SimTime) {
        // A parked head must not go stale: the re-scheduled tenant's head
        // entry is simply superseded; any other tenant's head goes back
        // into the calendar (under its current stamp) so the global
        // minimum stays exact against the new entry.
        if let Some((ht, hi)) = self.head.take() {
            if hi != tenant {
                self.push_entry(hi, ht, self.stamp[hi]);
            }
        }
        self.stamp[tenant] += 1;
        self.push_entry(tenant, at, self.stamp[tenant]);
    }

    fn push_entry(&mut self, tenant: usize, at: SimTime, stamp: u64) {
        let slot = self.store.alloc(at, self.seq, ComponentId::from_index(tenant), stamp);
        self.sched.push(EventKey { time: at, seq: self.seq, slot }, &self.store);
        self.seq += 1;
    }

    /// Invalidates any queued entry for `tenant` (a tenant whose stream
    /// just went idle). Lazy: the dead entry is dropped when it surfaces.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn cancel(&mut self, tenant: usize) {
        if self.head.is_some_and(|(_, hi)| hi == tenant) {
            self.head = None;
        }
        self.stamp[tenant] += 1;
    }

    /// Removes and returns the earliest live `(time, tenant)` action, or
    /// `None` when no live entries remain.
    pub fn pop(&mut self) -> Option<(SimTime, usize)> {
        if let Some(h) = self.head.take() {
            return Some(h);
        }
        self.pop_calendar()
    }

    /// The earliest live `(time, tenant)` action without consuming it —
    /// what lets a governed service run *up to* an epoch boundary and
    /// hand control back with the queue exact.
    pub fn peek(&mut self) -> Option<(SimTime, usize)> {
        if self.head.is_none() {
            self.head = self.pop_calendar();
        }
        self.head
    }

    fn pop_calendar(&mut self) -> Option<(SimTime, usize)> {
        let horizon = SimTime::from_ps(u64::MAX);
        while let Some(key) = self.sched.pop_before(horizon, &self.store) {
            let (target, stamp) = self.store.release(key.slot);
            let tenant = target.index();
            if stamp == self.stamp[tenant] {
                return Some((key.time, tenant));
            }
        }
        None
    }

    /// Queued entries, live and stale alike (an upper bound on live work).
    pub fn len(&self) -> usize {
        <CalendarScheduler as Scheduler<u64>>::len(&self.sched) + usize::from(self.head.is_some())
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_sim::time::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn pops_in_time_order_with_push_order_ties() {
        let mut q = ActionQueue::with_tenants(3);
        q.schedule(2, t(30));
        q.schedule(0, t(10));
        q.schedule(1, t(10));
        assert_eq!(q.pop(), Some((t(10), 0)), "earlier push wins the tie");
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(30), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reschedule_invalidates_the_old_entry() {
        let mut q = ActionQueue::with_tenants(2);
        q.schedule(0, t(10));
        q.schedule(1, t(20));
        q.schedule(0, t(40)); // tenant 0 moved later; the t(10) entry is dead
        assert_eq!(q.pop(), Some((t(20), 1)));
        assert_eq!(q.pop(), Some((t(40), 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_drops_a_tenant() {
        let mut q = ActionQueue::with_tenants(2);
        q.schedule(0, t(10));
        q.schedule(1, t(20));
        q.cancel(0);
        assert_eq!(q.pop(), Some((t(20), 1)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_pop_and_schedule_stays_exact() {
        // Mimics the service loop: every pop re-schedules the same tenant
        // later; the queue must keep returning the global minimum.
        let mut q = ActionQueue::with_tenants(4);
        for i in 0..4 {
            q.schedule(i, t(10 * (i as u64 + 1)));
        }
        let mut order = Vec::new();
        let mut rounds = 0;
        while let Some((at, i)) = q.pop() {
            order.push((at, i));
            rounds += 1;
            if rounds <= 4 {
                q.schedule(i, at + SimDuration::from_ns(35));
            } else {
                q.cancel(i);
            }
        }
        for w in order.windows(2) {
            assert!(w[0].0 <= w[1].0, "non-monotone pops: {order:?}");
        }
        assert_eq!(order.len(), 8, "4 initial + 4 rescheduled pops");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = ActionQueue::with_tenants(2);
        q.schedule(0, t(10));
        q.schedule(1, t(20));
        assert_eq!(q.peek(), Some((t(10), 0)));
        assert_eq!(q.peek(), Some((t(10), 0)), "peek is idempotent");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((t(10), 0)));
        assert_eq!(q.peek(), Some((t(20), 1)));
        assert_eq!(q.pop(), Some((t(20), 1)));
        assert_eq!(q.peek(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peeked_head_survives_other_tenants_schedules() {
        // An earlier entry scheduled for a *different* tenant after a peek
        // must displace the parked head.
        let mut q = ActionQueue::with_tenants(3);
        q.schedule(0, t(30));
        assert_eq!(q.peek(), Some((t(30), 0)));
        q.schedule(1, t(10));
        q.schedule(2, t(20));
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peeked_head_is_invalidated_by_its_own_reschedule_and_cancel() {
        let mut q = ActionQueue::with_tenants(2);
        q.schedule(0, t(10));
        assert_eq!(q.peek(), Some((t(10), 0)));
        q.schedule(0, t(50)); // supersedes the parked head
        q.schedule(1, t(20));
        assert_eq!(q.pop(), Some((t(20), 1)));
        assert_eq!(q.peek(), Some((t(50), 0)));
        q.cancel(0);
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
