//! Output formatting for the figure harnesses: fixed-width tables that
//! read like the paper's figures rendered as text.

/// Prints the experiment banner.
pub fn banner(figure: &str, description: &str) {
    println!();
    println!("==================================================================");
    println!("{figure}: {description}");
    println!("==================================================================");
}

/// Prints a table header row followed by a separator.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(cells.len() * 12));
}

/// Prints one fixed-width row.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>11}")).collect();
    println!("{}", line.join(" "));
}

/// Human size label: 256, 4K, 64K, 2M.
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

/// Formats a rate/ratio with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats microseconds with 2 decimals.
pub fn us(v: dsa_sim::time::SimDuration) -> String {
    format!("{:.2}", v.as_us_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels() {
        assert_eq!(size_label(256), "256");
        assert_eq!(size_label(4096), "4K");
        assert_eq!(size_label(2 << 20), "2M");
        assert_eq!(size_label(1000), "1000");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(us(dsa_sim::time::SimDuration::from_ns(1500)), "1.50");
    }
}
