//! Shared measurement machinery for the figure harnesses.
//!
//! Mirrors how `dsa-perf-micros` drives the real device (§4.1): a
//! configurable sweep over transfer sizes, batch sizes, synchronous vs.
//! asynchronous submission (queue depth 32 by default), buffer rings large
//! enough that the write footprint is realistic, and per-op software
//! baselines.

use dsa_core::job::{AsyncQueue, Batch, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_core::DsaError;
use dsa_mem::buffer::Location;
use dsa_mem::memory::BufferHandle;
use dsa_ops::dif::{DifBlockSize, DifConfig};
use dsa_ops::OpKind;
use dsa_sim::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The canonical transfer-size sweep used across the paper's figures.
pub const SIZES: &[u64] = &[256, 1024, 4096, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20];

/// Submission mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// One descriptor at a time, wait for each completion.
    Sync,
    /// Streaming submission with a software queue depth.
    Async {
        /// Outstanding descriptors kept in flight (paper default: 32).
        qd: usize,
    },
    /// One batch descriptor per iteration, waited on synchronously.
    SyncBatch {
        /// Descriptors per batch.
        bs: u32,
    },
    /// Batches kept in flight with a small window.
    AsyncBatch {
        /// Descriptors per batch.
        bs: u32,
        /// Outstanding batches.
        window: usize,
    },
}

/// Result of one measurement point.
#[derive(Clone, Copy, Debug)]
pub struct MeasureResult {
    /// Achieved rate against the nominal transfer bytes, in GB/s.
    pub gbps: f64,
    /// Mean per-operation (or per-batch) completion latency.
    pub avg_latency: SimDuration,
    /// Median per-operation latency (sync modes; ZERO otherwise).
    pub p50_latency: SimDuration,
    /// Tail per-operation latency (sync modes; ZERO otherwise).
    pub p99_latency: SimDuration,
}

/// A configurable measurement point.
#[derive(Clone, Debug)]
pub struct Measure {
    op: OpKind,
    size: u64,
    iters: u64,
    mode: Mode,
    src_loc: Location,
    dst_loc: Location,
    cache_control: bool,
    devices: usize,
}

/// Cap on the total bytes of ring buffers allocated per measurement.
const RING_BYTE_CAP: u64 = 512 << 20;

impl Measure {
    /// A memcpy measurement of `size` bytes, sync, local DRAM.
    pub fn new(op: OpKind, size: u64) -> Measure {
        Measure {
            op,
            size,
            iters: 64,
            mode: Mode::Sync,
            src_loc: Location::local_dram(),
            dst_loc: Location::local_dram(),
            cache_control: false,
            devices: 1,
        }
    }

    /// Sets the iteration count.
    pub fn iters(mut self, n: u64) -> Measure {
        self.iters = n.max(1);
        self
    }

    /// Sets the submission mode.
    pub fn mode(mut self, mode: Mode) -> Measure {
        self.mode = mode;
        self
    }

    /// Sets buffer placements.
    pub fn locations(mut self, src: Location, dst: Location) -> Measure {
        self.src_loc = src;
        self.dst_loc = dst;
        self
    }

    /// Steers destination writes to the LLC (cache control = 1).
    pub fn cache_control(mut self, on: bool) -> Measure {
        self.cache_control = on;
        self
    }

    /// Spreads descriptors round-robin over the first `n` devices.
    pub fn devices(mut self, n: usize) -> Measure {
        self.devices = n.max(1);
        self
    }

    /// Rounds a size to the op's granularity (DIF needs whole blocks).
    fn effective_size(&self) -> u64 {
        match self.op {
            OpKind::DifInsert | OpKind::DifCheck | OpKind::DifStrip | OpKind::DifUpdate => {
                (self.size / 512).max(1) * 512
            }
            OpKind::DeltaCreate | OpKind::DeltaApply => ((self.size / 8).max(1) * 8).min(512 << 10),
            _ => self.size.max(1),
        }
    }

    fn ring_len(&self) -> usize {
        let wanted = match self.mode {
            Mode::Sync => 2,
            Mode::Async { qd } => qd + 1,
            Mode::SyncBatch { bs } => bs as usize + 1,
            Mode::AsyncBatch { bs, window } => bs as usize * window + 1,
        };
        // Without cache control the ring only provides variety; with it the
        // ring determines the DDIO write footprint (Fig. 10), so keep the
        // full realistic size then.
        let wanted = if self.cache_control { wanted } else { wanted.min(9) };
        let per_slot = self.effective_size() * 2 + 16;
        let cap = (RING_BYTE_CAP / per_slot.max(1)) as usize;
        wanted.min(cap).max(1)
    }

    /// Builds the job for ring slot `i`.
    fn job(&self, slots: &[OpSlots], i: usize) -> Job {
        let s = &slots[i % slots.len()];
        let job = match self.op {
            OpKind::Nop => Job::nop(),
            OpKind::Memcpy => Job::memcpy(&s.src, &s.dst),
            OpKind::Dualcast => Job::dualcast(&s.src, &s.dst, &s.dst2),
            OpKind::Fill => Job::fill(&s.dst, 0xA5A5_A5A5_A5A5_A5A5),
            OpKind::NtFill => Job::fill(&s.dst, 0x5A5A_5A5A_5A5A_5A5A),
            OpKind::Compare => Job::compare(&s.src, &s.dst),
            OpKind::ComparePattern => Job::compare_pattern(&s.src, 0),
            OpKind::Crc32 => Job::crc32(&s.src),
            OpKind::CopyCrc => Job::copy_crc(&s.src, &s.dst),
            OpKind::DifInsert => {
                Job::dif_insert(&s.src, &s.dst, DifConfig::new(DifBlockSize::B512))
            }
            OpKind::DifCheck => Job::dif_check(&s.dif, DifConfig::new(DifBlockSize::B512)),
            OpKind::DifStrip => Job::dif_strip(&s.dif, &s.dst, DifConfig::new(DifBlockSize::B512)),
            OpKind::DifUpdate => {
                Job::dif_update(&s.dif, &s.dst, DifConfig::new(DifBlockSize::B512))
            }
            OpKind::DeltaCreate => Job::delta_create(&s.src, &s.dst, &s.record),
            OpKind::DeltaApply => Job::delta_apply(&s.record, 10, &s.dst),
            OpKind::CacheFlush => Job::cache_flush(&s.dst),
        };
        let job = job.on_device(i % self.devices);
        // Fill is the *allocating* variant (cache control set); NtFill the
        // non-allocating one — matching Fig. 2's two fill flavours.
        if self.cache_control || self.op == OpKind::Fill {
            job.cache_control()
        } else {
            job
        }
    }

    /// Runs the measurement.
    ///
    /// # Panics
    ///
    /// Panics on non-retryable device errors (a bench-harness bug).
    pub fn run(&self, rt: &mut DsaRuntime) -> MeasureResult {
        // dsa-lint: allow(unwrap, documented panicking wrapper; try_run is the fallible path)
        self.try_run(rt).expect("measurement failed")
    }

    /// Runs the measurement, surfacing submission errors.
    ///
    /// # Errors
    ///
    /// Propagates [`DsaError`] from the job layer.
    pub fn try_run(&self, rt: &mut DsaRuntime) -> Result<MeasureResult, DsaError> {
        let size = self.effective_size();
        let slots: Vec<OpSlots> = (0..self.ring_len())
            .map(|_| OpSlots::alloc(rt, self.op, size, self.src_loc, self.dst_loc))
            .collect();

        let start = rt.now();
        let mut total_bytes = 0u64;
        let mut latency_sum = SimDuration::ZERO;
        let mut latency_n = 0u64;
        let mut hist = dsa_sim::stats::DurationHistogram::new();
        match self.mode {
            Mode::Sync => {
                for i in 0..self.iters {
                    let before = rt.now();
                    let report = self.job(&slots, i as usize).execute(rt)?;
                    debug_assert!(report.record.status.is_ok(), "{:?}", report.record.status);
                    let lat = rt.now().duration_since(before);
                    latency_sum += lat;
                    hist.record(lat);
                    latency_n += 1;
                    total_bytes += size;
                }
            }
            Mode::Async { qd } => {
                let mut q = AsyncQueue::new(qd.max(1));
                for i in 0..self.iters {
                    q.submit(rt, self.job(&slots, i as usize))?;
                }
                let end = q.drain(rt);
                rt.advance_to(end);
                total_bytes += size * self.iters;
                latency_sum = rt.now().duration_since(start);
                latency_n = 1;
            }
            Mode::SyncBatch { bs } => {
                for i in 0..self.iters {
                    let mut batch = Batch::new().on_device(i as usize % self.devices);
                    if self.cache_control || self.op == OpKind::Fill {
                        batch = batch.cache_control();
                    }
                    for j in 0..bs {
                        batch.push(self.job(&slots, (i * bs as u64 + j as u64) as usize));
                    }
                    let before = rt.now();
                    let report = batch.execute(rt)?;
                    let lat = rt.now().duration_since(before);
                    latency_sum += lat;
                    hist.record(lat);
                    latency_n += 1;
                    total_bytes += size * bs as u64;
                    debug_assert!(report.batch_record.status.is_ok());
                }
            }
            Mode::AsyncBatch { bs, window } => {
                let mut inflight: Vec<SimTime> = Vec::new();
                for i in 0..self.iters {
                    if inflight.len() >= window.max(1) {
                        let oldest = inflight.remove(0);
                        rt.advance_to(oldest);
                    }
                    let mut batch = Batch::new().on_device(i as usize % self.devices);
                    if self.cache_control || self.op == OpKind::Fill {
                        batch = batch.cache_control();
                    }
                    for j in 0..bs {
                        batch.push(self.job(&slots, (i * bs as u64 + j as u64) as usize));
                    }
                    let handle = batch.submit(rt)?;
                    inflight.push(handle.completion_time());
                    total_bytes += size * bs as u64;
                }
                for t in inflight {
                    rt.advance_to(t);
                }
                latency_sum = rt.now().duration_since(start);
                latency_n = 1;
            }
        }
        let elapsed = rt.now().duration_since(start);
        let zero = SimDuration::ZERO;
        let (p50, p99) =
            (hist.percentile(50.0).unwrap_or(zero), hist.percentile(99.0).unwrap_or(zero));
        Ok(MeasureResult {
            gbps: total_bytes as f64 / elapsed.as_ns_f64(),
            avg_latency: if latency_n == 0 { SimDuration::ZERO } else { latency_sum / latency_n },
            p50_latency: p50,
            p99_latency: p99,
        })
    }

    /// The matching single-core software rate in GB/s.
    pub fn cpu_gbps(&self, rt: &DsaRuntime) -> f64 {
        let size = self.effective_size();
        let t = rt.cpu_time(self.op, size, self.src_loc, self.dst_loc);
        size as f64 / t.as_ns_f64()
    }
}

/// Buffer set for one ring slot.
struct OpSlots {
    src: BufferHandle,
    dst: BufferHandle,
    dst2: BufferHandle,
    record: BufferHandle,
    dif: BufferHandle,
}

impl OpSlots {
    fn alloc(
        rt: &mut DsaRuntime,
        op: OpKind,
        size: u64,
        src_loc: Location,
        dst_loc: Location,
    ) -> OpSlots {
        let src = rt.alloc(size, src_loc);
        // DIF insert/update write size + 8 bytes per 512-B block.
        let dst_len = match op {
            OpKind::DifInsert | OpKind::DifUpdate => size + size / 512 * 8,
            _ => size,
        };
        let dst = rt.alloc(dst_len, dst_loc);
        let dst2 = match op {
            OpKind::Dualcast => rt.alloc(size, dst_loc),
            _ => rt.alloc(8, dst_loc),
        };
        let record = match op {
            OpKind::DeltaCreate | OpKind::DeltaApply => rt.alloc(size / 8 * 10 + 10, dst_loc),
            _ => rt.alloc(16, dst_loc),
        };
        let dif = match op {
            OpKind::DifCheck | OpKind::DifStrip | OpKind::DifUpdate => {
                // Pre-protect data so checks succeed.
                let raw = vec![0x77u8; size as usize];
                let protected = dsa_ops::dif::dif_insert(&DifConfig::new(DifBlockSize::B512), &raw)
                    // dsa-lint: allow(unwrap, slot sizes are whole 512-byte blocks by construction)
                    .expect("whole blocks");
                let h = rt.alloc(protected.len() as u64, src_loc);
                // dsa-lint: allow(unwrap, handle was allocated by the runtime one line up)
                rt.memory_mut().write(h.addr(), &protected).expect("mapped");
                h
            }
            _ => rt.alloc(8, src_loc),
        };
        OpSlots { src, dst, dst2, record, dif }
    }
}

/// Aggregate copy rate for `threads` submitters, each with its own clock
/// cursor and queue, targeting `wq_of(thread) -> (device, wq)`.
///
/// Used by the Fig. 9 WQ-configuration comparison: N threads to N DWQs vs.
/// N threads to one SWQ.
///
/// # Panics
///
/// Panics on non-retryable submission errors.
pub fn multi_thread_copy_gbps(
    rt: &mut DsaRuntime,
    threads: usize,
    size: u64,
    per_thread: u64,
    qd: usize,
    wq_of: impl Fn(usize) -> (usize, usize),
) -> f64 {
    let slots: Vec<(BufferHandle, BufferHandle)> = (0..threads * 2)
        .map(|_| (rt.alloc(size, Location::local_dram()), rt.alloc(size, Location::local_dram())))
        .collect();
    let mut queues: Vec<AsyncQueue> = (0..threads).map(|_| AsyncQueue::new(qd)).collect();
    let mut heap: BinaryHeap<Reverse<(SimTime, usize, u64)>> =
        (0..threads).map(|t| Reverse((SimTime::ZERO, t, 0u64))).collect();
    let mut finish = SimTime::ZERO;
    while let Some(Reverse((cursor, t, done))) = heap.pop() {
        if done >= per_thread {
            let end = queues[t].drain(rt);
            finish = finish.max(end).max(cursor);
            continue;
        }
        rt.set_now(cursor);
        let (src, dst) = &slots[(t * 2 + (done % 2) as usize) % slots.len()];
        let (dev, wq) = wq_of(t);
        queues[t]
            .submit(rt, Job::memcpy(src, dst).on_device(dev).on_wq(wq))
            // dsa-lint: allow(unwrap, documented panicking bench helper; a reject here is a harness bug)
            .expect("submission failed");
        heap.push(Reverse((rt.now(), t, done + 1)));
    }
    let total = threads as u64 * per_thread * size;
    total as f64 / finish.as_ns_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::config::presets;
    use dsa_mem::topology::Platform;

    #[test]
    fn sync_copy_measurement_sane() {
        let mut rt = DsaRuntime::spr_default();
        let r = Measure::new(OpKind::Memcpy, 1 << 20).iters(8).run(&mut rt);
        assert!((20.0..31.0).contains(&r.gbps), "1 MiB sync copies near fabric: {}", r.gbps);
        assert!(r.avg_latency.as_us_f64() > 10.0);
    }

    #[test]
    fn async_beats_sync_small() {
        let mut rt = DsaRuntime::spr_default();
        let sync = Measure::new(OpKind::Memcpy, 1024).iters(32).run(&mut rt);
        let mut rt = DsaRuntime::spr_default();
        let asyn =
            Measure::new(OpKind::Memcpy, 1024).iters(256).mode(Mode::Async { qd: 32 }).run(&mut rt);
        assert!(asyn.gbps > 3.0 * sync.gbps, "async {} vs sync {}", asyn.gbps, sync.gbps);
    }

    #[test]
    fn all_fig2_ops_measurable() {
        for op in OpKind::figure2_set() {
            let mut rt = DsaRuntime::spr_default();
            let r = Measure::new(op, 4096).iters(4).run(&mut rt);
            assert!(r.gbps > 0.0, "{op:?}");
            let cpu = Measure::new(op, 4096).cpu_gbps(&rt);
            assert!(cpu > 0.0, "{op:?}");
        }
    }

    #[test]
    fn batch_modes_run() {
        let mut rt = DsaRuntime::spr_default();
        let sb = Measure::new(OpKind::Memcpy, 4096)
            .iters(8)
            .mode(Mode::SyncBatch { bs: 8 })
            .run(&mut rt);
        assert!(sb.gbps > 0.0);
        let mut rt = DsaRuntime::spr_default();
        let ab = Measure::new(OpKind::Memcpy, 4096)
            .iters(16)
            .mode(Mode::AsyncBatch { bs: 8, window: 4 })
            .run(&mut rt);
        assert!(ab.gbps > sb.gbps, "async batches {} vs sync batches {}", ab.gbps, sb.gbps);
    }

    #[test]
    fn multi_thread_pump_scales_with_dwqs() {
        let mut rt =
            DsaRuntime::builder(Platform::spr()).device(presets::n_dwqs_n_engines(4)).build();
        let g4 = multi_thread_copy_gbps(&mut rt, 4, 16 << 10, 200, 16, |t| (0, t));
        assert!(g4 > 10.0, "4 threads on 4 DWQs: {g4}");
    }
}

#[cfg(test)]
mod dif_mode_tests {
    use super::*;

    #[test]
    fn strip_and_update_modes_measure() {
        for op in [OpKind::DifStrip, OpKind::DifUpdate, OpKind::DifCheck] {
            let mut rt = DsaRuntime::spr_default();
            let r = Measure::new(op, 2048).iters(4).run(&mut rt);
            assert!(r.gbps > 0.0, "{op:?}");
        }
    }

    #[test]
    fn sync_mode_reports_percentiles() {
        let mut rt = DsaRuntime::spr_default();
        let r = Measure::new(OpKind::Memcpy, 4096).iters(16).run(&mut rt);
        assert!(r.p50_latency > SimDuration::ZERO);
        assert!(r.p99_latency >= r.p50_latency);
        let mut rt = DsaRuntime::spr_default();
        let a =
            Measure::new(OpKind::Memcpy, 4096).iters(16).mode(Mode::Async { qd: 8 }).run(&mut rt);
        assert_eq!(a.p50_latency, SimDuration::ZERO, "async modes skip percentiles");
    }
}
