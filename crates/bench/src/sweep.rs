//! One builder for the grid-shaped figure harnesses.
//!
//! Nearly every figure in the paper is the same experiment shape: a grid of
//! (row axis × column axis) cells — transfer sizes × batch sizes, sizes ×
//! WQ sizes, read buffers × source locations — where each cell constructs a
//! fresh [`DsaRuntime`], runs one [`Measure`] point, and prints a number.
//! [`Sweep`] owns that shape once: the banner/header/row boilerplate, the
//! label plumbing, and the cell loop, so a bench binary shrinks to "axes +
//! how to build the runtime + what to measure".
//!
//! ```no_run
//! use dsa_bench::measure::{Measure, Mode, SIZES};
//! use dsa_bench::sweep::Sweep;
//! use dsa_core::runtime::DsaRuntime;
//! use dsa_ops::OpKind;
//!
//! Sweep::new("Fig. X", "async copy vs queue depth")
//!     .sizes(SIZES)
//!     .cols([8usize, 32].iter().map(|&qd| (format!("QD:{qd}"), qd)))
//!     .note("(GB/s)")
//!     .run(
//!         |_, _| DsaRuntime::spr_default(),
//!         |&size, &qd| Measure::new(OpKind::Memcpy, size).mode(Mode::Async { qd }),
//!     );
//! ```

use crate::measure::Measure;
use crate::table;
use dsa_core::runtime::DsaRuntime;

/// A labelled two-axis experiment grid. `R` and `C` are the row/column
/// axis value types — whatever the cell closures need (sizes, modes,
/// locations, device counts, tuples of them).
pub struct Sweep<R, C> {
    figure: String,
    title: String,
    row_head: String,
    rows: Vec<(String, R)>,
    cols: Vec<(String, C)>,
    note: Option<String>,
}

impl<R, C> Sweep<R, C> {
    /// Starts a sweep titled like `table::banner(figure, title)`.
    pub fn new(figure: &str, title: &str) -> Sweep<R, C> {
        Sweep {
            figure: figure.to_string(),
            title: title.to_string(),
            row_head: "size".to_string(),
            rows: Vec::new(),
            cols: Vec::new(),
            note: None,
        }
    }

    /// Header label of the row axis (defaults to `"size"`).
    pub fn row_head(mut self, head: &str) -> Sweep<R, C> {
        self.row_head = head.to_string();
        self
    }

    /// Sets the row axis as (label, value) pairs.
    pub fn rows(mut self, rows: impl IntoIterator<Item = (String, R)>) -> Sweep<R, C> {
        self.rows = rows.into_iter().collect();
        self
    }

    /// Sets the column axis as (label, value) pairs.
    pub fn cols(mut self, cols: impl IntoIterator<Item = (String, C)>) -> Sweep<R, C> {
        self.cols = cols.into_iter().collect();
        self
    }

    /// A trailing parenthetical printed under the table.
    pub fn note(mut self, note: &str) -> Sweep<R, C> {
        self.note = Some(note.to_string());
        self
    }

    /// Renders the grid with an arbitrary per-cell formatter — the escape
    /// hatch for sweeps that print something other than a `Measure` rate.
    pub fn render(self, mut cell: impl FnMut(&R, &C) -> String) {
        table::banner(&self.figure, &self.title);
        let mut head = vec![self.row_head.as_str()];
        head.extend(self.cols.iter().map(|(l, _)| l.as_str()));
        table::header(&head);
        for (label, r) in &self.rows {
            let mut cells = vec![label.clone()];
            cells.extend(self.cols.iter().map(|(_, c)| cell(r, c)));
            table::row(&cells);
        }
        if let Some(note) = &self.note {
            println!("{note}");
        }
    }

    /// Runs one `Measure` per cell on a freshly built runtime and prints
    /// the achieved GB/s. `rt_of` owns runtime construction; `m_of`
    /// describes the measurement point.
    pub fn run(
        self,
        mut rt_of: impl FnMut(&R, &C) -> DsaRuntime,
        mut m_of: impl FnMut(&R, &C) -> Measure,
    ) {
        self.render(|r, c| {
            let mut rt = rt_of(r, c);
            table::f2(m_of(r, c).run(&mut rt).gbps)
        });
    }

    /// Like [`run`](Sweep::run), but prints the DSA/software speedup ratio
    /// of each cell instead of the raw rate.
    pub fn run_speedup(
        self,
        mut rt_of: impl FnMut(&R, &C) -> DsaRuntime,
        mut m_of: impl FnMut(&R, &C) -> Measure,
    ) {
        self.render(|r, c| {
            let mut rt = rt_of(r, c);
            let m = m_of(r, c);
            let dsa = m.run(&mut rt).gbps;
            table::f2(dsa / m.cpu_gbps(&rt))
        });
    }
}

impl<C> Sweep<u64, C> {
    /// The canonical row axis: transfer sizes labelled `256, 4K, 2M, …`.
    pub fn sizes(self, sizes: &[u64]) -> Sweep<u64, C> {
        self.rows(sizes.iter().map(|&s| (table::size_label(s), s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_axis_uses_size_labels() {
        let s: Sweep<u64, ()> = Sweep::new("T", "t").sizes(&[256, 4096, 2 << 20]);
        let labels: Vec<&str> = s.rows.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["256", "4K", "2M"]);
    }

    #[test]
    fn render_visits_every_cell_row_major() {
        let mut seen = Vec::new();
        Sweep::new("T", "t")
            .rows([("a".to_string(), 1u32), ("b".to_string(), 2)])
            .cols([("x".to_string(), 10u32), ("y".to_string(), 20)])
            .note("(done)")
            .render(|r, c| {
                seen.push(r * c);
                (r * c).to_string()
            });
        assert_eq!(seen, [10, 20, 20, 40]);
    }
}
