//! # dsa-bench — experiment harnesses
//!
//! One bench target per table/figure of the paper (see `DESIGN.md` §5 for
//! the index). Each target is a `harness = false` binary that prints the
//! figure's rows/series; `cargo bench` runs them all. [`measure`] holds the
//! shared measurement machinery; [`sweep`] the grid-shaped experiment
//! builder most figure harnesses use; [`table`] the output formatting.

pub mod measure;
pub mod sweep;
pub mod table;

pub use measure::{Measure, MeasureResult, Mode};
pub use sweep::Sweep;
