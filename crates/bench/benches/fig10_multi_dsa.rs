//! Fig. 10: throughput using multiple DSA instances, destination writes
//! steered to the LLC (cache control = 1, the DDIO path).
//!
//! Expected: linear scaling with instances for transfer sizes whose write
//! footprint fits the DDIO ways; beyond ~64 KB the aggregate footprint
//! outruns the DDIO share of the LLC (the *leaky DMA* problem) and 3–4
//! instances fall below linear, limited by memory bandwidth.

use dsa_bench::measure::{Measure, Mode, SIZES};
use dsa_bench::table;
use dsa_core::runtime::DsaRuntime;
use dsa_device::config::DeviceConfig;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;

fn main() {
    table::banner("Fig. 10", "aggregate copy throughput vs number of DSA instances (CC=1)");
    table::header(&["size", "1 DSA", "2 DSA", "3 DSA", "4 DSA"]);
    for &size in SIZES.iter().filter(|&&s| s >= 4096) {
        let mut cells = vec![table::size_label(size)];
        for n in 1..=4usize {
            let mut rt = DsaRuntime::builder(Platform::spr())
                .devices(n, DeviceConfig::full_device())
                .build();
            // Batched submission so one submitting core is not the limit
            // (the paper drives each instance from its own queue).
            let iters = if size >= 1 << 20 { 24 } else { 64 } * n as u64;
            let r = Measure::new(OpKind::Memcpy, size)
                .iters(iters)
                .mode(Mode::AsyncBatch { bs: 16, window: 4 * n })
                .cache_control(true)
                .devices(n)
                .run(&mut rt);
            cells.push(table::f2(r.gbps));
        }
        table::row(&cells);
    }
    println!("(GB/s; the >64K rows bend below linear for 3-4 instances — leaky DMA)");
}
