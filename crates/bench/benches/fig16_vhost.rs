//! Fig. 16b: DPDK-Vhost/TestPMD packet forwarding rate over packet sizes,
//! CPU copies vs batched asynchronous DSA offload. The DSA line stays
//! roughly flat; the CPU line falls as packet copying dominates; DSA wins
//! 1.14–2.29× above 256-byte packets.

use dsa_bench::table;
use dsa_core::backend::Engine;
use dsa_core::config::presets;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::topology::Platform;
use dsa_workloads::vhost::Testpmd;

fn main() {
    table::banner("Fig. 16b", "vhost forwarding rate (Mpps) vs packet size");
    table::header(&["pkt size", "CPU Mpps", "DSA Mpps", "DSA/CPU"]);
    for &size in &[64u32, 128, 256, 512, 1024, 1518] {
        let run = |engine: Engine| -> f64 {
            let mut rt = DsaRuntime::builder(Platform::spr())
                .device(presets::engines_behind_one_dwq(4, 128))
                .build();
            Testpmd { pkt_size: size, bursts: 200, ..Testpmd::default() }
                .run(&mut rt, engine)
                .expect("forwarding run failed")
                .mpps
        };
        let cpu = run(Engine::Cpu);
        let dsa = run(Engine::dsa());
        table::row(&[size.to_string(), table::f2(cpu), table::f2(dsa), table::f2(dsa / cpu)]);
    }
    println!("(paper: DSA ~flat, CPU falls with size; 1.14-2.29x above 256 B)");
}
