//! Ablation (§3.3): the new x86 instruction costs — `MOVDIR64B` (posted)
//! vs `ENQCMD` (non-posted round trip) submission, and spin-poll vs
//! `UMWAIT` vs interrupt completion.

use dsa_bench::table;
use dsa_core::config::presets;
use dsa_core::job::Job;
use dsa_core::runtime::DsaRuntime;
use dsa_core::submit::WaitMethod;
use dsa_mem::buffer::Location;
use dsa_mem::topology::Platform;

fn main() {
    table::banner("Ablation §3.3", "submission instruction cost: sync latency DWQ vs SWQ");
    table::header(&["size", "MOVDIR64B us", "ENQCMD us", "delta ns"]);
    for &size in &[256u64, 4096, 65536] {
        let mut rt_d = DsaRuntime::spr_default();
        let src = rt_d.alloc(size, Location::local_dram());
        let dst = rt_d.alloc(size, Location::local_dram());
        let dwq = Job::memcpy(&src, &dst).execute(&mut rt_d).unwrap();

        let mut rt_s =
            DsaRuntime::builder(Platform::spr()).device(presets::one_swq_one_engine()).build();
        let src = rt_s.alloc(size, Location::local_dram());
        let dst = rt_s.alloc(size, Location::local_dram());
        let swq = Job::memcpy(&src, &dst).execute(&mut rt_s).unwrap();
        table::row(&[
            table::size_label(size),
            table::us(dwq.elapsed()),
            table::us(swq.elapsed()),
            format!("{:.0}", swq.elapsed().as_ns_f64() - dwq.elapsed().as_ns_f64()),
        ]);
    }
    println!("(ENQCMD pays a non-posted round trip on every submission)");

    table::banner("Ablation §3.3", "completion wait methods at 64 KiB");
    table::header(&["method", "observed us", "busy us", "idle us"]);
    for (name, method) in [
        ("spin", WaitMethod::SpinPoll),
        ("umwait", WaitMethod::Umwait),
        ("interrupt", WaitMethod::Interrupt),
    ] {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(64 << 10, Location::local_dram());
        let dst = rt.alloc(64 << 10, Location::local_dram());
        let r = Job::memcpy(&src, &dst).wait_method(method).execute(&mut rt).unwrap();
        let busy = r.phases.wait - r.idle_wait.min(r.phases.wait);
        table::row(&[
            name.to_string(),
            table::us(r.elapsed()),
            table::us(busy),
            table::us(r.idle_wait),
        ]);
    }
    println!(
        "(spin observes fastest but burns the core; UMWAIT trades ~100 ns of\n\
         wake-up latency for a sleeping core; interrupts free the core fully\n\
         at microseconds of notification latency — §4.4)"
    );
}
