//! Fig. 21: SPDK-style NVMe/TCP target read IOPS and latency vs number of
//! target cores, with the Data Digest disabled, computed by ISA-L, or
//! offloaded to DSA. DSA tracks the no-digest line and saturates the path
//! with far fewer cores than ISA-L.

use dsa_bench::table;
use dsa_core::backend::Engine;
use dsa_core::runtime::DsaRuntime;
use dsa_workloads::nvmetcp::NvmeTcpTarget;

fn sweep(io_size: u64, label: &str) {
    table::banner("Fig. 21", label);
    table::header(&["cores", "none kIOPS", "isal kIOPS", "dsa kIOPS", "dsa lat us", "isal lat us"]);
    for cores in [1u32, 2, 4, 6, 8, 10, 12] {
        let mut rt = DsaRuntime::spr_default();
        let none = NvmeTcpTarget { io_size, cores, digest: None }.run(&mut rt, 2).unwrap();
        let isal =
            NvmeTcpTarget { io_size, cores, digest: Some(Engine::Cpu) }.run(&mut rt, 2).unwrap();
        let dsa =
            NvmeTcpTarget { io_size, cores, digest: Some(Engine::dsa()) }.run(&mut rt, 2).unwrap();
        table::row(&[
            cores.to_string(),
            table::f2(none.kiops),
            table::f2(isal.kiops),
            table::f2(dsa.kiops),
            table::us(dsa.avg_latency),
            table::us(isal.avg_latency),
        ]);
    }
    let mut rt = DsaRuntime::spr_default();
    let sat_none = NvmeTcpTarget { io_size, cores: 1, digest: None }.saturation_cores(&mut rt);
    let sat_dsa =
        NvmeTcpTarget { io_size, cores: 1, digest: Some(Engine::dsa()) }.saturation_cores(&mut rt);
    let sat_isal =
        NvmeTcpTarget { io_size, cores: 1, digest: Some(Engine::Cpu) }.saturation_cores(&mut rt);
    println!("saturation cores — none: {sat_none}, dsa: {sat_dsa}, isal: {sat_isal}");
}

fn main() {
    sweep(16 << 10, "(a) 16 KiB random reads (paper: DSA/none saturate at ~6 cores, ISA-L >8)");
    sweep(128 << 10, "(b) 128 KiB sequential reads (paper: ~2 cores vs ~6)");
}
