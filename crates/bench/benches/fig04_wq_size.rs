//! Fig. 4: asynchronous Memory Copy throughput with different WQ sizes —
//! more in-flight descriptors hide offload latency until saturation;
//! "assigning 32 entries for a single WQ can provide almost the maximum
//! throughput possible" (G6).

use dsa_bench::measure::{Measure, Mode, SIZES};
use dsa_bench::Sweep;
use dsa_core::config::presets;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;

fn main() {
    Sweep::new("Fig. 4", "async Memory Copy throughput vs WQ size (QD > WQS, DWQ)")
        .sizes(SIZES)
        .cols([1u32, 2, 8, 32, 128].iter().map(|&w| (format!("WQS:{w}"), w)))
        .note("(GB/s; throughput saturates once the WQ covers the bandwidth-delay product)")
        .run(
            |_, &wqs| {
                DsaRuntime::builder(Platform::spr())
                    .device(presets::engines_behind_one_dwq(1, wqs))
                    .build()
            },
            // Software queue deeper than the WQ: the WQ gates in-flight.
            |&size, _| Measure::new(OpKind::Memcpy, size).iters(96).mode(Mode::Async { qd: 160 }),
        );
}
