//! Fig. 4: asynchronous Memory Copy throughput with different WQ sizes —
//! more in-flight descriptors hide offload latency until saturation;
//! "assigning 32 entries for a single WQ can provide almost the maximum
//! throughput possible" (G6).

use dsa_bench::measure::{Measure, Mode, SIZES};
use dsa_bench::table;
use dsa_core::config::presets;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;

fn main() {
    table::banner("Fig. 4", "async Memory Copy throughput vs WQ size (QD > WQS, DWQ)");
    let wq_sizes = [1u32, 2, 8, 32, 128];
    let mut head = vec!["size".to_string()];
    head.extend(wq_sizes.iter().map(|w| format!("WQS:{w}")));
    table::header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for &size in SIZES {
        let mut cells = vec![table::size_label(size)];
        for &wqs in &wq_sizes {
            let mut rt = DsaRuntime::builder(Platform::spr())
                .device(presets::engines_behind_one_dwq(1, wqs))
                .build();
            // Software queue deeper than the WQ: the WQ gates in-flight.
            let r = Measure::new(OpKind::Memcpy, size)
                .iters(96)
                .mode(Mode::Async { qd: 160 })
                .run(&mut rt);
            cells.push(table::f2(r.gbps));
        }
        table::row(&cells);
    }
    println!("(GB/s; throughput saturates once the WQ covers the bandwidth-delay product)");
}
