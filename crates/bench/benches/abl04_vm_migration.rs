//! Ecosystem demo (§5 "datacenter tax"): VM live migration with DSA —
//! iterative pre-copy with Create/Apply Delta Record shipping sparse dirty
//! blocks, swept over the guest's dirtying density.

use dsa_bench::table;
use dsa_core::backend::Engine;
use dsa_core::runtime::DsaRuntime;
use dsa_device::config::DeviceConfig;
use dsa_mem::topology::Platform;
use dsa_workloads::migration::{Migration, MigrationConfig};

fn main() {
    table::banner("§5 datacenter tax", "VM live migration: CPU vs DSA total time and downtime");
    table::header(&[
        "density %",
        "cpu ms",
        "dsa ms",
        "speedup",
        "cpu dt us",
        "dsa dt us",
        "delta blks",
    ]);
    for density in [0.01f64, 0.05, 0.20, 0.80] {
        let cfg = MigrationConfig {
            blocks: 64,
            block_size: 64 << 10,
            dirty_density: density,
            ..MigrationConfig::default()
        };
        let run = |engine| {
            let mut rt =
                DsaRuntime::builder(Platform::spr()).device(DeviceConfig::full_device()).build();
            Migration::new(&mut rt, cfg).run(&mut rt, engine).unwrap()
        };
        let cpu = run(Engine::Cpu);
        let dsa = run(Engine::dsa());
        table::row(&[
            format!("{:.0}", density * 100.0),
            format!("{:.3}", cpu.total_time.as_secs_f64() * 1e3),
            format!("{:.3}", dsa.total_time.as_secs_f64() * 1e3),
            table::f2(cpu.total_time.as_ns_f64() / dsa.total_time.as_ns_f64()),
            table::us(cpu.downtime),
            table::us(dsa.downtime),
            dsa.delta_blocks.to_string(),
        ]);
    }
    println!(
        "(sparse dirtying ships as delta records — tiny on the wire; dense\n\
         dirtying falls back to full block copies, still offloaded)"
    );
}
