//! Ablation: the multi-tenant service layer — WQ placement vs fairness
//! and tail latency under a saturating aggressor.
//!
//! One aggressor tenant floods 64 KiB copies at far beyond device
//! bandwidth while N polite latency-class tenants offer a modest open-loop
//! stream. The sweep crosses tenant count with the three placement plans:
//! dedicated WQs isolate the flood to its own queue, the fully shared WQ
//! lets it starve everyone's slots (polite jobs exhaust their retry budget
//! and degrade to the CPU fallback), and by-class placement recovers most
//! of the isolation while still pooling throughput tenants.
//!
//! Reported per cell: Jain fairness over accelerator-served shares, the
//! polite tenants' mean share, their worst p99 latency, and how many jobs
//! degraded to the CPU. The whole sweep is deterministic; the final check
//! replays one cell and asserts a bit-identical report digest.

use dsa_bench::table;
use dsa_svc::prelude::*;

const SEED: u64 = 0xFA1C_0DE5;

/// Mean polite inter-arrival gap, stretched at width 8 so aggregate polite
/// demand stays below device bandwidth (isolation, not overcommit, is the
/// variable under test).
fn polite_gap(polite: usize) -> SimDuration {
    SimDuration::from_us(if polite > 3 { 8 } else { 4 })
}

fn specs(polite: usize) -> Vec<TenantSpec> {
    let gap = polite_gap(polite);
    // The aggressor must keep flooding for the polite tenants' whole
    // 200-job window, with slack for its own backoff stalls.
    let aggr_jobs = 200 * (gap.as_ps() / 1000) / 300 + 200;
    let mut v = vec![TenantSpec::new("aggr", 64 << 10, aggr_jobs)
        .with_arrival(Arrival::open(SimDuration::from_ns(300)))
        .with_outstanding(256)
        .with_retry_budget(32)
        .with_backoff(SimDuration::from_ns(100))];
    for i in 0..polite {
        v.push(
            TenantSpec::new(&format!("polite{i}"), 16 << 10, 200)
                .with_class(QosClass::Latency)
                .with_arrival(Arrival::open(gap))
                .with_outstanding(8)
                .with_retry_budget(1),
        );
    }
    v
}

fn run_plan(plan: PlanSpec, polite: usize) -> ServiceReport {
    let cfg = ServiceConfig::builder()
        .plan(plan)
        .seed(SEED)
        .tenants(specs(polite))
        .build()
        .expect("plan fits the DSA 1.0 envelope");
    DsaService::from_config(cfg).expect("runtime accepts a validated config").run()
}

/// (mean polite share, worst polite p99 µs, total CPU-degraded jobs).
fn polite_view(rep: &ServiceReport) -> (f64, f64, u64) {
    let polite: Vec<_> = rep.tenants.iter().skip(1).collect();
    let share = polite.iter().map(|t| t.dsa_share).sum::<f64>() / polite.len() as f64;
    let p99 = polite.iter().map(|t| t.p99.as_ns_f64()).fold(0.0f64, f64::max) / 1000.0;
    let cpu = rep.tenants.iter().map(|t| t.cpu_completed).sum();
    (share, p99, cpu)
}

fn main() {
    table::banner(
        "Ablation 6",
        "multi-tenant placement: aggressor + N polite tenants (Jain fairness over DSA shares)",
    );
    table::header(&["tenants", "plan", "fairness", "polite share", "polite p99 us", "cpu jobs"]);
    for polite in [1usize, 3, 7] {
        let mut fairness = Vec::new();
        for plan in [PlanSpec::Dedicated, PlanSpec::ByClass, PlanSpec::Shared] {
            let rep = run_plan(plan, polite);
            let (share, p99, cpu) = polite_view(&rep);
            table::row(&[
                (polite + 1).to_string(),
                rep.plan.clone(),
                format!("{:.4}", rep.fairness),
                format!("{share:.3}"),
                table::f2(p99),
                cpu.to_string(),
            ]);
            fairness.push(rep.fairness);
        }
        assert!(
            fairness[0] > fairness[2],
            "dedicated WQs must be fairer than one shared WQ at saturation \
             ({} polite): {:.4} vs {:.4}",
            polite,
            fairness[0],
            fairness[2]
        );
    }
    println!(
        "(dedicated/by-class WQs confine the flood to its own queue; the shared\n\
         WQ lets it take every slot, so polite jobs burn their retry budget\n\
         and degrade to the CPU fallback)"
    );

    // Determinism gate: replaying one cell must be bit-identical.
    let a = run_plan(PlanSpec::Dedicated, 3);
    let b = run_plan(PlanSpec::Dedicated, 3);
    assert_eq!(a.digest(), b.digest(), "replay must be bit-identical");
    println!("replay digest: {:#018x} (bit-identical across runs)", a.digest());
}
