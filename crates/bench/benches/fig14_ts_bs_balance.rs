//! Fig. 14: throughput when splitting the *same total transfer* between
//! transfer size and batch size (G1: "keep a balanced batch size and
//! transfer size"). Coalescing contiguous data into one large descriptor
//! wins; when batching is needed, modest batches (4–8) are best for
//! synchronous use.

use dsa_bench::measure::{Measure, Mode};
use dsa_bench::table;
use dsa_core::runtime::DsaRuntime;
use dsa_ops::OpKind;

fn main() {
    for &(total, label) in
        &[(64u64 << 10, "total 64 KiB"), (512 << 10, "total 512 KiB"), (2 << 20, "total 2 MiB")]
    {
        table::banner("Fig. 14", &format!("sync/async throughput at fixed {label}"));
        table::header(&["TS:BS", "sync GB/s", "async GB/s"]);
        for bs in [1u32, 2, 4, 8, 16, 32, 64] {
            let ts = total / bs as u64;
            if ts < 512 {
                continue;
            }
            let mut rt = DsaRuntime::spr_default();
            let sync = if bs == 1 {
                Measure::new(OpKind::Memcpy, ts).iters(24).mode(Mode::Sync).run(&mut rt)
            } else {
                Measure::new(OpKind::Memcpy, ts).iters(24).mode(Mode::SyncBatch { bs }).run(&mut rt)
            };
            let mut rt = DsaRuntime::spr_default();
            let asyn = if bs == 1 {
                Measure::new(OpKind::Memcpy, ts).iters(48).mode(Mode::Async { qd: 32 }).run(&mut rt)
            } else {
                Measure::new(OpKind::Memcpy, ts)
                    .iters(48)
                    .mode(Mode::AsyncBatch { bs, window: 4 })
                    .run(&mut rt)
            };
            table::row(&[
                format!("{}:{}", table::size_label(ts), bs),
                table::f2(sync.gbps),
                table::f2(asyn.gbps),
            ]);
        }
        println!("(same total bytes per point; larger batches add descriptor management overhead)");
    }
}
