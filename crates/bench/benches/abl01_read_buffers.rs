//! Ablation (§3.4/F3): "Decreasing the number of read buffers for a PE may
//! affect its achievable bandwidth, but it also frees read buffers that can
//! then be allocated to other engines."
//!
//! Read buffers bound memory-level parallelism: achievable read bandwidth
//! is `buffers × 64 B / load latency`. For low-latency local DRAM even a
//! modest allocation hides the latency; for high-latency media (CXL,
//! remote socket) the allocation becomes the binding constraint.

use dsa_bench::measure::{Measure, Mode};
use dsa_bench::Sweep;
use dsa_core::config::AccelConfig;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;

fn main() {
    let srcs = [
        ("DRAM src", Location::local_dram()),
        ("remote src", Location::remote_dram()),
        ("CXL src", Location::Cxl),
    ];
    Sweep::new("Ablation F3", "async copy throughput vs read-buffer allocation (1 MiB transfers)")
        .row_head("buffers")
        .rows([8u32, 16, 32, 64, 96].iter().map(|&b| (b.to_string(), b)))
        .cols(srcs.iter().map(|&(l, s)| (l.to_string(), s)))
        .note(
            "(GB/s; high-latency sources need more buffers to reach the fabric cap:\n\
             the MLP bound is buffers x 64 B / load latency)",
        )
        .run(
            |&buffers, _| {
                let cfg = AccelConfig::builder()
                    .group(1)
                    .read_buffers(buffers)
                    .dedicated_wq(32)
                    .build()
                    .expect("within the DSA 1.0 envelope");
                DsaRuntime::builder(Platform::spr()).device(cfg).build()
            },
            |_, &src| {
                Measure::new(OpKind::Memcpy, 1 << 20)
                    .iters(24)
                    .mode(Mode::Async { qd: 16 })
                    .locations(src, Location::local_dram())
            },
        );
}
