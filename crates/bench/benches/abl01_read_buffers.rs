//! Ablation (§3.4/F3): "Decreasing the number of read buffers for a PE may
//! affect its achievable bandwidth, but it also frees read buffers that can
//! then be allocated to other engines."
//!
//! Read buffers bound memory-level parallelism: achievable read bandwidth
//! is `buffers × 64 B / load latency`. For low-latency local DRAM even a
//! modest allocation hides the latency; for high-latency media (CXL,
//! remote socket) the allocation becomes the binding constraint.

use dsa_bench::measure::{Measure, Mode};
use dsa_bench::table;
use dsa_core::config::AccelConfig;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;

fn rt_with_buffers(per_engine: u32) -> DsaRuntime {
    let mut cfg = AccelConfig::new();
    let g = cfg.add_group(1);
    cfg.limit_read_buffers(g, per_engine);
    cfg.add_dedicated_wq(32, g);
    DsaRuntime::builder(Platform::spr()).device(cfg.enable().unwrap()).build()
}

fn main() {
    table::banner(
        "Ablation F3",
        "async copy throughput vs read-buffer allocation (1 MiB transfers)",
    );
    table::header(&["buffers", "DRAM src", "remote src", "CXL src"]);
    for buffers in [8u32, 16, 32, 64, 96] {
        let mut cells = vec![buffers.to_string()];
        for src in [Location::local_dram(), Location::remote_dram(), Location::Cxl] {
            let mut rt = rt_with_buffers(buffers);
            let r = Measure::new(OpKind::Memcpy, 1 << 20)
                .iters(24)
                .mode(Mode::Async { qd: 16 })
                .locations(src, Location::local_dram())
                .run(&mut rt);
            cells.push(table::f2(r.gbps));
        }
        table::row(&cells);
    }
    println!(
        "(GB/s; high-latency sources need more buffers to reach the fabric cap:\n\
         the MLP bound is buffers x 64 B / load latency)"
    );
}
