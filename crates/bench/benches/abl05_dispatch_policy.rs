//! Ablation: the policy dispatcher against static backends, and the
//! device-pool selection policies.
//!
//! Part 1 sweeps transfer size under the CPU-only, DSA-only, and adaptive
//! routing policies. The adaptive dispatcher compares live cost estimates
//! per call (guideline G2 as policy), so it must track whichever static
//! backend is faster at every size — within 10%, including around the
//! ≈ 4 KiB synchronous break-even where the two curves cross.
//!
//! Part 2 sweeps pool width × selection policy for a 64 KiB asynchronous
//! copy stream: round-robin and least-loaded spread descriptors across
//! instances, NUMA-local restricts the pool to the destination's socket.

use dsa_bench::{table, Sweep};
use dsa_core::backend::{DsaBackend, PoolPolicy};
use dsa_core::dispatch::{DispatchPolicy, Dispatcher};
use dsa_core::runtime::DsaRuntime;
use dsa_device::config::DeviceConfig;
use dsa_mem::buffer::Location;
use dsa_mem::topology::Platform;
use std::collections::BTreeMap;

fn rt_with_devices(n: usize) -> DsaRuntime {
    let mut b = DsaRuntime::builder(Platform::spr());
    for _ in 0..n {
        b = b.device(DeviceConfig::full_device());
    }
    b.build()
}

const REPS: u32 = 32;

/// Mean per-copy core time under `policy` at `size` bytes.
fn measure(policy: DispatchPolicy, size: u64) -> f64 {
    let mut rt = rt_with_devices(1);
    let mut d = Dispatcher::new().with_policy(policy);
    let src = rt.alloc(size, Location::local_dram());
    let dst = rt.alloc(size, Location::local_dram());
    rt.fill_random(&src);
    // Warm the ATC so the loop measures steady state (what the
    // dispatcher's estimates model).
    d.memcpy(&mut rt, &src, &dst).unwrap();
    let start = rt.now();
    for _ in 0..REPS {
        d.memcpy(&mut rt, &src, &dst).unwrap();
    }
    rt.now().duration_since(start).as_ns_f64() / f64::from(REPS)
}

/// Aggregate GB/s of a 128-deep 64 KiB async copy stream over `devices`
/// instances selected by `policy`.
fn pool_gbps(devices: usize, policy: PoolPolicy) -> f64 {
    let mut rt = rt_with_devices(devices);
    let mut d = Dispatcher::new()
        .with_policy(DispatchPolicy::DsaOnly)
        .with_backend(DsaBackend::all_devices(&rt).with_policy(policy))
        .with_async_depth(64);
    let size = 64u64 << 10;
    let src = rt.alloc(size, Location::local_dram());
    let dst = rt.alloc(size, Location::local_dram());
    rt.fill_random(&src);
    let start = rt.now();
    for _ in 0..128 {
        d.memcpy(&mut rt, &src, &dst).unwrap();
    }
    let end = d.drain(&mut rt);
    128.0 * size as f64 / end.duration_since(start).as_ns_f64()
}

/// Columns of part 1: the three policies plus two derived cells.
#[derive(Clone, Copy)]
enum Col {
    Policy(DispatchPolicy, u8),
    Picked,
    VsBest,
}

fn main() {
    let cols = [
        ("cpu ns".to_string(), Col::Policy(DispatchPolicy::CpuOnly, 0)),
        ("dsa ns".to_string(), Col::Policy(DispatchPolicy::DsaOnly, 1)),
        ("adaptive ns".to_string(), Col::Policy(DispatchPolicy::Adaptive, 2)),
        ("picked".to_string(), Col::Picked),
        ("vs best".to_string(), Col::VsBest),
    ];
    // Memoize measurements so the derived columns reuse the policy cells.
    let mut cache: BTreeMap<(u64, u8), f64> = BTreeMap::new();
    let mut timed =
        move |policy, tag, size| *cache.entry((size, tag)).or_insert_with(|| measure(policy, size));
    Sweep::new("Ablation 5a", "dispatch policy vs transfer size (per-copy core ns)")
        .sizes(&[256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10])
        .cols(cols)
        .note("(adaptive tracks the faster side of the ≈4 KiB sync break-even)")
        .render(|&size, col| {
            let cpu = timed(DispatchPolicy::CpuOnly, 0, size);
            let dsa = timed(DispatchPolicy::DsaOnly, 1, size);
            match col {
                Col::Policy(p, tag) => table::f2(timed(*p, *tag, size)),
                Col::Picked => (if cpu <= dsa { "cpu" } else { "dsa" }).to_string(),
                Col::VsBest => {
                    let adaptive = timed(DispatchPolicy::Adaptive, 2, size);
                    let best = cpu.min(dsa);
                    let ratio = adaptive / best;
                    assert!(
                        ratio <= 1.10,
                        "adaptive must stay within 10% of the best static backend at {size} B: \
                         adaptive {adaptive:.0} ns vs best {best:.0} ns"
                    );
                    format!("{ratio:.3}")
                }
            }
        });

    let policies = [
        ("round-robin", PoolPolicy::RoundRobin),
        ("least-loaded", PoolPolicy::LeastLoaded),
        ("numa-local", PoolPolicy::NumaLocal),
    ];
    Sweep::new("Ablation 5b", "pool policy x device count (64 KiB async stream GB/s)")
        .row_head("devices")
        .rows([1usize, 2, 4].iter().map(|&d| (d.to_string(), d)))
        .cols(policies.iter().map(|&(l, p)| (l.to_string(), p)))
        .note(
            "(round-robin and least-loaded scale with pool width; NUMA-local\n\
             trades peak width for destination-socket locality)",
        )
        .render(|&devices, &policy| table::f2(pool_gbps(devices, policy)));
}
