//! Fig. 5: breakdown of `memcpy()` latency on the CPU (left bar) and of the
//! DSA Memory Copy offload (stacked bars: allocate / prepare / submit /
//! wait) with varying batch sizes at a 4 KiB transfer size.
//!
//! Expected shape: descriptor *allocation* dominates when counted (and is
//! amortizable); waiting and submission follow; preparation is negligible.

use dsa_bench::table;
use dsa_core::job::{Batch, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_ops::OpKind;
use dsa_sim::time::SimDuration;

fn main() {
    table::banner(
        "Fig. 5",
        "offload latency breakdown at TS 4 KiB (per-descriptor, us)",
    );
    let rt = DsaRuntime::spr_default();
    let cpu = rt.cpu_time(
        OpKind::Memcpy,
        4096,
        Location::local_dram(),
        Location::local_dram(),
    );
    println!("CPU memcpy (cold 4 KiB): {:.2} us\n", cpu.as_us_f64());

    table::header(&["BS", "alloc", "prepare", "submit", "wait", "total"]);
    for bs in [1u32, 2, 4, 8, 16, 32] {
        let mut rt = DsaRuntime::spr_default();
        let size = 4096u64;
        if bs == 1 {
            let src = rt.alloc(size, Location::local_dram());
            let dst = rt.alloc(size, Location::local_dram());
            let report = Job::memcpy(&src, &dst).count_alloc(true).execute(&mut rt).unwrap();
            let p = report.phases;
            table::row(&[
                bs.to_string(),
                table::us(p.alloc),
                table::us(p.prepare),
                table::us(p.submit),
                table::us(p.wait),
                table::us(p.total()),
            ]);
        } else {
            // Batched: one allocation covers the descriptor array; phase
            // costs below are per descriptor (total / BS).
            let mut batch = Batch::new();
            for _ in 0..bs {
                let src = rt.alloc(size, Location::local_dram());
                let dst = rt.alloc(size, Location::local_dram());
                batch.push(Job::memcpy(&src, &dst));
            }
            let alloc = SimDuration::from_ns(900); // one array allocation
            let before = rt.now();
            let report = batch.execute(&mut rt).unwrap();
            let total = rt.now().duration_since(before) + alloc;
            let prepare = SimDuration::from_ns(12) * bs as u64;
            let submit = SimDuration::from_ns(55);
            let wait = total - alloc - prepare - submit;
            let per = |d: SimDuration| table::us(d / bs as u64);
            assert!(report.batch_record.status.is_ok());
            table::row(&[
                bs.to_string(),
                per(alloc),
                per(prepare),
                per(submit),
                per(wait),
                per(total),
            ]);
        }
    }
    println!("(per-descriptor phase costs; batching amortizes alloc+submit)");
}
