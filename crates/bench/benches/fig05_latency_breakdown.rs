//! Fig. 5: breakdown of `memcpy()` latency on the CPU (left bar) and of the
//! DSA Memory Copy offload (stacked bars: allocate / prepare / submit /
//! wait) with varying batch sizes at a 4 KiB transfer size.
//!
//! Both tables below are derived from **recorded telemetry spans**, not
//! ad-hoc arithmetic: a [`Hub`] is attached to the runtime, the job layer
//! emits alloc/prepare/submit/wait spans, and the device emits a
//! six-phase lifecycle span per descriptor.
//!
//! Expected shape: descriptor *allocation* dominates when counted (and is
//! amortizable); waiting and submission follow; preparation is negligible.

use dsa_bench::table;
use dsa_core::job::{Batch, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_ops::OpKind;
use dsa_sim::time::SimDuration;
use dsa_telemetry::{Event, Hub, Phase, Track};

/// Sum of all job-track spans named `name` in the hub's event log.
fn job_span_sum(hub: &Hub, name: &str) -> SimDuration {
    hub.with_events(|events| {
        events
            .iter()
            .filter_map(|e| match e {
                Event::Span(s) if s.track == Track::Job && s.name == name => {
                    Some(s.end.duration_since(s.start))
                }
                _ => None,
            })
            .sum()
    })
}

fn main() {
    table::banner("Fig. 5", "offload latency breakdown at TS 4 KiB (per-descriptor, us)");
    let rt = DsaRuntime::spr_default();
    let cpu = rt.cpu_time(OpKind::Memcpy, 4096, Location::local_dram(), Location::local_dram());
    println!("CPU memcpy (cold 4 KiB): {:.2} us\n", cpu.as_us_f64());

    table::header(&["BS", "alloc", "prepare", "submit", "wait", "total"]);
    for bs in [1u32, 2, 4, 8, 16, 32] {
        let mut rt = DsaRuntime::spr_default();
        let hub = rt.trace();
        let size = 4096u64;
        if bs == 1 {
            let src = rt.alloc(size, Location::local_dram());
            let dst = rt.alloc(size, Location::local_dram());
            let report = Job::memcpy(&src, &dst).count_alloc(true).execute(&mut rt).unwrap();
            assert!(report.record.status.is_ok());
            // Core-side phases straight from the recorded job spans.
            let alloc = job_span_sum(&hub, "alloc");
            let prepare = job_span_sum(&hub, "prepare");
            let submit = job_span_sum(&hub, "submit");
            let wait = job_span_sum(&hub, "wait");
            assert_eq!(alloc + prepare + submit + wait, report.phases.total());
            table::row(&[
                bs.to_string(),
                table::us(alloc),
                table::us(prepare),
                table::us(submit),
                table::us(wait),
                table::us(alloc + prepare + submit + wait),
            ]);
        } else {
            // Batched: one allocation covers the descriptor array; phase
            // costs below are per descriptor (total / BS).
            let mut batch = Batch::new();
            for _ in 0..bs {
                let src = rt.alloc(size, Location::local_dram());
                let dst = rt.alloc(size, Location::local_dram());
                batch.push(Job::memcpy(&src, &dst));
            }
            let alloc = SimDuration::from_ns(900); // one array allocation
            let before = rt.now();
            let report = batch.execute(&mut rt).unwrap();
            let total = rt.now().duration_since(before) + alloc;
            let prepare = SimDuration::from_ns(12) * bs as u64;
            let submit = SimDuration::from_ns(55);
            let wait = total - alloc - prepare - submit;
            let per = |d: SimDuration| table::us(d / bs as u64);
            assert!(report.batch_record.status.is_ok());
            table::row(&[
                bs.to_string(),
                per(alloc),
                per(prepare),
                per(submit),
                per(wait),
                per(total),
            ]);
        }
    }
    println!("(per-descriptor phase costs; batching amortizes alloc+submit)");

    // Device-side view of the same offload: the six lifecycle phases of
    // each descriptor as the device recorded them (mean over QD-1 runs).
    println!();
    table::banner("Fig. 5b", "device-side descriptor lifecycle (mean us, from spans)");
    let mut rt = DsaRuntime::spr_default();
    let hub = rt.trace();
    let src = rt.alloc(4096, Location::local_dram());
    let dst = rt.alloc(4096, Location::local_dram());
    for _ in 0..32 {
        Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
    }
    let spans = hub.descriptor_spans();
    let n = spans.len() as u32;
    table::header(&["phase", "mean", "share"]);
    let total: SimDuration = spans.iter().map(|d| d.total()).sum();
    for p in Phase::ALL {
        let t: SimDuration = spans.iter().map(|d| d.phase_duration(p)).sum();
        table::row(&[
            p.name().to_string(),
            table::us(t / n as u64),
            format!("{:.1}%", 100.0 * t.as_ns_f64() / total.as_ns_f64()),
        ]);
    }
    table::row(&["total".to_string(), table::us(total / n as u64), "100.0%".to_string()]);
    println!("({n} descriptors; phases partition each descriptor's latency exactly)");
}
