//! Fig. 2: throughput improvement of every data-streaming operation over
//! its software counterpart, with varying transfer sizes (batch size 1).
//! (a) synchronous offload — break-even ≈ 4 KB; (b) asynchronous offload
//! (QD 32) — break-even ≈ 256 B.

use dsa_bench::measure::{Measure, Mode, SIZES};
use dsa_bench::Sweep;
use dsa_core::runtime::DsaRuntime;
use dsa_ops::OpKind;

fn op_label(op: OpKind) -> &'static str {
    match op {
        OpKind::Memcpy => "copy",
        OpKind::Dualcast => "dualcast",
        OpKind::Fill => "fill",
        OpKind::NtFill => "nt-fill",
        OpKind::Compare => "compare",
        OpKind::ComparePattern => "cmp-pat",
        OpKind::Crc32 => "crc32",
        OpKind::DifInsert => "dif-ins",
        _ => "other",
    }
}

fn sweep(mode: Mode, label: &str) {
    Sweep::new("Fig. 2", label)
        .sizes(SIZES)
        .cols(OpKind::figure2_set().into_iter().map(|o| (op_label(o).to_string(), o)))
        .note("(values are DSA/software speedups; >1 means DSA wins)")
        .run_speedup(
            |_, _| DsaRuntime::spr_default(),
            |&size, &op| {
                let iters = if size >= 1 << 20 { 10 } else { 40 };
                Measure::new(op, size).iters(iters).mode(mode)
            },
        );
}

fn main() {
    sweep(Mode::Sync, "(a) synchronous offload speedup vs software (BS 1)");
    sweep(Mode::Async { qd: 32 }, "(b) asynchronous offload speedup vs software (QD 32)");
}
