//! Fig. 2: throughput improvement of every data-streaming operation over
//! its software counterpart, with varying transfer sizes (batch size 1).
//! (a) synchronous offload — break-even ≈ 4 KB; (b) asynchronous offload
//! (QD 32) — break-even ≈ 256 B.

use dsa_bench::measure::{Measure, Mode, SIZES};
use dsa_bench::table;
use dsa_core::runtime::DsaRuntime;
use dsa_ops::OpKind;

fn op_label(op: OpKind) -> &'static str {
    match op {
        OpKind::Memcpy => "copy",
        OpKind::Dualcast => "dualcast",
        OpKind::Fill => "fill",
        OpKind::NtFill => "nt-fill",
        OpKind::Compare => "compare",
        OpKind::ComparePattern => "cmp-pat",
        OpKind::Crc32 => "crc32",
        OpKind::DifInsert => "dif-ins",
        _ => "other",
    }
}

fn sweep(mode: Mode, label: &str) {
    table::banner("Fig. 2", label);
    let ops = OpKind::figure2_set();
    let mut head = vec!["size"];
    head.extend(ops.iter().map(|&o| op_label(o)));
    table::header(&head);
    for &size in SIZES {
        let mut cells = vec![table::size_label(size)];
        for &op in &ops {
            let iters = if size >= 1 << 20 { 10 } else { 40 };
            let mut rt = DsaRuntime::spr_default();
            let m = Measure::new(op, size).iters(iters).mode(mode);
            let dsa = m.run(&mut rt).gbps;
            let cpu = m.cpu_gbps(&rt);
            cells.push(table::f2(dsa / cpu));
        }
        table::row(&cells);
    }
    println!("(values are DSA/software speedups; >1 means DSA wins)");
}

fn main() {
    sweep(Mode::Sync, "(a) synchronous offload speedup vs software (BS 1)");
    sweep(Mode::Async { qd: 32 }, "(b) asynchronous offload speedup vs software (QD 32)");
}
