//! Ablation (§3.4/F3, §6.3/G6 QoS): protecting a latency-sensitive client
//! from a bandwidth hog that shares the device.
//!
//! Three configurations for a foreground 4 KiB probe against a background
//! large-copy storm:
//! 1. same group, one engine            (full interference)
//! 2. same group, two engines           (more capacity, shared arbiter)
//! 3. separate groups, one engine each  (performance isolation — the G6
//!    "WQs can be configured … for providing performance isolation")
//!
//! WQ *priorities* within a group are also compared; in this model they
//! only bias dispatch (see DESIGN.md §7), so isolation via groups is the
//! effective QoS lever — matching the paper's §6.4 practice of binding
//! queues to their heaviest users.

use dsa_bench::table;
use dsa_core::config::AccelConfig;
use dsa_core::job::{AsyncQueue, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_mem::topology::Platform;
use dsa_sim::time::SimDuration;

enum Setup {
    SharedGroup { engines: u32, fg_priority: u8 },
    SeparateGroups,
    SeparateDevices,
}

fn run(setup: Setup) -> (SimDuration, f64) {
    if let Setup::SeparateDevices = setup {
        return run_two_devices();
    }
    // WQs are indexed in add order: background first, foreground second.
    let (bg_wq, fg_wq) = (0usize, 1usize);
    let cfg = match setup {
        Setup::SharedGroup { engines, fg_priority } => AccelConfig::builder()
            .group(engines)
            .dedicated_wq(64)
            .priority(1)
            .dedicated_wq(64)
            .priority(fg_priority),
        Setup::SeparateGroups => {
            AccelConfig::builder().group(1).group(1).dedicated_wq_in(64, 0).dedicated_wq_in(64, 1)
        }
        Setup::SeparateDevices => unreachable!("handled above"),
    };
    let mut rt = DsaRuntime::builder(Platform::spr()).device(cfg.build().unwrap()).build();

    let big_src = rt.alloc(256 << 10, Location::local_dram());
    let big_dst = rt.alloc(256 << 10, Location::local_dram());
    let small_src = rt.alloc(4096, Location::local_dram());
    let small_dst = rt.alloc(4096, Location::local_dram());

    let mut bg_q = AsyncQueue::new(16);
    let mut total = SimDuration::ZERO;
    let probes = 64u64;
    for _ in 0..probes {
        for _ in 0..2 {
            bg_q.submit(&mut rt, Job::memcpy(&big_src, &big_dst).on_wq(bg_wq)).unwrap();
        }
        let report = Job::memcpy(&small_src, &small_dst).on_wq(fg_wq).execute(&mut rt).unwrap();
        total += report.elapsed();
    }
    bg_q.drain(&mut rt);
    (total / probes, bg_q.completed_bytes() as f64 / rt.now().as_ns_f64())
}

fn run_two_devices() -> (SimDuration, f64) {
    let one_dev = || AccelConfig::builder().group(1).dedicated_wq(64).build().unwrap();
    let mut rt = DsaRuntime::builder(Platform::spr()).device(one_dev()).device(one_dev()).build();
    let big_src = rt.alloc(256 << 10, Location::local_dram());
    let big_dst = rt.alloc(256 << 10, Location::local_dram());
    let small_src = rt.alloc(4096, Location::local_dram());
    let small_dst = rt.alloc(4096, Location::local_dram());
    let mut bg_q = AsyncQueue::new(16);
    let mut total = SimDuration::ZERO;
    let probes = 64u64;
    for _ in 0..probes {
        for _ in 0..2 {
            bg_q.submit(&mut rt, Job::memcpy(&big_src, &big_dst).on_device(0)).unwrap();
        }
        let report = Job::memcpy(&small_src, &small_dst).on_device(1).execute(&mut rt).unwrap();
        total += report.elapsed();
    }
    bg_q.drain(&mut rt);
    (total / probes, bg_q.completed_bytes() as f64 / rt.now().as_ns_f64())
}

fn main() {
    table::banner("Ablation QoS", "foreground 4 KiB sync latency under a background storm");
    table::header(&["setup", "probe us", "bg GB/s"]);
    for (label, setup) in [
        ("1g/1e lowpri", Setup::SharedGroup { engines: 1, fg_priority: 1 }),
        ("1g/1e hipri", Setup::SharedGroup { engines: 1, fg_priority: 15 }),
        ("1g/2e", Setup::SharedGroup { engines: 2, fg_priority: 8 }),
        ("2 groups", Setup::SeparateGroups),
        ("2 devices", Setup::SeparateDevices),
    ] {
        let (lat, bg) = run(setup);
        table::row(&[label.to_string(), table::us(lat), table::f2(bg)]);
    }
    // Idle baseline: no background at all.
    let mut rt = DsaRuntime::spr_default();
    let s = rt.alloc(4096, Location::local_dram());
    let d = rt.alloc(4096, Location::local_dram());
    let idle = Job::memcpy(&s, &d).execute(&mut rt).unwrap().elapsed();
    println!("\nidle-device probe latency: {:.2} us", idle.as_us_f64());
    println!(
        "(within one instance the shared I/O fabric, not the engine, carries\n\
         the interference - intra-group priority and even group separation\n\
         barely help; a separate device instance restores near-idle latency.\n\
         The hardware answer within an instance is PCIe traffic classes /\n\
         virtual channels, which the paper lists under F3 QoS control.)"
    );
}
