//! §4.2 headline: "DSA performs an average of 2.1× greater throughput than
//! CBDMA … over varying transfer sizes", with matched resources (one CBDMA
//! channel vs. one DSA engine).

use dsa_bench::measure::{Measure, Mode, SIZES};
use dsa_bench::table;
use dsa_core::runtime::DsaRuntime;
use dsa_device::cbdma::CbdmaDevice;
use dsa_device::timing::CbdmaTiming;
use dsa_mem::memsys::MemSystem;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;
use dsa_sim::time::SimTime;

fn cbdma_gbps(size: u64, iters: u64, qd: u64) -> f64 {
    let mut memsys = MemSystem::new(Platform::icx());
    let mut dev = CbdmaDevice::new(0, 1, CbdmaTiming::icx());
    let mut now = SimTime::ZERO;
    let mut completions: Vec<SimTime> = Vec::new();
    let mut last = SimTime::ZERO;
    for _ in 0..iters {
        if completions.len() >= qd as usize {
            now = now.max(completions.remove(0));
        }
        let lat = dev.sync_copy_latency(&mut memsys, 0, size, now);
        let done = now + lat;
        completions.push(done);
        last = last.max(done);
        // Streaming submission: ring entries are cheap to write and the
        // doorbell is amortized over many descriptors.
        now += dsa_sim::time::SimDuration::from_ns(150);
    }
    (iters * size) as f64 / last.as_ns_f64()
}

fn main() {
    table::banner(
        "Table/§4.2",
        "DSA (SPR, 1 engine) vs CBDMA (ICX, 1 channel): async copy throughput",
    );
    table::header(&["size", "CBDMA GB/s", "DSA GB/s", "ratio"]);
    let mut ratios = Vec::new();
    for &size in SIZES {
        let cb = cbdma_gbps(size, 64, 16);
        let mut rt = DsaRuntime::spr_default();
        let dsa = Measure::new(OpKind::Memcpy, size)
            .iters(64)
            .mode(Mode::Async { qd: 16 })
            .run(&mut rt)
            .gbps;
        let ratio = dsa / cb;
        ratios.push(ratio);
        table::row(&[table::size_label(size), table::f2(cb), table::f2(dsa), table::f2(ratio)]);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\naverage DSA/CBDMA ratio over the sweep: {avg:.2}x (paper: 2.1x)");
}
