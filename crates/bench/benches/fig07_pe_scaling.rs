//! Fig. 7: performance impact of the number of processing engines on
//! Memory Copy with varying transfer sizes (TS) and batch sizes (BS),
//! one WQ. Small transfers scale with engines (per-descriptor overhead
//! parallelizes); a single engine already saturates the fabric for large
//! transfers (G5).

use dsa_bench::measure::{Measure, Mode};
use dsa_bench::table;
use dsa_core::config::presets;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;

fn main() {
    table::banner("Fig. 7", "Memory Copy throughput vs engines per group (one DWQ)");
    table::header(&["TS", "BS", "1 PE", "2 PE", "4 PE"]);
    for &(ts, bs) in
        &[(1024u64, 1u32), (1024, 32), (4096, 1), (4096, 32), (64 << 10, 1), (2 << 20, 1)]
    {
        let mut cells = vec![table::size_label(ts), format!("{bs}")];
        for engines in [1u32, 2, 4] {
            let mut rt = DsaRuntime::builder(Platform::spr())
                .device(presets::engines_behind_one_dwq(engines, 128))
                .build();
            let mode =
                if bs == 1 { Mode::Async { qd: 64 } } else { Mode::AsyncBatch { bs, window: 4 } };
            let iters = if ts >= 1 << 20 { 24 } else { 192 / bs.max(1) as u64 + 8 };
            let r = Measure::new(OpKind::Memcpy, ts).iters(iters).mode(mode).run(&mut rt);
            cells.push(table::f2(r.gbps));
        }
        table::row(&cells);
    }
    println!("(GB/s; engine scaling matters for small TS, levels off for large TS)");
}
