//! Fig. 7: performance impact of the number of processing engines on
//! Memory Copy with varying transfer sizes (TS) and batch sizes (BS),
//! one WQ. Small transfers scale with engines (per-descriptor overhead
//! parallelizes); a single engine already saturates the fabric for large
//! transfers (G5).

use dsa_bench::measure::{Measure, Mode};
use dsa_bench::{table, Sweep};
use dsa_core::config::presets;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;

fn main() {
    let points: &[(u64, u32)] =
        &[(1024, 1), (1024, 32), (4096, 1), (4096, 32), (64 << 10, 1), (2 << 20, 1)];
    Sweep::new("Fig. 7", "Memory Copy throughput vs engines per group (one DWQ)")
        .row_head("TS/BS")
        .rows(points.iter().map(|&(ts, bs)| (format!("{}/{bs}", table::size_label(ts)), (ts, bs))))
        .cols([1u32, 2, 4].iter().map(|&e| (format!("{e} PE"), e)))
        .note("(GB/s; engine scaling matters for small TS, levels off for large TS)")
        .run(
            |_, &engines| {
                DsaRuntime::builder(Platform::spr())
                    .device(presets::engines_behind_one_dwq(engines, 128))
                    .build()
            },
            |&(ts, bs), _| {
                let mode = if bs == 1 {
                    Mode::Async { qd: 64 }
                } else {
                    Mode::AsyncBatch { bs, window: 4 }
                };
                let iters = if ts >= 1 << 20 { 24 } else { 192 / bs.max(1) as u64 + 8 };
                Measure::new(OpKind::Memcpy, ts).iters(iters).mode(mode)
            },
        );
}
