//! ctl_churn — the closed control loop against every static plan under
//! a churn+burst multi-tenant workload.
//!
//! The scenario is built so that **no static plan is right for the whole
//! run**: latency-class tenants with tight deadlines share the device
//! with deadline-free bulk streams, and a third of the way in a wave of
//! deep-queued 128×-sized aggressor streams lands (the churn). The
//! contention the aggressors cause lives in the device-wide memory
//! fabric, not in any one engine group — so *every* static carve fails
//! the burst phase alike: shared WQs, dedicated WQs, and the class split
//! all let the blast radius reach the latency class, and the dedicated /
//! by-class carves additionally pay small-WQ retry pressure in the quiet
//! phases. The one lever that works is the per-group read-buffer
//! allocation (paper guideline G6): clamping the throughput group's read
//! buffers throttles the aggressors at the source — but a static plan
//! that clamps all run long would strangle the bulk streams in the quiet
//! phases. The governed lane starts from the same shared plan and
//! re-plans online: a [`Governor`] watches windowed telemetry against
//! the service's [`SloTarget`], and when the burst lands the
//! digital-twin scorer picks the `by-class+rbuf` candidate, riding out
//! the burst clamped and reverting when the pressure clears.
//!
//! Reported per lane (static-shared / static-dedicated / static-by-class
//! / governed): simulated jobs per wall-clock second (the perfgate
//! lane), deadline-miss rate, Jain fairness, worst-tenant p999, and for
//! the governed lane the number of re-plan decisions and applied
//! transitions.
//!
//! Checked on every run:
//!   * the best static plan still fails ≥ 10% of deadlines — the
//!     scenario genuinely defeats static planning;
//!   * the governed lane cuts the deadline-miss rate ≥ 2× below the best
//!     static plan without dropping Jain fairness below it;
//!   * the governed lane actually transitioned, and its control digest
//!     (service digest ⊕ decision sequence) replays bit-identically.
//!
//! Writes `BENCH_ctl_churn.json` at the repo root; lanes are
//! `ctl_churn/<lane>` in the perfgate's format. Set `CTL_CHURN_SMOKE=1`
//! for a CI-sized run.

use dsa_bench::table;
use dsa_ctl::prelude::*;
use dsa_svc::prelude::*;

const SEED: u64 = 0xC10C_0DE5;

/// Tight deadline on the latency class — the objective the burst breaks.
const LAT_DEADLINE_US: u64 = 60;

/// Wall-clock seconds elapsed while running `f` — the one deliberately
/// nondeterministic probe; everything it times is bit-reproducible.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // dsa-lint: allow(nondeterminism, self-benchmark measures real wall time)
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// The churn+burst roster. `scale` multiplies per-tenant job counts so
/// the smoke run keeps the same phase structure at a fraction of the
/// work.
fn tenants(scale: u64) -> Vec<TenantSpec> {
    let mut specs = Vec::new();
    // Latency class: small transfers, tight deadlines, steady open
    // arrivals from t=0. These are the victims the burst starves.
    for i in 0..4 {
        specs.push(
            TenantSpec::new(&format!("lat{i}"), 4 << 10, 240 * scale)
                .with_class(QosClass::Latency)
                .with_deadline(SimDuration::from_us(LAT_DEADLINE_US))
                .with_arrival(Arrival::open(SimDuration::from_ns(3_500))),
        );
    }
    // Bulk streams: mid-size background transfers from t=0, no deadline
    // of their own — steady load that keeps the shared WQ honest.
    for i in 0..2 {
        specs.push(
            TenantSpec::new(&format!("bulk{i}"), 64 << 10, 120 * scale)
                .with_arrival(Arrival::open(SimDuration::from_us(12))),
        );
    }
    // The churn: deep-queued 128×-sized aggressor streams that arrive a
    // third of the way in and occupy whatever WQ serves them. No
    // deadline of their own — they are load, not victims.
    for i in 0..2 {
        specs.push(
            TenantSpec::new(&format!("agg{i}"), 512 << 10, 12)
                .with_start(SimDuration::from_us(225 * scale))
                .with_outstanding(8)
                .with_arrival(Arrival::closed(SimDuration::ZERO)),
        );
    }
    specs
}

fn config(plan: PlanSpec, slo: Option<SloTarget>, scale: u64) -> ServiceConfig {
    let mut b = ServiceConfig::builder().plan(plan).seed(SEED).tenants(tenants(scale));
    if let Some(slo) = slo {
        b = b.slo(slo);
    }
    b.build().expect("the churn roster is valid")
}

struct Lane {
    name: &'static str,
    completed: u64,
    digest: u64,
    fairness: f64,
    p999_us: f64,
    miss_rate: f64,
    transitions: u64,
    wall_s: f64,
}

impl Lane {
    fn jobs_per_sec(&self) -> f64 {
        self.completed as f64 / self.wall_s.max(1e-9)
    }

    fn json_row(&self) -> String {
        format!(
            "    {{\"workload\": \"ctl_churn\", \"scheduler\": \"{}\", \"events\": {}, \
             \"wall_s\": {:.6}, \"events_per_sec\": {:.0}, \"digest\": \"{:#018x}\", \
             \"jain\": {:.6}, \"p999_us\": {:.3}, \"miss_rate\": {:.6}, \
             \"transitions\": {}}}",
            self.name,
            self.completed,
            self.wall_s,
            self.jobs_per_sec(),
            self.digest,
            self.fairness,
            self.p999_us,
            self.miss_rate,
            self.transitions
        )
    }
}

fn completed(rep: &ServiceReport) -> u64 {
    rep.tenants.iter().map(|t| t.dsa_completed + t.cpu_completed).sum()
}

fn worst_p999_us(rep: &ServiceReport) -> f64 {
    rep.tenants.iter().map(|t| t.p999.as_ps()).max().unwrap_or(0) as f64 / 1e6
}

fn static_lane(name: &'static str, plan: PlanSpec, scale: u64) -> Lane {
    let cfg = config(plan, None, scale);
    let mut svc = DsaService::from_config(cfg).expect("static service builds");
    let (rep, wall_s) = timed(|| svc.run());
    if std::env::var("CTL_CHURN_DEBUG").is_ok_and(|v| v == "1") {
        println!("--- {name}\n{}", rep.summary());
    }
    Lane {
        name,
        completed: completed(&rep),
        digest: rep.digest(),
        fairness: rep.fairness,
        p999_us: worst_p999_us(&rep),
        miss_rate: rep.deadline_miss_rate(),
        transitions: 0,
        wall_s,
    }
}

fn governed_run(scale: u64) -> (ControlReport, f64) {
    let slo = SloTarget::new()
        .with_p99(SimDuration::from_us(LAT_DEADLINE_US))
        .with_deadline_miss_frac(0.02);
    let cfg = config(PlanSpec::Shared, Some(slo), scale);
    let mut svc = DsaService::from_config(cfg).expect("governed service builds");
    // A 10 us control epoch: the blind window between the burst landing
    // and its first late completions is the whole cost of feedback
    // control here, so observe at twice the default rate.
    let ctl = ControllerConfig { epoch: SimDuration::from_us(10), ..ControllerConfig::default() };
    timed(|| Governor::new(ctl).govern(&mut svc))
}

fn governed_lane(scale: u64) -> Lane {
    // Determinism proof: the whole closed loop — observations, twin
    // scores, decisions, transitions — must replay bit-identically.
    let (a, _) = governed_run(scale);
    let (ctl, wall_s) = governed_run(scale);
    assert_eq!(a.digest(), ctl.digest(), "governed replay diverged");
    assert_eq!(a.decisions, ctl.decisions, "decision sequences diverged");
    if std::env::var("CTL_CHURN_DEBUG").is_ok_and(|v| v == "1") {
        println!("--- governed ({} decisions)\n{}", ctl.decisions.len(), ctl.report.summary());
        for d in &ctl.decisions {
            println!(
                "  e{} at={} {} -> {} inc={:.3} cand={:.3} adopted={}",
                d.epoch,
                d.at.as_ps(),
                d.from,
                d.to,
                d.incumbent_score,
                d.score,
                d.adopted
            );
        }
    }
    Lane {
        name: "governed",
        completed: completed(&ctl.report),
        digest: ctl.digest(),
        fairness: ctl.report.fairness,
        p999_us: worst_p999_us(&ctl.report),
        miss_rate: ctl.report.deadline_miss_rate(),
        transitions: ctl.transitions(),
        wall_s,
    }
}

fn main() {
    let smoke = std::env::var("CTL_CHURN_SMOKE").is_ok_and(|v| v == "1");
    let scale: u64 = if smoke { 2 } else { 4 };

    table::banner(
        "ctl_churn",
        "SLO control loop vs static plans under a churn+burst workload (8 tenants)",
    );
    table::header(&[
        "lane",
        "jobs done",
        "wall ms",
        "kjobs/s",
        "Jain",
        "p999 us",
        "miss rate",
        "plan moves",
    ]);

    let mut lanes = vec![
        static_lane("static-shared", PlanSpec::Shared, scale),
        static_lane("static-dedicated", PlanSpec::Dedicated, scale),
        static_lane("static-by-class", PlanSpec::ByClass, scale),
        governed_lane(scale),
    ];

    for l in &lanes {
        table::row(&[
            l.name.to_string(),
            l.completed.to_string(),
            table::f2(l.wall_s * 1e3),
            table::f2(l.jobs_per_sec() / 1e3),
            table::f2(l.fairness),
            table::f2(l.p999_us),
            table::f2(l.miss_rate),
            l.transitions.to_string(),
        ]);
    }

    // The acceptance triangle: the scenario defeats every static plan,
    // and the online re-planner beats the best of them by ≥ 2× on
    // deadline misses without giving up fairness.
    let governed = lanes.pop().expect("governed lane present");
    let best_static = lanes
        .iter()
        .min_by(|a, b| a.miss_rate.total_cmp(&b.miss_rate))
        .expect("static lanes present");
    assert!(
        best_static.miss_rate >= 0.10,
        "best static plan ({}) misses only {:.1}% — the scenario no longer defeats \
         static planning",
        best_static.name,
        best_static.miss_rate * 100.0
    );
    assert!(
        governed.miss_rate * 2.0 <= best_static.miss_rate,
        "governed miss rate {:.3} is not 2x below best static ({}) {:.3}",
        governed.miss_rate,
        best_static.name,
        best_static.miss_rate
    );
    // Jain tolerance 0.01: the feedback blind window (burst landing to
    // first late completions) sheds a handful of latency jobs before the
    // governor can react, costing a fraction of a point of fairness no
    // feedback controller can recover.
    assert!(
        governed.fairness + 0.01 >= best_static.fairness,
        "governed Jain {:.4} dropped below best static ({}) {:.4}",
        governed.fairness,
        best_static.name,
        best_static.fairness
    );
    assert!(governed.transitions >= 1, "the governor never re-planned");
    lanes.push(governed);

    let body = format!(
        "{{\n  \"bench\": \"ctl_churn\",\n  \"schema_version\": 1,\n  \"smoke\": {},\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        smoke,
        lanes.iter().map(Lane::json_row).collect::<Vec<_>>().join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ctl_churn.json");
    std::fs::write(path, body).expect("write BENCH_ctl_churn.json at the repo root");
    println!("wrote {path}");
}
