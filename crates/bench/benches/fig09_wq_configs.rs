//! Fig. 9: throughput impact of WQ configurations:
//! 1) one DWQ with batching (BS:N),
//! 2) N DWQs with one thread and PE per queue (DWQ:N),
//! 3) one SWQ with one PE and N submitting threads (SWQ:N).
//!
//! Expected: BS:N ≈ DWQ:N; SWQ lags between 1–8 KB for few threads
//! (ENQCMD round trip) and catches up with many threads (G6).

use dsa_bench::measure::{multi_thread_copy_gbps, Measure, Mode, SIZES};
use dsa_bench::table;
use dsa_core::config::presets;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;

fn main() {
    for n in [2u32, 4, 8] {
        table::banner("Fig. 9", &format!("WQ configurations at N = {n}"));
        table::header(&["size", "BS:N", "DWQ:N", "SWQ:N", "SWQ:1"]);
        for &size in SIZES {
            // (1) one DWQ + one engine, batching BS = N.
            let mut rt = DsaRuntime::spr_default();
            let bs_n = Measure::new(OpKind::Memcpy, size)
                .iters(96 / n as u64 + 8)
                .mode(Mode::AsyncBatch { bs: n, window: 8 })
                .run(&mut rt)
                .gbps;
            // (2) N DWQs, one single-engine group each, N threads.
            let mut rt = DsaRuntime::builder(Platform::spr())
                .device(presets::n_dwqs_n_engines(n.min(4)))
                .build();
            let dwq_n = multi_thread_copy_gbps(&mut rt, n as usize, size, 64, 16, |t| (0, t % 4));
            // (3) one SWQ + one engine, N threads with ENQCMD.
            let mut rt =
                DsaRuntime::builder(Platform::spr()).device(presets::one_swq_one_engine()).build();
            let swq_n = multi_thread_copy_gbps(&mut rt, n as usize, size, 64, 16, |_| (0, 0));
            // Reference: a single SWQ submitter.
            let mut rt =
                DsaRuntime::builder(Platform::spr()).device(presets::one_swq_one_engine()).build();
            let swq_1 = multi_thread_copy_gbps(&mut rt, 1, size, 96, 16, |_| (0, 0));
            table::row(&[
                table::size_label(size),
                table::f2(bs_n),
                table::f2(dwq_n),
                table::f2(swq_n),
                table::f2(swq_1),
            ]);
        }
    }
    println!("(GB/s; SWQ:1 trails between 1-8K, SWQ:N catches up with threads)");
}
