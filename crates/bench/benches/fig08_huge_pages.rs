//! Fig. 8: performance impact of huge pages — "throughput is nearly
//! unaffected by the size of pages used": DSA pipelines its IOMMU walks
//! behind data streaming, so only the first-touch walk is exposed.

use dsa_bench::measure::{Measure, Mode, SIZES};
use dsa_bench::table;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::PageSize;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;

fn main() {
    table::banner("Fig. 8", "async Memory Copy throughput: 4 KiB vs 2 MiB pages");
    table::header(&["size", "4K pages", "2M pages", "delta %"]);
    for &size in SIZES {
        let run = |ps: PageSize| -> f64 {
            let mut rt = DsaRuntime::builder(Platform::spr()).page_size(ps).build();
            Measure::new(OpKind::Memcpy, size)
                .iters(64)
                .mode(Mode::Async { qd: 32 })
                .run(&mut rt)
                .gbps
        };
        let base = run(PageSize::Base4K);
        let huge = run(PageSize::Huge2M);
        let delta = (huge - base) / base * 100.0;
        table::row(&[table::size_label(size), table::f2(base), table::f2(huge), table::f2(delta)]);
    }
    println!("(GB/s; deltas should be within noise — paper: 'nearly unaffected')");
}
