//! Fig. 19: CacheBench-style operation throughput and p99.999 tail latency
//! with and without transparent DSA offload (DTO, four shared WQs across
//! the socket's DSA instances). Gains shrink once workers outnumber the
//! available WQs (sync offloads stall).

use dsa_bench::table;
use dsa_core::config::AccelConfig;
use dsa_core::dispatch::DispatchPolicy;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::topology::Platform;
use dsa_workloads::cachesvc::{run_cache_service, CacheWorkload};

fn rt_with_devices(n: u32) -> DsaRuntime {
    let mut b = DsaRuntime::builder(Platform::spr());
    for _ in 0..n {
        let cfg = AccelConfig::builder().group(4).shared_wq(32).build().unwrap();
        b = b.device(cfg);
    }
    b.build()
}

fn main() {
    table::banner("Fig. 19", "CacheLib-style get/set service: throughput & p99.999 tail, 4 SWQs");
    table::header(&["workers", "CPU Mops", "DSA Mops", "rate x", "CPU p5 9s us", "DSA p5 9s us"]);
    for &workers in &[1u32, 4, 8, 16] {
        let wl = CacheWorkload { workers, ops_per_worker: 1500, ..CacheWorkload::default() };
        let mut rt = rt_with_devices(4);
        let cpu = run_cache_service(&mut rt, &wl, DispatchPolicy::CpuOnly).unwrap();
        let mut rt = rt_with_devices(4);
        let dsa = run_cache_service(&mut rt, &wl, DispatchPolicy::Threshold(8 << 10)).unwrap();
        table::row(&[
            workers.to_string(),
            table::f2(cpu.mops),
            table::f2(dsa.mops),
            table::f2(dsa.mops / cpu.mops),
            table::us(cpu.tail()),
            table::us(dsa.tail()),
        ]);
    }
    println!("(paper: rate gains taper past 8 cores with only 4 WQs; tails improve strongly)");
}
