//! simperf — self-benchmark of the discrete-event simulation core.
//!
//! Every figure reproduction in this workspace is bottlenecked by how fast
//! `dsa_sim::engine::Engine` can pop events, so the simulator's own
//! throughput is a tracked artifact: this bench runs two deterministic
//! workloads under BOTH `Scheduler` impls (reference binary heap vs the
//! calendar queue the engine defaults to), reports events/sec, and writes
//! `BENCH_simperf.json` at the repo root for the perf trajectory.
//!
//! Workloads:
//! * **event_storm** — 32 Ki standing messages hopping between 64
//!   components with pseudo-random (seeded) delays spread across the
//!   calendar ring, plus an occasional far-future hop into the overflow
//!   heap. This is the pure scheduler stress: the heap pays O(log n) per
//!   event at n ≈ 32 Ki, the calendar queue stays O(1) amortized.
//! * **pe_scaling** — a fig07-shaped closed-loop offload cluster (sources
//!   keep a fixed queue depth per processing engine, completions trigger
//!   the next submission), i.e. what the real sweeps look like.
//!
//! Invariant checked on every run: both schedulers process the same event
//! count and fold the same FNV-1a digest — the speed-up is free of
//! behavioural drift. The calendar queue must beat the heap on the storm.

use dsa_bench::table;
use dsa_core::digest::Fnv1a;
use dsa_sim::engine::{Component, ComponentId, Ctx, Engine};
use dsa_sim::rng::SplitMix64;
use dsa_sim::sched::{CalendarScheduler, HeapScheduler, Scheduler};
use dsa_sim::time::{SimDuration, SimTime};

/// Wall-clock seconds elapsed while running `f` — the one deliberately
/// nondeterministic probe in the bench suite; everything it times is
/// bit-reproducible.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // dsa-lint: allow(nondeterminism, self-benchmark measures real wall time)
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Shared state of both workloads: the replay digest.
type Digest = Fnv1a;

// ---------------------------------------------------------------- storm --

const STORM_PEERS: usize = 64;
const STORM_POPULATION: u64 = 32 * 1024;
const STORM_HOPS: u32 = 10;

/// A message is (remaining hops, lane); each hop re-sends to a seeded
/// pseudo-random peer after a delay spread across the calendar ring, with
/// a 1/64 chance of a far-future hop that lands in the overflow heap.
struct StormNode {
    rng: SplitMix64,
    peers: u64,
}

impl Component<(u32, u64), Digest> for StormNode {
    fn handle(&mut self, (hops, lane): (u32, u64), ctx: &mut Ctx<'_, (u32, u64)>, d: &mut Digest) {
        d.write_u64(ctx.now().as_ps());
        d.write_u64(lane);
        if hops == 0 {
            return;
        }
        let r = self.rng.next_u64();
        let target = ComponentId::from_index((r % self.peers) as usize);
        let delay_ps = if r & 0x3F == 0 {
            // Far future: past the ring horizon, exercises the overflow path.
            20_000_000 + (r >> 32) % 180_000_000
        } else {
            (r >> 16) % 16_000_000
        };
        ctx.send(SimDuration::from_ps(delay_ps), target, (hops - 1, lane));
    }
}

fn run_storm<Q: Scheduler<(u32, u64)>>(sched: Q) -> (u64, u64) {
    let mut eng: Engine<(u32, u64), Digest, Q> = Engine::with_scheduler(Fnv1a::new(), sched);
    for i in 0..STORM_PEERS {
        eng.add(StormNode { rng: SplitMix64::new(0x57083 + i as u64), peers: STORM_PEERS as u64 });
    }
    for lane in 0..STORM_POPULATION {
        let target = ComponentId::from_index((lane % STORM_PEERS as u64) as usize);
        eng.post(SimTime::from_ps(lane), target, (STORM_HOPS, lane));
    }
    eng.run();
    (eng.events_processed(), eng.shared().clone().finish())
}

// ----------------------------------------------------------- pe_scaling --

const PE_COUNT: usize = 8;
const PE_QUEUE_DEPTH: u32 = 16;
const PE_JOBS: u64 = 120_000;

enum PeMsg {
    /// Submit one job to the PE (carries the job's transfer size in KiB).
    Job(u64),
    /// PE finished a job; the source refills the slot.
    Done(u64),
}

/// Closed-loop source: keeps `PE_QUEUE_DEPTH` jobs outstanding per PE and
/// refills on every completion until the job budget runs out (fig07 shape).
struct PeSource {
    pes: Vec<ComponentId>,
    next: usize,
    remaining: u64,
    rng: SplitMix64,
}

impl PeSource {
    fn submit(&mut self, ctx: &mut Ctx<'_, PeMsg>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let pe = self.pes[self.next % self.pes.len()];
        self.next += 1;
        let kib = 4 + self.rng.next_u64() % 60; // 4..64 KiB transfers
        ctx.send(SimDuration::ZERO, pe, PeMsg::Job(kib));
    }
}

impl Component<PeMsg, Digest> for PeSource {
    fn handle(&mut self, msg: PeMsg, ctx: &mut Ctx<'_, PeMsg>, d: &mut Digest) {
        match msg {
            PeMsg::Done(kib) => {
                d.write_u64(ctx.now().as_ps());
                d.write_u64(kib);
                self.submit(ctx);
            }
            PeMsg::Job(_) => unreachable!("the source only sees completions"),
        }
    }
}

/// Processing engine with a fixed per-KiB service time; completions carry
/// the size back to the source.
struct PeEngine {
    source: ComponentId,
    busy_until: SimTime,
}

impl Component<PeMsg, Digest> for PeEngine {
    fn handle(&mut self, msg: PeMsg, ctx: &mut Ctx<'_, PeMsg>, _d: &mut Digest) {
        if let PeMsg::Job(kib) = msg {
            let service = SimDuration::from_ps(35_000 * kib);
            let start = self.busy_until.max(ctx.now());
            self.busy_until = start + service;
            let delay = SimDuration::from_ps(self.busy_until.as_ps() - ctx.now().as_ps());
            ctx.send(delay, self.source, PeMsg::Done(kib));
        }
    }
}

fn run_pe_scaling<Q: Scheduler<PeMsg>>(sched: Q) -> (u64, u64) {
    let mut eng: Engine<PeMsg, Digest, Q> = Engine::with_scheduler(Fnv1a::new(), sched);
    let source = ComponentId::from_index(0);
    let mut src = PeSource {
        pes: (1..=PE_COUNT).map(ComponentId::from_index).collect(),
        next: 0,
        remaining: PE_JOBS,
        rng: SplitMix64::new(0xF1607),
    };
    // Prime the closed loop: queue-depth jobs per PE, staggered by 1 ps so
    // the seed order is explicit.
    let mut primed = Vec::new();
    for _ in 0..PE_QUEUE_DEPTH * PE_COUNT as u32 {
        src.remaining -= 1;
        let pe = src.pes[src.next % src.pes.len()];
        src.next += 1;
        primed.push((pe, 4 + src.rng.next_u64() % 60));
    }
    eng.add(src);
    for _ in 0..PE_COUNT {
        eng.add(PeEngine { source, busy_until: SimTime::ZERO });
    }
    for (i, (pe, kib)) in primed.into_iter().enumerate() {
        eng.post(SimTime::from_ps(i as u64), pe, PeMsg::Job(kib));
    }
    eng.run();
    (eng.events_processed(), eng.shared().clone().finish())
}

// ------------------------------------------------------------- harness --

struct Sample {
    workload: &'static str,
    scheduler: &'static str,
    events: u64,
    digest: u64,
    wall_s: f64,
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }
}

/// Best-of-3 wall time (the event stream itself is bit-identical per rep).
fn sample(workload: &'static str, scheduler: &'static str, run: impl Fn() -> (u64, u64)) -> Sample {
    let mut best = f64::INFINITY;
    let mut events = 0;
    let mut digest = 0;
    for _ in 0..3 {
        let ((n, d), secs) = timed(&run);
        best = best.min(secs);
        events = n;
        digest = d;
    }
    Sample { workload, scheduler, events, digest, wall_s: best }
}

fn json_escape_free(s: &Sample) -> String {
    format!(
        "    {{\"workload\": \"{}\", \"scheduler\": \"{}\", \"events\": {}, \
         \"wall_s\": {:.6}, \"events_per_sec\": {:.0}, \"digest\": \"{:#018x}\"}}",
        s.workload,
        s.scheduler,
        s.events,
        s.wall_s,
        s.events_per_sec(),
        s.digest
    )
}

fn main() {
    table::banner("simperf", "discrete-event core throughput: calendar queue vs reference heap");
    table::header(&["workload", "scheduler", "events", "wall ms", "Mev/s"]);

    let samples = vec![
        sample("event_storm", "calendar", || run_storm(CalendarScheduler::new())),
        sample("event_storm", "heap", || run_storm(HeapScheduler::new())),
        sample("pe_scaling", "calendar", || run_pe_scaling(CalendarScheduler::new())),
        sample("pe_scaling", "heap", || run_pe_scaling(HeapScheduler::new())),
    ];
    for s in &samples {
        table::row(&[
            s.workload.to_string(),
            s.scheduler.to_string(),
            s.events.to_string(),
            table::f2(s.wall_s * 1e3),
            table::f2(s.events_per_sec() / 1e6),
        ]);
    }

    // Behavioural equivalence: same events, same digest, per workload.
    for pair in samples.chunks(2) {
        assert_eq!(pair[0].events, pair[1].events, "{}: event counts differ", pair[0].workload);
        assert_eq!(pair[0].digest, pair[1].digest, "{}: digests differ", pair[0].workload);
    }

    let speedup = |w: &str| {
        let cal = samples.iter().find(|s| s.workload == w && s.scheduler == "calendar").unwrap();
        let heap = samples.iter().find(|s| s.workload == w && s.scheduler == "heap").unwrap();
        cal.events_per_sec() / heap.events_per_sec()
    };
    let storm_x = speedup("event_storm");
    let pe_x = speedup("pe_scaling");
    println!(
        "calendar vs heap: event_storm {}x, pe_scaling {}x",
        table::f2(storm_x),
        table::f2(pe_x)
    );
    // The calendar queue must win on BOTH tracked workloads: the pure
    // scheduler stress and the fig07-shaped offload cluster. A regression
    // on either fails the bench (and the perfgate on top of it).
    assert!(
        storm_x > 1.0,
        "calendar queue must beat the heap on the event-storm workload (got {storm_x:.3}x)"
    );
    assert!(
        pe_x > 1.0,
        "calendar queue must beat the heap on the pe-scaling workload (got {pe_x:.3}x)"
    );

    // BENCH_simperf.json at the repo root: the tracked perf trajectory.
    let body = format!(
        "{{\n  \"bench\": \"simperf\",\n  \"schema_version\": 1,\n  \"workloads\": [\n{}\n  ],\n  \
         \"speedup_event_storm\": {:.3},\n  \"speedup_pe_scaling\": {:.3}\n}}\n",
        samples.iter().map(json_escape_free).collect::<Vec<_>>().join(",\n"),
        storm_x,
        pe_x
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simperf.json");
    std::fs::write(path, body).expect("write BENCH_simperf.json at the repo root");
    println!("wrote {path}");
}
