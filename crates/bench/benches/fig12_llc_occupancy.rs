//! Fig. 12: LLC occupancy over time of each co-running core, with either
//! software `memcpy()` or DSA Memory Copy as the background (4 MB X-Mem
//! working sets). Software copies dominate the LLC; DSA barely appears
//! (reads don't allocate, writes stay within the DDIO ways).

use dsa_bench::table;
use dsa_mem::topology::Platform;
use dsa_workloads::xmem::{Background, CoRunScenario};

fn scenario(bg: Background) -> CoRunScenario {
    CoRunScenario {
        working_set: 4 << 20,
        background: bg,
        quanta: 48,
        accesses_per_quantum: 2000,
        ..CoRunScenario::default()
    }
}

fn print_run(title: &str, bg: Background) {
    table::banner("Fig. 12", title);
    let result = scenario(bg).run(&Platform::spr());
    // Print a decimated time series: occupancy in MB per agent.
    let agents: Vec<String> = result.occupancy.iter().map(|(a, _)| format!("{a}")).collect();
    let mut head = vec!["t(norm)".to_string()];
    head.extend(agents);
    table::header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    let n = result.occupancy[0].1.len();
    for i in (0..n).step_by((n / 12).max(1)) {
        let mut cells = vec![format!("{:.2}", i as f64 / n as f64)];
        for (_, series) in &result.occupancy {
            cells.push(format!("{:.1}", series.points()[i].1 / (1 << 20) as f64));
        }
        table::row(&cells);
    }
    println!("(MB of LLC occupancy; X-Mem probes run in the middle window)");
}

fn main() {
    print_run("(a) X-Mem instances only (None)", Background::None);
    print_run("(b) + 4 software memcpy processes", Background::SoftwareCopy { n: 4 });
    print_run("(c) + 4 DSA Memory Copy offload streams", Background::DsaOffload { n: 4 });
}
