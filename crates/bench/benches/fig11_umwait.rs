//! Fig. 11: percentage of CPU cycles spent inside the UMWAIT intrinsic
//! (i.e. in a low-power wait state) while offloading Memory Copy, with
//! varying transfer sizes and batch sizes. From ~4 KB the majority of
//! cycles are spent waiting; with batching, almost all of them are.

use dsa_bench::table;
use dsa_core::job::{Batch, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_core::submit::WaitMethod;
use dsa_mem::buffer::Location;
use dsa_sim::time::SimDuration;

const SIZES: &[u64] = &[256, 1024, 4096, 16 << 10, 64 << 10, 256 << 10, 1 << 20];

fn main() {
    table::banner("Fig. 11", "% of cycles in UMWAIT during sync Memory Copy offload");
    table::header(&["size", "BS:1", "BS:8", "BS:32", "BS:128"]);
    for &size in SIZES {
        let mut cells = vec![table::size_label(size)];
        for bs in [1u32, 8, 32, 128] {
            let mut rt = DsaRuntime::spr_default();
            let frac = if bs == 1 {
                let src = rt.alloc(size, Location::local_dram());
                let dst = rt.alloc(size, Location::local_dram());
                let report = Job::memcpy(&src, &dst)
                    .wait_method(WaitMethod::Umwait)
                    .execute(&mut rt)
                    .unwrap();
                report.idle_wait.as_ns_f64() / report.elapsed().as_ns_f64()
            } else {
                // Batched: the core prepares BS descriptors, submits once,
                // then UMWAITs on the batch completion record.
                let mut batch = Batch::new();
                for _ in 0..bs {
                    let src = rt.alloc(size, Location::local_dram());
                    let dst = rt.alloc(size, Location::local_dram());
                    batch.push(Job::memcpy(&src, &dst));
                }
                let before = rt.now();
                let report = batch.execute(&mut rt).unwrap();
                let total = rt.now().duration_since(before);
                let busy = SimDuration::from_ns(12) * bs as u64 + SimDuration::from_ns(55 + 130);
                let idle = total - busy.min(total);
                assert!(report.batch_record.status.is_ok());
                idle.as_ns_f64() / total.as_ns_f64()
            };
            cells.push(table::f2(frac * 100.0));
        }
        table::row(&cells);
    }
    println!("(percent; cycles in UMWAIT are reclaimable by other work / power savings)");
}
