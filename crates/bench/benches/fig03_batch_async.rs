//! Fig. 3: Memory Copy throughput with sync vs. async offloading, varying
//! transfer sizes and batch sizes; dedicated vs. shared WQ submission.
//!
//! Expected shapes: sync throughput grows strongly with batching at small
//! transfer sizes; async DWQ submission saturates the device even at
//! BS = 1; async SWQ needs batching (ENQCMD round-trip limits a single
//! submitter); everything converges to the ~30 GB/s fabric cap.

use dsa_bench::measure::{Measure, Mode, SIZES};
use dsa_bench::table;
use dsa_core::config::presets;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;

fn rt_dwq() -> DsaRuntime {
    DsaRuntime::spr_default()
}

fn rt_swq() -> DsaRuntime {
    DsaRuntime::builder(Platform::spr()).device(presets::one_swq_one_engine()).build()
}

fn series(mk_rt: fn() -> DsaRuntime, mode_of: impl Fn(u32) -> Mode, title: &str) {
    table::banner("Fig. 3", title);
    let bss = [1u32, 4, 32, 128];
    let mut head = vec!["size".to_string()];
    head.extend(bss.iter().map(|b| format!("BS:{b}")));
    table::header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for &size in SIZES {
        let mut cells = vec![table::size_label(size)];
        for &bs in &bss {
            // Bound the work per point so huge (size x bs) cells stay fast.
            let iters = (64u64 / bs as u64).max(4);
            let mut rt = mk_rt();
            let r = Measure::new(OpKind::Memcpy, size).iters(iters).mode(mode_of(bs)).run(&mut rt);
            cells.push(table::f2(r.gbps));
        }
        table::row(&cells);
    }
    println!("(GB/s; fabric cap is 30 GB/s)");
}

fn main() {
    series(
        rt_dwq,
        |bs| if bs == 1 { Mode::Sync } else { Mode::SyncBatch { bs } },
        "(a) synchronous offload, DWQ: batching rescues small transfers",
    );
    series(
        rt_dwq,
        |bs| {
            if bs == 1 {
                Mode::Async { qd: 32 }
            } else {
                Mode::AsyncBatch { bs, window: 4 }
            }
        },
        "(b) asynchronous offload, DWQ (MOVDIR64B): saturates even at BS 1",
    );
    series(
        rt_swq,
        |bs| {
            if bs == 1 {
                Mode::Async { qd: 32 }
            } else {
                Mode::AsyncBatch { bs, window: 4 }
            }
        },
        "(c) asynchronous offload, SWQ (ENQCMD): a batch of n ~ n submitters",
    );
}
