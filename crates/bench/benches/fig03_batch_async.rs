//! Fig. 3: Memory Copy throughput with sync vs. async offloading, varying
//! transfer sizes and batch sizes; dedicated vs. shared WQ submission.
//!
//! Expected shapes: sync throughput grows strongly with batching at small
//! transfer sizes; async DWQ submission saturates the device even at
//! BS = 1; async SWQ needs batching (ENQCMD round-trip limits a single
//! submitter); everything converges to the ~30 GB/s fabric cap.

use dsa_bench::measure::{Measure, Mode, SIZES};
use dsa_bench::Sweep;
use dsa_core::config::presets;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::topology::Platform;
use dsa_ops::OpKind;

fn rt_swq() -> DsaRuntime {
    DsaRuntime::builder(Platform::spr()).device(presets::one_swq_one_engine()).build()
}

fn series(mk_rt: fn() -> DsaRuntime, mode_of: impl Fn(u32) -> Mode, title: &str) {
    Sweep::new("Fig. 3", title)
        .sizes(SIZES)
        .cols([1u32, 4, 32, 128].iter().map(|&bs| (format!("BS:{bs}"), mode_of(bs))))
        .note("(GB/s; fabric cap is 30 GB/s)")
        .run(
            |_, _| mk_rt(),
            |&size, &mode| {
                // Bound the work per point so huge (size x bs) cells stay fast.
                let bs = match mode {
                    Mode::SyncBatch { bs } | Mode::AsyncBatch { bs, .. } => bs,
                    _ => 1,
                };
                Measure::new(OpKind::Memcpy, size).iters((64u64 / bs as u64).max(4)).mode(mode)
            },
        );
}

fn main() {
    series(
        DsaRuntime::spr_default,
        |bs| if bs == 1 { Mode::Sync } else { Mode::SyncBatch { bs } },
        "(a) synchronous offload, DWQ: batching rescues small transfers",
    );
    series(
        DsaRuntime::spr_default,
        |bs| {
            if bs == 1 {
                Mode::Async { qd: 32 }
            } else {
                Mode::AsyncBatch { bs, window: 4 }
            }
        },
        "(b) asynchronous offload, DWQ (MOVDIR64B): saturates even at BS 1",
    );
    series(
        rt_swq,
        |bs| {
            if bs == 1 {
                Mode::Async { qd: 32 }
            } else {
                Mode::AsyncBatch { bs, window: 4 }
            }
        },
        "(c) asynchronous offload, SWQ (ENQCMD): a batch of n ~ n submitters",
    );
}
