//! Fig. 6: throughput (bars) and latency (lines) for Memory Copy with
//! different memory placements, synchronous mode, BS 1.
//! (a) NUMA: [D,D] [D,R] [R,D] [R,R] — DSA hides the UPI hop, split
//! placements gain slightly; latency breaks even with the CPU at 4–10 KB.
//! (b) CXL: [D,C] [C,D] [C,C] — CXL as *destination* is the slow direction.

use dsa_bench::measure::{Measure, Mode, SIZES};
use dsa_bench::table;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_ops::OpKind;

fn run_configs(title: &str, configs: &[(&str, Location, Location)]) {
    table::banner("Fig. 6", title);
    let mut head = vec!["size".to_string()];
    for (label, _, _) in configs {
        head.push(format!("{label} GB/s"));
        head.push(format!("{label} us"));
    }
    table::header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for &size in SIZES {
        let mut cells = vec![table::size_label(size)];
        for &(_, src, dst) in configs {
            let mut rt = DsaRuntime::spr_default();
            let r = Measure::new(OpKind::Memcpy, size)
                .iters(32)
                .mode(Mode::Sync)
                .locations(src, dst)
                .run(&mut rt);
            cells.push(table::f2(r.gbps));
            cells.push(table::us(r.avg_latency));
        }
        table::row(&cells);
    }
}

fn main() {
    let d = Location::local_dram();
    let r = Location::remote_dram();
    let c = Location::Cxl;
    run_configs(
        "(a) NUMA placements [src,dst] (sync, BS 1) + CPU memcpy reference",
        &[("D,D", d, d), ("D,R", d, r), ("R,D", r, d), ("R,R", r, r)],
    );
    // CPU reference line for the latency break-even.
    println!("\nCPU memcpy latency (cold, local DRAM):");
    let rt = DsaRuntime::spr_default();
    table::header(&["size", "CPU us"]);
    for &size in SIZES {
        let t = rt.cpu_time(OpKind::Memcpy, size, d, d);
        table::row(&[table::size_label(size), table::us(t)]);
    }

    run_configs(
        "(b) CXL placements [src,dst] (sync, BS 1)",
        &[("D,D", d, d), ("C,D", c, d), ("D,C", d, c), ("C,C", c, c)],
    );
    println!("(CXL as destination is slower than CXL as source: write latency dominates)");
}
