//! Fig. 15: throughput (bars) and latency (lines) when offloading data
//! from/to either the LLC (L) or local DRAM (D), batch size 1, with the
//! CPU reference. LLC-resident data helps both engines; the paper's G2
//! threshold reading: offload ≥ 4 KB sync (≥ 128 B async), keep smaller
//! transfers on the core if pollution is acceptable.

use dsa_bench::measure::{Measure, Mode, SIZES};
use dsa_bench::table;
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_ops::OpKind;

fn run(mode: Mode, title: &str) {
    table::banner("Fig. 15", title);
    let l = Location::Llc;
    let d = Location::local_dram();
    let configs = [("L,L", l, l), ("L,D", l, d), ("D,L", d, l), ("D,D", d, d)];
    let mut head = vec!["size".to_string()];
    for (lab, _, _) in &configs {
        head.push(format!("{lab} GB/s"));
    }
    head.push("CPU L,L".into());
    head.push("CPU D,D".into());
    table::header(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for &size in SIZES {
        let mut cells = vec![table::size_label(size)];
        for &(_, src, dst) in &configs {
            let mut rt = DsaRuntime::spr_default();
            let m = Measure::new(OpKind::Memcpy, size)
                .iters(32)
                .mode(mode)
                .locations(src, dst)
                .cache_control(dst == l);
            cells.push(table::f2(m.run(&mut rt).gbps));
        }
        let rt = DsaRuntime::spr_default();
        cells.push(table::f2(size as f64 / rt.cpu_time(OpKind::Memcpy, size, l, l).as_ns_f64()));
        cells.push(table::f2(size as f64 / rt.cpu_time(OpKind::Memcpy, size, d, d).as_ns_f64()));
        table::row(&cells);
    }
}

fn main() {
    run(Mode::Sync, "(a) synchronous, BS 1: [src,dst] in {LLC, DRAM}");
    run(Mode::Async { qd: 32 }, "(b) asynchronous (QD 32): [src,dst] in {LLC, DRAM}");
    println!("(GB/s; CPU wins small warm transfers — G2's threshold guidance)");
}
