//! Micro-benchmarks of the functional operation kernels (Table 1's
//! operation set): host-machine performance of the actual Rust
//! implementations the device model executes. These complement the figure
//! harnesses, which measure *simulated* time.
//!
//! Self-contained wall-clock harness (`std::time::Instant`, median of
//! timed batches) so the workspace builds with no external benchmark
//! dependency; run with `cargo bench --bench ops_micro`.

use dsa_bench::table;
use dsa_ops::crc32::Crc32c;
use dsa_ops::delta::{delta_apply, delta_create};
use dsa_ops::dif::{dif_check, dif_insert, DifBlockSize, DifConfig};
use dsa_ops::memops;
use std::time::Instant;

/// Runs `f` in timed batches and reports the median per-call time in
/// nanoseconds, after a warm-up pass.
fn time_ns(mut f: impl FnMut()) -> f64 {
    const BATCH: u32 = 16;
    const SAMPLES: usize = 31;
    for _ in 0..BATCH {
        f();
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..BATCH {
                f();
            }
            start.elapsed().as_nanos() as f64 / BATCH as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[SAMPLES / 2]
}

fn report(group: &str, name: &str, bytes: usize, ns: f64) {
    let gbps = bytes as f64 / ns;
    table::row(&[group.to_string(), name.to_string(), format!("{ns:.0}"), table::f2(gbps)]);
}

fn bench_crc32() {
    for size in [4096usize, 65536] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31) as u8).collect();
        let ns = time_ns(|| {
            std::hint::black_box(Crc32c::checksum(std::hint::black_box(&data)));
        });
        report("crc32c", &format!("{size}B"), size, ns);
    }
}

fn bench_memops() {
    let size = 65536usize;
    let src = vec![0xA5u8; size];
    let mut dst = vec![0u8; size];
    let ns = time_ns(|| {
        memops::copy(std::hint::black_box(&src), &mut dst);
        std::hint::black_box(&dst);
    });
    report("memops", "copy_64K", size, ns);

    let other = src.clone();
    let ns = time_ns(|| {
        std::hint::black_box(memops::compare(std::hint::black_box(&src), &other));
    });
    report("memops", "compare_64K", size, ns);

    let ns = time_ns(|| {
        memops::fill(&mut dst, 0xDEAD_BEEF);
        std::hint::black_box(&dst);
    });
    report("memops", "fill_64K", size, ns);
}

fn bench_dif() {
    let cfg = DifConfig::new(DifBlockSize::B512);
    let data = vec![0x5Au8; 16 * 512];
    let protected = dif_insert(&cfg, &data).unwrap();
    let ns = time_ns(|| {
        std::hint::black_box(dif_insert(&cfg, std::hint::black_box(&data)).unwrap());
    });
    report("dif", "insert_8K", data.len(), ns);
    let ns = time_ns(|| {
        dif_check(&cfg, std::hint::black_box(&protected)).unwrap();
    });
    report("dif", "check_8K", data.len(), ns);
}

fn bench_delta() {
    let original = vec![0u8; 65536];
    let mut modified = original.clone();
    for i in (0..modified.len()).step_by(1024) {
        modified[i] = 1;
    }
    let ns = time_ns(|| {
        std::hint::black_box(
            delta_create(std::hint::black_box(&original), &modified, 1 << 20).unwrap(),
        );
    });
    report("delta", "create_64K_sparse", original.len(), ns);
    let record = delta_create(&original, &modified, 1 << 20).unwrap();
    let mut target = original.clone();
    let ns = time_ns(|| {
        target.copy_from_slice(&original);
        delta_apply(&record, &mut target).unwrap();
        std::hint::black_box(&target);
    });
    report("delta", "apply_64K_sparse", original.len(), ns);
}

fn main() {
    table::banner("ops-micro", "host-machine kernel throughput (wall clock)");
    table::header(&["group", "bench", "ns/call", "GB/s"]);
    bench_crc32();
    bench_memops();
    bench_dif();
    bench_delta();
}
