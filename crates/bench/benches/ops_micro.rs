//! Micro-benchmarks of the functional operation kernels (Table 1's
//! operation set), reported deterministically.
//!
//! Each kernel is executed once functionally (so the real Rust
//! implementation runs and its output is checked), but the reported
//! per-call time comes from the calibrated software-cost model
//! (`DsaRuntime::cpu_time`, the same `SwCost` the simulator charges) —
//! not from the host's wall clock. Results are therefore identical on
//! every machine and every run; run with `cargo bench --bench ops_micro`.

use dsa_bench::table;
use dsa_core::prelude::*;
use dsa_mem::buffer::Location;
use dsa_ops::crc32::Crc32c;
use dsa_ops::delta::{delta_apply, delta_create};
use dsa_ops::dif::{dif_check, dif_insert, DifBlockSize, DifConfig};
use dsa_ops::{memops, OpKind};

/// Modeled per-call time in nanoseconds for `op` over `bytes` of
/// DRAM-resident data on the default SPR platform.
fn modeled_ns(rt: &DsaRuntime, op: OpKind, bytes: usize) -> f64 {
    rt.cpu_time(op, bytes as u64, Location::local_dram(), Location::local_dram()).as_ns_f64()
}

fn report(group: &str, name: &str, bytes: usize, ns: f64) {
    let gbps = bytes as f64 / ns.max(f64::MIN_POSITIVE);
    table::row(&[group.to_string(), name.to_string(), format!("{ns:.0}"), table::f2(gbps)]);
}

fn bench_crc32(rt: &DsaRuntime) {
    for size in [4096usize, 65536] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31) as u8).collect();
        // Functional check: CRC32-C is self-consistent across splits.
        let whole = Crc32c::checksum(&data);
        let mut crc = Crc32c::new();
        let (a, b) = data.split_at(size / 2);
        crc.update(a);
        crc.update(b);
        assert_eq!(crc.finish(), whole, "streaming CRC must match one-shot");
        report("crc32c", &format!("{size}B"), size, modeled_ns(rt, OpKind::Crc32, size));
    }
}

fn bench_memops(rt: &DsaRuntime) {
    let size = 65536usize;
    let src = vec![0xA5u8; size];
    let mut dst = vec![0u8; size];

    memops::copy(&src, &mut dst);
    assert_eq!(src, dst, "copy must reproduce the source");
    report("memops", "copy_64K", size, modeled_ns(rt, OpKind::Memcpy, size));

    assert!(memops::compare(&src, &dst).is_none(), "equal buffers must compare equal");
    report("memops", "compare_64K", size, modeled_ns(rt, OpKind::Compare, size));

    memops::fill(&mut dst, 0xDEAD_BEEF_0000_0000);
    assert_ne!(src, dst, "fill must overwrite the copy");
    report("memops", "fill_64K", size, modeled_ns(rt, OpKind::Fill, size));
}

fn bench_dif(rt: &DsaRuntime) {
    let cfg = DifConfig::new(DifBlockSize::B512);
    let data = vec![0x5Au8; 16 * 512];
    let protected = dif_insert(&cfg, &data).expect("whole blocks");
    report("dif", "insert_8K", data.len(), modeled_ns(rt, OpKind::DifInsert, data.len()));
    dif_check(&cfg, &protected).expect("freshly protected data must verify");
    report("dif", "check_8K", data.len(), modeled_ns(rt, OpKind::DifCheck, data.len()));
}

fn bench_delta(rt: &DsaRuntime) {
    let original = vec![0u8; 65536];
    let mut modified = original.clone();
    for i in (0..modified.len()).step_by(1024) {
        modified[i] = 1;
    }
    let record = delta_create(&original, &modified, 1 << 20).expect("record fits");
    report(
        "delta",
        "create_64K_sparse",
        original.len(),
        modeled_ns(rt, OpKind::DeltaCreate, original.len()),
    );
    let mut target = original.clone();
    delta_apply(&record, &mut target).expect("record applies");
    assert_eq!(target, modified, "apply(create(a, b)) must reproduce b");
    report(
        "delta",
        "apply_64K_sparse",
        original.len(),
        modeled_ns(rt, OpKind::DeltaApply, original.len()),
    );
}

fn main() {
    table::banner("ops-micro", "modeled software kernel throughput (deterministic)");
    table::header(&["group", "bench", "ns/call", "GB/s"]);
    let rt = DsaRuntime::spr_default();
    bench_crc32(&rt);
    bench_memops(&rt);
    bench_dif(&rt);
    bench_delta(&rt);
}
