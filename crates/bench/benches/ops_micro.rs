//! Criterion micro-benchmarks of the functional operation kernels
//! (Table 1's operation set): host-machine performance of the actual Rust
//! implementations the device model executes. These complement the figure
//! harnesses, which measure *simulated* time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dsa_ops::crc32::Crc32c;
use dsa_ops::delta::{delta_apply, delta_create};
use dsa_ops::dif::{dif_check, dif_insert, DifBlockSize, DifConfig};
use dsa_ops::memops;

fn bench_crc32(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32c");
    for size in [4096usize, 65536] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31) as u8).collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| Crc32c::checksum(std::hint::black_box(&data)))
        });
    }
    g.finish();
}

fn bench_memops(c: &mut Criterion) {
    let mut g = c.benchmark_group("memops");
    let size = 65536usize;
    let src = vec![0xA5u8; size];
    g.throughput(Throughput::Bytes(size as u64));
    g.bench_function("copy_64K", |b| {
        b.iter_batched_ref(
            || vec![0u8; size],
            |dst| memops::copy(std::hint::black_box(&src), dst),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("compare_64K", |b| {
        let other = src.clone();
        b.iter(|| memops::compare(std::hint::black_box(&src), std::hint::black_box(&other)))
    });
    g.bench_function("fill_64K", |b| {
        b.iter_batched_ref(
            || vec![0u8; size],
            |dst| memops::fill(dst, 0xDEAD_BEEF),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_dif(c: &mut Criterion) {
    let mut g = c.benchmark_group("dif");
    let cfg = DifConfig::new(DifBlockSize::B512);
    let data = vec![0x5Au8; 16 * 512];
    let protected = dif_insert(&cfg, &data).unwrap();
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("insert_8K", |b| b.iter(|| dif_insert(&cfg, std::hint::black_box(&data))));
    g.bench_function("check_8K", |b| b.iter(|| dif_check(&cfg, std::hint::black_box(&protected))));
    g.finish();
}

fn bench_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("delta");
    let original = vec![0u8; 65536];
    let mut modified = original.clone();
    for i in (0..modified.len()).step_by(1024) {
        modified[i] = 1;
    }
    g.throughput(Throughput::Bytes(original.len() as u64));
    g.bench_function("create_64K_sparse", |b| {
        b.iter(|| delta_create(std::hint::black_box(&original), &modified, 1 << 20))
    });
    let record = delta_create(&original, &modified, 1 << 20).unwrap();
    g.bench_function("apply_64K_sparse", |b| {
        b.iter_batched_ref(
            || original.clone(),
            |t| delta_apply(&record, t),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_crc32, bench_memops, bench_dif, bench_delta);
criterion_main!(benches);
