//! Fig. 13: X-Mem average access latency across working-set sizes with
//! three co-running scenarios: None, Software (4 memcpy processes), and
//! DSA offload (4 Memory Copy streams). Software pollution inflates
//! latency (paper: +43% at the 4 MB working set); DSA barely moves it.

use dsa_bench::table;
use dsa_mem::topology::Platform;
use dsa_workloads::xmem::{Background, CoRunScenario};

fn main() {
    table::banner("Fig. 13", "X-Mem avg latency (ns) vs working set, 8 instances");
    table::header(&["WSS", "None", "Software", "DSA", "SW/None"]);
    for &ws in &[256u64 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20] {
        let run = |bg: Background| -> f64 {
            CoRunScenario {
                working_set: ws,
                background: bg,
                quanta: 36,
                accesses_per_quantum: 2500,
                ..CoRunScenario::default()
            }
            .run(&Platform::spr())
            .avg_latency
            .as_ns_f64()
        };
        let none = run(Background::None);
        let sw = run(Background::SoftwareCopy { n: 4 });
        let dsa = run(Background::DsaOffload { n: 4 });
        table::row(&[
            table::size_label(ws),
            table::f2(none),
            table::f2(sw),
            table::f2(dsa),
            table::f2(sw / none),
        ]);
    }
    println!("(paper's highlighted point: +43% for Software at 4 MB; DSA ~ None)");
}
