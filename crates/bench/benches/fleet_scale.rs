//! fleet_scale — rack-scale sharded simulation throughput and QoS sweep.
//!
//! The `Fleet` layer shards the tenant space across 2 sockets × 4 DSA
//! devices (32 shards, one isolated `DsaService` each) and runs the
//! shards on worker threads. This bench sweeps tenant count × placement
//! policy and reports, per cell:
//!
//! * simulated jobs completed per wall-clock second (the perf lane the
//!   perfgate tracks),
//! * the fleet-wide Jain fairness index over accelerator-served shares,
//! * the p999 arrival-to-completion latency,
//! * the deadline-miss rate (completions past deadline + admission sheds
//!   over offered jobs).
//!
//! The QoS story: devices do NOT scale with tenants, so the miss-rate and
//! p999 curves rise with scale, and placement moves them — NUMA-local
//! keeps every shard on its home socket, round-robin pays UPI crossings
//! (paper Fig. 8 / guideline G4), least-loaded spreads by population.
//!
//! Determinism checked on every run: the smallest cell is executed
//! twice in parallel and once sequentially and must fold bit-identical
//! fleet digests (per-shard FNV-1a digests merged in shard order).
//!
//! Writes `BENCH_fleet_scale.json` at the repo root; lanes are
//! `fleet_scale/<placement>-<tenants>` in the perfgate's format. Set
//! `FLEET_SCALE_SMOKE=1` for a CI-sized sweep.

use dsa_bench::table;
use dsa_svc::fleet::placement_label;
use dsa_svc::prelude::*;

const SOCKETS: u32 = 2;
const DEVICES_PER_SOCKET: u32 = 4;
/// Shards = 4× the execution slots, so every policy has placement
/// decisions to make (co-residency, crossings) instead of a 1:1 map.
const SHARDS: u32 = 4 * SOCKETS * DEVICES_PER_SOCKET;
/// Worker threads for the parallel runs: fixed (not host-dependent) so
/// the tracked events/sec lane measures the same configuration
/// everywhere.
const THREADS: usize = 8;

const POLICIES: [PoolPolicy; 3] =
    [PoolPolicy::NumaLocal, PoolPolicy::LeastLoaded, PoolPolicy::RoundRobin];

/// Wall-clock seconds elapsed while running `f` — the one deliberately
/// nondeterministic probe; everything it times is bit-reproducible.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // dsa-lint: allow(nondeterminism, self-benchmark measures real wall time)
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// The sweep's per-tenant workload: small 2 KiB closed-loop transfers
/// with a fleet-wide deadline, every 4th tenant latency-class. Small on
/// purpose — the variable under test is scale, not transfer size.
fn profile() -> TenantProfile {
    let mut p = TenantProfile::small();
    p.deadline = Some(SimDuration::from_us(100));
    p.latency_every = 4;
    p
}

fn fleet(tenants: u64, placement: PoolPolicy) -> Fleet {
    let cfg = FleetConfig::builder()
        .sockets(SOCKETS)
        .devices_per_socket(DEVICES_PER_SOCKET)
        .shards(SHARDS)
        .tenants(tenants)
        .placement(placement)
        .seed(0x00F1_EE75_CA1E)
        .profile(profile())
        .build()
        .expect("the sweep shape is valid");
    Fleet::new(cfg)
}

struct Cell {
    tenants: u64,
    placement: PoolPolicy,
    completed: u64,
    digest: u64,
    fairness: f64,
    p999_us: f64,
    miss_rate: f64,
    upi_crossers: u32,
    wall_s: f64,
}

impl Cell {
    fn lane(&self) -> String {
        format!("{}-{}", placement_label(self.placement), self.tenants)
    }

    fn jobs_per_sec(&self) -> f64 {
        self.completed as f64 / self.wall_s.max(1e-9)
    }

    fn json_row(&self) -> String {
        format!(
            "    {{\"workload\": \"fleet_scale\", \"scheduler\": \"{}\", \"events\": {}, \
             \"wall_s\": {:.6}, \"events_per_sec\": {:.0}, \"digest\": \"{:#018x}\", \
             \"jain\": {:.6}, \"p999_us\": {:.3}, \"miss_rate\": {:.6}}}",
            self.lane(),
            self.completed,
            self.wall_s,
            self.jobs_per_sec(),
            self.digest,
            self.fairness,
            self.p999_us,
            self.miss_rate
        )
    }
}

fn run_cell(tenants: u64, placement: PoolPolicy) -> Cell {
    let f = fleet(tenants, placement);
    let upi_crossers = f.plan().upi_crossers();
    let (rep, wall_s) = timed(|| f.run_parallel(THREADS).expect("fleet run"));
    Cell {
        tenants,
        placement,
        completed: rep.completed(),
        digest: rep.digest,
        fairness: rep.fairness,
        p999_us: rep.p999().map(|d| d.as_ps() as f64 / 1e6).unwrap_or(0.0),
        miss_rate: rep.deadline_miss_rate(),
        upi_crossers,
        wall_s,
    }
}

fn main() {
    let smoke = std::env::var("FLEET_SCALE_SMOKE").is_ok_and(|v| v == "1");
    let scales: &[u64] = if smoke { &[500, 2_000] } else { &[1_000, 10_000, 100_000] };

    table::banner(
        "fleet_scale",
        "sharded multi-socket fleet: tenant scale × placement (32 shards on 2×4 devices)",
    );
    table::header(&[
        "tenants",
        "placement",
        "upi-x",
        "jobs done",
        "wall ms",
        "kjobs/s",
        "Jain",
        "p999 us",
        "miss rate",
    ]);

    // Determinism proof on the smallest cell: two parallel runs and the
    // sequential replay must fold the same merged digest.
    {
        let f = fleet(scales[0], PoolPolicy::NumaLocal);
        let a = f.run_parallel(THREADS).expect("parallel run");
        let b = f.run_parallel(2).expect("second parallel run");
        let s = f.run_sequential().expect("sequential replay");
        assert_eq!(a.digest, b.digest, "8-thread and 2-thread runs diverged");
        assert_eq!(a.digest, s.digest, "parallel run diverged from the sequential replay");
    }

    let mut cells = Vec::new();
    for &tenants in scales {
        for placement in POLICIES {
            let c = run_cell(tenants, placement);
            table::row(&[
                c.tenants.to_string(),
                placement_label(c.placement).to_string(),
                c.upi_crossers.to_string(),
                c.completed.to_string(),
                table::f2(c.wall_s * 1e3),
                table::f2(c.jobs_per_sec() / 1e3),
                table::f2(c.fairness),
                table::f2(c.p999_us),
                table::f2(c.miss_rate),
            ]);
            cells.push(c);
        }
    }

    // The curves must carry signal: every cell completed work, fairness
    // is a valid Jain index, and round-robin actually paid UPI crossings
    // while NUMA-local never did.
    for c in &cells {
        assert!(c.completed > 0, "{}: no jobs completed", c.lane());
        assert!(c.fairness > 0.0 && c.fairness <= 1.0 + 1e-9, "{}: bad Jain", c.lane());
        match c.placement {
            PoolPolicy::NumaLocal => assert_eq!(c.upi_crossers, 0, "NUMA-local crossed the UPI"),
            PoolPolicy::RoundRobin => {
                assert!(c.upi_crossers > 0, "round-robin at 4× slots must cross sockets")
            }
            PoolPolicy::LeastLoaded => {}
        }
    }

    let body = format!(
        "{{\n  \"bench\": \"fleet_scale\",\n  \"schema_version\": 1,\n  \"smoke\": {},\n  \
         \"shards\": {},\n  \"threads\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        smoke,
        SHARDS,
        THREADS,
        cells.iter().map(Cell::json_row).collect::<Vec<_>>().join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet_scale.json");
    std::fs::write(path, body).expect("write BENCH_fleet_scale.json at the repo root");
    println!("wrote {path}");
}
