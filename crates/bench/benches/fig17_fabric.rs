//! Fig. 17: libfabric-based experiments (Appendix A).
//! (a) pingpong and RMA throughput — DSA overtakes the CPU from ~32 KiB,
//! up to ≈ 5.1× at multi-MB messages.
//! (b) OSU-style AllReduce with 2–8 ranks and the BERT pre-training step.

use dsa_bench::table;
use dsa_core::backend::Engine;
use dsa_core::runtime::DsaRuntime;
use dsa_device::config::DeviceConfig;
use dsa_mem::topology::Platform;
use dsa_workloads::fabric::{BertStep, SarFabric};

fn rt2() -> DsaRuntime {
    DsaRuntime::builder(Platform::spr()).devices(2, DeviceConfig::full_device()).build()
}

fn main() {
    table::banner("Fig. 17a", "libfabric SAR pingpong / RMA throughput (GB/s)");
    table::header(&["msg", "PP cpu", "PP dsa", "RMA cpu", "RMA dsa", "PP ratio"]);
    for &msg in &[4u64 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20] {
        let mut rt = rt2();
        let cpu = SarFabric::new(Engine::Cpu);
        let dsa = SarFabric::new(Engine::dsa());
        let pp_c = cpu.pingpong_gbps(&mut rt, msg).unwrap();
        let pp_d = dsa.pingpong_gbps(&mut rt, msg).unwrap();
        let rma_c = cpu.rma_gbps(&mut rt, msg).unwrap();
        let rma_d = dsa.rma_gbps(&mut rt, msg).unwrap();
        table::row(&[
            table::size_label(msg),
            table::f2(pp_c),
            table::f2(pp_d),
            table::f2(rma_c),
            table::f2(rma_d),
            table::f2(pp_d / pp_c),
        ]);
    }
    println!("(paper: up to 5.1x PP / 4.7x RMA at large messages)");

    table::banner("Fig. 17b", "ring AllReduce time (us) and speedup by rank count");
    table::header(&["ranks", "msg", "cpu us", "dsa us", "speedup"]);
    for &ranks in &[2u32, 4, 8] {
        for &msg in &[256u64 << 10, 4 << 20] {
            let mut rt_c = rt2();
            let mut rt_d = rt2();
            let cpu = SarFabric::new(Engine::Cpu).allreduce(&mut rt_c, ranks, msg).unwrap();
            let dsa = SarFabric::new(Engine::dsa()).allreduce(&mut rt_d, ranks, msg).unwrap();
            table::row(&[
                ranks.to_string(),
                table::size_label(msg),
                table::us(cpu),
                table::us(dsa),
                table::f2(cpu.as_ns_f64() / dsa.as_ns_f64()),
            ]);
        }
    }

    table::banner("Fig. 17b (BERT)", "MLPerf-BERT-style step: AllReduce & end-to-end speedup");
    table::header(&["ranks", "AR cpu ms", "AR dsa ms", "AR x", "e2e gain %"]);
    for &ranks in &[2u32, 8] {
        let r = BertStep { ranks, ..BertStep::default() }.run().unwrap();
        table::row(&[
            ranks.to_string(),
            format!("{:.2}", r.ar_cpu.as_secs_f64() * 1e3),
            format!("{:.2}", r.ar_dsa.as_secs_f64() * 1e3),
            table::f2(r.ar_speedup),
            table::f2((r.e2e_speedup - 1.0) * 100.0),
        ]);
    }
    println!("(paper: 2.8x/3.3x AR speedup, 3.7%/8.8% end-to-end for 2/8 ranks)");
}
