//! The governed fleet: one private [`Governor`] per shard, riding the
//! fleet layer's shard isolation.
//!
//! Each shard's governor owns its service, its telemetry window, and its
//! twin scoring — nothing crosses shards, so the parallel-determinism
//! proof carries over unchanged: [`GovernedFleet::run_parallel`] merges
//! per-shard **control** digests (service digest ⊕ decision sequence) in
//! shard order, and the result is bit-identical across thread counts.
//! A governed fleet whose shards never decide anything digests exactly
//! like the plain [`Fleet`] — the controller is provably a no-op until
//! it acts.

use crate::controller::{ControllerConfig, Governor};
use dsa_core::error::DsaError;
use dsa_svc::fleet::{Fleet, FleetReport, ShardReport};

/// A [`Fleet`] driven shard-by-shard under a [`Governor`].
pub struct GovernedFleet {
    fleet: Fleet,
    cfg: ControllerConfig,
}

/// A governed fleet run's outcome: the merged fleet report (per-shard
/// digests are control digests) plus fleet-wide decision counts.
#[derive(Clone, Debug)]
pub struct GovernedFleetReport {
    /// The merged per-shard rows and order-merged control digest.
    pub fleet: FleetReport,
    /// Re-plan evaluations across all shards.
    pub decisions: u64,
    /// Plan transitions actually applied across all shards.
    pub transitions: u64,
}

impl GovernedFleet {
    /// Wraps `fleet` with one governor tuning shared by every shard
    /// (each shard still gets its own governor instance and twin seeds).
    pub fn new(fleet: Fleet, cfg: ControllerConfig) -> GovernedFleet {
        GovernedFleet { fleet, cfg }
    }

    /// The underlying fleet.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The controller tuning in force.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Governs every shard on the calling thread, in shard order.
    ///
    /// # Errors
    ///
    /// Propagates shard construction errors like
    /// [`Fleet::run_sequential`].
    pub fn run_sequential(&self) -> Result<GovernedFleetReport, DsaError> {
        self.run_parallel(1)
    }

    /// Governs the shards on up to `threads` workers via
    /// [`Fleet::map_shards`] and merges in shard order. The merged digest
    /// is bit-identical across thread counts.
    ///
    /// # Errors
    ///
    /// Propagates the first failing shard's error, in shard order.
    pub fn run_parallel(&self, threads: usize) -> Result<GovernedFleetReport, DsaError> {
        let rows = self.fleet.map_shards(threads, |i, mut svc| {
            let ctl = Governor::new(self.cfg.clone()).govern(&mut svc);
            let mut shard =
                ShardReport::from_service(self.fleet.shard_assignment(i), &svc, &ctl.report);
            // The shard's digest-merge slot carries the CONTROL digest:
            // service digest with the decision sequence folded in. With
            // zero decisions the two coincide, so a pressure-free
            // governed fleet digests exactly like a plain one.
            shard.digest = ctl.digest();
            Ok((shard, ctl.decisions.len() as u64, ctl.transitions()))
        })?;
        let mut decisions = 0;
        let mut transitions = 0;
        let mut shards = Vec::with_capacity(rows.len());
        for (shard, d, t) in rows {
            decisions += d;
            transitions += t;
            shards.push(shard);
        }
        let fleet = FleetReport::from_shards(self.fleet.config().placement(), shards);
        Ok(GovernedFleetReport { fleet, decisions, transitions })
    }
}
