//! Control decisions and the governed run's report.
//!
//! Every epoch in which the governor evaluated a re-plan produces one
//! [`Decision`] — adopted or not — and the whole sequence folds into the
//! run's replay digest. That makes the closed loop auditable the same
//! way the simulation is: two governed runs from the same seed must
//! produce bit-identical decision sequences, and a governed run that
//! never decided anything must digest exactly like an ungoverned one.

use dsa_core::digest::{Digestible, Fnv1a};
use dsa_sim::time::SimTime;
use dsa_svc::service::ServiceReport;

/// One re-plan evaluation: the incumbent, the best-scoring candidate,
/// both twin scores, and whether the candidate cleared the hysteresis
/// margin and was applied.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// 1-based epoch index on the governed service's timeline.
    pub epoch: u32,
    /// Service time when the evaluation ran.
    pub at: SimTime,
    /// Incumbent plan label.
    pub from: String,
    /// Best candidate's plan label.
    pub to: String,
    /// The incumbent's digital-twin score (lower is better).
    pub incumbent_score: f64,
    /// The best candidate's digital-twin score.
    pub score: f64,
    /// True when the candidate was applied via
    /// [`DsaService::transition`](dsa_svc::service::DsaService::transition).
    pub adopted: bool,
    /// Tenants re-wired onto a different WQ (0 unless adopted).
    pub moved: u64,
    /// When the service resumed after the transition stall (`at` unless
    /// adopted).
    pub ready: SimTime,
}

impl Digestible for Decision {
    fn fold(&self, h: &mut Fnv1a) {
        h.write_u64(u64::from(self.epoch));
        h.write_u64(self.at.as_ps());
        h.write_u64(self.from.len() as u64);
        h.write(self.from.as_bytes());
        h.write_u64(self.to.len() as u64);
        h.write(self.to.as_bytes());
        // Scores are compared with total_cmp and digested by bit pattern;
        // no float→int rounding anywhere near the digest.
        h.write_u64(self.incumbent_score.to_bits());
        h.write_u64(self.score.to_bits());
        h.write_u64(u64::from(self.adopted));
        h.write_u64(self.moved);
        h.write_u64(self.ready.as_ps());
    }
}

/// The outcome of a governed run: the service's final report plus the
/// decision sequence that produced it.
#[derive(Clone, Debug)]
pub struct ControlReport {
    /// The governed service's end-of-run report.
    pub report: ServiceReport,
    /// Every re-plan evaluation, in epoch order.
    pub decisions: Vec<Decision>,
    /// Epochs the governor stepped through.
    pub epochs: u32,
}

impl ControlReport {
    /// Plan transitions actually applied.
    pub fn transitions(&self) -> u64 {
        self.decisions.iter().filter(|d| d.adopted).count() as u64
    }

    /// The governed run's replay digest: the service digest with the
    /// decision sequence folded in. A run with no decisions digests
    /// exactly as the ungoverned service would — the governor observed
    /// but never perturbed, and the digest says so.
    pub fn digest(&self) -> u64 {
        if self.decisions.is_empty() {
            return self.report.digest();
        }
        let mut h = Fnv1a::new();
        h.write_u64(self.report.digest());
        for d in &self.decisions {
            d.fold(&mut h);
        }
        h.finish()
    }
}

impl Digestible for ControlReport {
    fn fold(&self, h: &mut Fnv1a) {
        h.write_u64(self.digest());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_sim::time::SimDuration;

    fn decision(adopted: bool) -> Decision {
        Decision {
            epoch: 3,
            at: SimTime::ZERO + SimDuration::from_us(60),
            from: "shared".into(),
            to: "by-class".into(),
            incumbent_score: 12.5,
            score: 4.25,
            adopted,
            moved: 7,
            ready: SimTime::ZERO + SimDuration::from_us(65),
        }
    }

    #[test]
    fn digest_is_sensitive_to_each_decision_field() {
        let a = decision(true);
        let mut b = decision(true);
        b.score = 4.26;
        assert_ne!(a.digest64(), b.digest64());
        let c = decision(false);
        assert_ne!(a.digest64(), c.digest64());
    }
}
