//! The governor: a deterministic SLO control loop over one
//! [`DsaService`].
//!
//! [`Governor::govern`] drives the service in fixed epochs with
//! [`DsaService::run_until`], reads *windowed* telemetry for the epoch
//! just finished (a [`HubWindow`] over the service's hub — deltas, not
//! cumulative totals), and checks the window against the service's typed
//! [`SloTarget`]. Under pressure it generates candidate reconfigurations
//! ([`crate::candidates`]), scores each — incumbent included — by
//! forking a cheap **digital twin**: a fresh `DsaService` seeded
//! deterministically from the live one, carrying the remaining (truncated)
//! per-tenant workloads under the candidate plan. The best candidate is
//! adopted through [`DsaService::transition`] only when it clears a
//! hysteresis margin over the incumbent's own twin score, which damps
//! plan thrash.
//!
//! Everything the loop reads and writes is deterministic simulation
//! state: same seed ⇒ bit-identical epoch boundaries, observations, twin
//! scores, decision sequence, and digest — across thread counts when run
//! under the fleet (each shard's governor is private to it).

use crate::candidates::candidates;
use crate::decision::{ControlReport, Decision};
use dsa_core::digest::Fnv1a;
use dsa_sim::stats::jain_fairness;
use dsa_sim::time::{SimDuration, SimTime};
use dsa_svc::plan::{Plan, PlanSpec, TransitionCosts};
use dsa_svc::service::{DsaService, ServiceConfig};
use dsa_svc::slo::SloTarget;
use dsa_svc::tenant::QosClass;
use dsa_telemetry::metrics::Labels;
use dsa_telemetry::window::HubWindow;

/// Tuning for a [`Governor`]. All defaults are deliberately conservative:
/// the loop observes every 20 µs, ignores windows too thin to judge, and
/// demands a 10% twin-score improvement before touching the device.
#[derive(Clone, Debug, PartialEq)]
pub struct ControllerConfig {
    /// Control epoch length on the simulated timeline.
    pub epoch: SimDuration,
    /// Minimum jobs offered inside a window before the governor will act
    /// on it (thin windows are noise, especially at the run's tail).
    pub min_window_offered: u64,
    /// Relative twin-score margin a candidate must clear over the
    /// incumbent before adoption (0.1 = 10% better).
    pub hysteresis: f64,
    /// Per-tenant job cap in the digital twin's truncated roster — the
    /// knob trading twin fidelity for control-loop cost.
    pub twin_jobs: u64,
    /// Hard cap on transitions per governed run (a stuck oscillator
    /// stops re-carving; the hysteresis margin should make this moot).
    pub max_transitions: u32,
    /// Prices charged by [`DsaService::transition`] and folded into
    /// candidate scores.
    pub costs: TransitionCosts,
    /// Governor salt folded into every twin seed, so governed runs under
    /// different controller identities explore independent twin streams.
    pub seed: u64,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig {
            epoch: SimDuration::from_us(20),
            min_window_offered: 16,
            hysteresis: 0.1,
            twin_jobs: 48,
            max_transitions: 8,
            costs: TransitionCosts::default(),
            seed: 0xC7_1900D,
        }
    }
}

/// What one closed window showed: job counts, the worst per-tenant tail,
/// and windowed fairness. Pure data derived from deterministic telemetry.
#[derive(Clone, Debug)]
pub struct Observation {
    /// Jobs generated in the window.
    pub offered: u64,
    /// Jobs completed (accelerator + CPU fallback) in the window.
    pub completed: u64,
    /// Jobs shed at admission in the window.
    pub shed: u64,
    /// Completed jobs that finished past their deadline in the window.
    pub misses: u64,
    /// The worst per-tenant windowed p99 latency, when any job completed.
    pub p99: Option<SimDuration>,
    /// Jain fairness over per-tenant windowed completions.
    pub fairness: f64,
    /// Tenant with the worst windowed p99.
    pub worst_tenant: Option<usize>,
    /// Worst-p99 tenant restricted to [`QosClass::Throughput`] — the
    /// promotion candidate.
    pub worst_throughput_tenant: Option<usize>,
}

impl Observation {
    /// Reads the window deltas for every tenant of `svc`.
    pub fn from_window(w: &HubWindow, svc: &DsaService) -> Observation {
        let mut obs = Observation {
            offered: 0,
            completed: 0,
            shed: 0,
            misses: 0,
            p99: None,
            fairness: 1.0,
            worst_tenant: None,
            worst_throughput_tenant: None,
        };
        let mut shares = Vec::with_capacity(svc.tenant_count());
        for i in 0..svc.tenant_count() {
            let t = Labels::tenant(i as u16);
            obs.offered += w.counter_delta("svc_offered", t);
            let done = w.counter_delta("svc_jobs", t) + w.counter_delta("svc_degraded", t);
            obs.completed += done;
            shares.push(done as f64);
            obs.shed += w.counter_delta("svc_shed", t);
            obs.misses += w.counter_delta("svc_deadline_miss", t);
            let lat = w.histogram_delta_tenant("svc_latency", i as u16);
            if let Some(p99) = lat.percentile(99.0) {
                if obs.p99.is_none_or(|worst| p99 > worst) {
                    obs.p99 = Some(p99);
                    obs.worst_tenant = Some(i);
                }
                if svc.tenant_spec(i).class == QosClass::Throughput
                    && obs.worst_throughput_tenant.is_none_or(|j| {
                        w.histogram_delta_tenant("svc_latency", j as u16)
                            .percentile(99.0)
                            .is_none_or(|other| p99 > other)
                    })
                {
                    obs.worst_throughput_tenant = Some(i);
                }
            }
        }
        obs.fairness = jain_fairness(&shares);
        obs
    }

    /// Deadline failures (misses + sheds) over offered jobs in the window.
    pub fn miss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.misses + self.shed) as f64 / self.offered as f64
        }
    }

    /// True when the window violates any objective in `slo`.
    pub fn pressure(&self, slo: &SloTarget) -> bool {
        if let (Some(target), Some(p99)) = (slo.p99, self.p99) {
            if p99 > target {
                return true;
            }
        }
        if let Some(frac) = slo.deadline_miss_frac {
            if self.miss_rate() > frac {
                return true;
            }
        }
        if let Some(min) = slo.min_jain {
            if self.completed > 0 && self.fairness < min {
                return true;
            }
        }
        false
    }
}

/// The deterministic control loop. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct Governor {
    cfg: ControllerConfig,
}

impl Governor {
    /// A governor with the given tuning.
    pub fn new(cfg: ControllerConfig) -> Governor {
        Governor { cfg }
    }

    /// The tuning in force.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Drives `svc` to completion in epochs, re-planning under SLO
    /// pressure, and returns the final report plus the decision sequence.
    ///
    /// A service with no [`SloTarget`] is driven identically but never
    /// re-planned: the step sequence — and therefore the digest — matches
    /// an ungoverned [`DsaService::run`] bit for bit.
    pub fn govern(&self, svc: &mut DsaService) -> ControlReport {
        let hub = svc.trace();
        let mut window = HubWindow::new(hub);
        let slo = svc.slo().copied();
        let mut decisions = Vec::new();
        let mut epochs = 0u32;
        let mut until = match svc.next_ready() {
            Some(t) => t + self.cfg.epoch,
            None => return ControlReport { report: svc.report(), decisions, epochs },
        };
        loop {
            svc.run_until(until);
            epochs += 1;
            if let Some(slo) = &slo {
                let obs = Observation::from_window(&window, svc);
                if obs.offered >= self.cfg.min_window_offered
                    && svc.transitions() < self.cfg.max_transitions
                    && obs.pressure(slo)
                {
                    if let Some(d) = self.replan(svc, &obs, epochs) {
                        decisions.push(d);
                    }
                }
            }
            window.mark();
            match svc.next_ready() {
                Some(t) => until = t.max(until) + self.cfg.epoch,
                None => break,
            }
        }
        ControlReport { report: svc.report(), decisions, epochs }
    }

    /// One re-plan evaluation: candidates → twin scores → hysteresis →
    /// (maybe) transition. Returns `None` when there was nothing to score.
    fn replan(&self, svc: &mut DsaService, obs: &Observation, epoch: u32) -> Option<Decision> {
        let cands = candidates(svc, obs);
        if cands.is_empty() {
            return None;
        }
        let incumbent = svc.plan().clone();
        let incumbent_score = self.twin_score(svc, &incumbent, epoch, 0.0)?;
        let mut best: Option<(Plan, f64)> = None;
        for p in cands {
            // Candidates pay the transition stall the live service would;
            // the incumbent pays nothing. Moved-tenant count is unknown
            // before assignment, so price the worst case (every tenant).
            let delta = incumbent.diff(&p);
            let stall = delta.cost(&self.cfg.costs, svc.tenant_count() as u64).as_ns_f64() * 1e-9;
            let Some(score) = self.twin_score(svc, &p, epoch, stall) else { continue };
            if best.as_ref().is_none_or(|(_, b)| score.total_cmp(b).is_lt()) {
                best = Some((p, score));
            }
        }
        let (plan, score) = best?;
        let at = svc.runtime().now();
        let margin = self.cfg.hysteresis * incumbent_score.abs();
        let adopted = score + margin < incumbent_score;
        let (mut moved, mut ready) = (0, at);
        if adopted {
            // Candidates already passed device validation inside the twin,
            // so this cannot fail; recording a non-adopted decision keeps
            // the digest honest if it somehow does.
            match svc.transition(plan.clone(), &self.cfg.costs) {
                Ok(tr) => {
                    moved = tr.moved;
                    ready = tr.ready;
                }
                Err(_) => {
                    return Some(Decision {
                        epoch,
                        at,
                        from: incumbent.label().to_string(),
                        to: plan.label().to_string(),
                        incumbent_score,
                        score,
                        adopted: false,
                        moved: 0,
                        ready: at,
                    })
                }
            }
        }
        Some(Decision {
            epoch,
            at,
            from: incumbent.label().to_string(),
            to: plan.label().to_string(),
            incumbent_score,
            score,
            adopted,
            moved,
            ready,
        })
    }

    /// Scores `plan` by running a digital twin: a fresh service over the
    /// live tenants' *remaining* workloads (truncated to
    /// [`twin_jobs`](ControllerConfig::twin_jobs) each, starts zeroed),
    /// seeded deterministically from (controller salt, service seed,
    /// epoch, plan label). Lower is better: windowed deadline-failure
    /// rate dominates, then unfairness, then twin makespan plus the
    /// candidate's priced transition stall (`stall_s`, seconds).
    fn twin_score(&self, svc: &DsaService, plan: &Plan, epoch: u32, stall_s: f64) -> Option<f64> {
        let mut roster = Vec::new();
        for i in 0..svc.tenant_count() {
            let remaining = svc.remaining_jobs(i);
            if remaining == 0 {
                continue;
            }
            let mut spec = svc.tenant_spec(i).clone();
            spec.jobs = remaining.min(self.cfg.twin_jobs);
            spec.start = SimDuration::ZERO;
            roster.push(spec);
        }
        if roster.is_empty() {
            return None;
        }
        let mut h = Fnv1a::new();
        h.write_u64(self.cfg.seed);
        h.write_u64(svc.seed());
        h.write_u64(u64::from(epoch));
        h.write(plan.label().as_bytes());
        let cfg = ServiceConfig::builder()
            .plan(PlanSpec::Fixed(plan.clone()))
            .seed(h.finish())
            .platform(svc.runtime().platform().clone())
            .location(svc.location())
            .tenants(roster)
            .build()
            .ok()?;
        let mut twin = DsaService::from_config(cfg).ok()?;
        let rep = twin.run();
        let makespan_s = (rep.makespan - SimTime::ZERO).as_ns_f64() * 1e-9;
        Some(rep.deadline_miss_rate() * 1000.0 + (1.0 - rep.fairness) * 10.0 + makespan_s + stall_s)
    }
}
