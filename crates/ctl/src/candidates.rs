//! Candidate reconfigurations the governor weighs each pressured epoch.
//!
//! The generator is deliberately small and closed-form: the three
//! canonical recipes ([`Plan::shared`], [`Plan::dedicated`],
//! [`Plan::by_class_of`]), a read-buffer shift on the class split, and a
//! targeted promotion of the tenant the current window says is suffering
//! most. Candidates that fail device-envelope validation (e.g. dedicated
//! WQs for more tenants than the envelope holds) simply drop out, and
//! plans structurally identical to the incumbent — or to an earlier
//! candidate — are deduped through [`Plan::diff`], so the twin never
//! burns cycles re-scoring the status quo.

use crate::controller::Observation;
use dsa_svc::plan::Plan;
use dsa_svc::service::DsaService;
use dsa_svc::tenant::QosClass;

/// Read buffers per engine left to the throughput group in the
/// read-buffer-shift candidate (paper guideline G6: read-buffer
/// allocation moves bandwidth between groups). Clamping the bulk group
/// this hard throttles bandwidth aggressors at the source, which is the
/// only lever that protects the latency class when the contention is in
/// the memory fabric rather than the engines.
const RBUF_CLAMP: u32 = 8;

/// The deduped candidate list for `svc` under the window observation
/// `obs`, in deterministic generation order. The incumbent itself is
/// never in the list.
pub fn candidates(svc: &DsaService, obs: &Observation) -> Vec<Plan> {
    let classes: Vec<QosClass> =
        (0..svc.tenant_count()).map(|i| svc.tenant_spec(i).class).collect();
    let mut raw = Vec::new();
    if let Ok(p) = Plan::shared() {
        raw.push(p);
    }
    if let Ok(p) = Plan::dedicated(classes.len()) {
        raw.push(p);
    }
    if let Ok(p) = Plan::by_class_of(&classes) {
        // The throughput pool is always the last group of the by-class
        // carve; starve its read buffers to throttle fabric aggressors.
        if let Ok(b) = p.with_read_buffers(p.groups().len() - 1, RBUF_CLAMP) {
            raw.push(b.with_label("by-class+rbuf"));
        }
        raw.push(p);
    }
    // Promote the worst-off throughput tenant into the latency wiring —
    // the shared→dedicated escape hatch for one noisy victim.
    if let Some(worst) = obs.worst_throughput_tenant {
        if worst < classes.len() {
            let mut promoted = classes.clone();
            promoted[worst] = QosClass::Latency;
            if let Ok(p) = Plan::by_class_of(&promoted) {
                raw.push(p.with_label(&format!("promote-t{worst}")));
            }
        }
    }
    let incumbent = svc.plan();
    let mut out: Vec<Plan> = Vec::new();
    for p in raw {
        if incumbent.diff(&p).is_empty() {
            continue;
        }
        if out.iter().all(|q| !q.diff(&p).is_empty()) {
            out.push(p);
        }
    }
    out
}
