//! # dsa-ctl — the SLO-driven control plane
//!
//! The service layer (`dsa-svc`) answers *how a chosen plan behaves*;
//! this crate closes the loop on *which plan to run*. A [`Governor`]
//! watches a live [`DsaService`](dsa_svc::service::DsaService) through
//! windowed telemetry deltas, detects pressure against the service's
//! typed [`SloTarget`](dsa_svc::slo::SloTarget), generates candidate
//! reconfigurations over the first-class
//! [`Plan`](dsa_svc::plan::Plan) API (re-carved groups/WQs, shifted
//! read buffers, tenant promotions), scores each with a deterministic
//! **digital twin** — a cheap forked replay of the remaining workload —
//! and applies the winner through the live plan-transition path, with a
//! hysteresis margin damping thrash.
//!
//! Determinism is load-bearing: every observation, twin score, and
//! [`Decision`] is a pure function of simulation state and seeds, and
//! the decision sequence folds into the replay digest
//! ([`ControlReport::digest`]). Same seed ⇒ bit-identical closed-loop
//! run, across fleet thread counts ([`GovernedFleet`]); no decisions ⇒
//! the digest of the ungoverned run, bit for bit.
//!
//! ```
//! use dsa_ctl::prelude::*;
//! use dsa_svc::prelude::*;
//!
//! let cfg = ServiceConfig::builder()
//!     .plan(PlanSpec::Shared)
//!     .slo(SloTarget::new().with_deadline_miss_frac(0.05))
//!     .tenant(
//!         TenantSpec::new("latency", 4 << 10, 60)
//!             .with_class(QosClass::Latency)
//!             .with_deadline(SimDuration::from_us(50))
//!             .with_arrival(Arrival::open(SimDuration::from_us(2))),
//!     )
//!     .tenant(TenantSpec::new("bulk", 256 << 10, 40))
//!     .build()?;
//! let mut svc = DsaService::from_config(cfg)?;
//! let ctl = Governor::new(ControllerConfig::default()).govern(&mut svc);
//! assert_eq!(ctl.report.offered(), 100);
//! // Same seed ⇒ same decisions ⇒ same digest (bit-identical replay).
//! # Ok::<(), dsa_core::DsaError>(())
//! ```

pub mod candidates;
pub mod controller;
pub mod decision;
pub mod fleet;

pub use controller::{ControllerConfig, Governor, Observation};
pub use decision::{ControlReport, Decision};
pub use fleet::{GovernedFleet, GovernedFleetReport};

/// The types most control-plane programs need.
pub mod prelude {
    pub use crate::controller::{ControllerConfig, Governor, Observation};
    pub use crate::decision::{ControlReport, Decision};
    pub use crate::fleet::{GovernedFleet, GovernedFleetReport};
}
