//! Causal tracing and critical-path latency attribution.
//!
//! The paper's methodology is latency *decomposition*: Fig. 5 splits each
//! offload into software preparation, WQ queueing, and device processing,
//! and §5 attributes throughput per device from PCM counters. This module
//! connects those signals causally, so a p999-violating completion can be
//! asked "*which* segment put you on the critical path?":
//!
//! * [`CausalGraph`] collects the sim engine's
//!   [`CausalEdge`](dsa_sim::engine::CausalEdge)s — every event carries a
//!   trace ID (its deterministic sequence number) and a parent edge, so
//!   any completion walks back to the external stimulus that caused it.
//! * [`JobTrace`] attributes one completed job's end-to-end latency to
//!   five typed [`SegmentKind`]s that partition it picosecond-exactly and
//!   reconcile with the six device [`Phase`]s.
//! * [`CritPathProfile`] aggregates traces per (tenant, device, WQ) into
//!   p50/p99/p999 attributed breakdowns with dominant-bottleneck
//!   classification; [`blame_shifts`] flags sweep points where the
//!   dominant segment changes hands (the Fig. 4/7 crossovers, e.g.
//!   WQ-wait overtaking PE service as fan-out grows).
//!
//! Everything here is deterministic and replay-safe: IDs derive from
//! event sequence numbers or an insertion-order counter, containers are
//! ordered (`BTreeMap`, arrays), and no wall clock is consulted. The
//! module sits inside the dsa-lint det-core scope (R1/R3), so hash-order
//! containers and float->int timeline casts are rejected at lint time.

use std::collections::BTreeMap;

use dsa_sim::engine::CausalEdge;
use dsa_sim::stats::DurationHistogram;
use dsa_sim::time::{SimDuration, SimTime};

use crate::span::Phase;

/// A typed segment of a job's critical path. The five segments partition
/// the interval from software job start to completion-record visibility
/// with no gaps or overlaps, so their sum is the end-to-end latency
/// exactly (picosecond arithmetic, no floats).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentKind {
    /// Software preparation: descriptor allocation, population, portal
    /// write, plus any retry/backoff spent before the WQ accepted the
    /// descriptor. Superset of the device-side [`Phase::Submit`].
    SoftwarePrep,
    /// Queued in the work queue awaiting a processing engine
    /// (= [`Phase::Wait`]).
    WqWait,
    /// PE-side setup before data moves: address translation / ATS-ATC
    /// walk (= [`Phase::Translate`]).
    PeService,
    /// The data movement itself — memory reads plus writes, including any
    /// UPI hop for remote-socket buffers (= [`Phase::Read`] +
    /// [`Phase::Write`]).
    MemoryHop,
    /// Completion-record write-back until visible to software
    /// (= [`Phase::Complete`]).
    CompletionWrite,
}

impl SegmentKind {
    /// All segments, in critical-path order.
    pub const ALL: [SegmentKind; 5] = [
        SegmentKind::SoftwarePrep,
        SegmentKind::WqWait,
        SegmentKind::PeService,
        SegmentKind::MemoryHop,
        SegmentKind::CompletionWrite,
    ];

    /// Positional index in [`ALL`](Self::ALL).
    pub fn index(self) -> usize {
        match self {
            SegmentKind::SoftwarePrep => 0,
            SegmentKind::WqWait => 1,
            SegmentKind::PeService => 2,
            SegmentKind::MemoryHop => 3,
            SegmentKind::CompletionWrite => 4,
        }
    }

    /// Stable snake_case name (used in folded stacks and report tables).
    pub fn name(self) -> &'static str {
        match self {
            SegmentKind::SoftwarePrep => "software_prep",
            SegmentKind::WqWait => "wq_wait",
            SegmentKind::PeService => "pe_service",
            SegmentKind::MemoryHop => "memory_hop",
            SegmentKind::CompletionWrite => "completion_write",
        }
    }

    /// The descriptor-lifecycle [`Phase`]s this segment covers.
    /// [`SoftwarePrep`](Self::SoftwarePrep) additionally includes
    /// core-side time (alloc, prepare, failed submission attempts) that
    /// happens before the device clock starts, which no phase records.
    pub fn phases(self) -> &'static [Phase] {
        match self {
            SegmentKind::SoftwarePrep => &[Phase::Submit],
            SegmentKind::WqWait => &[Phase::Wait],
            SegmentKind::PeService => &[Phase::Translate],
            SegmentKind::MemoryHop => &[Phase::Read, Phase::Write],
            SegmentKind::CompletionWrite => &[Phase::Complete],
        }
    }
}

/// One completed job's attributed critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobTrace {
    /// Deterministic trace ID (insertion-order counter from the hub, or
    /// an engine event sequence number).
    pub trace_id: u64,
    /// Owning tenant, when the job ran under the service layer.
    pub tenant: Option<u16>,
    /// Device that executed the job.
    pub device: u16,
    /// Work queue the descriptor landed in.
    pub wq: u16,
    /// Operation mnemonic ("memcpy", "batch", "cbdma_copy", ...).
    pub op: &'static str,
    /// Bytes moved (clamped to `u32::MAX` for jumbo batches).
    pub xfer_size: u32,
    /// Software job start (before descriptor allocation).
    pub start: SimTime,
    /// Completion record visible to software.
    pub end: SimTime,
    /// Per-segment durations, indexed by [`SegmentKind::index`].
    pub segments: [SimDuration; 5],
}

impl JobTrace {
    /// Builds a trace from the six boundary timestamps
    /// `[job_start, admitted, dispatched, translated, data_done,
    /// completed]`. Consecutive differences become the five segments, so
    /// the partition is exact by construction. Boundaries must be
    /// nondecreasing.
    pub fn from_boundaries(
        trace_id: u64,
        device: u16,
        wq: u16,
        op: &'static str,
        xfer_size: u32,
        bounds: [SimTime; 6],
    ) -> JobTrace {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "critical-path boundaries must be nondecreasing: {bounds:?}"
        );
        let mut segments = [SimDuration::ZERO; 5];
        for (i, seg) in segments.iter_mut().enumerate() {
            *seg = bounds[i + 1].saturating_duration_since(bounds[i]);
        }
        JobTrace {
            trace_id,
            tenant: None,
            device,
            wq,
            op,
            xfer_size,
            start: bounds[0],
            end: bounds[5],
            segments,
        }
    }

    /// Returns the trace tagged with a tenant.
    pub fn with_tenant(mut self, tenant: Option<u16>) -> JobTrace {
        self.tenant = tenant;
        self
    }

    /// Measured end-to-end latency (job start to completion visibility).
    pub fn total(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }

    /// Sum of the attributed segments — equals [`total`](Self::total)
    /// exactly, by the partition invariant.
    pub fn attributed_total(&self) -> SimDuration {
        self.segments.iter().copied().sum()
    }

    /// Duration attributed to one segment.
    pub fn segment(&self, kind: SegmentKind) -> SimDuration {
        self.segments[kind.index()]
    }

    /// The segment with the largest share of this job's latency (ties go
    /// to the earlier segment in path order).
    pub fn dominant(&self) -> SegmentKind {
        let mut best = SegmentKind::SoftwarePrep;
        for kind in SegmentKind::ALL {
            if self.segment(kind) > self.segment(best) {
                best = kind;
            }
        }
        best
    }
}

/// The causal DAG of one engine run, built from
/// [`CausalEdge`](dsa_sim::engine::CausalEdge)s delivered to the engine's
/// cause observer. Edges are keyed by child sequence number (each event
/// is scheduled exactly once, so the "DAG" is a forest of cause trees
/// rooted at external posts).
#[derive(Clone, Debug, Default)]
pub struct CausalGraph {
    edges: Vec<CausalEdge>,
    by_child: BTreeMap<u64, usize>,
}

impl CausalGraph {
    /// Creates an empty graph.
    pub fn new() -> CausalGraph {
        CausalGraph::default()
    }

    /// Records one edge (call from the engine's cause observer).
    pub fn record(&mut self, edge: CausalEdge) {
        self.by_child.insert(edge.child, self.edges.len());
        self.edges.push(edge);
    }

    /// Number of recorded edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges have been recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// All edges in recording (scheduling) order.
    pub fn edges(&self) -> &[CausalEdge] {
        &self.edges
    }

    /// The edge that scheduled `event`, if recorded.
    pub fn edge_to(&self, event: u64) -> Option<&CausalEdge> {
        self.by_child.get(&event).map(|&i| &self.edges[i])
    }

    /// The causal chain from the external stimulus down to `event`,
    /// oldest edge first. Empty when `event` was never recorded.
    pub fn path_to(&self, event: u64) -> Vec<CausalEdge> {
        let mut path = Vec::new();
        let mut cursor = event;
        while let Some(edge) = self.edge_to(cursor) {
            path.push(*edge);
            if edge.parent == CausalEdge::EXTERNAL {
                break;
            }
            debug_assert!(edge.parent < edge.child, "sequence numbers grow along edges");
            cursor = edge.parent;
        }
        path.reverse();
        path
    }

    /// Number of causal hops from the external stimulus to `event`.
    pub fn depth(&self, event: u64) -> usize {
        self.path_to(event).len()
    }

    /// Total queueing/transit latency accumulated along the causal chain
    /// to `event` — the sum of each hop's scheduled->fired delay. This is
    /// the event-driven analogue of a job's critical-path latency.
    pub fn chain_latency(&self, event: u64) -> SimDuration {
        self.path_to(event).iter().map(CausalEdge::hop_latency).sum()
    }
}

/// Aggregation key: (tenant, device, work queue).
pub type ProfileKey = (Option<u16>, u16, u16);

struct Cell {
    count: u64,
    total: DurationHistogram,
    total_ps: u128,
    segment_hist: [DurationHistogram; 5],
    segment_ps: [u128; 5],
    dominant_counts: [u64; 5],
}

impl Cell {
    fn new() -> Cell {
        Cell {
            count: 0,
            total: DurationHistogram::new(),
            total_ps: 0,
            segment_hist: std::array::from_fn(|_| DurationHistogram::new()),
            segment_ps: [0; 5],
            dominant_counts: [0; 5],
        }
    }

    fn record(&mut self, trace: &JobTrace) {
        self.count += 1;
        self.total.record(trace.total());
        self.total_ps += u128::from(trace.total().as_ps());
        for kind in SegmentKind::ALL {
            let d = trace.segment(kind);
            self.segment_hist[kind.index()].record(d);
            self.segment_ps[kind.index()] += u128::from(d.as_ps());
        }
        self.dominant_counts[trace.dominant().index()] += 1;
    }

    fn merge(&mut self, other: &Cell) {
        self.count += other.count;
        self.total.merge(&other.total);
        self.total_ps += other.total_ps;
        for i in 0..5 {
            self.segment_hist[i].merge(&other.segment_hist[i]);
            self.segment_ps[i] += other.segment_ps[i];
            self.dominant_counts[i] += other.dominant_counts[i];
        }
    }

    fn breakdown(&self) -> Breakdown {
        let pct = |h: &DurationHistogram, p: f64| h.percentile(p);
        let segments = std::array::from_fn(|i| {
            let kind = SegmentKind::ALL[i];
            let h = &self.segment_hist[i];
            SegmentStat {
                kind,
                sum_ps: self.segment_ps[i],
                share: if self.total_ps == 0 {
                    0.0
                } else {
                    self.segment_ps[i] as f64 / self.total_ps as f64
                },
                p50: pct(h, 50.0),
                p99: pct(h, 99.0),
                p999: pct(h, 99.9),
            }
        });
        Breakdown {
            count: self.count,
            total_ps: self.total_ps,
            total_p50: pct(&self.total, 50.0),
            total_p99: pct(&self.total, 99.0),
            total_p999: pct(&self.total, 99.9),
            segments,
            dominant_counts: self.dominant_counts,
        }
    }
}

/// Aggregate statistics for one segment within a [`Breakdown`].
#[derive(Clone, Copy, Debug)]
pub struct SegmentStat {
    /// Which segment.
    pub kind: SegmentKind,
    /// Exact attributed picoseconds summed over all jobs.
    pub sum_ps: u128,
    /// `sum_ps` as a fraction of the end-to-end total (0 when no time
    /// elapsed at all).
    pub share: f64,
    /// Median attributed duration (None when the cell has no jobs).
    pub p50: Option<SimDuration>,
    /// 99th-percentile attributed duration.
    pub p99: Option<SimDuration>,
    /// 99.9th-percentile attributed duration.
    pub p999: Option<SimDuration>,
}

/// An attributed latency breakdown for one profile cell (or the merged
/// profile).
#[derive(Clone, Copy, Debug)]
pub struct Breakdown {
    /// Jobs aggregated.
    pub count: u64,
    /// Exact end-to-end picoseconds summed over all jobs.
    pub total_ps: u128,
    /// End-to-end latency percentiles.
    pub total_p50: Option<SimDuration>,
    /// 99th percentile of end-to-end latency.
    pub total_p99: Option<SimDuration>,
    /// 99.9th percentile of end-to-end latency.
    pub total_p999: Option<SimDuration>,
    /// Per-segment statistics, in path order.
    pub segments: [SegmentStat; 5],
    /// How many jobs each segment dominated, indexed by
    /// [`SegmentKind::index`].
    pub dominant_counts: [u64; 5],
}

impl Breakdown {
    /// Sum of attributed picoseconds across segments. Equals
    /// [`total_ps`](Self::total_ps) exactly — the partition invariant,
    /// surfaced so report tables can assert it.
    pub fn attributed_ps(&self) -> u128 {
        self.segments.iter().map(|s| s.sum_ps).sum()
    }

    /// The segment carrying the largest attributed time (ties go to the
    /// earlier segment in path order).
    pub fn dominant(&self) -> SegmentKind {
        let mut best = 0;
        for i in 1..5 {
            if self.segments[i].sum_ps > self.segments[best].sum_ps {
                best = i;
            }
        }
        SegmentKind::ALL[best]
    }
}

/// Per-(tenant, device, WQ) aggregation of [`JobTrace`]s: attributed
/// p50/p99/p999 breakdowns and dominant-bottleneck classification.
#[derive(Default)]
pub struct CritPathProfile {
    cells: BTreeMap<ProfileKey, Cell>,
}

impl CritPathProfile {
    /// Creates an empty profile.
    pub fn new() -> CritPathProfile {
        CritPathProfile::default()
    }

    /// Folds one job trace into its cell.
    pub fn record(&mut self, trace: &JobTrace) {
        self.cells
            .entry((trace.tenant, trace.device, trace.wq))
            .or_insert_with(Cell::new)
            .record(trace);
    }

    /// All populated cell keys, in deterministic (BTree) order.
    pub fn keys(&self) -> Vec<ProfileKey> {
        self.cells.keys().copied().collect()
    }

    /// Total jobs recorded across all cells.
    pub fn jobs(&self) -> u64 {
        self.cells.values().map(|c| c.count).sum()
    }

    /// The breakdown for one cell.
    pub fn breakdown(&self, key: ProfileKey) -> Option<Breakdown> {
        self.cells.get(&key).map(Cell::breakdown)
    }

    /// The breakdown merged across every cell (None when no jobs were
    /// recorded).
    pub fn overall(&self) -> Option<Breakdown> {
        if self.cells.is_empty() {
            return None;
        }
        let mut merged = Cell::new();
        for cell in self.cells.values() {
            merged.merge(cell);
        }
        Some(merged.breakdown())
    }

    /// The dominant segment of the merged profile.
    pub fn overall_dominant(&self) -> Option<SegmentKind> {
        self.overall().map(|b| b.dominant())
    }
}

/// One detected blame shift across a parameter sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlameShift {
    /// Index into the sweep slice where the dominant segment changed
    /// (the shift happened between `at - 1` and `at`).
    pub at: usize,
    /// Dominant segment before the shift.
    pub prev: SegmentKind,
    /// Dominant segment from this sweep point on.
    pub now: SegmentKind,
}

/// Scans an ordered sweep of profiles (e.g. one per fan-out setting) and
/// reports every point where the overall dominant segment changes hands —
/// the paper's Fig. 4/7 crossovers, detected rather than eyeballed.
/// Profiles with no recorded jobs are skipped.
pub fn blame_shifts(sweep: &[CritPathProfile]) -> Vec<BlameShift> {
    let mut shifts = Vec::new();
    let mut prev: Option<SegmentKind> = None;
    for (at, profile) in sweep.iter().enumerate() {
        let Some(now) = profile.overall_dominant() else { continue };
        if let Some(prev) = prev {
            if prev != now {
                shifts.push(BlameShift { at, prev, now });
            }
        }
        prev = Some(now);
    }
    shifts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_sim::engine::ComponentId;
    use dsa_sim::time::SimTime;

    fn ns(n: u64) -> SimTime {
        SimTime::from_ns(n)
    }

    fn trace(bounds: [u64; 6]) -> JobTrace {
        JobTrace::from_boundaries(1, 0, 0, "memcpy", 4096, bounds.map(ns))
    }

    #[test]
    fn segments_partition_the_interval_exactly() {
        let t = trace([100, 130, 190, 205, 800, 812]);
        assert_eq!(t.attributed_total(), t.total());
        assert_eq!(t.segment(SegmentKind::SoftwarePrep), SimDuration::from_ns(30));
        assert_eq!(t.segment(SegmentKind::WqWait), SimDuration::from_ns(60));
        assert_eq!(t.segment(SegmentKind::PeService), SimDuration::from_ns(15));
        assert_eq!(t.segment(SegmentKind::MemoryHop), SimDuration::from_ns(595));
        assert_eq!(t.segment(SegmentKind::CompletionWrite), SimDuration::from_ns(12));
        assert_eq!(t.dominant(), SegmentKind::MemoryHop);
    }

    #[test]
    fn segment_phase_reconciliation_covers_all_phases_once() {
        let mut seen = Vec::new();
        for kind in SegmentKind::ALL {
            seen.extend_from_slice(kind.phases());
        }
        // Every device phase is claimed by exactly one segment.
        assert_eq!(seen.len(), Phase::ALL.len());
        for p in Phase::ALL {
            assert_eq!(seen.iter().filter(|&&q| q == p).count(), 1, "{p:?}");
        }
    }

    #[test]
    fn causal_graph_walks_back_to_the_external_stimulus() {
        let mut g = CausalGraph::new();
        let target = ComponentId::from_index(0);
        let edge = |parent, child, sched, fire| CausalEdge {
            parent,
            child,
            scheduled_at: ns(sched),
            fire_at: ns(fire),
            target,
        };
        g.record(edge(CausalEdge::EXTERNAL, 1, 0, 10));
        g.record(edge(1, 2, 10, 25));
        g.record(edge(2, 3, 25, 30));
        g.record(edge(CausalEdge::EXTERNAL, 4, 0, 50)); // unrelated root
        assert_eq!(g.len(), 4);
        let path = g.path_to(3);
        assert_eq!(path.iter().map(|e| e.child).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(g.depth(3), 3);
        // 10 + 15 + 5 ns of hop latency along the chain.
        assert_eq!(g.chain_latency(3), SimDuration::from_ns(30));
        assert_eq!(g.depth(4), 1);
        assert!(g.path_to(99).is_empty());
    }

    #[test]
    fn profile_aggregates_per_tenant_and_detects_dominants() {
        let mut p = CritPathProfile::new();
        // Tenant 0: memory-bound. Tenant 1: queue-bound.
        for i in 0..10u64 {
            p.record(
                &trace([
                    i * 1000,
                    i * 1000 + 20,
                    i * 1000 + 40,
                    i * 1000 + 50,
                    i * 1000 + 500,
                    i * 1000 + 510,
                ])
                .with_tenant(Some(0)),
            );
            p.record(
                &JobTrace::from_boundaries(
                    100 + i,
                    0,
                    1,
                    "memcpy",
                    4096,
                    [
                        ns(i * 1000),
                        ns(i * 1000 + 20),
                        ns(i * 1000 + 800),
                        ns(i * 1000 + 810),
                        ns(i * 1000 + 900),
                        ns(i * 1000 + 910),
                    ],
                )
                .with_tenant(Some(1)),
            );
        }
        assert_eq!(p.jobs(), 20);
        assert_eq!(p.keys(), vec![(Some(0), 0, 0), (Some(1), 0, 1)]);
        let b0 = p.breakdown((Some(0), 0, 0)).unwrap();
        let b1 = p.breakdown((Some(1), 0, 1)).unwrap();
        assert_eq!(b0.dominant(), SegmentKind::MemoryHop);
        assert_eq!(b1.dominant(), SegmentKind::WqWait);
        assert_eq!(b0.attributed_ps(), b0.total_ps, "partition invariant survives aggregation");
        assert_eq!(b1.attributed_ps(), b1.total_ps);
        let overall = p.overall().unwrap();
        assert_eq!(overall.count, 20);
        assert_eq!(overall.attributed_ps(), overall.total_ps);
        // Shares sum to ~1.
        let share_sum: f64 = overall.segments.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-12, "shares sum to 1, got {share_sum}");
    }

    #[test]
    fn blame_shift_detector_finds_the_crossover() {
        let mem_bound = || {
            let mut p = CritPathProfile::new();
            p.record(&trace([0, 10, 20, 30, 500, 510]));
            p
        };
        let queue_bound = || {
            let mut p = CritPathProfile::new();
            p.record(&trace([0, 10, 700, 710, 900, 910]));
            p
        };
        let sweep = vec![mem_bound(), mem_bound(), queue_bound(), queue_bound()];
        let shifts = blame_shifts(&sweep);
        assert_eq!(
            shifts,
            vec![BlameShift { at: 2, prev: SegmentKind::MemoryHop, now: SegmentKind::WqWait }]
        );
        // Empty profiles are skipped, not treated as shifts.
        let sweep = vec![mem_bound(), CritPathProfile::new(), mem_bound()];
        assert!(blame_shifts(&sweep).is_empty());
    }

    #[test]
    fn dominant_tie_goes_to_the_earlier_segment() {
        let t = trace([0, 100, 200, 200, 200, 200]);
        assert_eq!(t.dominant(), SegmentKind::SoftwarePrep);
    }
}
