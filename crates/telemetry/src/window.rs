//! Windowed metric reads over a [`Hub`]: what changed since the last
//! [`mark`](HubWindow::mark).
//!
//! The hub's counters and histograms are cumulative — the right shape for
//! end-of-run reports, the wrong shape for a control loop that must judge
//! *this epoch's* pressure without the whole past averaging it away. A
//! [`HubWindow`] snapshots the registry at each mark and answers delta
//! queries against the live hub: counter differences exactly, histogram
//! windows bucketwise via
//! [`DurationHistogram::delta_since`](dsa_sim::stats::DurationHistogram::delta_since).
//! Everything here is read-only over deterministic state, so windowed
//! observations replay bit-identically with the run that produced them.

use crate::hub::Hub;
use crate::metrics::{Labels, Metrics};
use dsa_sim::stats::DurationHistogram;

/// A delta view over a [`Hub`], anchored at the last [`mark`].
///
/// [`mark`]: HubWindow::mark
#[derive(Clone, Debug)]
pub struct HubWindow {
    hub: Hub,
    snapshot: Metrics,
}

impl HubWindow {
    /// A window over `hub`, anchored at the hub's *current* state (an
    /// immediate query reports empty deltas).
    pub fn new(hub: Hub) -> HubWindow {
        let snapshot = hub.with_metrics(|m| m.clone());
        HubWindow { hub, snapshot }
    }

    /// Re-anchors the window at the hub's current state, closing the
    /// previous epoch.
    pub fn mark(&mut self) {
        self.snapshot = self.hub.with_metrics(|m| m.clone());
    }

    /// The hub this window reads.
    pub fn hub(&self) -> &Hub {
        &self.hub
    }

    /// Counter growth under `(name, labels)` since the last mark.
    pub fn counter_delta(&self, name: &'static str, labels: Labels) -> u64 {
        self.hub.counter(name, labels).saturating_sub(self.snapshot.counter(name, labels))
    }

    /// The distribution of samples recorded under `(name, labels)` since
    /// the last mark (empty if the key never existed or saw no samples).
    pub fn histogram_delta(&self, name: &'static str, labels: Labels) -> DurationHistogram {
        self.hub.with_metrics(|m| {
            match (m.histogram(name, labels), self.snapshot.histogram(name, labels)) {
                (Some(now), Some(was)) => now.delta_since(was),
                (Some(now), None) => now.clone(),
                (None, _) => DurationHistogram::new(),
            }
        })
    }

    /// The merged window distribution under `name` across every label set
    /// belonging to `tenant` — e.g. a tenant's `svc_latency` samples,
    /// which land under per-WQ labels that change when the tenant is
    /// re-wired mid-run. Merge order follows the registry's deterministic
    /// `BTreeMap` key order.
    pub fn histogram_delta_tenant(&self, name: &'static str, tenant: u16) -> DurationHistogram {
        self.hub.with_metrics(|m| {
            let mut out = DurationHistogram::new();
            for (n, labels, metric) in m.iter() {
                if n != name || labels.tenant != Some(tenant) {
                    continue;
                }
                if let crate::metrics::Metric::Histogram(now) = metric {
                    match self.snapshot.histogram(name, labels) {
                        Some(was) => out.merge(&now.delta_since(was)),
                        None => out.merge(now),
                    }
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_sim::time::SimDuration;

    #[test]
    fn deltas_track_only_the_current_epoch() {
        let hub = Hub::new();
        hub.counter_add("jobs", Labels::tenant(0), 5);
        hub.observe("lat", Labels::tenant(0), SimDuration::from_ns(100));

        let mut w = HubWindow::new(hub.clone());
        assert_eq!(w.counter_delta("jobs", Labels::tenant(0)), 0);
        assert_eq!(w.histogram_delta("lat", Labels::tenant(0)).count(), 0);

        hub.counter_add("jobs", Labels::tenant(0), 3);
        hub.observe("lat", Labels::tenant(0), SimDuration::from_us(50));
        assert_eq!(w.counter_delta("jobs", Labels::tenant(0)), 3);
        let win = w.histogram_delta("lat", Labels::tenant(0));
        assert_eq!(win.count(), 1);
        assert!(win.percentile(99.0).unwrap() >= SimDuration::from_us(40));

        w.mark();
        assert_eq!(w.counter_delta("jobs", Labels::tenant(0)), 0);
        assert_eq!(w.histogram_delta("lat", Labels::tenant(0)).count(), 0);
    }

    #[test]
    fn keys_born_inside_the_window_count_in_full() {
        let hub = Hub::new();
        let w = HubWindow::new(hub.clone());
        hub.counter_add("new", Labels::none(), 7);
        hub.observe("fresh", Labels::none(), SimDuration::from_ns(10));
        assert_eq!(w.counter_delta("new", Labels::none()), 7);
        assert_eq!(w.histogram_delta("fresh", Labels::none()).count(), 1);
        assert_eq!(w.counter_delta("absent", Labels::none()), 0);
        assert_eq!(w.histogram_delta("absent", Labels::none()).count(), 0);
    }
}
