//! A labelled metrics registry: counters, gauges, log-linear latency
//! histograms, and utilization time series, keyed by device/WQ/PE.

use dsa_sim::stats::{DurationHistogram, TimeSeries};
use dsa_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Metric labels: which device/WQ/PE/tenant a sample belongs to. `None`
/// means the dimension does not apply (e.g. a job-level counter).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels {
    /// Device index.
    pub device: Option<u16>,
    /// WQ index within the device.
    pub wq: Option<u16>,
    /// Processing-engine index within the device.
    pub pe: Option<u16>,
    /// Service-layer tenant index (multi-tenant client streams).
    pub tenant: Option<u16>,
}

impl Labels {
    /// No labels (global / software-side metrics).
    pub fn none() -> Labels {
        Labels::default()
    }

    /// Device-scoped.
    pub fn device(device: u16) -> Labels {
        Labels { device: Some(device), ..Labels::default() }
    }

    /// WQ-scoped.
    pub fn wq(device: u16, wq: u16) -> Labels {
        Labels { device: Some(device), wq: Some(wq), ..Labels::default() }
    }

    /// PE-scoped.
    pub fn pe(device: u16, pe: u16) -> Labels {
        Labels { device: Some(device), pe: Some(pe), ..Labels::default() }
    }

    /// Tenant-scoped (service-layer per-client metrics).
    pub fn tenant(tenant: u16) -> Labels {
        Labels { tenant: Some(tenant), ..Labels::default() }
    }

    /// Tenant + WQ scoped (which queue a tenant's stream landed on).
    pub fn tenant_wq(tenant: u16, device: u16, wq: u16) -> Labels {
        Labels { device: Some(device), wq: Some(wq), pe: None, tenant: Some(tenant) }
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-write-wins value.
    Gauge(f64),
    /// Log-linear latency distribution (p50/p90/p99/p999).
    Histogram(DurationHistogram),
    /// Sampled utilization timeline (WQ depth, PE occupancy).
    Series(TimeSeries),
}

/// The registry. Metrics are created on first touch; a name+labels pair
/// always maps to one kind (mixing kinds under one key panics, which
/// catches instrumentation typos early).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    map: BTreeMap<(&'static str, Labels), Metric>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `n` to a counter.
    pub fn counter_add(&mut self, name: &'static str, labels: Labels, n: u64) {
        match self.map.entry((name, labels)).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += n,
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &'static str, labels: Labels, v: f64) {
        match self.map.entry((name, labels)).or_insert(Metric::Gauge(0.0)) {
            Metric::Gauge(g) => *g = v,
            other => panic!("metric {name} is not a gauge: {other:?}"),
        }
    }

    /// Records a duration into a histogram.
    pub fn observe(&mut self, name: &'static str, labels: Labels, d: SimDuration) {
        match self
            .map
            .entry((name, labels))
            .or_insert_with(|| Metric::Histogram(DurationHistogram::new()))
        {
            Metric::Histogram(h) => h.record(d),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Appends a point to a utilization time series.
    pub fn series_push(&mut self, name: &'static str, labels: Labels, at: SimTime, v: f64) {
        match self.map.entry((name, labels)).or_insert_with(|| Metric::Series(TimeSeries::new())) {
            Metric::Series(s) => s.push(at, v),
            other => panic!("metric {name} is not a series: {other:?}"),
        }
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &'static str, labels: Labels) -> u64 {
        match self.map.get(&(name, labels)) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current gauge value.
    pub fn gauge(&self, name: &'static str, labels: Labels) -> Option<f64> {
        match self.map.get(&(name, labels)) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// A histogram, if one exists under this key.
    pub fn histogram(&self, name: &'static str, labels: Labels) -> Option<&DurationHistogram> {
        match self.map.get(&(name, labels)) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// A time series, if one exists under this key.
    pub fn series(&self, name: &'static str, labels: Labels) -> Option<&TimeSeries> {
        match self.map.get(&(name, labels)) {
            Some(Metric::Series(s)) => Some(s),
            _ => None,
        }
    }

    /// Histogram percentile shortcut (`p` in (0, 100]).
    pub fn percentile(&self, name: &'static str, labels: Labels, p: f64) -> Option<SimDuration> {
        self.histogram(name, labels).and_then(|h| h.percentile(p))
    }

    /// Merges every histogram under `name` (across all label sets) into
    /// one distribution — e.g. device-wide latency from per-WQ buckets.
    pub fn merged_histogram(&self, name: &'static str) -> DurationHistogram {
        let mut out = DurationHistogram::new();
        for ((n, _), m) in &self.map {
            if *n == name {
                if let Metric::Histogram(h) = m {
                    out.merge(h);
                }
            }
        }
        out
    }

    /// Iterates all metrics in deterministic (name, labels) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Labels, &Metric)> + '_ {
        self.map.iter().map(|((n, l), m)| (*n, *l, m))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut m = Metrics::new();
        m.counter_add("descriptors", Labels::wq(0, 0), 3);
        m.counter_add("descriptors", Labels::wq(0, 1), 5);
        m.counter_add("descriptors", Labels::wq(0, 0), 4);
        assert_eq!(m.counter("descriptors", Labels::wq(0, 0)), 7);
        assert_eq!(m.counter("descriptors", Labels::wq(0, 1)), 5);
        assert_eq!(m.counter("descriptors", Labels::none()), 0);
    }

    #[test]
    fn histograms_expose_tail_percentiles() {
        let mut m = Metrics::new();
        for i in 1..=1000u64 {
            m.observe("latency", Labels::wq(0, 0), SimDuration::from_ns(i * 100));
        }
        let p50 = m.percentile("latency", Labels::wq(0, 0), 50.0).unwrap();
        let p99 = m.percentile("latency", Labels::wq(0, 0), 99.0).unwrap();
        let p999 = m.percentile("latency", Labels::wq(0, 0), 99.9).unwrap();
        assert!(p50 < p99 && p99 <= p999);
        // Log-linear buckets: ≤ ~6% relative error on the p99 target.
        let err = (p99.as_ns_f64() - 99_000.0).abs() / 99_000.0;
        assert!(err < 0.07, "p99 off by {err}");
        assert!(m.percentile("latency", Labels::wq(0, 1), 99.0).is_none());
    }

    #[test]
    fn merged_histogram_spans_all_wqs() {
        let mut m = Metrics::new();
        m.observe("latency", Labels::wq(0, 0), SimDuration::from_ns(100));
        m.observe("latency", Labels::wq(0, 1), SimDuration::from_ns(10_000));
        let all = m.merged_histogram("latency");
        assert_eq!(all.count(), 2);
        assert!(all.max() >= SimDuration::from_ns(10_000));
    }

    #[test]
    fn series_and_gauges_roundtrip() {
        let mut m = Metrics::new();
        m.series_push("wq_depth", Labels::wq(0, 0), SimTime::from_ns(10), 3.0);
        m.series_push("wq_depth", Labels::wq(0, 0), SimTime::from_ns(20), 7.0);
        m.gauge_set("pe_util", Labels::pe(0, 2), 0.5);
        assert_eq!(m.series("wq_depth", Labels::wq(0, 0)).unwrap().len(), 2);
        assert_eq!(m.series("wq_depth", Labels::wq(0, 0)).unwrap().max_value(), 7.0);
        assert_eq!(m.gauge("pe_util", Labels::pe(0, 2)), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_is_caught() {
        let mut m = Metrics::new();
        m.gauge_set("x", Labels::none(), 1.0);
        m.counter_add("x", Labels::none(), 1);
    }
}
