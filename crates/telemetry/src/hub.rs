//! The [`Hub`]: one cloneable handle that every layer records into.

use crate::causal::{CritPathProfile, JobTrace};
use crate::metrics::{Labels, Metrics};
use crate::span::{DescriptorSpan, Event, Phase, Span, Track};
use dsa_sim::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    metrics: Metrics,
    traces: Vec<JobTrace>,
    // Tenant context stamped onto traces recorded without one (set by the
    // service layer around each tenant step).
    tenant: Option<u16>,
    next_trace_id: u64,
}

/// A shared tracing + metrics sink.
///
/// Cloning is cheap (one `Rc`); all clones feed the same buffers. The
/// simulation is single-threaded, so interior mutability via `RefCell`
/// is sufficient and keeps recording calls `&self`.
#[derive(Clone, Debug, Default)]
pub struct Hub {
    inner: Rc<RefCell<Inner>>,
}

impl Hub {
    /// A fresh, empty hub.
    pub fn new() -> Hub {
        Hub::default()
    }

    /// Records a full descriptor lifecycle and derives the standard
    /// metrics from it: per-WQ and per-PE completion-latency histograms,
    /// per-phase histograms, and byte/descriptor counters.
    pub fn record_descriptor(&self, d: DescriptorSpan) {
        let mut inner = self.inner.borrow_mut();
        let wq = Labels::wq(d.device, d.wq);
        let pe = Labels::pe(d.device, d.pe);
        inner.metrics.counter_add("descriptors", wq, 1);
        inner.metrics.counter_add("bytes", wq, d.xfer_size as u64);
        inner.metrics.observe("descriptor_latency", wq, d.total());
        inner.metrics.observe("descriptor_latency", pe, d.total());
        for p in Phase::ALL {
            inner.metrics.observe(p.metric(), wq, d.phase_duration(p));
        }
        inner.events.push(Event::Descriptor(d));
    }

    /// Records a generic named span.
    pub fn span(&self, track: Track, name: &'static str, start: SimTime, end: SimTime) {
        self.inner.borrow_mut().events.push(Event::Span(Span { track, name, start, end }));
    }

    /// Records a zero-duration marker.
    pub fn instant(&self, track: Track, name: &'static str, at: SimTime) {
        self.inner.borrow_mut().events.push(Event::Instant { track, name, at });
    }

    /// Adds to a counter.
    pub fn counter_add(&self, name: &'static str, labels: Labels, n: u64) {
        self.inner.borrow_mut().metrics.counter_add(name, labels, n);
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &'static str, labels: Labels, v: f64) {
        self.inner.borrow_mut().metrics.gauge_set(name, labels, v);
    }

    /// Records a histogram sample.
    pub fn observe(&self, name: &'static str, labels: Labels, d: SimDuration) {
        self.inner.borrow_mut().metrics.observe(name, labels, d);
    }

    /// Appends a utilization time-series point.
    pub fn series_push(&self, name: &'static str, labels: Labels, at: SimTime, v: f64) {
        self.inner.borrow_mut().metrics.series_push(name, labels, at, v);
    }

    /// Histogram percentile under a key (`None` if absent or empty).
    pub fn percentile(&self, name: &'static str, labels: Labels, p: f64) -> Option<SimDuration> {
        self.inner.borrow().metrics.percentile(name, labels, p)
    }

    /// Current counter value.
    pub fn counter(&self, name: &'static str, labels: Labels) -> u64 {
        self.inner.borrow().metrics.counter(name, labels)
    }

    /// Number of recorded trace events.
    pub fn event_count(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Snapshot of every recorded descriptor lifecycle, oldest first.
    pub fn descriptor_spans(&self) -> Vec<DescriptorSpan> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Descriptor(d) => Some(*d),
                _ => None,
            })
            .collect()
    }

    /// Runs `f` over the raw event log (cheaper than cloning it).
    pub fn with_events<R>(&self, f: impl FnOnce(&[Event]) -> R) -> R {
        f(&self.inner.borrow().events)
    }

    /// Runs `f` over the metrics registry.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&Metrics) -> R) -> R {
        f(&self.inner.borrow().metrics)
    }

    /// Hands out the next deterministic trace ID (1-based, insertion
    /// order — no wall clock, so replays mint identical IDs).
    pub fn next_trace_id(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        inner.next_trace_id += 1;
        inner.next_trace_id
    }

    /// Sets the tenant context stamped onto subsequently recorded job
    /// traces that carry no tenant of their own. The service layer brackets
    /// each tenant step with this so device-layer recording stays
    /// tenant-agnostic.
    pub fn set_tenant(&self, tenant: Option<u16>) {
        self.inner.borrow_mut().tenant = tenant;
    }

    /// The current tenant context.
    pub fn tenant(&self) -> Option<u16> {
        self.inner.borrow().tenant
    }

    /// Records one job's attributed critical path. A trace without a
    /// tenant inherits the current tenant context.
    pub fn record_job_trace(&self, trace: JobTrace) {
        let mut inner = self.inner.borrow_mut();
        let tenant = inner.tenant;
        inner.traces.push(if trace.tenant.is_none() { trace.with_tenant(tenant) } else { trace });
    }

    /// Snapshot of every recorded job trace, oldest first.
    pub fn job_traces(&self) -> Vec<JobTrace> {
        self.inner.borrow().traces.clone()
    }

    /// Number of recorded job traces.
    pub fn trace_count(&self) -> usize {
        self.inner.borrow().traces.len()
    }

    /// Aggregates every recorded job trace into a per-(tenant, device,
    /// WQ) critical-path profile.
    pub fn critpath_profile(&self) -> CritPathProfile {
        let inner = self.inner.borrow();
        let mut profile = CritPathProfile::new();
        for trace in &inner.traces {
            profile.record(trace);
        }
        profile
    }

    /// Drops all recorded events, traces, and metrics.
    pub fn reset(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.events.clear();
        inner.metrics = Metrics::new();
        inner.traces.clear();
        inner.tenant = None;
        inner.next_trace_id = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_descriptor(seq: u64, wq: u16) -> DescriptorSpan {
        DescriptorSpan {
            device: 0,
            wq,
            pe: 1,
            seq,
            op: "memmove",
            xfer_size: 4096,
            marks: [100, 140, 200, 230, 700, 900, 955].map(SimTime::from_ns),
        }
    }

    #[test]
    fn clones_share_the_sink() {
        let hub = Hub::new();
        let clone = hub.clone();
        clone.record_descriptor(sample_descriptor(1, 0));
        hub.span(Track::Job, "job", SimTime::from_ns(0), SimTime::from_ns(10));
        assert_eq!(hub.event_count(), 2);
        assert_eq!(clone.event_count(), 2);
    }

    #[test]
    fn descriptor_feeds_standard_metrics() {
        let hub = Hub::new();
        for seq in 0..10 {
            hub.record_descriptor(sample_descriptor(seq, 0));
        }
        hub.record_descriptor(sample_descriptor(10, 3));
        assert_eq!(hub.counter("descriptors", Labels::wq(0, 0)), 10);
        assert_eq!(hub.counter("descriptors", Labels::wq(0, 3)), 1);
        assert_eq!(hub.counter("bytes", Labels::wq(0, 0)), 10 * 4096);
        let p99 = hub.percentile("descriptor_latency", Labels::wq(0, 0), 99.0).unwrap();
        assert!(p99 >= SimDuration::from_ns(800), "855ns total, got {p99:?}");
        // Per-PE view exists too.
        assert!(hub.percentile("descriptor_latency", Labels::pe(0, 1), 50.0).is_some());
        // Every phase histogram recorded.
        hub.with_metrics(|m| {
            for p in Phase::ALL {
                assert_eq!(m.histogram(p.metric(), Labels::wq(0, 0)).unwrap().count(), 10);
            }
        });
    }

    #[test]
    fn reset_clears_everything() {
        let hub = Hub::new();
        hub.record_descriptor(sample_descriptor(1, 0));
        hub.record_job_trace(sample_trace(&hub));
        hub.set_tenant(Some(3));
        hub.reset();
        assert_eq!(hub.event_count(), 0);
        assert_eq!(hub.trace_count(), 0);
        assert_eq!(hub.tenant(), None);
        assert_eq!(hub.counter("descriptors", Labels::wq(0, 0)), 0);
        assert_eq!(hub.next_trace_id(), 1, "trace ids restart after reset");
    }

    fn sample_trace(hub: &Hub) -> crate::causal::JobTrace {
        crate::causal::JobTrace::from_boundaries(
            hub.next_trace_id(),
            0,
            0,
            "memcpy",
            4096,
            [100, 140, 200, 230, 900, 955].map(SimTime::from_ns),
        )
    }

    #[test]
    fn trace_ids_are_deterministic_and_tenant_context_sticks() {
        let hub = Hub::new();
        assert_eq!(hub.next_trace_id(), 1);
        assert_eq!(hub.next_trace_id(), 2);

        hub.record_job_trace(sample_trace(&hub));
        hub.set_tenant(Some(7));
        hub.record_job_trace(sample_trace(&hub));
        // An explicit tenant wins over the context.
        hub.record_job_trace(sample_trace(&hub).with_tenant(Some(2)));
        hub.set_tenant(None);
        let traces = hub.job_traces();
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[0].tenant, None);
        assert_eq!(traces[1].tenant, Some(7));
        assert_eq!(traces[2].tenant, Some(2));
        assert_eq!(traces[0].trace_id, 3);
        assert_eq!(traces[1].trace_id, 4);

        let profile = hub.critpath_profile();
        assert_eq!(profile.jobs(), 3);
        assert_eq!(profile.keys().len(), 3, "distinct tenants land in distinct cells");
    }
}
