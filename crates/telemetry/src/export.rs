//! Exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`)
//! with causal flow arrows, flamegraph-style folded stacks, a
//! machine-readable metrics CSV, and a PCM-style text dashboard.

use crate::causal::SegmentKind;
use crate::hub::Hub;
use crate::metrics::{Labels, Metric};
use crate::span::{Event, Phase, Track};
use dsa_sim::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal. Span and
/// op names are `&'static str` chosen by callers, so quotes, backslashes,
/// and control characters must not leak through verbatim.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Process IDs used in the Chrome trace: one synthetic "process" per
/// hardware unit so Perfetto groups tracks sensibly.
fn track_pid_tid(track: Track, workloads: &mut Vec<&'static str>) -> (u64, u64) {
    match track {
        Track::Job => (1, 0),
        Track::Wq { device, wq } => (100 + device as u64, wq as u64),
        Track::CbdmaChan { device, chan } => (200 + device as u64, chan as u64),
        Track::Workload(name) => {
            let idx = match workloads.iter().position(|w| *w == name) {
                Some(i) => i,
                None => {
                    workloads.push(name);
                    workloads.len() - 1
                }
            };
            (300, idx as u64)
        }
    }
}

fn ts_us(t: SimTime) -> f64 {
    t.as_ns_f64() / 1000.0
}

fn push_event(out: &mut String, line: &str, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
    out.push_str(line);
}

/// Serializes the hub's event log as Chrome trace-event JSON (the array
/// form), one event per line. Load the result in Perfetto or
/// `chrome://tracing`. Timestamps are microseconds of simulated time.
pub fn chrome_trace_json(hub: &Hub) -> String {
    hub.with_events(|events| {
        let mut out = String::from("[\n");
        let mut first = true;
        let mut workloads: Vec<&'static str> = Vec::new();
        let mut seen_tracks: Vec<(Track, u64, u64)> = Vec::new();
        let mut note = |track: Track, workloads: &mut Vec<&'static str>| {
            let (pid, tid) = track_pid_tid(track, workloads);
            if !seen_tracks.iter().any(|(t, _, _)| *t == track) {
                seen_tracks.push((track, pid, tid));
            }
            (pid, tid)
        };

        for e in events {
            match e {
                Event::Descriptor(d) => {
                    let (pid, tid) =
                        note(Track::Wq { device: d.device, wq: d.wq }, &mut workloads);
                    for p in Phase::ALL {
                        let (start, end) = d.phase_bounds(p);
                        let line = format!(
                            r#"{{"name":"{}","cat":"descriptor","ph":"X","pid":{pid},"tid":{tid},"ts":{:.3},"dur":{:.3},"args":{{"seq":{},"op":"{}","xfer":{},"pe":{}}}}}"#,
                            json_escape(p.name()),
                            ts_us(start),
                            (end - start).as_ns_f64() / 1000.0,
                            d.seq,
                            json_escape(d.op),
                            d.xfer_size,
                            d.pe,
                        );
                        push_event(&mut out, &line, &mut first);
                    }
                }
                Event::Span(s) => {
                    let (pid, tid) = note(s.track, &mut workloads);
                    let line = format!(
                        r#"{{"name":"{}","cat":"span","ph":"X","pid":{pid},"tid":{tid},"ts":{:.3},"dur":{:.3}}}"#,
                        json_escape(s.name),
                        ts_us(s.start),
                        (s.end - s.start).as_ns_f64() / 1000.0,
                    );
                    push_event(&mut out, &line, &mut first);
                }
                Event::Instant { track, name, at } => {
                    let (pid, tid) = note(*track, &mut workloads);
                    let line = format!(
                        r#"{{"name":"{}","cat":"marker","ph":"i","s":"t","pid":{pid},"tid":{tid},"ts":{:.3}}}"#,
                        json_escape(name),
                        ts_us(*at),
                    );
                    push_event(&mut out, &line, &mut first);
                }
            }
        }

        // Metadata names after the fact (position in the array is
        // irrelevant to the importer).
        for (track, pid, tid) in &seen_tracks {
            let (pname, tname) = match track {
                Track::Job => ("software".to_string(), "jobs".to_string()),
                Track::Wq { device, wq } => (format!("dsa{device}"), format!("wq{wq}")),
                Track::CbdmaChan { device, chan } => {
                    (format!("cbdma{device}"), format!("chan{chan}"))
                }
                Track::Workload(name) => ("workloads".to_string(), (*name).to_string()),
            };
            let line = format!(
                r#"{{"name":"process_name","ph":"M","pid":{pid},"args":{{"name":"{}"}}}}"#,
                json_escape(&pname),
            );
            push_event(&mut out, &line, &mut first);
            let line = format!(
                r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
                json_escape(&tname),
            );
            push_event(&mut out, &line, &mut first);
        }

        // Attributed critical paths: one slice per segment on a synthetic
        // "critpath" process (pid 2, tid = tenant), with flow arrows
        // chaining the causally-linked slices of each job.
        let mut critpath_tids: Vec<u64> = Vec::new();
        for t in hub.job_traces() {
            let tid = u64::from(t.tenant.unwrap_or(0));
            if !critpath_tids.contains(&tid) {
                critpath_tids.push(tid);
            }
            let mut cursor = t.start;
            let last = SegmentKind::ALL.len() - 1;
            for (i, kind) in SegmentKind::ALL.into_iter().enumerate() {
                let d = t.segment(kind);
                let line = format!(
                    r#"{{"name":"{}","cat":"critpath","ph":"X","pid":2,"tid":{tid},"ts":{:.3},"dur":{:.3},"args":{{"trace":{},"op":"{}","dsa":{},"wq":{}}}}}"#,
                    json_escape(kind.name()),
                    ts_us(cursor),
                    d.as_ns_f64() / 1000.0,
                    t.trace_id,
                    json_escape(t.op),
                    t.device,
                    t.wq,
                );
                push_event(&mut out, &line, &mut first);
                // Flow chain: start at the first slice, step through the
                // middle, finish on the last ("bp":"e" binds to the
                // enclosing slice).
                let ph = match i {
                    0 => "s",
                    i if i == last => "f",
                    _ => "t",
                };
                let bp = if ph == "f" { r#","bp":"e""# } else { "" };
                let line = format!(
                    r#"{{"name":"critpath","cat":"flow","ph":"{ph}","id":{}{bp},"pid":2,"tid":{tid},"ts":{:.3}}}"#,
                    t.trace_id,
                    ts_us(cursor),
                );
                push_event(&mut out, &line, &mut first);
                cursor += d;
            }
        }
        if !critpath_tids.is_empty() {
            let line =
                r#"{"name":"process_name","ph":"M","pid":2,"args":{"name":"critpath"}}"#.to_string();
            push_event(&mut out, &line, &mut first);
            for tid in critpath_tids {
                let line = format!(
                    r#"{{"name":"thread_name","ph":"M","pid":2,"tid":{tid},"args":{{"name":"tenant{tid}"}}}}"#
                );
                push_event(&mut out, &line, &mut first);
            }
        }

        out.push_str("\n]\n");
        out
    })
}

/// Serializes the hub's job traces as flamegraph folded stacks: one line
/// per unique `tenant;device/wq;op;segment` stack, weighted by attributed
/// picoseconds. Feed the output straight to `flamegraph.pl` or any
/// folded-stacks viewer.
pub fn folded_stacks(hub: &Hub) -> String {
    let mut stacks: BTreeMap<String, u128> = BTreeMap::new();
    for t in hub.job_traces() {
        let tenant = match t.tenant {
            Some(t) => format!("tenant{t}"),
            None => "untenanted".to_string(),
        };
        for kind in SegmentKind::ALL {
            let ps = u128::from(t.segment(kind).as_ps());
            if ps == 0 {
                continue;
            }
            let stack = format!("{tenant};dsa{}/wq{};{};{}", t.device, t.wq, t.op, kind.name());
            *stacks.entry(stack).or_insert(0) += ps;
        }
    }
    let mut out = String::new();
    for (stack, ps) in stacks {
        let _ = writeln!(out, "{stack} {ps}");
    }
    out
}

fn label_cell(v: Option<u16>) -> String {
    v.map(|x| x.to_string()).unwrap_or_default()
}

/// Serializes the metrics registry as CSV. Histogram columns are
/// nanoseconds; series rows report point count, mean, and max.
pub fn metrics_csv(hub: &Hub) -> String {
    hub.with_metrics(|metrics| {
        let mut out =
            String::from("name,device,wq,pe,tenant,kind,count,value,min,mean,p50,p90,p99,p999,max\n");
        for (name, labels, metric) in metrics.iter() {
            let (d, w, p, t) = (
                label_cell(labels.device),
                label_cell(labels.wq),
                label_cell(labels.pe),
                label_cell(labels.tenant),
            );
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name},{d},{w},{p},{t},counter,,{c},,,,,,,");
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name},{d},{w},{p},{t},gauge,,{g},,,,,,,");
                }
                Metric::Histogram(h) => {
                    if h.count() == 0 {
                        continue;
                    }
                    // Non-empty by the guard above, so the percentiles exist.
                    let pct = |p: f64| h.percentile(p).unwrap_or_default().as_ns_f64();
                    let _ = writeln!(
                        out,
                        "{name},{d},{w},{p},{t},histogram,{},,{:.0},{:.0},{:.0},{:.0},{:.0},{:.0},{:.0}",
                        h.count(),
                        h.min().as_ns_f64(),
                        h.mean().as_ns_f64(),
                        pct(50.0),
                        pct(90.0),
                        pct(99.0),
                        pct(99.9),
                        h.max().as_ns_f64(),
                    );
                }
                Metric::Series(s) => {
                    if s.is_empty() {
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "{name},{d},{w},{p},{t},series,{},{:.3},,{:.3},,,,,{:.3}",
                        s.len(),
                        s.mean_value(),
                        s.mean_value(),
                        s.max_value(),
                    );
                }
            }
        }
        out
    })
}

/// Renders a PCM-style text dashboard: per-WQ traffic counters and
/// latency percentiles, the way `pcm` prints per-socket DSA tables.
pub fn pcm_dashboard(hub: &Hub) -> String {
    hub.with_events(|events| {
        // Wall-clock window covered by the trace.
        let mut t0 = SimTime::ZERO;
        let mut t1 = SimTime::ZERO;
        let mut any = false;
        for e in events {
            let (s, en) = match e {
                Event::Descriptor(d) => (d.marks[0], d.marks[6]),
                Event::Span(s) => (s.start, s.end),
                Event::Instant { at, .. } => (*at, *at),
            };
            if !any {
                t0 = s;
                any = true;
            }
            t0 = t0.min(s);
            t1 = t1.max(en);
        }
        let elapsed = (t1 - t0).as_ns_f64().max(1.0);

        hub.with_metrics(|metrics| {
            let mut out = String::new();
            let _ = writeln!(out, "DSA telemetry dashboard (PCM-style)");
            let _ = writeln!(out, "window: {:.2} us of simulated time", elapsed / 1000.0);
            let _ = writeln!(
                out,
                "{:>4} {:>4} {:>12} {:>14} {:>8} {:>9} {:>9} {:>9} {:>9}",
                "dev",
                "wq",
                "descriptors",
                "bytes",
                "GB/s",
                "p50(us)",
                "p90(us)",
                "p99(us)",
                "p999(us)"
            );
            let mut wq_keys: Vec<Labels> = Vec::new();
            for (name, labels, _) in metrics.iter() {
                if name == "descriptors" && labels.wq.is_some() && !wq_keys.contains(&labels) {
                    wq_keys.push(labels);
                }
            }
            for labels in wq_keys {
                let descriptors = metrics.counter("descriptors", labels);
                let bytes = metrics.counter("bytes", labels);
                let pct = |p: f64| {
                    metrics
                        .percentile("descriptor_latency", labels, p)
                        .map(|d| format!("{:.2}", d.as_us_f64()))
                        .unwrap_or_else(|| "-".to_string())
                };
                let _ = writeln!(
                    out,
                    "{:>4} {:>4} {:>12} {:>14} {:>8.2} {:>9} {:>9} {:>9} {:>9}",
                    labels.device.unwrap_or(0),
                    labels.wq.unwrap_or(0),
                    descriptors,
                    bytes,
                    bytes as f64 / elapsed,
                    pct(50.0),
                    pct(90.0),
                    pct(99.0),
                    pct(99.9),
                );
            }

            // Utilization series (WQ depth, PE occupancy) summary.
            let mut header_done = false;
            for (name, labels, metric) in metrics.iter() {
                if let Metric::Series(s) = metric {
                    if s.is_empty() {
                        continue;
                    }
                    if !header_done {
                        let _ = writeln!(
                            out,
                            "{:>24} {:>4} {:>4} {:>4} {:>8} {:>9} {:>9}",
                            "series", "dev", "wq", "pe", "points", "mean", "max"
                        );
                        header_done = true;
                    }
                    let _ = writeln!(
                        out,
                        "{:>24} {:>4} {:>4} {:>4} {:>8} {:>9.2} {:>9.2}",
                        name,
                        label_cell(labels.device),
                        label_cell(labels.wq),
                        label_cell(labels.pe),
                        s.len(),
                        s.mean_value(),
                        s.max_value(),
                    );
                }
            }
            out
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::DescriptorSpan;
    use dsa_sim::time::SimTime;

    fn hub_with_one_descriptor() -> Hub {
        let hub = Hub::new();
        hub.record_descriptor(DescriptorSpan {
            device: 0,
            wq: 2,
            pe: 1,
            seq: 7,
            op: "memmove",
            xfer_size: 4096,
            marks: [100, 140, 200, 230, 700, 900, 955].map(SimTime::from_ns),
        });
        hub
    }

    #[test]
    fn chrome_json_has_one_span_per_phase() {
        let hub = hub_with_one_descriptor();
        let json = chrome_trace_json(&hub);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        for p in Phase::ALL {
            assert!(
                json.contains(&format!(r#""name":"{}","cat":"descriptor""#, p.name())),
                "missing phase {} in {json}",
                p.name()
            );
        }
        // Durations (µs·1000 = ns) sum to the 855 ns total.
        let total: f64 = json
            .lines()
            .filter(|l| l.contains(r#""cat":"descriptor""#))
            .map(|l| {
                let dur = l.split(r#""dur":"#).nth(1).unwrap();
                dur.split(',').next().unwrap().parse::<f64>().unwrap()
            })
            .sum();
        assert!((total * 1000.0 - 855.0).abs() < 1e-6, "phase durations sum to {total}us");
        // Track metadata present.
        assert!(json.contains(r#""name":"process_name""#));
        assert!(json.contains(r#""name":"wq2""#));
    }

    #[test]
    fn json_strings_are_escaped() {
        let hub = Hub::new();
        hub.span(
            Track::Workload("we\"ird\\name\n"),
            "q\"uote\\me",
            SimTime::from_ns(0),
            SimTime::from_ns(10),
        );
        let json = chrome_trace_json(&hub);
        assert!(json.contains(r#""name":"q\"uote\\me""#), "span name escaped: {json}");
        assert!(json.contains(r#""name":"we\"ird\\name\n""#), "track name escaped: {json}");
        // No raw quote survives inside a string literal: every line must
        // keep balanced, parseable quoting. Cheap structural check: the
        // escaped forms are present and the unescaped originals are not.
        assert!(!json.contains("q\"uote\\me\""), "raw name must not appear");
        for line in json.lines().filter(|l| l.starts_with('{')) {
            let unescaped_quotes =
                line.replace("\\\\", "").replace("\\\"", "").matches('"').count();
            assert_eq!(unescaped_quotes % 2, 0, "unbalanced quotes in {line}");
        }
    }

    #[test]
    fn escape_helper_handles_control_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\tb\nc"), "a\\tb\\nc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    fn hub_with_traces() -> Hub {
        let hub = Hub::new();
        hub.record_job_trace(crate::causal::JobTrace::from_boundaries(
            hub.next_trace_id(),
            0,
            2,
            "memcpy",
            4096,
            [100, 140, 200, 230, 900, 955].map(SimTime::from_ns),
        ));
        hub.set_tenant(Some(1));
        hub.record_job_trace(crate::causal::JobTrace::from_boundaries(
            hub.next_trace_id(),
            0,
            3,
            "memcpy",
            4096,
            [1000, 1040, 1100, 1130, 1800, 1855].map(SimTime::from_ns),
        ));
        hub
    }

    #[test]
    fn chrome_json_chains_critpath_slices_with_flow_arrows() {
        let hub = hub_with_traces();
        let json = chrome_trace_json(&hub);
        for kind in SegmentKind::ALL {
            assert!(
                json.contains(&format!(r#""name":"{}","cat":"critpath""#, kind.name())),
                "missing segment {}",
                kind.name()
            );
        }
        // One flow start, three steps, one finish per trace.
        let count = |pat: &str| json.matches(pat).count();
        assert_eq!(count(r#""cat":"flow","ph":"s""#), 2);
        assert_eq!(count(r#""cat":"flow","ph":"t""#), 6);
        assert_eq!(count(r#""cat":"flow","ph":"f""#), 2);
        assert!(json.contains(r#""bp":"e""#), "flow finish binds to enclosing slice");
        // Tenant lanes get named.
        assert!(json.contains(r#""name":"tenant0""#));
        assert!(json.contains(r#""name":"tenant1""#));
    }

    #[test]
    fn folded_stacks_weight_segments_by_picoseconds() {
        let hub = hub_with_traces();
        let folded = folded_stacks(&hub);
        // 670 ns memory hop on the untenanted trace.
        assert!(folded.contains("untenanted;dsa0/wq2;memcpy;memory_hop 670000"), "got:\n{folded}");
        assert!(folded.contains("tenant1;dsa0/wq3;memcpy;software_prep 40000"));
        // Every line is "stack weight".
        for line in folded.lines() {
            let mut parts = line.rsplitn(2, ' ');
            let weight: u128 = parts.next().unwrap().parse().expect("numeric weight");
            assert!(weight > 0);
            assert_eq!(parts.next().unwrap().split(';').count(), 4);
        }
        // Total folded weight equals total attributed time.
        let total: u128 =
            folded.lines().map(|l| l.rsplit(' ').next().unwrap().parse::<u128>().unwrap()).sum();
        let expected: u128 = hub.job_traces().iter().map(|t| u128::from(t.total().as_ps())).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn csv_contains_histogram_and_counter_rows() {
        let hub = hub_with_one_descriptor();
        let csv = metrics_csv(&hub);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "name,device,wq,pe,tenant,kind,count,value,min,mean,p50,p90,p99,p999,max"
        );
        assert!(csv.contains("descriptors,0,2,,,counter,,1,"));
        assert!(csv.lines().any(|l| l.starts_with("descriptor_latency,0,2,,,histogram,1,")));
        // Every data row has the full column count.
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 15, "bad row: {line}");
        }
    }

    #[test]
    fn dashboard_lists_each_wq_once() {
        let hub = hub_with_one_descriptor();
        hub.series_push("wq_depth", Labels::wq(0, 2), SimTime::from_ns(100), 1.0);
        let text = pcm_dashboard(&hub);
        assert!(text.contains("DSA telemetry dashboard"));
        assert_eq!(text.matches("4096").count(), 1, "one row for wq2: {text}");
        assert!(text.contains("wq_depth"));
    }
}
