//! Span types: the descriptor lifecycle and generic named intervals.

use dsa_sim::time::{SimDuration, SimTime};

/// The six phases of a descriptor's trip through the device pipeline,
/// in order. Together they partition `[submitted, completed]` exactly,
/// so per-phase durations always sum to the descriptor's total latency
/// (the invariant Fig. 5's breakdown relies on).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// ENQCMD/MOVDIR64B portal write until WQ admission.
    Submit,
    /// Waiting in the WQ for a processing engine (queueing + arbitration).
    Wait,
    /// Address translation: ATC lookup, IOMMU page walk, fault service.
    Translate,
    /// Source read streaming through the read buffers.
    Read,
    /// Destination write (overlap beyond the read critical path).
    Write,
    /// Completion-record write until it is visible to the poller.
    Complete,
}

impl Phase {
    /// All phases, pipeline order.
    pub const ALL: [Phase; 6] =
        [Phase::Submit, Phase::Wait, Phase::Translate, Phase::Read, Phase::Write, Phase::Complete];

    /// Position in [`Phase::ALL`].
    pub fn index(self) -> usize {
        match self {
            Phase::Submit => 0,
            Phase::Wait => 1,
            Phase::Translate => 2,
            Phase::Read => 3,
            Phase::Write => 4,
            Phase::Complete => 5,
        }
    }

    /// Short lowercase name used in trace events and metric keys.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Submit => "submit",
            Phase::Wait => "wait",
            Phase::Translate => "translate",
            Phase::Read => "read",
            Phase::Write => "write",
            Phase::Complete => "complete",
        }
    }

    /// The histogram this phase's durations feed in the metrics registry.
    pub fn metric(self) -> &'static str {
        match self {
            Phase::Submit => "phase_submit",
            Phase::Wait => "phase_wait",
            Phase::Translate => "phase_translate",
            Phase::Read => "phase_read",
            Phase::Write => "phase_write",
            Phase::Complete => "phase_complete",
        }
    }
}

/// Where a span lives in the exported trace (the pid/tid grouping of the
/// Chrome trace-event format).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Software activity on the submitting core (job phases).
    Job,
    /// A DSA work queue on one device.
    Wq {
        /// Device index.
        device: u16,
        /// WQ index on that device.
        wq: u16,
    },
    /// A CBDMA channel on one device.
    CbdmaChan {
        /// Device index.
        device: u16,
        /// Channel index.
        chan: u16,
    },
    /// A named workload lane (e.g. `"vhost"`, `"migration"`).
    Workload(&'static str),
}

/// One descriptor's trip through the device pipeline: seven boundary
/// timestamps delimiting the six [`Phase`]s.
#[derive(Clone, Copy, Debug)]
pub struct DescriptorSpan {
    /// Device index.
    pub device: u16,
    /// WQ the descriptor was submitted to.
    pub wq: u16,
    /// Processing engine that executed it.
    pub pe: u16,
    /// Device-wide submission sequence number.
    pub seq: u64,
    /// Operation mnemonic (e.g. `"memmove"`).
    pub op: &'static str,
    /// Transfer size in bytes.
    pub xfer_size: u32,
    /// Phase boundaries: submitted, admitted, dispatched, translated,
    /// read done, data done, completion visible. Must be nondecreasing.
    pub marks: [SimTime; 7],
}

impl DescriptorSpan {
    /// Start and end of one phase.
    pub fn phase_bounds(&self, p: Phase) -> (SimTime, SimTime) {
        let i = p.index();
        (self.marks[i], self.marks[i + 1])
    }

    /// Duration of one phase.
    pub fn phase_duration(&self, p: Phase) -> SimDuration {
        let (start, end) = self.phase_bounds(p);
        end - start
    }

    /// Total latency: submission to completion-record visibility. Equal
    /// to the sum of the six phase durations by construction.
    pub fn total(&self) -> SimDuration {
        self.marks[6] - self.marks[0]
    }
}

/// A generic named interval on a track (job phases, workload stages,
/// CBDMA pipeline hops).
#[derive(Clone, Debug)]
pub struct Span {
    /// Trace grouping.
    pub track: Track,
    /// Display name.
    pub name: &'static str,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
}

/// A recorded trace event.
#[derive(Clone, Debug)]
pub enum Event {
    /// A full descriptor lifecycle.
    Descriptor(DescriptorSpan),
    /// A generic named span.
    Span(Span),
    /// A zero-duration marker.
    Instant {
        /// Trace grouping.
        track: Track,
        /// Display name.
        name: &'static str,
        /// When it happened.
        at: SimTime,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_with_marks(ns: [u64; 7]) -> DescriptorSpan {
        DescriptorSpan {
            device: 0,
            wq: 0,
            pe: 0,
            seq: 1,
            op: "memmove",
            xfer_size: 4096,
            marks: ns.map(SimTime::from_ns),
        }
    }

    #[test]
    fn phases_partition_total_latency() {
        let s = span_with_marks([10, 15, 40, 47, 90, 120, 131]);
        let sum: SimDuration = Phase::ALL.iter().map(|&p| s.phase_duration(p)).sum();
        assert_eq!(sum, s.total());
        assert_eq!(s.total(), SimDuration::from_ns(121));
    }

    #[test]
    fn phase_bounds_are_contiguous() {
        let s = span_with_marks([0, 1, 2, 3, 5, 8, 13]);
        for w in Phase::ALL.windows(2) {
            assert_eq!(s.phase_bounds(w[0]).1, s.phase_bounds(w[1]).0);
        }
    }

    #[test]
    fn names_and_indices_are_consistent() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(p.metric().ends_with(p.name()));
        }
    }
}
