//! Unified observability for the DSA reproduction: descriptor lifecycle
//! **spans**, a labelled **metrics registry**, and **exporters**.
//!
//! The paper's methodology is observability: it reads PCM hardware
//! counters to chart per-DSA traffic (§5) and decomposes offload latency
//! into software/queueing/processing phases (Fig. 5). This crate gives
//! the model stack one shared sink for the same signals:
//!
//! * [`Hub`] — a cheaply cloneable handle every layer (device, runtime,
//!   workloads) can hold; single-threaded interior mutability matches the
//!   deterministic simulation.
//! * [`span`] — per-descriptor lifecycle spans (submit → WQ wait →
//!   address translate → read → write → completion record) plus generic
//!   named spans for jobs and workload stages.
//! * [`metrics`] — counters, gauges, and log-linear histograms
//!   (p50/p90/p99/p999) keyed by device/WQ/PE labels, plus utilization
//!   time series (WQ depth, PE occupancy).
//! * [`causal`] — causal tracing: per-event trace IDs + parent edges
//!   from the sim engine, per-job critical paths attributed to typed
//!   segments, and per-tenant/WQ [`CritPathProfile`] breakdowns with
//!   blame-shift detection across sweeps.
//! * [`window`] — delta views over the hub ([`HubWindow`]): per-epoch
//!   counter growth and histogram windows, the observation primitive the
//!   `dsa-ctl` control loop reads instead of cumulative totals.
//! * [`export`] — Chrome trace-event JSON loadable in Perfetto /
//!   `chrome://tracing` (with causal flow arrows), flamegraph-style
//!   folded stacks, a machine-readable metrics CSV, and a PCM-style
//!   text dashboard.

pub mod causal;
pub mod export;
pub mod hub;
pub mod metrics;
pub mod span;
pub mod window;

pub use causal::{
    blame_shifts, BlameShift, Breakdown, CausalGraph, CritPathProfile, JobTrace, SegmentKind,
    SegmentStat,
};
pub use export::{chrome_trace_json, folded_stacks, metrics_csv, pcm_dashboard};
pub use hub::Hub;
pub use metrics::{Labels, Metric, Metrics};
pub use span::{DescriptorSpan, Event, Phase, Span, Track};
pub use window::HubWindow;
