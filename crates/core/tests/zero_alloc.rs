//! Steady-state allocation audit of compiled op-program replay.
//!
//! The `prepare()`/`step()` split exists so that everything allocation-
//! heavy — instruction compilation, descriptor validation, buffer setup —
//! happens once, and replay runs out of fixed storage. This binary
//! installs a counting global allocator and asserts the replay-side hot
//! path is allocation-free: fetching instructions, rebuilding the pooled
//! descriptor slot, re-validating against device caps, deriving
//! backend-neutral requests, and constructing `Job`s.
//!
//! Full device execution is deliberately out of scope: the device model
//! keeps its own analytic records per submission and is not part of the
//! software hot path this PR pins down.
//!
//! One `#[test]` only: the counter is process-global, so a second parallel
//! test would count its own allocations into ours.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use dsa_core::prelude::*;
use dsa_mem::buffer::Location;

struct CountingAlloc;

static HEAP_OPS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn program_replay_hot_path_is_allocation_free() {
    // One-time setup: runtime, buffers, compiled program. All allocation
    // lives here, before the audit window opens.
    let mut rt = DsaRuntime::spr_default();
    let src = rt.alloc(4096, Location::local_dram());
    let dst = rt.alloc(4096, Location::local_dram());
    rt.fill_pattern(&src, 0x3C);
    let mut prog = ProgramBuilder::new()
        .memcpy(&src, &dst)
        .fill(&dst, 0xABAB_ABAB_ABAB_ABAB)
        .compare(&src, &dst)
        .crc32(&src)
        .cache_control(true)
        .copy_crc(&src, &dst)
        .prepare(&rt)
        .expect("program compiles");
    let caps = *rt.device(0).caps();

    let replay = |prog: &mut OpProgram, rounds: u64| -> u64 {
        let mut steps = 0;
        for _ in 0..rounds {
            prog.rewind();
            while let Some(i) = prog.fetch() {
                // The pooled slot was rebuilt in place by fetch(); the
                // prepare-time validation guarantee must re-check clean.
                assert_eq!(prog.slot().validate(&caps), Ok(()));
                // Descriptor-prep hot path: stack job + backend request.
                black_box(Job::from_instr(&i));
                black_box(i.offload_request());
                steps += 1;
            }
        }
        steps
    };

    // Warm-up, then audit.
    replay(&mut prog, 16);
    let before = HEAP_OPS.load(Ordering::SeqCst);
    let steps = replay(&mut prog, 4_000);
    let after = HEAP_OPS.load(Ordering::SeqCst);
    assert_eq!(steps, 4_000 * prog.len() as u64);
    assert_eq!(
        after - before,
        0,
        "{} heap allocation(s) during {steps} op-program replay steps",
        after - before
    );
}
