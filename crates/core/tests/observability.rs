//! End-to-end observability: a memcpy job driven through [`DsaRuntime`]
//! must produce a Chrome trace with one span per device pipeline phase
//! whose durations sum to the device timeline, and the hub's histograms
//! must expose per-WQ completion-latency percentiles.

use dsa_core::job::{AsyncQueue, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_sim::time::SimDuration;
use dsa_telemetry::{chrome_trace_json, Labels, Phase};

#[test]
fn memcpy_produces_one_span_per_phase_summing_to_device_total() {
    let mut rt = DsaRuntime::spr_default();
    let hub = rt.trace();
    let src = rt.alloc(64 << 10, Location::local_dram());
    let dst = rt.alloc(64 << 10, Location::local_dram());
    rt.fill_pattern(&src, 0xAB);
    let report = Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
    assert!(report.record.status.is_ok());

    // Exactly one descriptor lifecycle was recorded, and its six phases
    // partition the device-side latency exactly.
    let spans = hub.descriptor_spans();
    assert_eq!(spans.len(), 1);
    let d = spans[0];
    let phase_sum: SimDuration = Phase::ALL.iter().map(|&p| d.phase_duration(p)).sum();
    assert_eq!(phase_sum, d.total(), "phases must partition the lifetime");
    assert_eq!(
        d.total(),
        report.device_timeline.total(),
        "recorded span must match the job's device timeline"
    );
    assert_eq!(d.op, "memmove");
    assert_eq!(d.xfer_size, 64 << 10);

    // The Chrome export carries one complete ("X") event per phase.
    let json = chrome_trace_json(&hub);
    for p in Phase::ALL {
        let needle = format!("{{\"name\":\"{}\",\"cat\":\"descriptor\",\"ph\":\"X\"", p.name());
        assert_eq!(
            json.matches(&needle).count(),
            1,
            "expected exactly one {} phase event",
            p.name()
        );
    }
    // And the job layer contributed its own prepare/submit/wait spans.
    for name in ["prepare", "submit", "wait"] {
        assert!(
            json.contains(&format!("{{\"name\":\"{name}\",\"cat\":\"span\"")),
            "missing job-level {name} span"
        );
    }
}

#[test]
fn trace_event_durations_sum_to_total_in_microseconds() {
    let mut rt = DsaRuntime::spr_default();
    let hub = rt.trace();
    let src = rt.alloc(1 << 20, Location::local_dram());
    let dst = rt.alloc(1 << 20, Location::local_dram());
    let report = Job::memcpy(&src, &dst).execute(&mut rt).unwrap();

    // Parse the "dur" field of every descriptor phase event and check the
    // sum against the device total (exporter rounds to 3 decimals = ns).
    let json = chrome_trace_json(&hub);
    let mut dur_us = 0.0f64;
    for line in json.lines().filter(|l| l.contains("\"cat\":\"descriptor\"")) {
        let dur = line.split("\"dur\":").nth(1).unwrap();
        let dur: f64 = dur.split(',').next().unwrap().parse().unwrap();
        dur_us += dur;
    }
    let total_us = report.device_timeline.total().as_us_f64();
    assert!(
        (dur_us - total_us).abs() < 0.01,
        "phase durations {dur_us} us should sum to device total {total_us} us"
    );
}

#[test]
fn per_wq_p99_descriptor_latency_is_exposed() {
    let mut rt = DsaRuntime::spr_default();
    let hub = rt.trace();
    let src = rt.alloc(32 << 10, Location::local_dram());
    let dst = rt.alloc(32 << 10, Location::local_dram());
    let mut q = AsyncQueue::new(16);
    for _ in 0..64 {
        q.submit(&mut rt, Job::memcpy(&src, &dst)).unwrap();
    }
    q.drain(&mut rt);

    assert_eq!(hub.counter("descriptors", Labels::wq(0, 0)), 64);
    let p50 = hub.percentile("descriptor_latency", Labels::wq(0, 0), 50.0).unwrap();
    let p99 = hub.percentile("descriptor_latency", Labels::wq(0, 0), 99.0).unwrap();
    assert!(p99 >= p50, "p99 {p99} must dominate p50 {p50}");

    // The p99 must bracket the actual recorded maxima: at least the
    // slowest-but-one lifetime, at most the slowest (log-linear buckets
    // overshoot by < 1/16 of the value).
    let mut totals: Vec<SimDuration> = hub.descriptor_spans().iter().map(|d| d.total()).collect();
    totals.sort();
    let max = *totals.last().unwrap();
    assert!(
        p99 >= totals[totals.len() - 2],
        "p99 {p99} below 2nd-max {}",
        totals[totals.len() - 2]
    );
    assert!(
        p99.as_ns_f64() <= max.as_ns_f64() * (1.0 + 1.0 / 16.0) + 1.0,
        "p99 {p99} far above max {max}"
    );

    // No descriptors ever flowed through a different WQ label.
    assert!(hub.percentile("descriptor_latency", Labels::wq(0, 1), 99.0).is_none());
}

#[test]
fn wq_depth_and_pe_occupancy_series_recorded() {
    let mut rt = DsaRuntime::spr_default();
    let hub = rt.trace();
    let src = rt.alloc(16 << 10, Location::local_dram());
    let dst = rt.alloc(16 << 10, Location::local_dram());
    let mut q = AsyncQueue::new(8);
    for _ in 0..32 {
        q.submit(&mut rt, Job::memcpy(&src, &dst)).unwrap();
    }
    q.drain(&mut rt);

    hub.with_metrics(|m| {
        let depth = m.series("wq_depth", Labels::wq(0, 0)).expect("wq depth series");
        assert_eq!(depth.len(), 32, "one point per admitted descriptor");
        assert!(depth.max_value() >= 1.0);
        let occ = m.series("pe_occupancy", Labels::device(0)).expect("occupancy series");
        assert_eq!(occ.len(), 32);
        assert!(occ.max_value() <= 1.0, "occupancy is a fraction");
        assert!(occ.max_value() > 0.5, "streaming keeps the single PE busy");
    });
}
