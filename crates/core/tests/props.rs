//! Property tests for the user-facing library: conservation and routing
//! laws over arbitrary job streams.

use dsa_core::dto::Dto;
use dsa_core::job::{AsyncQueue, Batch, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_sim::time::SimTime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn async_queue_conserves_jobs_and_bytes(
        sizes in prop::collection::vec(64u64..65_536, 1..40),
        qd in 1usize..48
    ) {
        let mut rt = DsaRuntime::spr_default();
        let mut q = AsyncQueue::new(qd);
        let mut expected = 0u64;
        for &size in &sizes {
            let src = rt.alloc(size, Location::local_dram());
            let dst = rt.alloc(size, Location::local_dram());
            q.submit(&mut rt, Job::memcpy(&src, &dst)).unwrap();
            expected += size;
        }
        let end = q.drain(&mut rt);
        prop_assert_eq!(q.completed(), sizes.len() as u64);
        prop_assert_eq!(q.completed_bytes(), expected);
        prop_assert!(end > SimTime::ZERO);
        prop_assert!(rt.now() >= end);
    }

    #[test]
    fn sync_phase_sum_equals_elapsed(size in 64u64..1 << 20, count_alloc in any::<bool>()) {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(size, Location::local_dram());
        let dst = rt.alloc(size, Location::local_dram());
        let report = Job::memcpy(&src, &dst).count_alloc(count_alloc).execute(&mut rt).unwrap();
        prop_assert_eq!(report.phases.total(), report.elapsed());
        prop_assert_eq!(report.phases.alloc.is_zero(), !count_alloc);
    }

    #[test]
    fn batch_reports_one_record_per_member(
        sizes in prop::collection::vec(64u64..16_384, 2..24)
    ) {
        let mut rt = DsaRuntime::spr_default();
        let mut batch = Batch::new();
        for &size in &sizes {
            let src = rt.alloc(size, Location::local_dram());
            let dst = rt.alloc(size, Location::local_dram());
            batch.push(Job::memcpy(&src, &dst));
        }
        prop_assert_eq!(batch.len(), sizes.len());
        let report = batch.execute(&mut rt).unwrap();
        prop_assert_eq!(report.records.len(), sizes.len());
        prop_assert!(report.records.iter().all(|r| r.status.is_ok()));
        prop_assert_eq!(report.batch_record.bytes_completed as usize, sizes.len());
    }

    #[test]
    fn dto_routes_exactly_by_threshold(
        sizes in prop::collection::vec(256u64..65_536, 1..40),
        threshold in 512u64..32_768
    ) {
        let mut rt = DsaRuntime::spr_default();
        let mut dto = Dto::new().with_threshold(threshold);
        let pool = rt.alloc(65_536, Location::local_dram());
        let dstp = rt.alloc(65_536, Location::local_dram());
        let mut want_offloaded = 0u64;
        let mut want_bytes = 0u64;
        let mut want_off_bytes = 0u64;
        for &size in &sizes {
            let src = pool.slice(0, size);
            let dst = dstp.slice(0, size);
            dto.memcpy(&mut rt, &src, &dst).unwrap();
            want_bytes += size;
            if size >= threshold {
                want_offloaded += 1;
                want_off_bytes += size;
            }
        }
        let s = dto.stats();
        prop_assert_eq!(s.calls, sizes.len() as u64);
        prop_assert_eq!(s.offloaded_calls, want_offloaded);
        prop_assert_eq!(s.bytes, want_bytes);
        prop_assert_eq!(s.offloaded_bytes, want_off_bytes);
    }

    #[test]
    fn drain_is_a_barrier_for_any_prior_stream(
        sizes in prop::collection::vec(1024u32..262_144, 1..12)
    ) {
        let mut rt = DsaRuntime::spr_default();
        let mut q = AsyncQueue::new(16);
        let mut last_completion = SimTime::ZERO;
        for &size in &sizes {
            let src = rt.alloc(size as u64, Location::local_dram());
            let dst = rt.alloc(size as u64, Location::local_dram());
            let handle = Job::memcpy(&src, &dst).submit(&mut rt).unwrap();
            last_completion = last_completion.max(handle.completion_time());
            let _ = (&handle, &mut q);
        }
        let drain = Job::drain().submit(&mut rt).unwrap();
        prop_assert!(
            drain.completion_time() >= last_completion,
            "drain {:?} must follow the last copy {:?}",
            drain.completion_time(),
            last_completion
        );
    }

    #[test]
    fn clock_is_monotone_across_arbitrary_job_mixes(
        ops in prop::collection::vec(0u8..4, 1..30)
    ) {
        let mut rt = DsaRuntime::spr_default();
        let a = rt.alloc(8192, Location::local_dram());
        let b = rt.alloc(8192, Location::local_dram());
        let mut last = rt.now();
        for op in ops {
            match op {
                0 => {
                    Job::memcpy(&a, &b).execute(&mut rt).unwrap();
                }
                1 => {
                    Job::crc32(&a).execute(&mut rt).unwrap();
                }
                2 => {
                    Job::fill(&b, 0x11).execute(&mut rt).unwrap();
                }
                _ => {
                    Job::compare(&a, &b).execute(&mut rt).unwrap();
                }
            }
            prop_assert!(rt.now() > last, "every sync job advances time");
            last = rt.now();
        }
    }
}
