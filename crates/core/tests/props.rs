//! Property-style tests for the user-facing library: conservation and
//! routing laws over arbitrary job streams.
//!
//! Randomized inputs come from the in-repo deterministic [`SplitMix64`]
//! generator so the suite runs offline with no external test-harness
//! dependency; every case is reproducible from the fixed seeds below.

use dsa_core::dto::Dto;
use dsa_core::job::{AsyncQueue, Batch, Job};
use dsa_core::runtime::DsaRuntime;
use dsa_mem::buffer::Location;
use dsa_sim::rng::SplitMix64;
use dsa_sim::time::SimTime;

const CASES: usize = 16;

#[test]
fn async_queue_conserves_jobs_and_bytes() {
    let mut rng = SplitMix64::new(0xC03E_0001);
    for _ in 0..CASES {
        let jobs = 1 + rng.next_below(39) as usize;
        let qd = 1 + rng.next_below(47) as usize;
        let mut rt = DsaRuntime::spr_default();
        let mut q = AsyncQueue::new(qd);
        let mut expected = 0u64;
        for _ in 0..jobs {
            let size = 64 + rng.next_below(65_472);
            let src = rt.alloc(size, Location::local_dram());
            let dst = rt.alloc(size, Location::local_dram());
            q.submit(&mut rt, Job::memcpy(&src, &dst)).unwrap();
            expected += size;
        }
        let end = q.drain(&mut rt);
        assert_eq!(q.completed(), jobs as u64);
        assert_eq!(q.completed_bytes(), expected);
        assert!(end > SimTime::ZERO);
        assert!(rt.now() >= end);
    }
}

#[test]
fn sync_phase_sum_equals_elapsed() {
    let mut rng = SplitMix64::new(0xC03E_0002);
    for _ in 0..CASES {
        let size = 64 + rng.next_below((1 << 20) - 64);
        let count_alloc = rng.next_u64() & 1 == 0;
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(size, Location::local_dram());
        let dst = rt.alloc(size, Location::local_dram());
        let report = Job::memcpy(&src, &dst).count_alloc(count_alloc).execute(&mut rt).unwrap();
        assert_eq!(report.phases.total(), report.elapsed());
        assert_eq!(report.phases.alloc.is_zero(), !count_alloc);
    }
}

#[test]
fn batch_reports_one_record_per_member() {
    let mut rng = SplitMix64::new(0xC03E_0003);
    for _ in 0..CASES {
        let members = 2 + rng.next_below(22) as usize;
        let mut rt = DsaRuntime::spr_default();
        let mut batch = Batch::new();
        for _ in 0..members {
            let size = 64 + rng.next_below(16_320);
            let src = rt.alloc(size, Location::local_dram());
            let dst = rt.alloc(size, Location::local_dram());
            batch.push(Job::memcpy(&src, &dst));
        }
        assert_eq!(batch.len(), members);
        let report = batch.execute(&mut rt).unwrap();
        assert_eq!(report.records.len(), members);
        assert!(report.records.iter().all(|r| r.status.is_ok()));
        assert_eq!(report.batch_record.bytes_completed as usize, members);
    }
}

#[test]
fn dto_routes_exactly_by_threshold() {
    let mut rng = SplitMix64::new(0xC03E_0004);
    for _ in 0..CASES {
        let calls = 1 + rng.next_below(39) as usize;
        let threshold = 512 + rng.next_below(32_256);
        let mut rt = DsaRuntime::spr_default();
        let mut dto = Dto::new().with_threshold(threshold);
        let pool = rt.alloc(65_536, Location::local_dram());
        let dstp = rt.alloc(65_536, Location::local_dram());
        let mut want_offloaded = 0u64;
        let mut want_bytes = 0u64;
        let mut want_off_bytes = 0u64;
        for _ in 0..calls {
            let size = 256 + rng.next_below(65_280);
            let src = pool.slice(0, size);
            let dst = dstp.slice(0, size);
            dto.memcpy(&mut rt, &src, &dst).unwrap();
            want_bytes += size;
            if size >= threshold {
                want_offloaded += 1;
                want_off_bytes += size;
            }
        }
        let s = dto.stats();
        assert_eq!(s.calls, calls as u64);
        assert_eq!(s.offloaded_calls, want_offloaded);
        assert_eq!(s.bytes, want_bytes);
        assert_eq!(s.offloaded_bytes, want_off_bytes);
    }
}

#[test]
fn drain_is_a_barrier_for_any_prior_stream() {
    let mut rng = SplitMix64::new(0xC03E_0005);
    for _ in 0..CASES {
        let jobs = 1 + rng.next_below(11) as usize;
        let mut rt = DsaRuntime::spr_default();
        let mut last_completion = SimTime::ZERO;
        for _ in 0..jobs {
            let size = 1024 + rng.next_below(261_120);
            let src = rt.alloc(size, Location::local_dram());
            let dst = rt.alloc(size, Location::local_dram());
            let handle = Job::memcpy(&src, &dst).submit(&mut rt).unwrap();
            last_completion = last_completion.max(handle.completion_time());
        }
        let drain = Job::drain().submit(&mut rt).unwrap();
        assert!(
            drain.completion_time() >= last_completion,
            "drain {:?} must follow the last copy {:?}",
            drain.completion_time(),
            last_completion
        );
    }
}

#[test]
fn clock_is_monotone_across_arbitrary_job_mixes() {
    let mut rng = SplitMix64::new(0xC03E_0006);
    for _ in 0..CASES {
        let ops = 1 + rng.next_below(29) as usize;
        let mut rt = DsaRuntime::spr_default();
        let a = rt.alloc(8192, Location::local_dram());
        let b = rt.alloc(8192, Location::local_dram());
        let mut last = rt.now();
        for _ in 0..ops {
            match rng.next_below(4) {
                0 => {
                    Job::memcpy(&a, &b).execute(&mut rt).unwrap();
                }
                1 => {
                    Job::crc32(&a).execute(&mut rt).unwrap();
                }
                2 => {
                    Job::fill(&b, 0x11).execute(&mut rt).unwrap();
                }
                _ => {
                    Job::compare(&a, &b).execute(&mut rt).unwrap();
                }
            }
            assert!(rt.now() > last, "every sync job advances time");
            last = rt.now();
        }
    }
}
