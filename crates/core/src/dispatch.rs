//! The policy dispatcher: guidelines G1–G3 as *live* routing policy.
//!
//! A [`Dispatcher`] fronts a [`CpuBackend`] and a [`DsaBackend`] and decides
//! per call where each operation runs:
//!
//! * **G2** — the sync break-even (≈ 4 KB) and async break-even (≈ 256 B)
//!   emerge from comparing the backends' [`estimate`](OffloadBackend::estimate)s
//!   rather than from a hard-coded size table;
//! * **G1** — [`copy_burst`](Dispatcher::copy_burst) assembles scattered
//!   transfers into batch descriptors instead of submitting one descriptor
//!   per element;
//! * **G3** — the [`consumed_soon`](Dispatcher::consumed_soon) hint steers
//!   offloaded writes into the LLC via `CACHE_CONTROL`.
//!
//! Every decision is mirrored into local [`DispatchStats`] and, when the
//! runtime carries a telemetry [`Hub`](dsa_telemetry::Hub), into labelled
//! counters (`dispatch_cpu`, `dispatch_dsa_sync`, `dispatch_dsa_async`,
//! `dispatch_g1_batches`, `dispatch_cache_control`, `dispatch_fault_fallbacks`).

use crate::backend::{CpuBackend, DsaBackend, Engine, OffloadBackend, OffloadRequest, Ticket};
use crate::error::DsaError;
use crate::guidelines;
use crate::job::{Batch, Job};
use crate::runtime::DsaRuntime;
use crate::submit::InflightWindow;
use dsa_device::descriptor::Status;
use dsa_mem::buffer::Location;
use dsa_mem::memory::BufferHandle;
use dsa_ops::OpKind;
use dsa_sim::time::{SimDuration, SimTime};
use dsa_telemetry::Labels;

/// How the dispatcher routes operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Estimate-driven: compare the software and device models per call
    /// (G2's break-evens become emergent behaviour).
    Adaptive,
    /// DTO-style fixed byte threshold: offload at or above the threshold.
    Threshold(u64),
    /// Never offload.
    CpuOnly,
    /// Always offload (asynchronously when an async depth is set).
    DsaOnly,
}

/// Where one operation was routed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Software on the calling core.
    Cpu,
    /// Synchronous descriptor: submit and poll to completion.
    DsaSync,
    /// Asynchronous descriptor: submit and continue.
    DsaAsync,
}

/// Decision counters a dispatcher accumulates.
#[derive(Clone, Copy, Debug, Default)]
pub struct DispatchStats {
    /// Calls routed to the core.
    pub cpu_calls: u64,
    /// Calls offloaded synchronously.
    pub sync_offloads: u64,
    /// Calls offloaded asynchronously.
    pub async_offloads: u64,
    /// Bytes moved by the core.
    pub cpu_bytes: u64,
    /// Bytes moved by the device.
    pub offloaded_bytes: u64,
    /// Batch descriptors assembled by burst submission (G1).
    pub batch_descriptors: u64,
    /// Offloaded operations carrying `CACHE_CONTROL` (G3).
    pub cache_controlled: u64,
    /// Offloads that hit a page fault and were redone in software.
    pub fault_fallbacks: u64,
}

impl DispatchStats {
    /// Total calls routed.
    pub fn calls(&self) -> u64 {
        self.cpu_calls + self.sync_offloads + self.async_offloads
    }

    /// Calls that left the core.
    pub fn offloaded_calls(&self) -> u64 {
        self.sync_offloads + self.async_offloads
    }

    /// Fraction of calls offloaded.
    pub fn call_fraction(&self) -> f64 {
        if self.calls() == 0 {
            0.0
        } else {
            self.offloaded_calls() as f64 / self.calls() as f64
        }
    }

    /// Fraction of bytes offloaded.
    pub fn byte_fraction(&self) -> f64 {
        let total = self.cpu_bytes + self.offloaded_bytes;
        if total == 0 {
            0.0
        } else {
            self.offloaded_bytes as f64 / total as f64
        }
    }
}

/// Routes data-movement operations across backends per policy.
#[derive(Clone, Debug)]
pub struct Dispatcher {
    cpu: CpuBackend,
    dsa: DsaBackend,
    policy: DispatchPolicy,
    async_depth: usize,
    consumed_soon: bool,
    inflight: InflightWindow<Ticket>,
    stats: DispatchStats,
}

impl Default for Dispatcher {
    fn default() -> Self {
        Dispatcher::new()
    }
}

impl Dispatcher {
    /// An adaptive, synchronous-only dispatcher over device 0.
    pub fn new() -> Dispatcher {
        Dispatcher {
            cpu: CpuBackend,
            dsa: DsaBackend::new(),
            policy: DispatchPolicy::Adaptive,
            async_depth: 0,
            consumed_soon: false,
            inflight: InflightWindow::new(1),
            stats: DispatchStats::default(),
        }
    }

    /// An adaptive dispatcher pooling every device of `rt`.
    pub fn all_devices(rt: &DsaRuntime) -> Dispatcher {
        Dispatcher::new().with_backend(DsaBackend::all_devices(rt))
    }

    /// Builds a dispatcher matching `engine`: `Engine::Cpu` never offloads;
    /// `Engine::Dsa` always offloads to the named device/WQ. The bridge for
    /// workloads migrated off their private enums.
    pub fn for_engine(engine: Engine) -> Dispatcher {
        match engine {
            Engine::Cpu => Dispatcher::new().with_policy(DispatchPolicy::CpuOnly),
            Engine::Dsa { device, wq } => Dispatcher::new()
                .with_policy(DispatchPolicy::DsaOnly)
                .with_backend(DsaBackend::with_pool(vec![device]).on_wq(wq)),
        }
    }

    /// Sets the routing policy.
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Dispatcher {
        self.policy = policy;
        self
    }

    /// Replaces the DSA backend (pool, WQ, selection policy).
    pub fn with_backend(mut self, dsa: DsaBackend) -> Dispatcher {
        self.dsa = dsa;
        self
    }

    /// Allows asynchronous offload up to `depth` outstanding operations
    /// (0 disables async; G2's "if asynchronous offload is possible").
    pub fn with_async_depth(mut self, depth: usize) -> Dispatcher {
        self.async_depth = depth;
        self.inflight = InflightWindow::new(depth.max(1));
        self
    }

    /// G3 hint: offloaded destinations are consumed soon, so writes should
    /// allocate into the LLC.
    pub fn consumed_soon(mut self, yes: bool) -> Dispatcher {
        self.consumed_soon = yes;
        self
    }

    /// Decision counters so far.
    pub fn stats(&self) -> DispatchStats {
        self.stats
    }

    /// The active routing policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The DSA backend.
    pub fn dsa(&self) -> &DsaBackend {
        &self.dsa
    }

    /// Where the dispatcher would route `op` over `bytes` with the given
    /// placements, right now.
    pub fn decide(
        &self,
        rt: &DsaRuntime,
        op: OpKind,
        bytes: u64,
        src: Location,
        dst: Location,
    ) -> Decision {
        match self.policy {
            DispatchPolicy::CpuOnly => Decision::Cpu,
            DispatchPolicy::DsaOnly => {
                if self.async_depth > 0 {
                    Decision::DsaAsync
                } else {
                    Decision::DsaSync
                }
            }
            DispatchPolicy::Threshold(t) => {
                if bytes >= t {
                    if self.async_depth > 0 {
                        Decision::DsaAsync
                    } else {
                        Decision::DsaSync
                    }
                } else {
                    Decision::Cpu
                }
            }
            DispatchPolicy::Adaptive => {
                let cpu = self.cpu.estimate(rt, op, bytes, src, dst);
                // Async: the core only pays the submission, so offload as
                // soon as software costs more than preparing a descriptor
                // (the ≈ 256 B break-even of Fig. 2b).
                if self.async_depth > 0 && cpu > self.dsa.submit_cost(rt, dst) {
                    return Decision::DsaAsync;
                }
                // Sync: offload when the full device round-trip beats the
                // core (the ≈ 4 KB break-even of Fig. 2a).
                if self.dsa.estimate(rt, op, bytes, src, dst) < cpu {
                    Decision::DsaSync
                } else {
                    Decision::Cpu
                }
            }
        }
    }

    fn count(&self, rt: &DsaRuntime, name: &'static str, n: u64) {
        if let Some(hub) = rt.hub() {
            hub.counter_add(name, Labels::none(), n);
        }
    }

    fn note_decision(&mut self, rt: &DsaRuntime, decision: Decision, bytes: u64) {
        match decision {
            Decision::Cpu => {
                self.stats.cpu_calls += 1;
                self.stats.cpu_bytes += bytes;
                self.count(rt, "dispatch_cpu", 1);
            }
            Decision::DsaSync => {
                self.stats.sync_offloads += 1;
                self.stats.offloaded_bytes += bytes;
                self.count(rt, "dispatch_dsa_sync", 1);
            }
            Decision::DsaAsync => {
                self.stats.async_offloads += 1;
                self.stats.offloaded_bytes += bytes;
                self.count(rt, "dispatch_dsa_async", 1);
            }
        }
        if decision != Decision::Cpu && self.consumed_soon {
            self.stats.cache_controlled += 1;
            self.count(rt, "dispatch_cache_control", 1);
        }
    }

    /// Routes one request; returns its completion outcome (for async
    /// decisions, the outcome of the submission).
    fn execute(
        &mut self,
        rt: &mut DsaRuntime,
        req: &OffloadRequest,
    ) -> Result<(Status, u64), DsaError> {
        let bytes = req.bytes();
        let src = location_of(rt, &req.src);
        let dst = location_of(rt, &req.dst);
        let decision = self.decide(rt, req.op, bytes, src, dst);
        self.note_decision(rt, decision, bytes);
        let req = req.cache_control(self.consumed_soon);
        match decision {
            Decision::Cpu => {
                let c = self.cpu.run(rt, &req)?;
                Ok((c.status, c.result))
            }
            Decision::DsaSync => {
                let c = self.dsa.run(rt, &req)?;
                if matches!(c.status, Status::PageFault { .. }) {
                    // Partial completion: software finishes the job
                    // (the paper's recommended fault handling).
                    self.stats.fault_fallbacks += 1;
                    self.count(rt, "dispatch_fault_fallbacks", 1);
                    let c = self.cpu.run(rt, &req)?;
                    return Ok((c.status, c.result));
                }
                Ok((c.status, c.result))
            }
            Decision::DsaAsync => {
                let ticket = {
                    self.make_room(rt);
                    self.dsa.submit(rt, &req)?
                };
                self.inflight.push(ticket.completion_time(), ticket);
                Ok((Status::Success, 0))
            }
        }
    }

    /// Copies `src` to `dst`; returns elapsed core time.
    ///
    /// # Errors
    ///
    /// Propagates submission failures ([`DsaError`]).
    pub fn memcpy(
        &mut self,
        rt: &mut DsaRuntime,
        src: &BufferHandle,
        dst: &BufferHandle,
    ) -> Result<SimDuration, DsaError> {
        let start = rt.now();
        self.execute(rt, &OffloadRequest::memcpy(src, dst))?;
        Ok(rt.now().duration_since(start))
    }

    /// Fills `dst` with `byte`; returns elapsed core time.
    ///
    /// # Errors
    ///
    /// Propagates submission failures ([`DsaError`]).
    pub fn memset(
        &mut self,
        rt: &mut DsaRuntime,
        dst: &BufferHandle,
        byte: u8,
    ) -> Result<SimDuration, DsaError> {
        let start = rt.now();
        self.execute(rt, &OffloadRequest::memset(dst, byte))?;
        Ok(rt.now().duration_since(start))
    }

    /// Compares two buffers; returns the first mismatch offset (if any)
    /// and elapsed core time.
    ///
    /// # Errors
    ///
    /// Propagates submission failures ([`DsaError`]).
    pub fn memcmp(
        &mut self,
        rt: &mut DsaRuntime,
        a: &BufferHandle,
        b: &BufferHandle,
    ) -> Result<(Option<u64>, SimDuration), DsaError> {
        let start = rt.now();
        let (status, result) = self.execute(rt, &OffloadRequest::memcmp(a, b))?;
        let diff = (status == Status::CompareMismatch).then_some(result);
        Ok((diff, rt.now().duration_since(start)))
    }

    /// G1: copies a burst of scattered `(src, dst)` pairs, assembling them
    /// into batch descriptors (one descriptor per pair, batched up to the
    /// device limit) instead of submitting each pair individually. Returns
    /// elapsed core time.
    ///
    /// # Errors
    ///
    /// Propagates submission failures ([`DsaError`]).
    pub fn copy_burst(
        &mut self,
        rt: &mut DsaRuntime,
        pairs: &[(BufferHandle, BufferHandle)],
    ) -> Result<SimDuration, DsaError> {
        let start = rt.now();
        if pairs.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        if pairs.len() == 1 {
            self.execute(rt, &OffloadRequest::memcpy(&pairs[0].0, &pairs[0].1))?;
            return Ok(rt.now().duration_since(start));
        }
        let total: u64 = pairs.iter().map(|(s, d)| s.len().min(d.len())).sum();
        let src = location_of(rt, &pairs[0].0);
        let dst = location_of(rt, &pairs[0].1);
        // The advisor confirms scattered data should not be coalesced; its
        // batch-size guidance is informational here because the descriptor
        // boundaries are fixed by the caller's scatter list.
        let (_ts, _bs) = guidelines::g1_split(total, false);
        let decision = self.decide(rt, OpKind::Memcpy, total, src, dst);
        self.note_decision(rt, decision, total);
        match decision {
            Decision::Cpu => {
                for (s, d) in pairs {
                    self.cpu.run(rt, &OffloadRequest::memcpy(s, d))?;
                }
            }
            Decision::DsaSync | Decision::DsaAsync => {
                let max_batch = 1024usize;
                let device = self.dsa.select(rt, dst);
                for chunk in pairs.chunks(max_batch) {
                    let mut batch = Batch::new().on_device(device).on_wq(self.dsa.wq());
                    if self.consumed_soon {
                        batch = batch.cache_control();
                    }
                    for (s, d) in chunk {
                        batch.push(Job::memcpy(s, d));
                    }
                    self.stats.batch_descriptors += 1;
                    self.count(rt, "dispatch_g1_batches", 1);
                    let handle = batch.submit(rt)?;
                    if decision == Decision::DsaSync {
                        rt.advance_to(handle.completion_time());
                    } else {
                        self.make_room(rt);
                        let ticket = ticket_at(handle.completion_time(), total);
                        self.inflight.push(ticket.completion_time(), ticket);
                    }
                }
            }
        }
        Ok(rt.now().duration_since(start))
    }

    /// Executes every remaining instruction of a compiled
    /// [`OpProgram`](crate::program::OpProgram) through the dispatcher's
    /// placement policy: each instruction becomes a backend-neutral
    /// request, so a compiled memcpy can still land on the CPU when the
    /// estimates say offload would lose. Returns how many instructions
    /// executed.
    ///
    /// # Errors
    ///
    /// Stops at and propagates the first failure; the program counter has
    /// already advanced past the failing instruction.
    pub fn run_program(
        &mut self,
        rt: &mut DsaRuntime,
        prog: &mut crate::program::OpProgram,
    ) -> Result<u64, DsaError> {
        let mut n = 0;
        while let Some(i) = prog.fetch() {
            let req = i.offload_request();
            self.execute(rt, &req)?;
            n += 1;
        }
        Ok(n)
    }

    /// Reaps completed operations and, when the window is at depth, blocks
    /// on the oldest outstanding ticket — shared between the async submit
    /// path and burst submission so both obey the configured depth.
    fn make_room(&mut self, rt: &mut DsaRuntime) {
        while self.inflight.pop_completed(rt.now()).is_some() {}
        if self.inflight.is_full() {
            if let Some((_, oldest)) = self.inflight.pop_oldest() {
                self.dsa.wait(rt, oldest);
            }
        }
    }

    /// Waits for every outstanding asynchronous operation; returns the
    /// drain completion time.
    pub fn drain(&mut self, rt: &mut DsaRuntime) -> SimTime {
        while let Some((_, ticket)) = self.inflight.pop_oldest() {
            self.dsa.wait(rt, ticket);
        }
        rt.now()
    }
}

fn location_of(rt: &DsaRuntime, buf: &BufferHandle) -> Location {
    rt.memory().location_of(buf.addr()).unwrap_or(Location::local_dram())
}

fn ticket_at(completion: SimTime, bytes: u64) -> Ticket {
    // Tickets are plain (completion, bytes) records; reconstruct one for a
    // batch handle so bursts share the same drain path.
    Ticket::from_parts(completion, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_mem::buffer::Location;

    #[test]
    fn cpu_only_and_dsa_only_follow_policy() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(64 << 10, Location::local_dram());
        let dst = rt.alloc(64 << 10, Location::local_dram());
        rt.fill_random(&src);

        let mut cpu = Dispatcher::new().with_policy(DispatchPolicy::CpuOnly);
        cpu.memcpy(&mut rt, &src, &dst).unwrap();
        assert_eq!(cpu.stats().cpu_calls, 1);
        assert_eq!(cpu.stats().offloaded_calls(), 0);
        assert_eq!(rt.read(&src).unwrap(), rt.read(&dst).unwrap());

        let mut dsa = Dispatcher::new().with_policy(DispatchPolicy::DsaOnly);
        dsa.memcpy(&mut rt, &src, &dst).unwrap();
        assert_eq!(dsa.stats().sync_offloads, 1);
    }

    #[test]
    fn adaptive_routes_small_to_cpu_large_to_dsa() {
        let mut rt = DsaRuntime::spr_default();
        let small_s = rt.alloc(256, Location::local_dram());
        let small_d = rt.alloc(256, Location::local_dram());
        let big_s = rt.alloc(1 << 20, Location::local_dram());
        let big_d = rt.alloc(1 << 20, Location::local_dram());
        let mut d = Dispatcher::new();
        d.memcpy(&mut rt, &small_s, &small_d).unwrap();
        d.memcpy(&mut rt, &big_s, &big_d).unwrap();
        assert_eq!(d.stats().cpu_calls, 1, "256 B should stay on the core");
        assert_eq!(d.stats().sync_offloads, 1, "1 MiB should offload");
    }

    #[test]
    fn async_depth_enables_async_offload() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(16 << 10, Location::local_dram());
        let dst = rt.alloc(16 << 10, Location::local_dram());
        let mut d = Dispatcher::new().with_async_depth(32);
        for _ in 0..64 {
            d.memcpy(&mut rt, &src, &dst).unwrap();
        }
        d.drain(&mut rt);
        assert_eq!(d.stats().async_offloads, 64);
    }

    #[test]
    fn burst_assembles_batches() {
        let mut rt = DsaRuntime::spr_default();
        let pairs: Vec<_> = (0..16)
            .map(|_| {
                (
                    rt.alloc(4 << 10, Location::local_dram()),
                    rt.alloc(4 << 10, Location::local_dram()),
                )
            })
            .collect();
        let mut d = Dispatcher::new().with_policy(DispatchPolicy::DsaOnly);
        d.copy_burst(&mut rt, &pairs).unwrap();
        assert_eq!(d.stats().batch_descriptors, 1, "16 pairs fit one batch descriptor");
    }

    #[test]
    fn cache_control_hint_is_counted() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(1 << 20, Location::local_dram());
        let dst = rt.alloc(1 << 20, Location::local_dram());
        let mut d = Dispatcher::new().with_policy(DispatchPolicy::DsaOnly).consumed_soon(true);
        d.memcpy(&mut rt, &src, &dst).unwrap();
        assert_eq!(d.stats().cache_controlled, 1);
    }
}
